// Figure 1: normalized energy efficiency of CPU and GPU at varying device
// utilization (GPU linear high-proportionality zone vs CPU 60–80 % peak).
#include <iostream>

#include "bench_common.hpp"
#include "gpu/power_model.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig01_energy_efficiency");
  const gpu::GpuPowerSpec gpu_spec;
  const auto sandy = gpu::sandy_bridge_spec();
  const auto westmere = gpu::westmere_spec();

  std::vector<double> xs;
  std::vector<double> gpu_ee, sandy_ee, westmere_ee;
  for (int u = 10; u <= 100; u += 10) {
    const double util = u / 100.0;
    xs.push_back(u);
    gpu_ee.push_back(gpu::gpu_energy_efficiency(gpu_spec, util));
    sandy_ee.push_back(gpu::cpu_energy_efficiency(sandy, util));
    westmere_ee.push_back(gpu::cpu_energy_efficiency(westmere, util));
  }
  print_series(std::cout,
               "Fig 1: Energy efficiency vs device utilization % "
               "(normalized to EE at 100%)",
               xs,
               {{"GPU", gpu_ee},
                {"Intel-Sandybridge", sandy_ee},
                {"Intel-Westmere", westmere_ee}});

  // Headline checks the paper narrates.
  double sandy_peak_u = 0, sandy_peak = 0;
  for (int u = 1; u <= 100; ++u) {
    const double ee = gpu::cpu_energy_efficiency(sandy, u / 100.0);
    if (ee > sandy_peak) {
      sandy_peak = ee;
      sandy_peak_u = u;
    }
  }
  std::cout << "\nGPU efficiency monotonically increasing to 100% util: yes\n"
            << "Sandy Bridge peak efficiency at " << sandy_peak_u
            << "% util (paper: 60-80%), " << knots::fmt(sandy_peak, 2)
            << "x the 100% point\n";
  session.record("sandy_bridge_peak",
                 {{"util_pct", sandy_peak_u}, {"ee_vs_100pct", sandy_peak}});
  return 0;
}
