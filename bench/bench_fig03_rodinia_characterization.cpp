// Figure 3: GPU resource consumption (PCIe bandwidth, SM utilization,
// memory) of the Rodinia suite run sequentially on a single P100.
#include <iostream>

#include "bench_common.hpp"
#include "core/percentile.hpp"
#include "workload/rodinia.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig03_rodinia_characterization");
  std::cout << "Fig 3: sequential Rodinia characterization on one P100.\n"
            << "Columns: time since suite start | app | tx+rx MB/s | SM % | "
               "memory MB\n";

  TablePrinter table("Fig 3: per-phase resource consumption");
  table.columns({"t_start ms", "app", "bandwidth MB/s", "SM %", "memory MB",
                 "SM bar"});
  SimTime t = 0;
  std::vector<double> sm_samples, bw_samples;
  for (auto app : workload::kFig3Suite) {
    const auto profile = workload::rodinia_profile(app);
    for (const auto& phase : profile.phases()) {
      const double bw = phase.usage.tx_mbps + phase.usage.rx_mbps;
      table.row({fmt(static_cast<double>(t) / kMsec, 0),
                 std::string(workload::rodinia_name(app)), fmt(bw, 0),
                 fmt(100 * phase.usage.sm, 0), fmt(phase.usage.memory_mb, 0),
                 ascii_bar(phase.usage.sm, 1.0, 20)});
      t += phase.duration;
    }
    for (double v : profile.sm_signature(256)) sm_samples.push_back(v);
    const auto sig = profile.memory_signature(256);
    for (const auto& ph : profile.phases()) {
      bw_samples.push_back(ph.usage.tx_mbps + ph.usage.rx_mbps);
    }
  }
  table.print(std::cout);

  const double sm_median = percentile(sm_samples, 50);
  const double sm_peak = percentile(sm_samples, 100);
  const double bw_median = percentile(bw_samples, 50);
  const double bw_peak = percentile(bw_samples, 100);
  std::cout << "\nSuite runtime: " << fmt(static_cast<double>(t) / kMsec, 0)
            << " ms\nSM median-to-peak gap: " << fmt(sm_peak / sm_median, 1)
            << "x (paper: ~90x for the burstiest apps)\n"
            << "Bandwidth median-to-peak gap: "
            << fmt(bw_peak / std::max(bw_median, 1.0), 1)
            << "x (paper: ~400x)\n"
            << "Largest footprint: heartwall "
            << fmt(workload::rodinia_profile(workload::RodiniaApp::kHeartwall)
                       .peak_memory_mb(),
                   0)
            << " MB of 16384 MB\n";
  session.record("burstiness",
                 {{"sm_median_to_peak_x", sm_peak / sm_median},
                  {"bw_median_to_peak_x", bw_peak / std::max(bw_median, 1.0)}});
  return 0;
}
