// Figure 9: cluster-wide GPU utilization percentiles — PP vs CBP vs Res-Ag
// for each app mix.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig09_cluster_utilization");
  const std::vector<sched::SchedulerKind> kinds = {
      sched::SchedulerKind::kPeakPrediction, sched::SchedulerKind::kCbp,
      sched::SchedulerKind::kResourceAgnostic};

  SweepGrid grid;
  grid.schedulers = kinds;
  for (int mix = 1; mix <= 3; ++mix) {
    const auto results = run_sweep(bench::bench_config(mix, kinds[0]), grid);
    TablePrinter table("Fig 9: cluster-wide GPU utilization %, app-mix-" +
                       std::to_string(mix));
    table.columns({"percentile", "PP", "CBP", "Res-Ag"});
    const char* names[] = {"50%le", "90%le", "99%le", "Max"};
    for (int row = 0; row < 4; ++row) {
      std::vector<double> vals;
      for (const auto& result : results) {
        const auto& u = result.report.cluster_wide;
        vals.push_back(row == 0 ? u.p50
                                : row == 1 ? u.p90 : row == 2 ? u.p99 : u.max);
      }
      table.row(names[row], vals, 1);
    }
    table.print(std::cout);
    const double pp50 = results[0].report.cluster_wide.p50;
    const double ra50 = results[2].report.cluster_wide.p50;
    if (ra50 > 0) {
      std::cout << "PP median improvement over Res-Ag: "
                << fmt(100.0 * (pp50 - ra50) / ra50, 0)
                << "% (paper: up to +80% on the high-load mix)\n";
    }
    session.record("mix" + std::to_string(mix),
                   {{"pp_p50", pp50},
                    {"resag_p50", ra50},
                    {"pp_gain_pct",
                     ra50 > 0 ? 100.0 * (pp50 - ra50) / ra50 : 0.0}});
  }
  return 0;
}
