// Ablation studies of the design choices DESIGN.md calls out:
//  (1) CBP's provisioning percentile (§IV-C justifies the 80th: aggressive
//      percentiles crash/resize-thrash, conservative ones waste memory);
//  (2) the PP correlation threshold for Can_Co-locate;
//  (3) the telemetry window d (§IV-D: five seconds).
#include <iostream>

#include "bench_common.hpp"

namespace {
/// Provisioning choices only bind when device memory is scarce relative to
/// footprints (on 16 GB parts the P100 fits everything); the ablations run
/// on 6 GB devices, the regime where harvesting decisions have teeth.
knots::ExperimentConfig scarce_config(knots::sched::SchedulerKind kind) {
  auto cfg = knots::bench::bench_config(1, kind);
  cfg.cluster.node_spec.gpu.memory_mb = 6144.0;
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "ablation_provisioning");
  std::cout << "Ablations run on memory-scarce (6 GB) devices; see header "
               "comment.\n";

  {
    TablePrinter table(
        "Ablation 1: CBP+PP provisioning percentile (app-mix-1)");
    table.columns({"percentile", "QoS viol/kilo", "crashes", "util p50%",
                   "energy kJ"});
    for (double p : {50.0, 60.0, 70.0, 80.0, 90.0, 100.0}) {
      auto cfg = scarce_config(sched::SchedulerKind::kPeakPrediction);
      cfg.sched_params.provision_percentile = p;
      const auto r = run_experiment(cfg);
      table.row({fmt(p, 0), fmt(r.violations_per_kilo, 1),
                 std::to_string(r.crashes), fmt(r.cluster_wide.p50, 1),
                 fmt(r.energy_joules / 1000, 0)});
      session.record("provision_p" + fmt(p, 0),
                     {{"qos_viol_per_kilo", r.violations_per_kilo},
                      {"crashes", double(r.crashes)},
                      {"util_p50", r.cluster_wide.p50}});
    }
    table.print(std::cout);
    std::cout << "Paper choice: p80 — the sweet spot between capacity "
                 "violations (aggressive) and fragmentation (conservative).\n";
  }

  {
    TablePrinter table(
        "Ablation 2: CBP correlation threshold (app-mix-1)");
    table.columns({"threshold", "QoS viol/kilo", "crashes", "energy kJ"});
    for (double thr : {0.0, 0.25, 0.5, 0.75, 1.01}) {
      auto cfg = scarce_config(sched::SchedulerKind::kPeakPrediction);
      cfg.sched_params.correlation_threshold = thr;
      const auto r = run_experiment(cfg);
      table.row({fmt(thr, 2), fmt(r.violations_per_kilo, 1),
                 std::to_string(r.crashes),
                 fmt(r.energy_joules / 1000, 0)});
    }
    table.print(std::cout);
    std::cout << "threshold > 1 disables the correlation veto entirely "
                 "(forecast-only admission).\n";
  }

  {
    TablePrinter table("Ablation 3: telemetry window d (app-mix-1, PP)");
    table.columns({"window s", "QoS viol/kilo", "crashes", "util p50%"});
    for (SimTime window : {1 * kSec, 2 * kSec, 5 * kSec, 10 * kSec,
                           20 * kSec}) {
      auto cfg = scarce_config(sched::SchedulerKind::kPeakPrediction);
      cfg.sched_params.window = window;
      const auto r = run_experiment(cfg);
      table.row({fmt(to_seconds(window), 0), fmt(r.violations_per_kilo, 1),
                 std::to_string(r.crashes), fmt(r.cluster_wide.p50, 1)});
    }
    table.print(std::cout);
    std::cout << "Paper choice: d = 5 s sliding window.\n";
  }
  return 0;
}
