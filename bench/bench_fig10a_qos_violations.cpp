// Figure 10a: average QoS violations per kilo (1000) inference queries for
// Res-Ag, CBP, PP and the stock Uniform scheduler on each app mix.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig10a_qos_violations");
  const std::vector<sched::SchedulerKind> kinds = {
      sched::SchedulerKind::kResourceAgnostic, sched::SchedulerKind::kCbp,
      sched::SchedulerKind::kPeakPrediction, sched::SchedulerKind::kUniform};

  SweepGrid grid;
  grid.schedulers = kinds;
  TablePrinter table("Fig 10a: QoS violations per kilo inference queries");
  table.columns({"mix", "Res-Ag", "CBP", "PP", "Uniform", "queries"});
  for (int mix = 1; mix <= 3; ++mix) {
    const auto results = run_sweep(bench::bench_config(mix, kinds[0]), grid);
    table.row({std::to_string(mix),
               fmt(results[0].report.violations_per_kilo, 1),
               fmt(results[1].report.violations_per_kilo, 1),
               fmt(results[2].report.violations_per_kilo, 1),
               fmt(results[3].report.violations_per_kilo, 1),
               std::to_string(results[0].report.queries)});
    session.record("mix" + std::to_string(mix),
                   {{"resag_vpk", results[0].report.violations_per_kilo},
                    {"cbp_vpk", results[1].report.violations_per_kilo},
                    {"pp_vpk", results[2].report.violations_per_kilo},
                    {"uniform_vpk", results[3].report.violations_per_kilo}});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: Uniform violates ~18% on average (HOL "
               "blocking); Res-Ag is worse still (blind co-location, "
               "crashes); CBP and PP stay near zero (<1%).\n";
  return 0;
}
