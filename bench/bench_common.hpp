// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same rows/series the paper's figure plots, plus an
// ASCII rendering where it aids eyeballing. Absolute values live in
// EXPERIMENTS.md next to the paper's numbers.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "knots/experiment.hpp"
#include "stats/correlation.hpp"

namespace knots::bench {

/// Default arrival window for the cluster experiments: a compressed slice
/// of the paper's 12 h trace replay that keeps each bench run ~1 s.
inline constexpr SimTime kBenchWindow = 300 * kSec;

inline ExperimentConfig bench_config(int mix, sched::SchedulerKind kind) {
  ExperimentConfig cfg = default_experiment(mix, kind);
  cfg.workload.duration = kBenchWindow;
  return cfg;
}

/// Prints a correlation matrix as the Fig 2 heat maps (values in [-1, 1]).
inline void print_heatmap(std::ostream& os, const std::string& title,
                          const stats::CorrelationMatrix& m) {
  TablePrinter table(title);
  std::vector<std::string> header = {""};
  for (const auto& label : m.labels) header.push_back(label);
  table.columns(header);
  for (std::size_t i = 0; i < m.labels.size(); ++i) {
    std::vector<std::string> row = {m.labels[i]};
    for (std::size_t j = 0; j < m.labels.size(); ++j) {
      row.push_back(fmt(m.at(i, j), 2));
    }
    table.row(row);
  }
  table.print(os);
}

/// Prints per-GPU utilization percentile bars (Fig 6 / Fig 8 panels).
inline void print_per_gpu_percentiles(std::ostream& os,
                                      const std::string& title,
                                      const ExperimentReport& report) {
  TablePrinter table(title);
  table.columns({"GPU node", "50%le", "90%le", "99%le", "Max", "p50 bar"});
  for (std::size_t g = 0; g < report.per_gpu.size(); ++g) {
    const auto& u = report.per_gpu[g];
    table.row({std::to_string(g + 1), fmt(u.p50, 1), fmt(u.p90, 1),
               fmt(u.p99, 1), fmt(u.max, 1), ascii_bar(u.p50, 100.0, 25)});
  }
  table.print(os);
}

}  // namespace knots::bench
