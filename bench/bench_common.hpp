// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same rows/series the paper's figure plots, plus an
// ASCII rendering where it aids eyeballing. Absolute values live in
// EXPERIMENTS.md next to the paper's numbers.
//
// Every bench binary also accepts:
//   --json <path>   write a machine-readable result file (see Session)
//   --fast          shrink workloads for CI smoke runs
#pragma once

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/table.hpp"
#include "knots/experiment.hpp"
#include "stats/correlation.hpp"

namespace knots::bench {

/// One benchmark's machine-readable result: a name plus flat numeric
/// metrics (ns_per_op, ticks_per_sec, allocs_per_op, ...).
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Serializes records as the BENCH_perf.json schema:
///   {"suite": ..., "wall_seconds": ..., "benchmarks": [{"name": ...}]}
inline void write_bench_json(std::ostream& os, const std::string& suite,
                             double wall_seconds,
                             const std::vector<BenchRecord>& records) {
  const auto num = [](double v) {
    std::ostringstream s;
    s.precision(12);
    s << v;
    return s.str();
  };
  os << "{\n  \"suite\": \"" << suite << "\",\n  \"wall_seconds\": "
     << num(wall_seconds) << ",\n  \"benchmarks\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << records[i].name
       << '"';
    for (const auto& [key, value] : records[i].metrics) {
      os << ", \"" << key << "\": " << num(value);
    }
    os << '}';
  }
  os << "\n  ]\n}\n";
}

/// Per-binary bench session: parses the shared flags, accumulates
/// BenchRecords, and (when --json was given) writes the result file on
/// destruction — so a bench only needs `Session session(argc, argv, name);`
/// plus optional record() calls for its headline numbers.
class Session {
 public:
  Session(int argc, char** argv, std::string suite)
      : suite_(std::move(suite)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (std::strcmp(argv[i], "--fast") == 0) {
        fast_ = true;
      }
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// True when --fast was passed: benches should shrink their workloads
  /// (CI smoke mode).
  [[nodiscard]] bool fast() const noexcept { return fast_; }
  [[nodiscard]] bool json_requested() const noexcept {
    return !json_path_.empty();
  }

  void record(std::string name,
              std::vector<std::pair<std::string, double>> metrics) {
    records_.push_back({std::move(name), std::move(metrics)});
  }

  ~Session() {
    if (json_path_.empty()) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::ofstream out(json_path_);
    if (!out) {
      std::cerr << "bench: cannot write " << json_path_ << '\n';
      return;
    }
    write_bench_json(out, suite_, wall, records_);
    std::cout << "wrote " << json_path_ << " (" << records_.size()
              << " benchmarks)\n";
  }

 private:
  std::string suite_;
  std::string json_path_;
  bool fast_ = false;
  std::chrono::steady_clock::time_point start_;
  std::vector<BenchRecord> records_;
};

/// Default arrival window for the cluster experiments: a compressed slice
/// of the paper's 12 h trace replay that keeps each bench run ~1 s.
inline constexpr SimTime kBenchWindow = 300 * kSec;

inline ExperimentConfig bench_config(int mix, sched::SchedulerKind kind) {
  ExperimentConfig cfg = default_experiment(mix, kind);
  cfg.workload.duration = kBenchWindow;
  return cfg;
}

/// Prints a correlation matrix as the Fig 2 heat maps (values in [-1, 1]).
inline void print_heatmap(std::ostream& os, const std::string& title,
                          const stats::CorrelationMatrix& m) {
  TablePrinter table(title);
  std::vector<std::string> header = {""};
  for (const auto& label : m.labels) header.push_back(label);
  table.columns(header);
  for (std::size_t i = 0; i < m.labels.size(); ++i) {
    std::vector<std::string> row = {m.labels[i]};
    for (std::size_t j = 0; j < m.labels.size(); ++j) {
      row.push_back(fmt(m.at(i, j), 2));
    }
    table.row(row);
  }
  table.print(os);
}

/// Prints per-GPU utilization percentile bars (Fig 6 / Fig 8 panels).
inline void print_per_gpu_percentiles(std::ostream& os,
                                      const std::string& title,
                                      const ExperimentReport& report) {
  TablePrinter table(title);
  table.columns({"GPU node", "50%le", "90%le", "99%le", "Max", "p50 bar"});
  for (std::size_t g = 0; g < report.per_gpu.size(); ++g) {
    const auto& u = report.per_gpu[g];
    table.row({std::to_string(g + 1), fmt(u.p50, 1), fmt(u.p90, 1),
               fmt(u.p99, 1), fmt(u.max, 1), ascii_bar(u.p50, 100.0, 25)});
  }
  table.print(os);
}

}  // namespace knots::bench
