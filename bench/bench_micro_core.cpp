// Google-benchmark microbenchmarks of the hot paths: telemetry ingest and
// window queries, forecaster fits, correlation, the event queue, and one
// full scheduler round.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "core/rng.hpp"
#include "dlsim/dl_cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "sim/simulation.hpp"
#include "stats/arima.hpp"
#include "stats/correlation.hpp"
#include "stats/regressors.hpp"
#include "telemetry/timeseries_db.hpp"
#include "workload/load_generator.hpp"

namespace {

using namespace knots;

void BM_TsdbIngest(benchmark::State& state) {
  telemetry::TimeSeriesDb db;
  SimTime t = 0;
  for (auto _ : state) {
    db.write(GpuId{0}, telemetry::Metric::kSmUtil, {t++, 0.5});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbIngest);

void BM_TsdbWindowQuery(benchmark::State& state) {
  telemetry::TimeSeriesDb db;
  const auto n = static_cast<SimTime>(state.range(0));
  for (SimTime t = 0; t < n; ++t) {
    db.write(GpuId{0}, telemetry::Metric::kSmUtil, {t, 0.5});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.query_window(GpuId{0}, telemetry::Metric::kSmUtil, n / 2));
  }
}
BENCHMARK(BM_TsdbWindowQuery)->Arg(1000)->Arg(10000)->Arg(60000);

void BM_ArimaFit(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> window;
  for (int i = 0; i < state.range(0); ++i) {
    window.push_back(rng.uniform());
  }
  stats::Arima1 model;
  for (auto _ : state) {
    model.fit(window);
    benchmark::DoNotOptimize(model.predict_next());
  }
}
BENCHMARK(BM_ArimaFit)->Arg(50)->Arg(500)->Arg(5000);

void BM_TheilSenFit(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> window;
  for (int i = 0; i < state.range(0); ++i) window.push_back(rng.uniform());
  stats::TheilSen model;
  for (auto _ : state) {
    model.fit(window);
    benchmark::DoNotOptimize(model.predict_next());
  }
}
BENCHMARK(BM_TheilSenFit)->Arg(50)->Arg(500);

void BM_Spearman(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> x, y;
  for (int i = 0; i < state.range(0); ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::spearman(x, y));
  }
}
BENCHMARK(BM_Spearman)->Arg(64)->Arg(1024);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at((i * 37) % 997, [] {});
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_FullClusterRun(benchmark::State& state) {
  const auto kind = static_cast<sched::SchedulerKind>(state.range(0));
  for (auto _ : state) {
    auto scheduler = sched::make_scheduler(kind);
    cluster::ClusterConfig cfg;
    cfg.nodes = 10;
    cluster::Cluster cl(cfg, *scheduler);
    workload::LoadGenConfig wl;
    wl.duration = 60 * kSec;
    cl.load(workload::generate_workload(workload::app_mix(1), wl, Rng(3)));
    cl.run();
    benchmark::DoNotOptimize(cl.completed_count());
  }
}
BENCHMARK(BM_FullClusterRun)
    ->Arg(static_cast<int>(sched::SchedulerKind::kUniform))
    ->Arg(static_cast<int>(sched::SchedulerKind::kResourceAgnostic))
    ->Arg(static_cast<int>(sched::SchedulerKind::kCbp))
    ->Arg(static_cast<int>(sched::SchedulerKind::kPeakPrediction))
    ->Unit(benchmark::kMillisecond);

void BM_DlSimRun(benchmark::State& state) {
  // One full DL run on the shared substrate (event engine + GpuDevice +
  // digest): the per-policy cost of the unified path, small 4x4 topology.
  const auto& policy =
      dlsim::kDlPolicyNames[static_cast<std::size_t>(state.range(0))];
  dlsim::DlClusterConfig cluster;
  cluster.nodes = 4;
  cluster.gpus_per_node = 4;
  dlsim::DlWorkloadConfig wl;
  wl.dlt_jobs = 40;
  wl.dli_queries = 150;
  wl.window = 2 * kHour;
  for (auto _ : state) {
    const auto result =
        dlsim::run_dl_simulation(std::string(policy), cluster, wl, 7);
    benchmark::DoNotOptimize(result.run_digest);
  }
}
BENCHMARK(BM_DlSimRun)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_TraceRecord(benchmark::State& state) {
  obs::TraceSink sink;
  SimTime t = 0;
  for (auto _ : state) {
    sink.record(t++, obs::EventKind::kPlace, 1, 2, 1024.0);
    if (sink.size() >= 1u << 20) sink.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

void BM_FullClusterRunTraced(benchmark::State& state) {
  // CBP run with a live sink + registry attached; compare against the CBP
  // row of BM_FullClusterRun for the end-to-end observability overhead.
  for (auto _ : state) {
    auto scheduler = sched::make_scheduler(sched::SchedulerKind::kCbp);
    cluster::ClusterConfig cfg;
    cfg.nodes = 10;
    cluster::Cluster cl(cfg, *scheduler);
    obs::TraceSink trace;
    obs::MetricsRegistry metrics;
    cl.set_trace_sink(&trace);
    cl.set_metrics_registry(&metrics);
    workload::LoadGenConfig wl;
    wl.duration = 60 * kSec;
    cl.load(workload::generate_workload(workload::app_mix(1), wl, Rng(3)));
    cl.run();
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_FullClusterRunTraced)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
