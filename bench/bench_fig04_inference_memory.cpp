// Figure 4: memory footprint of Djinn & Tonic DNN inference queries vs
// batch size, against TensorFlow's default whole-device earmark.
#include <iostream>

#include "bench_common.hpp"
#include "workload/djinn_tonic.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig04_inference_memory");
  constexpr double kCapacityMb = 16384.0;

  TablePrinter table("Fig 4: % of GPU memory used per inference batch size");
  table.columns({"batch", "TF", "face", "imc", "key", "ner", "pos", "chk"});
  for (int batch = 1; batch <= 128; batch *= 2) {
    std::vector<double> row;
    row.push_back(100 * workload::tf_managed_memory_mb(kCapacityMb) /
                  kCapacityMb);
    for (auto service : workload::kAllServices) {
      row.push_back(100 * workload::inference_memory_mb(service, batch) /
                    kCapacityMb);
    }
    table.row(std::to_string(batch), row, 1);
  }
  table.print(std::cout);

  int under_ten_at_one = 0, under_half_at_128 = 0;
  for (auto service : workload::kAllServices) {
    if (workload::inference_memory_mb(service, 1) < 0.10 * kCapacityMb) {
      ++under_ten_at_one;
    }
    if (workload::inference_memory_mb(service, 128) < 0.50 * kCapacityMb) {
      ++under_half_at_128;
    }
  }
  std::cout << "\nServices under 10% of device at batch 1: "
            << under_ten_at_one << "/6 (paper: most)\n"
            << "Services under 50% of device at batch 128: "
            << under_half_at_128 << "/6 (paper: majority)\n"
            << "TF default earmark: 99% regardless of workload — the "
               "internal fragmentation CBP/PP harvest back\n";
  session.record("footprints",
                 {{"under_10pct_at_batch1", double(under_ten_at_one)},
                  {"under_50pct_at_batch128", double(under_half_at_128)}});
  return 0;
}
