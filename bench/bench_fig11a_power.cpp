// Figure 11a: normalized cluster power across the four schedulers per mix.
// We report energy over the full run (work-conserving makespans differ by
// scheduler), normalized to the Uniform baseline.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig11a_power");
  const std::vector<sched::SchedulerKind> kinds = {
      sched::SchedulerKind::kResourceAgnostic, sched::SchedulerKind::kCbp,
      sched::SchedulerKind::kPeakPrediction, sched::SchedulerKind::kUniform};

  TablePrinter table(
      "Fig 11a: cluster energy normalized to the Uniform scheduler");
  table.columns({"mix", "Res-Ag", "CBP", "PP", "Uniform", "PP saving"});
  SweepGrid grid;
  grid.schedulers = kinds;
  double total_saving = 0;
  for (int mix = 1; mix <= 3; ++mix) {
    const auto results = run_sweep(bench::bench_config(mix, kinds[0]), grid);
    const double uniform = results[3].report.energy_joules;
    const double saving =
        100.0 * (uniform - results[2].report.energy_joules) / uniform;
    total_saving += saving;
    table.row({std::to_string(mix),
               fmt(results[0].report.energy_joules / uniform, 2),
               fmt(results[1].report.energy_joules / uniform, 2),
               fmt(results[2].report.energy_joules / uniform, 2), "1.00",
               fmt(saving, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nAverage PP energy saving vs GPU-agnostic scheduling: "
            << fmt(total_saving / 3.0, 0)
            << "% (paper: ~33% across the three mixes). Paper ordering: "
               "Res-Ag least, PP ~+10% over Res-Ag, CBP above PP, Uniform "
               "highest.\n";
  session.record("pp_energy_saving", {{"avg_pct", total_saving / 3.0}});
  return 0;
}
