// Figure 11a: normalized cluster power across the four schedulers per mix.
// We report energy over the full run (work-conserving makespans differ by
// scheduler), normalized to the Uniform baseline.
//
// `--device-model NAME` re-runs the figure on another registry generation
// (v100-32g, a100-40g): absolute energy shifts with the power envelope, but
// the paper's ordering claim is substrate-independent. Omitting the flag
// keeps the historical P100 runs bit-identical.
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "gpu/device_model.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig11a_power");

  std::optional<gpu::DeviceModel> model;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device-model") == 0 && i + 1 < argc) {
      model = gpu::find_device_model(argv[++i]);
      if (!model.has_value()) {
        std::cerr << "bench_fig11a_power: unknown device model '" << argv[i]
                  << "' (one of:";
        for (const auto& m : gpu::device_models()) std::cerr << ' ' << m.name;
        std::cerr << ")\n";
        return 2;
      }
    }
  }

  const std::vector<sched::SchedulerKind> kinds = {
      sched::SchedulerKind::kResourceAgnostic, sched::SchedulerKind::kCbp,
      sched::SchedulerKind::kPeakPrediction, sched::SchedulerKind::kUniform};

  const std::string device =
      model.has_value() ? model->display : gpu::default_device_model().display;
  TablePrinter table(
      "Fig 11a: cluster energy normalized to the Uniform scheduler (" +
      device + ")");
  table.columns({"mix", "Res-Ag", "CBP", "PP", "Uniform", "PP saving"});
  SweepGrid grid;
  grid.schedulers = kinds;
  double total_saving = 0;
  for (int mix = 1; mix <= 3; ++mix) {
    ExperimentConfig cfg = bench::bench_config(mix, kinds[0]);
    if (model.has_value()) {
      // Same substitution ExperimentConfig::Builder::device_model performs.
      cfg.cluster.node_spec.gpu = model->gpu;
      cfg.workload.device_memory_mb = model->gpu.memory_mb;
    }
    const auto results = run_sweep(cfg, grid);
    const double uniform = results[3].report.energy_joules;
    const double saving =
        100.0 * (uniform - results[2].report.energy_joules) / uniform;
    total_saving += saving;
    table.row({std::to_string(mix),
               fmt(results[0].report.energy_joules / uniform, 2),
               fmt(results[1].report.energy_joules / uniform, 2),
               fmt(results[2].report.energy_joules / uniform, 2), "1.00",
               fmt(saving, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nAverage PP energy saving vs GPU-agnostic scheduling: "
            << fmt(total_saving / 3.0, 0)
            << "% (paper: ~33% across the three mixes). Paper ordering: "
               "Res-Ag least, PP ~+10% over Res-Ag, CBP above PP, Uniform "
               "highest.\n";
  session.record("pp_energy_saving", {{"avg_pct", total_saving / 3.0}});
  return 0;
}
