// Datacenter-scale throughput curves: nodes × pods × events/sec at
// 10 → 100 → 1k → 10k nodes, plus a lane-determinism gate (the sharded
// run must reproduce the single-lane digest bit-for-bit before its
// numbers count). Committed baseline lives in BENCH_scale.json.
//
//   --fast   10/100-node points only (CI smoke; ~seconds)
//   --json   machine-readable BENCH_scale.json schema
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "knots/experiment.hpp"

namespace {

using namespace knots;

struct ScalePoint {
  int nodes = 0;
  SimTime window = 0;  ///< Arrival window; larger clusters use shorter ones.
};

struct ScaleResult {
  int nodes = 0;
  std::size_t pods = 0;
  std::uint64_t ticks = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  std::uint64_t digest = 0;
};

/// Scale config: arrival rates grow with the node count so pods-per-node
/// stays at the paper's 10-node density, and telemetry retention shrinks
/// to a scheduler-sufficient window so a 10k-node cluster does not spend
/// its time faulting in ring buffers.
ExperimentConfig scale_config(int nodes, int lanes, SimTime window) {
  ExperimentConfig cfg = ExperimentConfig::Builder{}
                             .mix(1)
                             .scheduler(sched::SchedulerKind::kPeakPrediction)
                             .nodes(nodes)
                             .lanes(lanes)
                             .duration(window)
                             .seed(42)
                             .load_scale(nodes / 10.0)
                             .build();
  cfg.cluster.telemetry_retention = 2048;
  return cfg;
}

ScaleResult run_point(const ScalePoint& pt, int lanes) {
  const ExperimentConfig cfg = scale_config(pt.nodes, lanes, pt.window);
  const auto t0 = std::chrono::steady_clock::now();
  const ExperimentReport report = run_experiment(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return ScaleResult{pt.nodes,        report.pods_total, report.ticks,
                     report.events,   wall,              report.run_digest};
}

double node_ticks_per_sec(const ScaleResult& r) {
  return r.wall_seconds > 0
             ? static_cast<double>(r.ticks) * r.nodes / r.wall_seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv, "scale");

  // Lane-determinism gate: throughput numbers are meaningless if sharding
  // changed the simulation, so prove digest equality first.
  {
    const ScalePoint gate{100, 30 * kSec};
    const ScaleResult one = run_point(gate, 1);
    const ScaleResult four = run_point(gate, 4);
    if (one.digest != four.digest) {
      std::cerr << "bench_scale: lanes=4 digest diverged from lanes=1\n";
      return 1;
    }
    session.record("lanes_digest_match",
                   {{"nodes", 100}, {"lanes", 4}, {"match", 1}});
  }

  std::vector<ScalePoint> points = {{10, 300 * kSec}, {100, 60 * kSec}};
  if (!session.fast()) {
    points.push_back({1000, 20 * kSec});
    points.push_back({10000, 5 * kSec});
  }

  TablePrinter table("Scale curve (mix 1, PP)");
  table.columns({"nodes", "pods", "ticks", "events", "wall s", "ticks/s",
                 "node-ticks/s", "events/s", "vs 10-node"});

  double baseline = 0;
  for (const ScalePoint& pt : points) {
    const ScaleResult r = run_point(pt, 1);
    const double nts = node_ticks_per_sec(r);
    if (r.nodes == 10) baseline = nts;
    const double speedup = baseline > 0 ? nts / baseline : 0.0;
    const double tps = r.wall_seconds > 0 ? r.ticks / r.wall_seconds : 0.0;
    const double eps = r.wall_seconds > 0 ? r.events / r.wall_seconds : 0.0;
    table.row({std::to_string(r.nodes), std::to_string(r.pods),
               std::to_string(r.ticks), std::to_string(r.events),
               fmt(r.wall_seconds, 3), fmt(tps, 1), fmt(nts, 1), fmt(eps, 1),
               fmt(speedup, 2) + "x"});
    session.record("e2e_" + std::to_string(r.nodes) + "node",
                   {{"nodes", static_cast<double>(r.nodes)},
                    {"pods", static_cast<double>(r.pods)},
                    {"ticks", static_cast<double>(r.ticks)},
                    {"events", static_cast<double>(r.events)},
                    {"wall_seconds", r.wall_seconds},
                    {"ticks_per_sec", tps},
                    {"node_ticks_per_sec", nts},
                    {"events_per_sec", eps},
                    {"speedup_vs_10node", speedup}});
  }
  table.print(std::cout);
  return 0;
}
