// Datacenter-scale throughput curves: nodes × pods × events/sec at
// 10 → 100 → 1k → 10k nodes, plus a lane-determinism gate (the sharded
// run must reproduce the single-lane digest bit-for-bit before its
// numbers count). Committed baseline lives in BENCH_scale.json (the
// pre-pipeline curve is kept in BENCH_scale_pr6.json for comparison).
//
//   --fast         10/100/1k-node points (CI smoke; the 1k point gates
//                  the 1M node-ticks/s floor)
//   --json         machine-readable BENCH_scale.json schema; includes a
//                  per-phase tick breakdown (advance / scrape / schedule /
//                  barrier merge / event dispatch) from an instrumented
//                  1k-node run
//   --lanes-sweep  lanes ∈ {1, 2, 4, hw} at 1k nodes with parallel
//                  efficiency, instead of the node curve (diagnostic mode;
//                  not part of the committed baseline)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "knots/experiment.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace knots;

struct ScalePoint {
  int nodes = 0;
  SimTime window = 0;  ///< Arrival window; larger clusters use shorter ones.
};

struct ScaleResult {
  int nodes = 0;
  std::size_t pods = 0;
  std::uint64_t ticks = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  std::uint64_t digest = 0;
};

/// Scale config: arrival rates grow with the node count so pods-per-node
/// stays at the paper's 10-node density, and telemetry retention shrinks
/// to a scheduler-sufficient window so a 10k-node cluster does not spend
/// its time faulting in ring buffers.
ExperimentConfig scale_config(int nodes, int lanes, SimTime window) {
  ExperimentConfig cfg = ExperimentConfig::Builder{}
                             .mix(1)
                             .scheduler(sched::SchedulerKind::kPeakPrediction)
                             .nodes(nodes)
                             .lanes(lanes)
                             .duration(window)
                             .seed(42)
                             .load_scale(nodes / 10.0)
                             .build();
  // 1024 samples cover the widest scheduler lookback with 2× headroom
  // (PP's 5 s window / 10 ms tick = 500 samples); halving the rings also
  // halves the scrape's resident set.
  cfg.cluster.telemetry_retention = 1024;
  return cfg;
}

ScaleResult run_point(const ScalePoint& pt, int lanes,
                      obs::MetricsRegistry* registry = nullptr) {
  const ExperimentConfig cfg = scale_config(pt.nodes, lanes, pt.window);
  const auto t0 = std::chrono::steady_clock::now();
  ExperimentReport report;
  if (registry != nullptr) {
    RunObservability obs_hooks;
    obs_hooks.metrics = registry;
    report = run_experiment(cfg, obs_hooks);
  } else {
    report = run_experiment(cfg);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return ScaleResult{pt.nodes,        report.pods_total, report.ticks,
                     report.events,   wall,              report.run_digest};
}

double node_ticks_per_sec(const ScaleResult& r) {
  return r.wall_seconds > 0
             ? static_cast<double>(r.ticks) * r.nodes / r.wall_seconds
             : 0.0;
}

/// Instrumented 1k-node run: where does a tick actually go? The phase
/// timers are KNOTS_PROF_SCOPE histograms the cluster resolves from the
/// registry; their sums are wall-ns attributable to each phase. Dispatch
/// covers whole event handlers, so it nests the others — report it as the
/// envelope, not a disjoint slice.
void record_phase_breakdown(bench::Session& session, const ScalePoint& pt) {
  obs::MetricsRegistry registry;
  const ScaleResult r = run_point(pt, /*lanes=*/1, &registry);
  const char* const kPhases[] = {
      "cluster.advance_ns",    "telemetry.scrape_ns",
      "sched.on_schedule_ns",  "cluster.barrier_merge_ns",
      "telemetry.agg_sort_ns", "sim.dispatch_ns",
  };
  std::vector<std::pair<std::string, double>> metrics = {
      {"nodes", static_cast<double>(r.nodes)},
      {"wall_seconds", r.wall_seconds},
      {"node_ticks_per_sec", node_ticks_per_sec(r)},
  };
  TablePrinter table("Per-phase tick breakdown (1k nodes, lanes=1)");
  table.columns({"phase", "total s", "% of wall", "samples"});
  for (const char* name : kPhases) {
    const obs::Histogram* h = registry.find_histogram(name);
    const double total_s = h != nullptr ? h->sum() * 1e-9 : 0.0;
    const double share =
        r.wall_seconds > 0 ? 100.0 * total_s / r.wall_seconds : 0.0;
    const std::uint64_t samples = h != nullptr ? h->count() : 0;
    table.row({name, fmt(total_s, 3), fmt(share, 1), std::to_string(samples)});
    // JSON keys: phase name with '.' → '_', e.g. cluster_advance_ns_total.
    std::string key = name;
    std::replace(key.begin(), key.end(), '.', '_');
    metrics.emplace_back(key + "_total_s", total_s);
    metrics.emplace_back(key + "_share_pct", share);
  }
  table.print(std::cout);
  session.record("phase_breakdown_" + std::to_string(pt.nodes) + "node",
                 std::move(metrics));
}

/// Lane sweep at one size: throughput and parallel efficiency
/// rate(L) / (L × rate(1)) for lanes ∈ {1, 2, 4, hardware}. Digest equality
/// across every lane count is asserted — a diverging digest voids the row.
int run_lanes_sweep(bench::Session& session, const ScalePoint& pt) {
  std::vector<int> lane_counts = {1, 2, 4};
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  if (std::find(lane_counts.begin(), lane_counts.end(), hw) ==
      lane_counts.end()) {
    lane_counts.push_back(hw);
  }

  TablePrinter table("Lane sweep (" + std::to_string(pt.nodes) + " nodes)");
  table.columns({"lanes", "wall s", "node-ticks/s", "efficiency", "digest"});
  double rate1 = 0;
  std::uint64_t digest1 = 0;
  for (const int lanes : lane_counts) {
    const ScaleResult r = run_point(pt, lanes);
    const double rate = node_ticks_per_sec(r);
    if (lanes == 1) {
      rate1 = rate;
      digest1 = r.digest;
    } else if (r.digest != digest1) {
      std::cerr << "bench_scale: lanes=" << lanes
                << " digest diverged from lanes=1\n";
      return 1;
    }
    const double efficiency =
        rate1 > 0 ? rate / (static_cast<double>(lanes) * rate1) : 0.0;
    table.row({std::to_string(lanes), fmt(r.wall_seconds, 3), fmt(rate, 1),
               fmt(efficiency, 3), std::to_string(r.digest == digest1)});
    session.record("lanes_" + std::to_string(lanes) + "_" +
                       std::to_string(pt.nodes) + "node",
                   {{"lanes", static_cast<double>(lanes)},
                    {"nodes", static_cast<double>(pt.nodes)},
                    {"wall_seconds", r.wall_seconds},
                    {"node_ticks_per_sec", rate},
                    {"parallel_efficiency", efficiency},
                    {"digest_match", 1.0}});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv, "scale");
  bool lanes_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lanes-sweep") == 0) lanes_sweep = true;
  }

  // Lane-determinism gate: throughput numbers are meaningless if sharding
  // changed the simulation, so prove digest equality first.
  {
    const ScalePoint gate{100, 30 * kSec};
    const ScaleResult one = run_point(gate, 1);
    const ScaleResult four = run_point(gate, 4);
    if (one.digest != four.digest) {
      std::cerr << "bench_scale: lanes=4 digest diverged from lanes=1\n";
      return 1;
    }
    session.record("lanes_digest_match",
                   {{"nodes", 100}, {"lanes", 4}, {"match", 1}});
  }

  if (lanes_sweep) {
    return run_lanes_sweep(session, ScalePoint{1000, 10 * kSec});
  }

  std::vector<ScalePoint> points = {
      {10, 300 * kSec}, {100, 60 * kSec}, {1000, 20 * kSec}};
  if (!session.fast()) points.push_back({10000, 5 * kSec});

  TablePrinter table("Scale curve (mix 1, PP)");
  table.columns({"nodes", "pods", "ticks", "events", "wall s", "ticks/s",
                 "node-ticks/s", "events/s", "vs 10-node"});

  double baseline = 0;
  std::uint64_t digest_1000 = 0;
  SimTime window_1000 = 0;
  for (const ScalePoint& pt : points) {
    const ScaleResult r = run_point(pt, 1);
    if (r.nodes == 1000) {
      digest_1000 = r.digest;
      window_1000 = pt.window;
    }
    const double nts = node_ticks_per_sec(r);
    if (r.nodes == 10) baseline = nts;
    const double speedup = baseline > 0 ? nts / baseline : 0.0;
    const double tps = r.wall_seconds > 0 ? r.ticks / r.wall_seconds : 0.0;
    const double eps = r.wall_seconds > 0 ? r.events / r.wall_seconds : 0.0;
    table.row({std::to_string(r.nodes), std::to_string(r.pods),
               std::to_string(r.ticks), std::to_string(r.events),
               fmt(r.wall_seconds, 3), fmt(tps, 1), fmt(nts, 1), fmt(eps, 1),
               fmt(speedup, 2) + "x"});
    session.record("e2e_" + std::to_string(r.nodes) + "node",
                   {{"nodes", static_cast<double>(r.nodes)},
                    {"pods", static_cast<double>(r.pods)},
                    {"ticks", static_cast<double>(r.ticks)},
                    {"events", static_cast<double>(r.events)},
                    {"wall_seconds", r.wall_seconds},
                    {"ticks_per_sec", tps},
                    {"node_ticks_per_sec", nts},
                    {"events_per_sec", eps},
                    {"speedup_vs_10node", speedup}});
  }
  table.print(std::cout);

  // Inert-fabric law at scale: a zero-latency fabric on the 1k-node point
  // must reproduce the fabric-free digest bit-for-bit — the per-node
  // topology bookkeeping may cost a little wall time but never semantics.
  {
    ExperimentConfig cfg = scale_config(1000, 1, window_1000);
    cfg.cluster.fabric = net::FabricPlan::zero_latency(1000);
    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentReport r = run_experiment(cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (r.run_digest != digest_1000) {
      std::cerr << "bench_scale: inert fabric changed the 1k-node digest\n";
      return 1;
    }
    const double nts =
        wall > 0 ? static_cast<double>(r.ticks) * 1000 / wall : 0.0;
    std::cout << "1k-node inert-fabric point: digest match, "
              << fmt(nts, 1) << " node-ticks/s\n";
    session.record("e2e_1000node_inert_fabric",
                   {{"nodes", 1000},
                    {"wall_seconds", wall},
                    {"node_ticks_per_sec", nts},
                    {"digest_match", 1.0}});
  }

  // Phase breakdown only when a machine-readable report was asked for —
  // the extra instrumented run is not free on the headline path.
  if (session.json_requested()) {
    record_phase_breakdown(
        session, ScalePoint{1000, session.fast() ? 10 * kSec : 20 * kSec});
  }
  return 0;
}
