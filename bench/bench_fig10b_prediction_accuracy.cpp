// Figure 10b: peak-prediction accuracy vs telemetry heartbeat interval for
// ARIMA (CBP+PP) against Theil-Sen, SGD and MLP regressors.
//
// Setup mirrors §VI-D: a GPU runs a rotating Rodinia mix; the node sampler
// reads the (1 ms-quantized, noisy) utilization counter every heartbeat and
// keeps a bounded retention buffer (the node-local time-series DB); every
// model fits the retained <=5 s window and forecasts utilization one second
// ahead. Accuracy = fraction of forecasts within an absolute utilization
// tolerance of the truth.
//
// The shape's two cliffs are structural: coarse heartbeats leave too few
// samples in the 5 s window to fit, while sub-millisecond heartbeats burn
// the bounded retention on redundant (quantized + noisy) re-reads of the
// same counter value, shrinking the temporal horizon below the forecast
// distance — the "over-fitting" regime the paper describes.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "stats/ewma_forecaster.hpp"
#include "stats/forecaster.hpp"
#include "workload/rodinia.hpp"

namespace {

using namespace knots;

/// Ground-truth GPU utilization: two phase-shifted batch apps sharing the
/// device (clipped sum), exactly what the head node tries to forecast.
double true_util(SimTime t) {
  static const auto a =
      workload::rodinia_profile(workload::RodiniaApp::kLeukocyte)
          .time_scaled(12.0);
  static const auto b =
      workload::rodinia_profile(workload::RodiniaApp::kKmeans)
          .time_scaled(15.0);
  const double sum = a.usage_at(t).sm + b.usage_at(t + 3 * kSec).sm;
  return std::min(1.0, sum);
}

/// NVML-style read: counter updates every 1 ms; each read adds noise.
double read_counter(SimTime t, Rng& rng) {
  const SimTime quantized = (t / kMsec) * kMsec;
  return std::clamp(true_util(quantized) + rng.normal(0.0, 0.02), 0.0, 1.0);
}

struct AccuracyResult {
  double accuracy_pct;
};

std::unique_ptr<stats::Forecaster> make_model(int model_id) {
  switch (model_id) {
    case 0: return stats::make_forecaster(stats::ForecastModel::kArima);
    case 1: return stats::make_forecaster(stats::ForecastModel::kTheilSen);
    case 2: return stats::make_forecaster(stats::ForecastModel::kSgd);
    case 3: return stats::make_forecaster(stats::ForecastModel::kMlp);
    case 4: return std::make_unique<stats::EwmaForecaster>(0.05);
    default: return std::make_unique<stats::SeasonalNaive>();
  }
}

/// Quadratic/expensive fits get capped sample sets (model ids 1 and 3).
bool is_expensive(int model_id) { return model_id == 1 || model_id == 3; }

AccuracyResult evaluate(int model_id, SimTime heartbeat,
                        std::uint64_t seed) {
  constexpr SimTime kWindow = 5 * kSec;      // §IV-D sliding window
  constexpr SimTime kHorizon = 1 * kSec;     // forecast distance
  constexpr std::size_t kRetention = 8192;   // node DB ring buffer
  constexpr double kTolerance = 0.15;        // absolute utilization error
  const int evals = 60;

  Rng rng(seed);
  auto forecaster = make_model(model_id);
  int hits = 0;
  for (int e = 0; e < evals; ++e) {
    const SimTime now = 20 * kSec + e * 700 * kMsec;
    // Samples retained at `now`: newest kRetention reads within the window.
    std::size_t n = static_cast<std::size_t>(kWindow / heartbeat);
    n = std::min(n, kRetention);
    std::vector<double> window;
    window.reserve(n);
    for (std::size_t i = n; i-- > 0;) {
      const SimTime t = now - static_cast<SimTime>(i) * heartbeat;
      window.push_back(read_counter(t, rng));
    }
    // Quadratic models cannot afford 5k-point fits every heartbeat; like
    // the deployed system we cap their fit set (newest points).
    if (is_expensive(model_id) && window.size() > 512) {
      window.erase(window.begin(),
                   window.end() - 512);
    }
    forecaster->fit(window);
    const auto steps = static_cast<std::size_t>(
        std::max<SimTime>(1, kHorizon / heartbeat));
    const double predicted =
        std::clamp(forecaster->predict_ahead(steps), 0.0, 1.0);
    const double actual = true_util(now + kHorizon);
    if (std::abs(predicted - actual) <= kTolerance) ++hits;
  }
  return {100.0 * hits / evals};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig10b_prediction_accuracy");
  const SimTime heartbeats[] = {1000 * kMsec, 500 * kMsec, 100 * kMsec,
                                10 * kMsec,  1 * kMsec,   kMsec / 10};
  TablePrinter table(
      "Fig 10b: prediction accuracy % vs heartbeat interval (+ extension "
      "models EWMA / Seasonal-naive)");
  table.columns({"heartbeat ms", "CBP+PP (ARIMA)", "Theil-Sen", "SGD", "MLP",
                 "EWMA*", "Seasonal*"});
  double arima_best = 0;
  SimTime arima_best_hb = 0;
  for (SimTime hb : heartbeats) {
    std::vector<double> row;
    for (int model = 0; model < 6; ++model) {
      const double acc = evaluate(model, hb, 99).accuracy_pct;
      row.push_back(acc);
      if (model == 0 && acc > arima_best) {
        arima_best = acc;
        arima_best_hb = hb;
      }
    }
    table.row(fmt(static_cast<double>(hb) / kMsec, 1), row, 1);
  }
  table.print(std::cout);
  std::cout << "\nARIMA peaks at heartbeat "
            << fmt(static_cast<double>(arima_best_hb) / kMsec, 1) << " ms with "
            << fmt(arima_best, 0)
            << "% accuracy (paper: 84% at 1 ms, dropping beyond), so the "
               "utilization aggregator queries every 1 ms.\n";
  session.record("arima_peak",
                 {{"accuracy_pct", arima_best},
                  {"heartbeat_ms", static_cast<double>(arima_best_hb) / kMsec}});
  return 0;
}
