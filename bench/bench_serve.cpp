// Serving load curves: tail latency (p50/p99/p999) and goodput vs offered
// load for the three synthetic arrival shapes (Poisson, diurnal,
// flash-crowd), plus the sustained-throughput figure the CI bench gate
// reads. Committed baseline lives in BENCH_serve.json.
//
//   --fast   trims the load sweep to the CI smoke points (the sustained
//            point and the lane gate always run)
//   --json   machine-readable BENCH_serve.json schema
//
// Like bench_scale, numbers only count after a determinism gate: the
// lanes=1 and lanes=4 runs of the sustained config must produce the same
// serve digest, or the bench exits non-zero before any row is read.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "serve/serving.hpp"

namespace {

using namespace knots;

/// The sustained-throughput config: the paper's ten-node cluster, Poisson
/// arrivals well past the harvested capacity, a 30 s window. Both the
/// committed baseline and the CI smoke run use exactly this point, so the
/// 80% gate compares like with like.
constexpr double kSustainedQps = 240.0;
constexpr SimTime kServeWindow = 30 * kSec;

serve::ServingConfig serve_config(double qps, serve::ArrivalShape shape,
                                  int lanes = 1) {
  serve::ServingConfig cfg = serve::default_serving(qps, shape);
  cfg.experiment = ExperimentConfig::Builder{}
                       .scheduler(sched::SchedulerKind::kPeakPrediction)
                       .lanes(lanes)
                       .build();
  cfg.window = kServeWindow;
  return cfg;
}

void record_point(bench::Session& session, serve::ArrivalShape shape,
                  double qps, const serve::ServingReport& r,
                  TablePrinter& table) {
  const std::size_t served = r.completed + r.degraded;
  const double shed_frac =
      r.offered > 0 ? static_cast<double>(r.shed) / r.offered : 0.0;
  table.row({std::string(serve::to_string(shape)), fmt(qps, 0),
             std::to_string(r.offered), std::to_string(served),
             fmt(r.achieved_qps, 1), fmt(100.0 * shed_frac, 1),
             fmt(r.latency.p50_ms, 1), fmt(r.latency.p99_ms, 1),
             fmt(r.latency.p999_ms, 1), std::to_string(r.scale_ups)});
  session.record(
      std::string(serve::to_string(shape)) + "_" + fmt(qps, 0) + "qps",
      {{"offered_qps", qps},
       {"offered", static_cast<double>(r.offered)},
       {"served", static_cast<double>(served)},
       {"achieved_qps", r.achieved_qps},
       {"shed_fraction", shed_frac},
       {"p50_ms", r.latency.p50_ms},
       {"p99_ms", r.latency.p99_ms},
       {"p999_ms", r.latency.p999_ms},
       {"slo_violations", static_cast<double>(r.slo_violations)},
       {"scale_ups", static_cast<double>(r.scale_ups)}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv, "serve");

  // Determinism gate first: the sustained config at lanes 1 vs 4 must
  // produce a bit-identical request log.
  const auto lane1 =
      serve::run_serving(serve_config(kSustainedQps, serve::ArrivalShape::kPoisson, 1));
  const auto lane4 =
      serve::run_serving(serve_config(kSustainedQps, serve::ArrivalShape::kPoisson, 4));
  if (lane1.serve_digest != lane4.serve_digest) {
    std::cerr << "bench_serve: lanes=4 serve digest diverged from lanes=1\n";
    return 1;
  }
  session.record("serve_lanes_digest_match",
                 {{"lanes", 4}, {"match", 1}});

  TablePrinter table("Serving load curves (10-node P100, PP scheduler, " +
                     std::to_string(kServeWindow / kSec) + " s window)");
  table.columns({"arrivals", "qps", "offered", "served", "goodput qps",
                 "shed %", "p50 ms", "p99 ms", "p999 ms", "scale-ups"});

  std::vector<double> loads = {30, 60, 120, kSustainedQps};
  if (session.fast()) loads = {60, kSustainedQps};

  for (const auto shape :
       {serve::ArrivalShape::kPoisson, serve::ArrivalShape::kDiurnal,
        serve::ArrivalShape::kFlashCrowd}) {
    for (const double qps : loads) {
      // Reuse the gate run for the sustained Poisson point.
      const serve::ServingReport r =
          (shape == serve::ArrivalShape::kPoisson && qps == kSustainedQps)
              ? lane1
              : serve::run_serving(serve_config(qps, shape));
      record_point(session, shape, qps, r, table);
    }
  }
  table.print(std::cout);

  // The headline figure: goodput the cluster sustains when offered well
  // past capacity. The CI gate compares this point against the committed
  // BENCH_serve.json at 80%.
  std::cout << "\nSustained throughput (Poisson @ " << fmt(kSustainedQps, 0)
            << " qps offered): " << fmt(lane1.achieved_qps, 1)
            << " qps served, p99 " << fmt(lane1.latency.p99_ms, 1) << " ms\n";
  session.record("sustained_throughput",
                 {{"offered_qps", kSustainedQps},
                  {"achieved_qps", lane1.achieved_qps},
                  {"p99_ms", lane1.latency.p99_ms},
                  {"p999_ms", lane1.latency.p999_ms}});
  return 0;
}
