// Figure 6: per-node 50/90/99th-percentile and maximum GPU utilization for
// the three Table I app mixes under the GPU-agnostic (Res-Ag) scheduler.
// Also prints Tables I–III (workload and testbed configuration).
#include <iostream>

#include "bench_common.hpp"
#include "workload/app_mix.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig06_resag_utilization");

  TablePrinter t1("Table I: cluster workload suite (load / COV bins)");
  t1.columns({"mix", "batch apps", "latency-critical", "Load", "COV"});
  for (const auto& mix : workload::all_app_mixes()) {
    std::string batch, lc;
    for (auto a : mix.batch_apps) {
      batch += std::string(workload::rodinia_name(a)) + " ";
    }
    for (auto s : mix.lc_services) {
      lc += std::string(workload::service_name(s)) + " ";
    }
    t1.row({mix.name, batch, lc, to_string(mix.load), to_string(mix.cov)});
  }
  t1.print(std::cout);

  const auto hw = hardware_config();
  const auto sw = software_config();
  TablePrinter t2("Tables II & III: testbed configuration (simulated)");
  t2.columns({"key", "value"});
  t2.row({"CPU", hw.cpu});
  t2.row({"Cores", std::to_string(hw.cores) + "x" +
                       std::to_string(hw.threads_per_core) + "(threads)"});
  t2.row({"DRAM", std::to_string(hw.dram_gb) + " GB"});
  t2.row({"GPU", hw.gpu});
  t2.row({"Kubernetes", sw.kubernetes});
  t2.row({"NvidiaDocker", sw.nvidia_docker});
  t2.row({"pyNVML", sw.pynvml});
  t2.row({"InFluxDB", sw.influxdb});
  t2.row({"CUDA", sw.cuda});
  t2.row({"Tensorflow", sw.tensorflow});
  t2.print(std::cout);

  for (int mix = 1; mix <= 3; ++mix) {
    const auto report = run_experiment(
        bench::bench_config(mix, sched::SchedulerKind::kResourceAgnostic));
    bench::print_per_gpu_percentiles(
        std::cout,
        "Fig 6" + std::string(1, static_cast<char>('a' + mix - 1)) +
            ": per-node GPU utilization %, Res-Ag, app-mix-" +
            std::to_string(mix),
        report);
    session.record("mix" + std::to_string(mix) + "_cluster",
                   {{"p50", report.cluster_wide.p50},
                    {"p99", report.cluster_wide.p99}});
  }
  return 0;
}
