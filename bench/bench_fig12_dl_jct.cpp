// Figure 12 + Table IV: deep-learning workload comparison on the 32-node ×
// 8-GPU trace-driven simulator — (a) JCT CDF of Tiresias / Res-Ag / Gandiva
// / CBP+PP, (b) DLI QoS violations per hour per mix, and the normalized JCT
// ratios of Table IV.
#include <iostream>

#include "bench_common.hpp"
#include "dlsim/dl_report.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig12_dl_jct");
  dlsim::DlClusterConfig cluster;
  dlsim::DlWorkloadConfig workload;  // 520 DLT + 1400 DLI, 12 h (§V-C)

  const auto results = dlsim::run_all_policies(cluster, workload);
  dlsim::print_dl_report(std::cout, results);
  for (const auto& r : results) {
    session.record(r.policy, {{"avg_jct_h", r.avg_jct_h},
                              {"violations_per_hour", r.violations_per_hour}});
  }

  // Fig 12a: JCT CDF series.
  const auto cdfs = dlsim::jct_cdfs(results, 16);
  std::vector<double> xs = cdfs[0].hours;
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (const auto& cdf : cdfs) series.emplace_back(cdf.policy, cdf.fraction);
  print_series(std::cout, "Fig 12a: fraction of jobs (%) vs JCT (hours)", xs,
               series, 2);

  // Fig 12b: DLI violations per hour per mix bin.
  TablePrinter fig12b("Fig 12b: DLI QoS violations per hour");
  fig12b.columns({"mix", "Res-Ag", "Gandiva", "Tiresias", "CBP+PP"});
  for (int mix = 1; mix <= 3; ++mix) {
    dlsim::DlWorkloadConfig wl = workload;
    wl.mix_id = mix;
    const auto mix_results = dlsim::run_all_policies(cluster, wl);
    fig12b.row(std::to_string(mix),
               {mix_results[0].violations_per_hour,
                mix_results[1].violations_per_hour,
                mix_results[2].violations_per_hour,
                mix_results[3].violations_per_hour},
               1);
  }
  fig12b.print(std::cout);
  std::cout << "\nPaper Table IV targets (normalized to CBP+PP): Res-Ag "
               "1.63/1.67/1.47, Gandiva 1.36/1.30/1.11, Tiresias "
               "1.07/1.11/0.91 (avg/median/99%).\n";
  return 0;
}
