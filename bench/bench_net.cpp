// Fabric microbenches: max-min fair-share solver throughput, fluid-flow
// engine event rate on a contended leaf-spine fabric, and the end-to-end
// overhead a live fabric adds to a cluster run. Committed baseline lives
// in BENCH_net.json.
//
//   --fast   shrinks the solver and flow-chain workloads to CI smoke sizes
//   --json   machine-readable BENCH_net.json schema
//
// Like bench_scale, numbers only count after a determinism gate: the
// contended cluster config at lanes 1 and lanes 4 must produce the same
// run digest, or the bench exits non-zero before any row is read.
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "net/fair_share.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace knots;

/// The contended cluster point: PP over an auto-derived leaf-spine fabric
/// with real 2 GB image pulls and a mid-run ToR uplink outage. Both the
/// lane gate and the committed flow-rate baseline use exactly this config.
ExperimentConfig contended_config(int nodes, SimTime window, int lanes) {
  fault::FaultPlan faults;
  faults.link_down("tor0-up", window / 3, window / 6);
  return ExperimentConfig::Builder{}
      .scheduler(sched::SchedulerKind::kPeakPrediction)
      .nodes(nodes)
      .duration(window)
      .seed(42)
      .lanes(lanes)
      .load_scale(nodes / 10.0)
      .auto_fabric()
      .image_mb(2048.0)
      .faults(std::move(faults))
      .build();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Solver throughput on a synthetic 64-node leaf-spine demand set: every
/// flow crosses a 5-link cross-ToR route, so each solve redistributes
/// hundreds of flows over shared ToR uplinks and one spine.
void bench_fair_share(bench::Session& session) {
  constexpr int kNodes = 64;
  constexpr int kNodesPerTor = 8;
  constexpr int kTors = kNodes / kNodesPerTor;
  // Canonical link layout: [0..63] node uplinks, [64..71] ToR uplinks,
  // [72] spine.
  const int spine = kNodes + kTors;
  std::vector<double> caps(static_cast<std::size_t>(spine) + 1, 1250.0);
  for (int t = 0; t < kTors; ++t) caps[static_cast<std::size_t>(kNodes + t)] = 5000.0;
  caps[static_cast<std::size_t>(spine)] = 40000.0;

  constexpr int kFlows = 512;
  Rng rng(0xBE9C0DEu);
  std::vector<net::FlowDemand> demands;
  demands.reserve(kFlows);
  for (int f = 0; f < kFlows; ++f) {
    const int src = static_cast<int>(rng.uniform_int(0, kNodes - 1));
    int dst = static_cast<int>(rng.uniform_int(0, kNodes - 1));
    if (dst == src) dst = (dst + 1) % kNodes;
    net::FlowDemand d;
    d.links = {src, kNodes + src / kNodesPerTor, spine,
               kNodes + dst / kNodesPerTor, dst};
    demands.push_back(std::move(d));
  }

  const int iters = session.fast() ? 200 : 2000;
  const auto t0 = std::chrono::steady_clock::now();
  double checksum = 0;
  for (int i = 0; i < iters; ++i) {
    const auto rates = net::fair_share(demands, caps);
    checksum += rates[0];
  }
  const double wall = seconds_since(t0);
  const double solves_per_sec = wall > 0 ? iters / wall : 0.0;
  std::cout << "fair_share: " << kFlows << " flows / "
            << caps.size() << " links, " << fmt(solves_per_sec, 0)
            << " solves/s (checksum " << fmt(checksum, 1) << ")\n";
  session.record("fair_share_solver",
                 {{"flows", kFlows},
                  {"links", static_cast<double>(caps.size())},
                  {"iters", static_cast<double>(iters)},
                  {"wall_seconds", wall},
                  {"solves_per_sec", solves_per_sec}});
}

/// Fluid-flow engine event rate: 64 concurrent cross-ToR transfers on a
/// 32-node fabric, each finish immediately starting the next, so every
/// completion triggers a full rate recomputation over the contended links.
void bench_flow_chain(bench::Session& session) {
  constexpr int kNodes = 32;
  const int total = session.fast() ? 5000 : 50000;
  net::Fabric fabric(net::FabricPlan::auto_derive(kNodes), kNodes);
  sim::Simulation sim;
  fabric.bind(&sim);

  Rng rng(0x5EEDF00Du);
  int started = 0;
  std::function<void(SimTime)> launch = [&](SimTime) {
    if (started >= total) return;
    ++started;
    const int src = static_cast<int>(rng.uniform_int(0, kNodes - 1));
    int dst = static_cast<int>(rng.uniform_int(0, kNodes - 1));
    if (dst == src) dst = (dst + 1) % kNodes;
    fabric.start_flow(net::FlowKind::kMigration, src, dst,
                      64.0 + 192.0 * rng.uniform(), launch);
  };
  constexpr int kConcurrent = 64;
  sim.schedule_at(0, [&] {
    for (int i = 0; i < kConcurrent; ++i) launch(0);
  });

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_all();
  const double wall = seconds_since(t0);
  const auto& stats = fabric.stats();
  const double flows_per_sec =
      wall > 0 ? static_cast<double>(stats.flows_finished) / wall : 0.0;
  std::cout << "flow chain: " << stats.flows_finished << " flows ("
            << fmt(stats.mb_transferred / 1024.0, 1) << " GB, "
            << stats.flows_contended << " contended), "
            << fmt(flows_per_sec, 0) << " flows/s\n";
  session.record("flow_chain",
                 {{"nodes", kNodes},
                  {"concurrent", kConcurrent},
                  {"flows", static_cast<double>(stats.flows_finished)},
                  {"contended", static_cast<double>(stats.flows_contended)},
                  {"mb_transferred", stats.mb_transferred},
                  {"wall_seconds", wall},
                  {"flows_per_sec", flows_per_sec}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv, "net");

  // Determinism gate first: the contended config at lanes 1 vs 4 must be
  // bit-identical before any throughput number counts.
  const int gate_nodes = 16;
  const SimTime gate_window = 60 * kSec;
  const auto lane1 = run_experiment(contended_config(gate_nodes, gate_window, 1));
  const auto lane4 = run_experiment(contended_config(gate_nodes, gate_window, 4));
  if (lane1.run_digest != lane4.run_digest) {
    std::cerr << "bench_net: lanes=4 run digest diverged from lanes=1\n";
    return 1;
  }
  session.record("net_lanes_digest_match",
                 {{"nodes", gate_nodes}, {"lanes", 4}, {"match", 1}});

  bench_fair_share(session);
  bench_flow_chain(session);

  // End-to-end: what does a live fabric cost a cluster run, and how fast
  // does the contended pipeline move image pulls? The flow rate is the
  // committed CI gate (BENCH_net.json, 80% floor).
  const int nodes = 100;
  const SimTime window = session.fast() ? 30 * kSec : 60 * kSec;
  const auto bare_cfg = ExperimentConfig::Builder{}
                            .scheduler(sched::SchedulerKind::kPeakPrediction)
                            .nodes(nodes)
                            .duration(window)
                            .seed(42)
                            .load_scale(nodes / 10.0)
                            .build();
  const auto t_bare = std::chrono::steady_clock::now();
  const auto bare = run_experiment(bare_cfg);
  const double bare_wall = seconds_since(t_bare);

  const auto t_fab = std::chrono::steady_clock::now();
  const auto fabric = run_experiment(contended_config(nodes, window, 1));
  const double fab_wall = seconds_since(t_fab);

  const double flows_per_sec =
      fab_wall > 0 ? static_cast<double>(fabric.flows_finished) / fab_wall
                   : 0.0;
  const double overhead_pct =
      bare_wall > 0 ? 100.0 * (fab_wall - bare_wall) / bare_wall : 0.0;

  TablePrinter table("Contended cluster run (100 nodes, PP, " +
                     std::to_string(window / kSec) + " s window)");
  table.columns({"config", "wall s", "flows", "contended", "GB moved",
                 "flows/s"});
  table.row({"bare", fmt(bare_wall, 3), "0", "0", "0", "-"});
  table.row({"auto fabric", fmt(fab_wall, 3),
             std::to_string(fabric.flows_finished),
             std::to_string(fabric.flows_contended),
             fmt(fabric.mb_transferred / 1024.0, 1), fmt(flows_per_sec, 0)});
  table.print(std::cout);
  std::cout << "fabric overhead vs bare run: " << fmt(overhead_pct, 1)
            << "%\n";

  session.record("contended_flow_rate",
                 {{"nodes", nodes},
                  {"window_s", static_cast<double>(window / kSec)},
                  {"flows_finished",
                   static_cast<double>(fabric.flows_finished)},
                  {"flows_contended",
                   static_cast<double>(fabric.flows_contended)},
                  {"mb_transferred", fabric.mb_transferred},
                  {"wall_seconds", fab_wall},
                  {"bare_wall_seconds", bare_wall},
                  {"overhead_pct", overhead_pct},
                  {"flows_per_sec", flows_per_sec}});
  return 0;
}
