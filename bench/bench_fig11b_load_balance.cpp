// Figure 11b: pairwise coefficient of variation of SM load across the ten
// GPUs under CBP+PP on the high-load mix — low values (< ~0.2) demonstrate
// load balancing compared with the 0.1–0.7 COV of the agnostic baseline.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig11b_load_balance");
  const auto report = run_experiment(
      bench::bench_config(1, sched::SchedulerKind::kPeakPrediction));

  TablePrinter table(
      "Fig 11b: pairwise COV of SM load, CBP+PP, app-mix-1 (upper triangle)");
  std::vector<std::string> header = {"GPU"};
  for (std::size_t j = 0; j < report.pairwise_load_cov.size(); ++j) {
    header.push_back(std::to_string(j + 1));
  }
  table.columns(header);
  double max_cov = 0;
  for (std::size_t i = 0; i < report.pairwise_load_cov.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (std::size_t j = 0; j < report.pairwise_load_cov.size(); ++j) {
      if (j <= i) {
        row.push_back("-");
      } else {
        const double c = report.pairwise_load_cov[i][j];
        max_cov = std::max(max_cov, c);
        row.push_back(fmt(c, 2));
      }
    }
    table.row(row);
  }
  table.print(std::cout);
  std::cout << "\nMax pairwise COV under CBP+PP: " << fmt(max_cov, 2)
            << " (paper: 0 to 0.2, vs 0.1-0.7 for the agnostic baseline in "
               "Fig 7a)\n";
  session.record("pairwise_cov", {{"max", max_cov}});
  return 0;
}
