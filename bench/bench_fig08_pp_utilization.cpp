// Figure 8: per-node utilization percentiles for the three app mixes under
// the Peak Prediction scheduler — consolidation leaves some nodes minimally
// used (deep-sleep) while the active ones run hot.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig08_pp_utilization");
  for (int mix = 1; mix <= 3; ++mix) {
    const auto report = run_experiment(
        bench::bench_config(mix, sched::SchedulerKind::kPeakPrediction));
    bench::print_per_gpu_percentiles(
        std::cout,
        "Fig 8" + std::string(1, static_cast<char>('a' + mix - 1)) +
            ": per-node GPU utilization %, Peak Prediction, app-mix-" +
            std::to_string(mix),
        report);
    int minimally_used = 0;
    for (const auto& u : report.per_gpu) {
      if (u.max < 5.0) ++minimally_used;
    }
    std::cout << "Nodes minimally used (consolidated away): "
              << minimally_used << "/10\n";
    session.record("mix" + std::to_string(mix),
                   {{"minimally_used_nodes", double(minimally_used)},
                    {"cluster_p50", report.cluster_wide.p50}});
  }
  return 0;
}
