// Figure 2: Alibaba trace analysis — (a) Spearman heat map of the eight
// latency-critical container metrics, (b) CDF of average/maximum CPU and
// memory utilization, (c) heat map of the six batch-task metrics.
#include <iostream>

#include "bench_common.hpp"
#include "core/percentile.hpp"
#include "workload/alibaba.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig02_trace_analysis");
  // Population sizes follow the paper's trace slice: 11 089 containers and
  // 12 951 batch jobs over 12 h.
  workload::AlibabaTrace lc_trace{Rng(42)};
  workload::AlibabaTrace batch_trace{Rng(43)};
  workload::AlibabaTrace container_trace{Rng(44)};

  const auto lc_cols = lc_trace.lc_metric_columns(11089);
  bench::print_heatmap(
      std::cout, "Fig 2a: Spearman correlation, latency-critical tasks",
      stats::spearman_matrix(workload::lc_metric_labels(), lc_cols));

  const auto batch_cols = batch_trace.batch_metric_columns(12951);
  bench::print_heatmap(
      std::cout, "Fig 2c: Spearman correlation, batch tasks",
      stats::spearman_matrix(workload::batch_metric_labels(), batch_cols));

  std::vector<double> cpu_avg, cpu_max, mem_avg, mem_max;
  for (int i = 0; i < 11089; ++i) {
    const auto c = container_trace.sample_container();
    cpu_avg.push_back(100 * c.cpu_avg);
    cpu_max.push_back(100 * c.cpu_max);
    mem_avg.push_back(100 * c.mem_avg);
    mem_max.push_back(100 * c.mem_max);
  }
  TablePrinter cdf("Fig 2b: CDF of container core/memory utilization %");
  cdf.columns({"CDF", "avg CPU", "max CPU", "avg Mem", "max Mem"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    cdf.row("P" + fmt(p, 0),
            {percentile(cpu_avg, p), percentile(cpu_max, p),
             percentile(mem_avg, p), percentile(mem_max, p)},
            1);
  }
  cdf.print(std::cout);

  OnlineStats cpu_stats, mem_stats;
  for (double v : cpu_avg) cpu_stats.add(v);
  for (double v : mem_avg) mem_stats.add(v);
  std::cout << "\nMean average CPU utilization: " << fmt(cpu_stats.mean(), 1)
            << "% (paper: ~47%)\nMean average memory utilization: "
            << fmt(mem_stats.mean(), 1) << "% (paper: ~76%)\n";
  session.record("container_means", {{"cpu_avg_pct", cpu_stats.mean()},
                                     {"mem_avg_pct", mem_stats.mean()}});
  return 0;
}
