// Figure 7: coefficient of variation of per-node GPU utilization across the
// three app mixes under the GPU-agnostic scheduler (mixes 1-2 < 1, mix 3 > 1).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  bench::Session session(argc, argv, "fig07_cov");
  for (int mix = 1; mix <= 3; ++mix) {
    const auto report = run_experiment(
        bench::bench_config(mix, sched::SchedulerKind::kResourceAgnostic));
    auto cov = report.per_gpu_cov;
    std::sort(cov.begin(), cov.end());
    TablePrinter table("Fig 7: COV across GPU nodes (sorted), app-mix-" +
                       std::to_string(mix));
    table.columns({"GPU node (sorted)", "COV", "bar"});
    for (std::size_t g = 0; g < cov.size(); ++g) {
      table.row({std::to_string(g + 1), fmt(cov[g], 2),
                 ascii_bar(cov[g], 2.0, 30)});
    }
    table.print(std::cout);
    const double max_cov = cov.empty() ? 0 : cov.back();
    std::cout << "max COV = " << fmt(max_cov, 2)
              << (max_cov > 1.0 ? "  -> heavy-tailed (COV > 1)"
                                : "  -> steady (COV < 1)")
              << "\n";
    session.record("mix" + std::to_string(mix), {{"max_cov", max_cov}});
  }
  std::cout << "\nPaper shape: mixes 1-2 stay below 1, the sporadic mix 3 "
               "exceeds 1 on its busiest nodes.\n";
  return 0;
}
