// Telemetry hot-path microbenchmarks + end-to-end sweep throughput.
//
// This is the perf trajectory recorder for the PR-2 optimisation work: it
// times the telemetry→scheduler primitives both the *naive* way (the
// pre-optimisation recompute-per-query code shape: vector materialization,
// copy + full sort per percentile) and the *fast* way (zero-copy views,
// write-maintained rolling accumulators, per-tick aggregate caches), counts
// heap allocations via a replaced operator new, and finishes with the
// 10-node four-scheduler sweep measured in ticks/sec.
//
//   bench_micro_telemetry --json BENCH_perf.json   # machine-readable output
//   bench_micro_telemetry --fast                   # CI smoke sizing
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_common.hpp"
#include "core/percentile.hpp"
#include "core/rng.hpp"
#include "stats/rolling.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/timeseries_db.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Allocation observability: every heap allocation in this binary bumps the
// counter, so each benchmark can report allocs/op alongside ns/op.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace knots;

struct Measurement {
  double ns_per_op = 0;
  double allocs_per_op = 0;
};

/// Times `op` over `iters` iterations and reports ns/op + allocs/op.
template <typename F>
Measurement measure(std::size_t iters, F&& op) {
  // Warmup lets scratch buffers and caches reach steady state — the
  // steady-state allocation count is the claim being verified.
  for (std::size_t i = 0; i < std::min<std::size_t>(iters, 100); ++i) op(i);
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) op(i);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  Measurement m;
  m.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(iters);
  m.allocs_per_op = static_cast<double>(allocs1 - allocs0) /
                    static_cast<double>(iters);
  return m;
}

std::vector<std::pair<std::string, double>> as_metrics(const Measurement& m) {
  return {{"ns_per_op", m.ns_per_op}, {"allocs_per_op", m.allocs_per_op}};
}

constexpr std::size_t kWindow = 512;  ///< Samples per scheduler window.

telemetry::TimeSeriesDb prefilled_db(std::size_t samples) {
  telemetry::TimeSeriesDb db;
  Rng rng(7);
  for (std::size_t t = 0; t < samples; ++t) {
    db.write(GpuId{0}, telemetry::Metric::kMemUtil,
             {static_cast<SimTime>(t), rng.uniform()});
  }
  return db;
}

/// The pre-PR2 query shape: materialize the window into a fresh vector,
/// then one copy + full sort per percentile.
double naive_window_percentiles(const telemetry::TimeSeriesDb& db,
                                SimTime since) {
  const auto window =
      db.query_window(GpuId{0}, telemetry::Metric::kMemUtil, since);
  auto copy_a = window;
  std::sort(copy_a.begin(), copy_a.end());
  const double p50 = percentile_sorted(copy_a, 50.0);
  auto copy_b = window;
  std::sort(copy_b.begin(), copy_b.end());
  const double p99 = percentile_sorted(copy_b, 99.0);
  return p50 + p99;
}

void bench_telemetry_micro(bench::Session& session, std::size_t iters) {
  // -- Ingest --
  {
    telemetry::TimeSeriesDb db;
    SimTime t = 0;
    const auto m = measure(iters, [&](std::size_t) {
      db.write(GpuId{0}, telemetry::Metric::kSmUtil, {t++, 0.5});
    });
    session.record("tsdb_ingest", as_metrics(m));
  }
  {
    telemetry::TimeSeriesDb db(/*retention=*/65536, /*stats_window=*/kWindow);
    SimTime t = 0;
    const auto m = measure(iters, [&](std::size_t) {
      db.write(GpuId{0}, telemetry::Metric::kSmUtil, {t++, 0.5});
    });
    session.record("tsdb_ingest_live_stats", as_metrics(m));
  }

  // -- Window materialization: vector query vs zero-copy view --
  {
    const auto db = prefilled_db(4 * kWindow);
    const auto since = static_cast<SimTime>(3 * kWindow);
    double sink = 0;
    const auto vec = measure(iters, [&](std::size_t) {
      sink += db.query_window(GpuId{0}, telemetry::Metric::kMemUtil, since)
                  .size();
    });
    const auto view = measure(iters, [&](std::size_t) {
      sink += db.window_view(GpuId{0}, telemetry::Metric::kMemUtil, since)
                  .size();
    });
    if (sink < 0) std::cout << sink;  // defeat dead-code elimination
    session.record("window_query_vector", as_metrics(vec));
    session.record("window_query_view", as_metrics(view));
  }

  // -- The headline: per-tick window percentiles, naive vs incremental --
  // Op = ingest one sample, then read the window's p50 and p99 (what a
  // utilization-aware scheduler does per GPU per tick).
  double naive_ns = 0, fast_ns = 0;
  {
    telemetry::TimeSeriesDb db = prefilled_db(kWindow);
    SimTime t = kWindow;
    double sink = 0;
    const auto m = measure(iters, [&](std::size_t) {
      db.write(GpuId{0}, telemetry::Metric::kMemUtil,
               {t, 0.25 + 0.5 * static_cast<double>(t % 7) / 7.0});
      sink += naive_window_percentiles(db, t - static_cast<SimTime>(kWindow));
      ++t;
    });
    if (sink < 0) std::cout << sink;
    naive_ns = m.ns_per_op;
    session.record("window_percentile_naive", as_metrics(m));
  }
  {
    stats::RollingQuantile q(kWindow);
    Rng rng(7);
    for (std::size_t i = 0; i < kWindow; ++i) q.push(rng.uniform());
    SimTime t = kWindow;
    double sink = 0;
    const auto m = measure(iters, [&](std::size_t) {
      q.push(0.25 + 0.5 * static_cast<double>(t % 7) / 7.0);
      sink += q.quantile(50.0) + q.quantile(99.0);
      ++t;
    });
    if (sink < 0) std::cout << sink;
    fast_ns = m.ns_per_op;
    session.record("window_percentile_incremental", as_metrics(m));
  }
  {
    // Cached aggregate: queries between writes hit the per-tick cache.
    auto db = prefilled_db(4 * kWindow);
    const auto since = static_cast<SimTime>(3 * kWindow);
    double sink = 0;
    const auto m = measure(iters, [&](std::size_t) {
      const auto& agg =
          db.window_stats(GpuId{0}, telemetry::Metric::kMemUtil, since);
      sink += agg.p50 + agg.p99;
    });
    if (sink < 0) std::cout << sink;
    session.record("window_stats_cached", as_metrics(m));
  }
  const double speedup = fast_ns > 0 ? naive_ns / fast_ns : 0.0;
  session.record("window_percentile_speedup", {{"x", speedup}});
  std::cout << "window percentile (W=" << kWindow << "): naive "
            << fmt(naive_ns, 0) << " ns/op, incremental " << fmt(fast_ns, 0)
            << " ns/op -> " << fmt(speedup, 1) << "x\n";

  // -- Single-percentile selection vs full sort --
  {
    Rng rng(11);
    std::vector<double> data(4096);
    for (auto& v : data) v = rng.uniform();
    double sink = 0;
    const auto select = measure(iters, [&](std::size_t) {
      sink += percentile(data, 99.0);
    });
    const auto fullsort = measure(iters, [&](std::size_t) {
      auto copy = data;
      std::sort(copy.begin(), copy.end());
      sink += percentile_sorted(copy, 99.0);
    });
    if (sink < 0) std::cout << sink;
    session.record("percentile_select_4096", as_metrics(select));
    session.record("percentile_fullsort_4096", as_metrics(fullsort));
  }
}

void bench_sweep_e2e(bench::Session& session, bool fast) {
  const std::vector<sched::SchedulerKind> kinds = {
      sched::SchedulerKind::kUniform,
      sched::SchedulerKind::kResourceAgnostic, sched::SchedulerKind::kCbp,
      sched::SchedulerKind::kPeakPrediction};
  ExperimentConfig base = bench::bench_config(1, kinds[0]);
  base.workload.duration = (fast ? 30 : 120) * kSec;
  SweepGrid grid;
  grid.schedulers = kinds;
  grid.seeds = {42, 43};
  grid.load_scales = {1.0};

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = run_sweep(base, grid);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t ticks = 0;
  for (const auto& r : results) ticks += r.report.ticks;
  const double ticks_per_sec = static_cast<double>(ticks) / wall;
  session.record("e2e_sweep_10node",
                 {{"runs", static_cast<double>(results.size())},
                  {"ticks", static_cast<double>(ticks)},
                  {"wall_seconds", wall},
                  {"ticks_per_sec", ticks_per_sec},
                  {"ns_per_tick", 1e9 * wall / static_cast<double>(ticks)}});
  std::cout << "e2e sweep: " << results.size() << " runs, " << ticks
            << " ticks in " << fmt(wall, 2) << " s -> "
            << fmt(ticks_per_sec, 0) << " ticks/sec\n";
}

}  // namespace

int main(int argc, char** argv) {
  knots::bench::Session session(argc, argv, "micro_telemetry");
  const std::size_t iters = session.fast() ? 2000 : 20000;
  bench_telemetry_micro(session, iters);
  bench_sweep_e2e(session, session.fast());
  return 0;
}
