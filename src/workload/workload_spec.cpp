#include "workload/workload_spec.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/check.hpp"

namespace knots::workload {

PodSpec BatchJobSpec::build() const {
  KNOTS_CHECK(time_scale_ > 0.0);
  KNOTS_CHECK(cycles_ >= 1);
  KNOTS_CHECK(headroom_ >= 1.0);
  PodSpec pod;
  pod.app = std::string(rodinia_name(app_));
  pod.klass = PodClass::kBatch;
  pod.arrival = arrival_;
  pod.profile = rodinia_profile(app_).time_scaled(time_scale_)
                    .with_cycles(cycles_);
  pod.requested_mb =
      std::min(cap_mb_, pod.profile.peak_memory_mb() * headroom_);
  pod.tenant = tenant_;
  return pod;
}

SimTime ServiceSpec::effective_qos() const {
  if (qos_exact_) return *qos_exact_;
  // §V-B floor: heavyweight batched queries (imc@128 runs ~400 ms
  // uncontended) get a proportional SLO rather than an unmeetable one.
  const SimTime uncontended = inference_latency(service_, batch_);
  return std::max(qos_budget_, 3 * uncontended / 2 + 30 * kMsec);
}

PodSpec ServiceSpec::build() const {
  KNOTS_CHECK(batch_ >= 1);
  PodSpec pod;
  pod.app = std::string(service_name(service_));
  pod.klass = PodClass::kLatencyCritical;
  pod.arrival = arrival_;
  pod.batch_size = batch_;
  pod.profile = inference_profile(service_, batch_);
  if (tf_device_mb_) {
    pod.requested_mb = tf_managed_memory_mb(*tf_device_mb_);
    pod.tf_greedy = true;
  } else {
    pod.requested_mb = inference_memory_mb(service_, batch_) * headroom_;
  }
  pod.qos_latency = effective_qos();
  pod.tenant = tenant_;
  pod.avoid_preemptible = avoid_preemptible_;
  return pod;
}

PodSpec ServiceSpec::replica(SimTime lifetime) const {
  KNOTS_CHECK(batch_ >= 1);
  KNOTS_CHECK(lifetime > 0);
  PodSpec pod;
  pod.app = std::string(service_name(service_)) + "-replica";
  pod.klass = PodClass::kService;
  pod.arrival = arrival_;
  pod.batch_size = batch_;
  // Steady state: back-to-back batches at the configured batch size for the
  // whole lifetime (tx burst -> compute -> rx, repeating).
  const AppProfile one_batch = inference_profile(service_, batch_);
  const SimTime cycle = std::max<SimTime>(one_batch.total_duration(), 1);
  const int cycles =
      static_cast<int>(std::max<SimTime>(1, (lifetime + cycle - 1) / cycle));
  pod.profile = one_batch.with_cycles(cycles);
  if (tf_device_mb_) {
    pod.requested_mb = tf_managed_memory_mb(*tf_device_mb_);
    pod.tf_greedy = true;
  } else {
    // Replicas are Knots-right-sized: warm-model footprint plus headroom.
    pod.requested_mb = pod.profile.peak_memory_mb() * headroom_;
  }
  pod.qos_latency = effective_qos();
  pod.tenant = tenant_;
  pod.avoid_preemptible = avoid_preemptible_;
  return pod;
}

WorkloadSpec& WorkloadSpec::add(PodSpec pod) {
  pods_.push_back(std::move(pod));
  return *this;
}

WorkloadSpec& WorkloadSpec::stream(const ArrivalProcess& process,
                                   SimTime duration, Rng rng,
                                   const PodFactory& factory) {
  for (SimTime t : process.generate(duration, rng)) {
    PodSpec pod = factory(t);
    pod.arrival = t;  // The stream owns arrival times.
    pods_.push_back(std::move(pod));
  }
  return *this;
}

std::vector<PodSpec> WorkloadSpec::build() {
  std::stable_sort(pods_.begin(), pods_.end(),
                   [](const PodSpec& a, const PodSpec& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    pods_[i].id = PodId{static_cast<std::int32_t>(i)};
  }
  return std::move(pods_);
}

}  // namespace knots::workload
