#include "workload/app_mix.hpp"

#include "core/check.hpp"

namespace knots::workload {

AppMix app_mix(int id) {
  switch (id) {
    case 1:
      return AppMix{
          1,
          "app-mix-1",
          {RodiniaApp::kLeukocyte, RodiniaApp::kHeartwall,
           RodiniaApp::kParticleFilter, RodiniaApp::kMummerGpu},
          {Service::kFace, Service::kKey},
          LoadLevel::kHigh,
          CovLevel::kLow,
      };
    case 2:
      return AppMix{
          2,
          "app-mix-2",
          {RodiniaApp::kPathfinder, RodiniaApp::kLud, RodiniaApp::kKmeans,
           RodiniaApp::kStreamCluster},
          {Service::kChk, Service::kNer, Service::kPos},
          LoadLevel::kMedium,
          CovLevel::kMedium,
      };
    case 3:
      return AppMix{
          3,
          "app-mix-3",
          {RodiniaApp::kParticleFilter, RodiniaApp::kStreamCluster,
           RodiniaApp::kLud, RodiniaApp::kMyocyte},
          {Service::kImc, Service::kFace},
          LoadLevel::kLow,
          CovLevel::kHigh,
      };
    default:
      KNOTS_CHECK_MSG(false, "app mix id must be 1, 2 or 3");
      return AppMix{};
  }
}

std::vector<AppMix> all_app_mixes() {
  return {app_mix(1), app_mix(2), app_mix(3)};
}

std::string to_string(LoadLevel l) {
  switch (l) {
    case LoadLevel::kLow: return "LOW";
    case LoadLevel::kMedium: return "MED";
    case LoadLevel::kHigh: return "HIGH";
  }
  return "?";
}

std::string to_string(CovLevel c) {
  switch (c) {
    case CovLevel::kLow: return "LOW";
    case CovLevel::kMedium: return "MED";
    case CovLevel::kHigh: return "HIGH";
  }
  return "?";
}

}  // namespace knots::workload
