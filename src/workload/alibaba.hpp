// Alibaba-2017-style cluster trace generator.
//
// The paper mines the open Alibaba CPU trace (1 313 machines, 12 951 batch
// jobs, 11 089 containers over 12 h) for three facts it then builds on:
//  (1) requests are overcommitted — average CPU utilization ~47 %, average
//      memory utilization ~76 %, half of the pods use <45 % of provisioned
//      memory (Fig 2b, Observation 2);
//  (2) batch tasks' utilization metrics are strongly correlated (core↔memory
//      positive, core↔load_1/5/15 positive), latency-critical tasks' are not
//      (Fig 2a vs 2c, Observation 3);
//  (3) arrivals follow a Pareto 80/20 split — 80 % short-lived tasks, 20 %
//      long-running batch — with diurnal intensity (§III).
// The real trace is not redistributable here, so this module generates a
// synthetic trace with exactly those marginals; every consumer in the paper
// (Fig 2 and the load generator's arrival process) reads only them.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace knots::workload {

/// Per-container lifetime statistics (utilizations as fractions of request).
struct ContainerStats {
  bool batch = false;
  double cpu_avg = 0, cpu_max = 0;
  double mem_avg = 0, mem_max = 0;
};

/// One task's time-averaged utilization metrics (for the heatmaps).
struct LcMetrics {
  double cpu_util, mem_util, net_in, net_out, disk_io, load_1, load_5, load_15;
};
struct BatchMetrics {
  double core_util, mem_util, net_in, load_1, load_5, load_15;
};

std::vector<std::string> lc_metric_labels();    // 8 labels (Fig 2a).
std::vector<std::string> batch_metric_labels(); // 6 labels (Fig 2c).

class AlibabaTrace {
 public:
  explicit AlibabaTrace(Rng rng) : rng_(rng) {}

  /// Per-container lifetime utilization sample (Fig 2b population).
  ContainerStats sample_container();

  /// One latency-critical task's metric vector — weakly/inconsistently
  /// correlated (short-lived tasks, Fig 2a).
  LcMetrics sample_lc_metrics();

  /// One batch task's metric vector — strong core↔memory and core↔load
  /// correlation (Fig 2c).
  BatchMetrics sample_batch_metrics();

  /// Metric columns for a Spearman matrix: columns[i][k] = metric i of task k.
  std::vector<std::vector<double>> lc_metric_columns(std::size_t tasks);
  std::vector<std::vector<double>> batch_metric_columns(std::size_t tasks);

  /// Task arrival times over `duration` with the given mean inter-arrival;
  /// diurnal intensity modulation (two peaks per 24 h scaled into the
  /// window) and `burstiness` >= 0 controlling inter-arrival COV
  /// (0 = Poisson; larger = heavier log-normal bursts).
  std::vector<SimTime> arrivals(SimTime duration, SimTime mean_interarrival,
                                double burstiness = 0.5, bool diurnal = true);

  /// Pareto-principle task-class split: true = long-running batch (20 %).
  bool next_is_batch() { return rng_.chance(0.20); }

 private:
  Rng rng_;
};

}  // namespace knots::workload
