// Synthetic profiles of the Rodinia HPC suite (the paper's batch workloads).
//
// Shapes are calibrated to the paper's single-P100 characterization (Fig 3 /
// §IV-C): a PCIe input burst leads each compute/memory peak; resource
// consumption is low and highly varying; applications touch their peak
// footprint for only a few percent of the runtime (SM median-to-peak ~90×,
// bandwidth ~400× across the suite). Base cycles are sub-second, as in the
// paper's characterization; cluster runs scale them up to batch-job lengths.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "workload/app_profile.hpp"

namespace knots::workload {

enum class RodiniaApp : int {
  kLeukocyte = 0,
  kHeartwall,
  kParticleFilter,
  kMummerGpu,
  kPathfinder,
  kLud,
  kKmeans,
  kStreamCluster,
  kMyocyte,
};

inline constexpr std::array<RodiniaApp, 9> kAllRodinia = {
    RodiniaApp::kLeukocyte,     RodiniaApp::kHeartwall,
    RodiniaApp::kParticleFilter, RodiniaApp::kMummerGpu,
    RodiniaApp::kPathfinder,    RodiniaApp::kLud,
    RodiniaApp::kKmeans,        RodiniaApp::kStreamCluster,
    RodiniaApp::kMyocyte,
};

/// The eight apps run sequentially in the Fig 3 characterization.
inline constexpr std::array<RodiniaApp, 8> kFig3Suite = {
    RodiniaApp::kLeukocyte,     RodiniaApp::kHeartwall,
    RodiniaApp::kParticleFilter, RodiniaApp::kMummerGpu,
    RodiniaApp::kPathfinder,    RodiniaApp::kLud,
    RodiniaApp::kKmeans,        RodiniaApp::kStreamCluster,
};

std::string_view rodinia_name(RodiniaApp app) noexcept;
RodiniaApp rodinia_from_name(std::string_view name);

/// One characterization cycle of the app (sub-second, Fig 3 scale).
AppProfile rodinia_profile(RodiniaApp app);

/// All nine profiles.
std::vector<AppProfile> all_rodinia_profiles();

}  // namespace knots::workload
