#include "workload/alibaba.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace knots::workload {

namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
}  // namespace

std::vector<std::string> lc_metric_labels() {
  return {"cpu_util", "mem_util", "net_in",  "net_out",
          "disk_io",  "load_1",   "load_5",  "load_15"};
}

std::vector<std::string> batch_metric_labels() {
  return {"core_util", "mem_util", "net_in", "load_1", "load_5", "load_15"};
}

ContainerStats AlibabaTrace::sample_container() {
  ContainerStats c;
  c.batch = next_is_batch();
  // Average CPU utilization centres at ~47 % of request, memory at ~76 %
  // (Fig 2b). Batch tasks are slightly busier and less variable.
  const double cpu_mu = c.batch ? 0.52 : 0.45;
  const double mem_mu = c.batch ? 0.78 : 0.75;
  c.cpu_avg = clamp01(rng_.normal(cpu_mu, 0.18));
  c.mem_avg = clamp01(rng_.normal(mem_mu, 0.14));
  // Maxima sit above averages with a heavy-ish tail but below the request
  // ceiling most of the time (max mem rarely exceeds 80 % of provisioned).
  c.cpu_max = clamp01(c.cpu_avg + rng_.pareto(2.5, 0.05, 0.60));
  c.mem_max = clamp01(c.mem_avg + rng_.pareto(3.0, 0.02, 0.25));
  return c;
}

LcMetrics AlibabaTrace::sample_lc_metrics() {
  // Latency-critical tasks are short-lived: their per-task averages are
  // dominated by request noise, so metrics de-correlate (Fig 2a). A faint
  // shared "request intensity" factor keeps tiny residual structure.
  const double f = rng_.uniform(0.0, 0.3);
  LcMetrics m;
  m.cpu_util = clamp01(0.15 * f + rng_.uniform(0.05, 0.85));
  m.mem_util = clamp01(0.10 * f + rng_.uniform(0.30, 0.95));
  m.net_in = 0.2 * f + rng_.lognormal(0.0, 0.8);
  m.net_out = 0.1 * f + rng_.lognormal(-0.2, 0.9);
  m.disk_io = rng_.lognormal(-0.5, 1.0);
  m.load_1 = clamp01(0.2 * m.cpu_util + rng_.uniform(0.0, 0.8));
  m.load_5 = clamp01(0.1 * m.load_1 + rng_.uniform(0.0, 0.8));
  m.load_15 = clamp01(rng_.uniform(0.0, 0.8));
  return m;
}

BatchMetrics AlibabaTrace::sample_batch_metrics() {
  // Long-running batch tasks: a strong latent work-intensity factor drives
  // core, memory and the 1/5/15-second load averages together (Fig 2c).
  const double work = rng_.uniform(0.15, 0.95);
  BatchMetrics m;
  m.core_util = clamp01(work + rng_.normal(0.0, 0.06));
  m.mem_util = clamp01(0.15 + 0.75 * work + rng_.normal(0.0, 0.07));
  // Network correlates negatively: I/O-bound phases starve compute.
  m.net_in = std::max(0.0, 1.2 - work + rng_.normal(0.0, 0.15));
  m.load_1 = clamp01(work + rng_.normal(0.0, 0.05));
  m.load_5 = clamp01(work + rng_.normal(0.0, 0.08));
  m.load_15 = clamp01(work + rng_.normal(0.0, 0.11));
  return m;
}

std::vector<std::vector<double>> AlibabaTrace::lc_metric_columns(
    std::size_t tasks) {
  std::vector<std::vector<double>> cols(8, std::vector<double>());
  for (auto& c : cols) c.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    const LcMetrics m = sample_lc_metrics();
    const double vals[8] = {m.cpu_util, m.mem_util, m.net_in,  m.net_out,
                            m.disk_io,  m.load_1,   m.load_5,  m.load_15};
    for (std::size_t j = 0; j < 8; ++j) cols[j].push_back(vals[j]);
  }
  return cols;
}

std::vector<std::vector<double>> AlibabaTrace::batch_metric_columns(
    std::size_t tasks) {
  std::vector<std::vector<double>> cols(6, std::vector<double>());
  for (auto& c : cols) c.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    const BatchMetrics m = sample_batch_metrics();
    const double vals[6] = {m.core_util, m.mem_util, m.net_in,
                            m.load_1,    m.load_5,   m.load_15};
    for (std::size_t j = 0; j < 6; ++j) cols[j].push_back(vals[j]);
  }
  return cols;
}

std::vector<SimTime> AlibabaTrace::arrivals(SimTime duration,
                                            SimTime mean_interarrival,
                                            double burstiness, bool diurnal) {
  std::vector<SimTime> out;
  SimTime t = 0;
  const double mean_us = static_cast<double>(mean_interarrival);
  // Log-normal inter-arrivals with the requested mean; sigma sets the COV.
  const double sigma = std::sqrt(std::log1p(burstiness * burstiness));
  const double mu = std::log(mean_us) - 0.5 * sigma * sigma;
  while (true) {
    double gap = burstiness > 0 ? rng_.lognormal(mu, sigma)
                                : rng_.exponential(mean_us);
    if (diurnal) {
      // Two-peak diurnal envelope mapped onto the window: intensity in
      // [0.6, 1.4] → divide gaps by it.
      const double phase = static_cast<double>(t) /
                           static_cast<double>(std::max<SimTime>(duration, 1));
      const double intensity =
          1.0 + 0.4 * std::sin(2.0 * std::numbers::pi * 2.0 * phase);
      gap /= intensity;
    }
    t += std::max<SimTime>(1, static_cast<SimTime>(gap));
    if (t >= duration) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace knots::workload
