// Pod specifications and the cluster load generator.
//
// The generator mirrors §III: task arrivals follow the Alibaba inter-arrival
// pattern (log-normal bursts + diurnal envelope), the batch/LC split follows
// the Pareto principle, batch jobs are scaled-up Rodinia profiles, and
// latency-critical pods are single batched inference queries with a 150 ms
// end-to-end QoS target ("the tail at scale").
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "gpu/device_model.hpp"
#include "workload/alibaba.hpp"
#include "workload/app_mix.hpp"
#include "workload/app_profile.hpp"

namespace knots::workload {

enum class PodClass {
  kBatch,            ///< Best-effort harvest job (Rodinia).
  kLatencyCritical,  ///< One user-facing inference query with a deadline.
  kService,          ///< Long-running serving replica managed by knots::serve.
};

/// Everything the orchestrator knows about a pod when it arrives.
struct PodSpec {
  PodId id{};
  std::string app;            ///< Image name (rodinia app / inference service).
  PodClass klass = PodClass::kBatch;
  SimTime arrival = 0;
  AppProfile profile;         ///< Ground-truth usage trace (the pod runs this).
  double requested_mb = 0;    ///< User-declared memory request (overstated).
  SimTime qos_latency = 0;    ///< LC only: end-to-end deadline (150 ms).
  int batch_size = 1;         ///< LC only: inference batch size.
  /// TensorFlow default allocator: the pod greedily earmarks ~99 % of
  /// whatever its container allocation permits, regardless of footprint
  /// (Fig 4's TF series). Knots-style resizing shrinks the allocation and
  /// thereby the earmark; GPU-agnostic schedulers leave it whole-device.
  bool tf_greedy = false;
  /// Owning tenant for quota accounting (0 = the default tenant; a cluster
  /// with no quotas and only tenant 0 keeps the ledger inactive).
  int tenant = 0;
  /// Keep this pod off spot/preemptible nodes (SLO-bearing serving replicas
  /// set it; harvested best-effort work leaves it false). Honored by
  /// spot-aware schedulers as a hard placement constraint.
  bool avoid_preemptible = false;
};

struct LoadGenConfig {
  SimTime duration = 600 * kSec;  ///< Arrival window.
  double device_memory_mb = gpu::default_device_model().gpu.memory_mb;
  /// Global intensity knobs (1.0 = paper-calibrated defaults for a
  /// ten-node single-GPU cluster).
  double batch_rate_scale = 1.0;
  double lc_rate_scale = 1.0;
  /// Batch-job length scaling range (characterization cycle → job).
  double min_time_scale = 20.0;
  double max_time_scale = 45.0;
  int min_cycles = 3;
  int max_cycles = 8;
  /// Users overstate requests by this factor range (Observation 2).
  double min_overstatement = 1.3;
  double max_overstatement = 2.1;
  SimTime qos_latency = 150 * kMsec;
  /// Multi-tenant scenarios: generated pods are assigned these tenant ids
  /// round-robin in arrival order. Empty = everything on tenant 0 (the
  /// single-tenant default).
  std::vector<int> tenants{};
};

/// Mean batch-pod inter-arrival for a load level (before rate_scale).
SimTime batch_interarrival(LoadLevel level);
/// Mean LC-query inter-arrival for a load level (before rate_scale).
SimTime lc_interarrival(LoadLevel level);
/// Arrival burstiness for a COV level.
double arrival_burstiness(CovLevel level);

/// Generates the pod arrival stream for one app mix, sorted by arrival time.
std::vector<PodSpec> generate_workload(const AppMix& mix,
                                       const LoadGenConfig& config, Rng rng);

}  // namespace knots::workload
