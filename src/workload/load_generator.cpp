#include "workload/load_generator.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "workload/arrival.hpp"
#include "workload/djinn_tonic.hpp"
#include "workload/workload_spec.hpp"

namespace knots::workload {

SimTime batch_interarrival(LoadLevel level) {
  switch (level) {
    case LoadLevel::kHigh: return 7 * kSec;
    case LoadLevel::kMedium: return 9 * kSec;
    case LoadLevel::kLow: return 22 * kSec;
  }
  return 9 * kSec;
}

SimTime lc_interarrival(LoadLevel level) {
  switch (level) {
    case LoadLevel::kHigh: return 110 * kMsec;
    case LoadLevel::kMedium: return 300 * kMsec;
    case LoadLevel::kLow: return 850 * kMsec;
  }
  return 300 * kMsec;
}

double arrival_burstiness(CovLevel level) {
  switch (level) {
    case CovLevel::kLow: return 0.3;
    case CovLevel::kMedium: return 0.9;
    case CovLevel::kHigh: return 2.2;
  }
  return 0.9;
}

namespace {

PodSpec make_batch_pod(const AppMix& mix, const LoadGenConfig& cfg,
                       SimTime arrival, Rng& rng) {
  const RodiniaApp app = mix.batch_apps[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(mix.batch_apps.size()) - 1))];
  const double scale = rng.uniform(cfg.min_time_scale, cfg.max_time_scale);
  const int cycles = static_cast<int>(
      rng.uniform_int(cfg.min_cycles, cfg.max_cycles));
  // Users overstate requests by a sampled factor (Observation 2).
  const double overstate =
      rng.uniform(cfg.min_overstatement, cfg.max_overstatement);
  return BatchJobSpec(app)
      .time_scale(scale)
      .cycles(cycles)
      .memory_headroom(overstate)
      .cap_device_mb(cfg.device_memory_mb)
      .arrival(arrival)
      .build();
}

PodSpec make_lc_pod(const AppMix& mix, const LoadGenConfig& cfg,
                    SimTime arrival, Rng& rng) {
  const Service service = mix.lc_services[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(mix.lc_services.size()) - 1))];
  // Batch sizes are powers of two, skewed small (most user queries arrive
  // singly or in small bursts; large batches are offline re-ranking).
  static const int kBatches[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::size_t idx = rng.weighted_index(
      {0.22, 0.18, 0.15, 0.13, 0.12, 0.10, 0.06, 0.04});
  const int batch = kBatches[idx];
  // Stock TensorFlow earmarks essentially the whole device regardless of
  // the real footprint (Fig 4's TF series) — that request is what GPU-
  // agnostic schedulers see. Knots-aware schedulers resize the container to
  // the image's observed footprint instead (§II-C2, Observation 5). The
  // qos_target floor is the §V-B per-service proportional SLO.
  return ServiceSpec(service)
      .batch(batch)
      .tf_greedy(cfg.device_memory_mb)
      .qos_target(cfg.qos_latency)
      .arrival(arrival)
      .build();
}

}  // namespace

std::vector<PodSpec> generate_workload(const AppMix& mix,
                                       const LoadGenConfig& cfg, Rng rng) {
  KNOTS_CHECK(!mix.batch_apps.empty());
  KNOTS_CHECK(!mix.lc_services.empty());
  Rng arrival_rng = rng.fork(1);
  Rng batch_rng = rng.fork(2);
  Rng lc_rng = rng.fork(3);

  const double burst = arrival_burstiness(mix.cov);

  const auto batch_gap = static_cast<SimTime>(
      static_cast<double>(batch_interarrival(mix.load)) / cfg.batch_rate_scale);
  const auto lc_gap = static_cast<SimTime>(
      static_cast<double>(lc_interarrival(mix.load)) / cfg.lc_rate_scale);

  WorkloadSpec spec;
  spec.stream(AlibabaArrivals(batch_gap, burst), cfg.duration,
              arrival_rng.fork(1),
              [&](SimTime t) { return make_batch_pod(mix, cfg, t, batch_rng); });
  spec.stream(AlibabaArrivals(lc_gap, burst), cfg.duration,
              arrival_rng.fork(2),
              [&](SimTime t) { return make_lc_pod(mix, cfg, t, lc_rng); });
  std::vector<PodSpec> pods = spec.build();
  // Multi-tenant assignment: round-robin over the (arrival-sorted, densely
  // id'd) stream, so the mapping is a pure function of the config.
  if (!cfg.tenants.empty()) {
    for (std::size_t i = 0; i < pods.size(); ++i) {
      pods[i].tenant = cfg.tenants[i % cfg.tenants.size()];
    }
  }
  return pods;
}

}  // namespace knots::workload
