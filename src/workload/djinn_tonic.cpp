#include "workload/djinn_tonic.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots::workload {

namespace {
struct ServiceModel {
  double weights_mb;       ///< Model weights resident once per container.
  double per_query_mb;     ///< Activation memory per sample in the batch.
  double batch_exponent;   ///< Sub-linear activation growth exponent.
  double base_latency_ms;  ///< Single-query latency.
  double per_query_ms;     ///< Marginal latency per extra batched sample.
  double sm_base;          ///< SM demand at batch 1.
  double sm_max;           ///< SM demand saturation at large batches.
};

const ServiceModel& model_for(Service s) {
  // face/imc are vision (large weights, long latency); key is speech;
  // ner/pos/chk are small text models.
  static const ServiceModel kModels[] = {
      /*face*/ {780.0, 26.0, 0.85, 45.0, 1.30, 0.30, 0.85},
      /*imc*/ {1250.0, 40.0, 0.86, 90.0, 2.40, 0.35, 0.95},
      /*key*/ {360.0, 12.0, 0.80, 12.0, 0.45, 0.18, 0.60},
      /*ner*/ {310.0, 10.0, 0.80, 10.0, 0.35, 0.15, 0.55},
      /*pos*/ {270.0, 9.0, 0.80, 9.0, 0.30, 0.14, 0.50},
      /*chk*/ {330.0, 11.0, 0.80, 11.0, 0.38, 0.16, 0.55},
  };
  return kModels[static_cast<int>(s)];
}
}  // namespace

std::string_view service_name(Service s) noexcept {
  switch (s) {
    case Service::kFace: return "face";
    case Service::kImc: return "imc";
    case Service::kKey: return "key";
    case Service::kNer: return "ner";
    case Service::kPos: return "pos";
    case Service::kChk: return "chk";
  }
  return "unknown";
}

Service service_from_name(std::string_view name) {
  for (Service s : kAllServices) {
    if (service_name(s) == name) return s;
  }
  KNOTS_CHECK_MSG(false, "unknown service name");
  return Service::kFace;
}

double inference_memory_mb(Service s, int batch_size) {
  KNOTS_CHECK(batch_size >= 1);
  const auto& m = model_for(s);
  return m.weights_mb +
         m.per_query_mb * std::pow(static_cast<double>(batch_size),
                                   m.batch_exponent);
}

double tf_managed_memory_mb(double device_capacity_mb) {
  return 0.99 * device_capacity_mb;
}

SimTime inference_latency(Service s, int batch_size) {
  KNOTS_CHECK(batch_size >= 1);
  const auto& m = model_for(s);
  const double ms =
      m.base_latency_ms + m.per_query_ms * static_cast<double>(batch_size - 1);
  return static_cast<SimTime>(ms * static_cast<double>(kMsec));
}

double inference_sm_demand(Service s, int batch_size) {
  const auto& m = model_for(s);
  // Demand saturates exponentially with batch size (occupancy fills).
  const double ramp =
      1.0 - std::exp(-static_cast<double>(batch_size) / 32.0);
  return m.sm_base + (m.sm_max - m.sm_base) * ramp;
}

AppProfile inference_profile(Service s, int batch_size) {
  const SimTime total = inference_latency(s, batch_size);
  const double mem = inference_memory_mb(s, batch_size);
  const double sm = inference_sm_demand(s, batch_size);
  // 20 % load / 70 % compute / 10 % respond split of the latency budget.
  const SimTime load = std::max<SimTime>(1, total / 5);
  const SimTime respond = std::max<SimTime>(1, total / 10);
  const SimTime compute = std::max<SimTime>(1, total - load - respond);
  std::vector<Phase> phases = {
      {load, gpu::Usage{0.05, mem * 0.6, 3500.0, 0.0}},
      {compute, gpu::Usage{sm, mem, 0.0, 0.0}},
      {respond, gpu::Usage{0.03, mem * 0.8, 0.0, 1200.0}},
  };
  return AppProfile(std::string(service_name(s)), std::move(phases), 1);
}

}  // namespace knots::workload
