#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/check.hpp"
#include "workload/alibaba.hpp"

namespace knots::workload {

namespace {

constexpr double kUsPerSec = 1e6;

/// Inhomogeneous-Poisson sampler via time-rescaled exponential gaps: the
/// gap drawn at the current time is divided by the local intensity, so
/// rate(t) = qps * intensity(t). `intensity` must be >= some positive
/// floor over the window.
template <typename IntensityFn>
std::vector<SimTime> modulated_poisson(SimTime duration, double qps, Rng& rng,
                                       IntensityFn intensity) {
  std::vector<SimTime> out;
  KNOTS_CHECK(qps >= 0.0);
  if (qps <= 0.0 || duration <= 0) return out;
  const double mean_gap_us = kUsPerSec / qps;
  SimTime t = 0;
  while (true) {
    double gap = rng.exponential(mean_gap_us);
    gap /= intensity(t);
    t += std::max<SimTime>(1, static_cast<SimTime>(gap));
    if (t >= duration) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace

PoissonArrivals::PoissonArrivals(double qps) : qps_(qps) {
  KNOTS_CHECK(qps >= 0.0);
}

std::vector<SimTime> PoissonArrivals::generate(SimTime duration,
                                               Rng rng) const {
  return modulated_poisson(duration, qps_, rng, [](SimTime) { return 1.0; });
}

DiurnalArrivals::DiurnalArrivals(double mean_qps, double amplitude, int peaks)
    : qps_(mean_qps), amplitude_(amplitude), peaks_(peaks) {
  KNOTS_CHECK(mean_qps >= 0.0);
  KNOTS_CHECK(amplitude >= 0.0 && amplitude < 1.0);
  KNOTS_CHECK(peaks >= 1);
}

std::vector<SimTime> DiurnalArrivals::generate(SimTime duration,
                                               Rng rng) const {
  const double window = static_cast<double>(std::max<SimTime>(duration, 1));
  return modulated_poisson(duration, qps_, rng, [&](SimTime t) {
    const double phase = static_cast<double>(t) / window;
    return 1.0 + amplitude_ * std::sin(2.0 * std::numbers::pi *
                                       static_cast<double>(peaks_) * phase);
  });
}

FlashCrowdArrivals::FlashCrowdArrivals(double base_qps,
                                       double spike_multiplier,
                                       SimTime spike_at,
                                       SimTime spike_duration)
    : base_qps_(base_qps),
      multiplier_(spike_multiplier),
      spike_at_(spike_at),
      spike_duration_(spike_duration) {
  KNOTS_CHECK(base_qps >= 0.0);
  KNOTS_CHECK(spike_multiplier >= 1.0);
  KNOTS_CHECK(spike_at >= 0);
  KNOTS_CHECK(spike_duration >= 0);
}

std::vector<SimTime> FlashCrowdArrivals::generate(SimTime duration,
                                                  Rng rng) const {
  return modulated_poisson(duration, base_qps_, rng, [&](SimTime t) {
    const bool in_spike = t >= spike_at_ && t < spike_at_ + spike_duration_;
    return in_spike ? multiplier_ : 1.0;
  });
}

double FlashCrowdArrivals::mean_qps() const noexcept {
  // Time-averaged over an (unknown at construction) window the spike fits
  // in; report the floor rate plus nothing — capacity planners should size
  // for the spike explicitly via spike_at()/spike_end().
  return base_qps_;
}

TraceArrivals::TraceArrivals(std::vector<SimTime> times)
    : times_(std::move(times)) {
  std::sort(times_.begin(), times_.end());
  for (SimTime t : times_) KNOTS_CHECK(t >= 0);
}

std::vector<SimTime> TraceArrivals::generate(SimTime duration,
                                             Rng /*rng*/) const {
  std::vector<SimTime> out;
  for (SimTime t : times_) {
    if (t >= duration) break;
    if (t > 0) out.push_back(t);
  }
  return out;
}

double TraceArrivals::mean_qps() const noexcept {
  if (times_.empty() || times_.back() <= 0) return 0.0;
  return static_cast<double>(times_.size()) * kUsPerSec /
         static_cast<double>(times_.back());
}

AlibabaArrivals::AlibabaArrivals(SimTime mean_interarrival, double burstiness,
                                 bool diurnal)
    : mean_interarrival_(mean_interarrival),
      burstiness_(burstiness),
      diurnal_(diurnal) {
  KNOTS_CHECK(mean_interarrival > 0);
  KNOTS_CHECK(burstiness >= 0.0);
}

std::vector<SimTime> AlibabaArrivals::generate(SimTime duration,
                                               Rng rng) const {
  AlibabaTrace trace(rng);
  return trace.arrivals(duration, mean_interarrival_, burstiness_, diurnal_);
}

double AlibabaArrivals::mean_qps() const noexcept {
  return kUsPerSec / static_cast<double>(mean_interarrival_);
}

}  // namespace knots::workload
