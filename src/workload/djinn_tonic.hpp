// Djinn & Tonic DNN-inference service models (the paper's latency-critical
// workloads), executed through TensorFlow on the GPU.
//
// Calibrated to Fig 4: a single inference uses well under 10 % of a 16 GB
// P100; even at batch 128 most services stay under 50 % — while stock
// TensorFlow earmarks ~99 % of device memory regardless (internal
// fragmentation). Latency scale matches §II-C (image-recognition inference
// ~90 ms on P100; text services ~10 ms).
#pragma once

#include <array>
#include <string_view>

#include "workload/app_profile.hpp"

namespace knots::workload {

enum class Service : int {
  kFace = 0,  ///< Face recognition.
  kImc,       ///< Image classification.
  kKey,       ///< Keyword spotting (speech).
  kNer,       ///< Named-entity recognition.
  kPos,       ///< Part-of-speech tagging.
  kChk,       ///< Text chunking.
};

inline constexpr std::array<Service, 6> kAllServices = {
    Service::kFace, Service::kImc, Service::kKey,
    Service::kNer,  Service::kPos, Service::kChk};

std::string_view service_name(Service s) noexcept;
Service service_from_name(std::string_view name);

/// Actual device-memory footprint of a query at the given batch size, MB.
/// Sub-linear in batch size (activations share weight memory).
double inference_memory_mb(Service s, int batch_size);

/// Footprint when TensorFlow manages memory with default (greedy) options:
/// ~99 % of the device, independent of the workload (Fig 4's "TF" series).
double tf_managed_memory_mb(double device_capacity_mb);

/// End-to-end single-GPU compute latency of a batched query, uncontended.
SimTime inference_latency(Service s, int batch_size);

/// SM demand of the query's compute phase, in [0,1].
double inference_sm_demand(Service s, int batch_size);

/// Three-phase profile of one (batched) query: weight/input load (tx burst)
/// → compute (SM + full footprint) → response (rx). Total duration equals
/// inference_latency().
AppProfile inference_profile(Service s, int batch_size);

}  // namespace knots::workload
