// Fluent workload builders — the one way to assemble PodSpecs.
//
// Before this API every example hand-rolled PodSpec fields (and each copy
// re-invented the memory-overprovision factor as a magic constant). The
// builders centralize the paper's conventions:
//   * BatchJobSpec — a scaled-up Rodinia characterization run whose
//     user-declared request overstates the real peak by a *named*
//     `memory_headroom` factor (Observation 2), capped at a fraction of
//     device memory.
//   * ServiceSpec — one batched Djinn&Tonic inference query (TF-greedy
//     allocation, §V-B QoS floor), or a long-running serving *replica*
//     (PodClass::kService) that knots::serve scales up and down.
//   * WorkloadSpec — composes explicit pods and ArrivalProcess-driven
//     streams into the sorted, densely-id'd vector the cluster loads.
// Builders draw no randomness; callers pass sampled parameters in, which
// keeps RNG draw order (and therefore golden digests) owned by call sites.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "gpu/device_model.hpp"
#include "workload/arrival.hpp"
#include "workload/djinn_tonic.hpp"
#include "workload/load_generator.hpp"
#include "workload/rodinia.hpp"

namespace knots::workload {

/// Default overprovision factor for batch requests when the caller does not
/// sample one: the midpoint-ish "users ask for ~1.8x what they touch"
/// figure the examples used to hard-code.
inline constexpr double kDefaultMemoryHeadroom = 1.8;

/// Fraction of device memory a single pod's request may not exceed.
inline constexpr double kRequestCapFraction = 0.95;

class BatchJobSpec {
 public:
  explicit BatchJobSpec(RodiniaApp app) : app_(app) {}

  /// Stretch the sub-second characterization cycle to job length.
  BatchJobSpec& time_scale(double factor) {
    time_scale_ = factor;
    return *this;
  }
  BatchJobSpec& cycles(int n) {
    cycles_ = n;
    return *this;
  }
  /// Named overprovision knob: requested = peak * headroom (Observation 2).
  BatchJobSpec& memory_headroom(double factor) {
    headroom_ = factor;
    return *this;
  }
  /// Upper bound on the declared request, MB (defaults to 95 % of a 16 GB
  /// device via cap_device_mb).
  BatchJobSpec& cap_request_mb(double cap) {
    cap_mb_ = cap;
    return *this;
  }
  /// Convenience: cap the request at kRequestCapFraction of this device.
  BatchJobSpec& cap_device_mb(double device_mb) {
    cap_mb_ = device_mb * kRequestCapFraction;
    return *this;
  }
  BatchJobSpec& arrival(SimTime t) {
    arrival_ = t;
    return *this;
  }
  /// Owning tenant for quota accounting (0 = default tenant).
  BatchJobSpec& tenant(int id) {
    tenant_ = id;
    return *this;
  }

  [[nodiscard]] PodSpec build() const;

 private:
  RodiniaApp app_;
  double time_scale_ = 1.0;
  int cycles_ = 1;
  double headroom_ = kDefaultMemoryHeadroom;
  /// Default cap: 95 % of the baseline device model's memory (the registry
  /// is the single home of the P100's 16384 MB).
  double cap_mb_ = gpu::default_device_model().gpu.memory_mb *
                   kRequestCapFraction;
  SimTime arrival_ = 0;
  int tenant_ = 0;
};

class ServiceSpec {
 public:
  explicit ServiceSpec(Service s) : service_(s) {}

  ServiceSpec& batch(int batch_size) {
    batch_ = batch_size;
    return *this;
  }
  ServiceSpec& arrival(SimTime t) {
    arrival_ = t;
    return *this;
  }
  /// Exact end-to-end deadline (no per-service floor applied).
  ServiceSpec& qos(SimTime deadline) {
    qos_exact_ = deadline;
    return *this;
  }
  /// User-facing budget with the §V-B floor: the effective deadline is
  /// max(budget, 3/2 * uncontended latency + 30 ms), so heavyweight
  /// batched queries get a proportional SLO rather than an unmeetable one.
  ServiceSpec& qos_target(SimTime budget) {
    qos_budget_ = budget;
    return *this;
  }
  /// Stock-TF greedy allocation: the declared request is the ~99 %-of-
  /// device earmark GPU-agnostic schedulers see (Fig 4's TF series).
  ServiceSpec& tf_greedy(double device_mb) {
    tf_device_mb_ = device_mb;
    return *this;
  }
  /// Right-sized request instead: real footprint times a named headroom.
  ServiceSpec& memory_headroom(double factor) {
    headroom_ = factor;
    return *this;
  }
  /// Owning tenant for quota accounting (0 = default tenant).
  ServiceSpec& tenant(int id) {
    tenant_ = id;
    return *this;
  }
  /// Keep the pod off spot/preemptible nodes (SLO-bearing replicas).
  ServiceSpec& avoid_preemptible(bool avoid = true) {
    avoid_preemptible_ = avoid;
    return *this;
  }

  /// One latency-critical query pod (PodClass::kLatencyCritical).
  [[nodiscard]] PodSpec build() const;

  /// A long-running serving replica (PodClass::kService): a warm model
  /// server that processes dynamic batches for `lifetime`. Its profile is
  /// the steady-state demand of back-to-back batches at this batch size;
  /// knots::serve retires it early when the autoscaler shrinks.
  [[nodiscard]] PodSpec replica(SimTime lifetime) const;

 private:
  [[nodiscard]] SimTime effective_qos() const;

  Service service_;
  int batch_ = 1;
  SimTime arrival_ = 0;
  std::optional<SimTime> qos_exact_;
  SimTime qos_budget_ = 150 * kMsec;
  std::optional<double> tf_device_mb_;
  double headroom_ = 1.1;
  int tenant_ = 0;
  bool avoid_preemptible_ = false;
};

/// Composes pods and arrival-driven streams into a loadable workload.
class WorkloadSpec {
 public:
  using PodFactory = std::function<PodSpec(SimTime arrival)>;

  WorkloadSpec& add(PodSpec pod);

  /// One pod per arrival of `process` over `duration`, built by `factory`
  /// (which receives the arrival time and may draw from its own rng).
  WorkloadSpec& stream(const ArrivalProcess& process, SimTime duration,
                       Rng rng, const PodFactory& factory);

  /// Sorted by arrival (stable), densely re-id'd from 0 — the shape
  /// Cluster::load requires. Consumes the accumulated pods.
  [[nodiscard]] std::vector<PodSpec> build();

  [[nodiscard]] std::size_t size() const noexcept { return pods_.size(); }

 private:
  std::vector<PodSpec> pods_;
};

}  // namespace knots::workload
