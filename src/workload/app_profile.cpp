#include "workload/app_profile.hpp"

#include <algorithm>
#include <cmath>

namespace knots::workload {

AppProfile::AppProfile(std::string name, std::vector<Phase> phases, int cycles)
    : name_(std::move(name)), phases_(std::move(phases)), cycles_(cycles) {
  KNOTS_CHECK(!phases_.empty());
  KNOTS_CHECK(cycles_ >= 1);
  for (const auto& ph : phases_) {
    KNOTS_CHECK(ph.duration > 0);
    cycle_ += ph.duration;
  }
}

const gpu::Usage& AppProfile::usage_at(SimTime t) const {
  KNOTS_CHECK(!phases_.empty());
  if (t < 0) t = 0;
  SimTime in_cycle = cycle_ > 0 ? t % cycle_ : 0;
  for (const auto& ph : phases_) {
    if (in_cycle < ph.duration) return ph.usage;
    in_cycle -= ph.duration;
  }
  return phases_.back().usage;
}

double AppProfile::memory_percentile_mb(double p) const {
  // Duration-weighted quantile over phases.
  struct Seg {
    double mb;
    SimTime dur;
  };
  std::vector<Seg> segs;
  segs.reserve(phases_.size());
  for (const auto& ph : phases_) segs.push_back({ph.usage.memory_mb, ph.duration});
  std::sort(segs.begin(), segs.end(),
            [](const Seg& a, const Seg& b) { return a.mb < b.mb; });
  const double target = p / 100.0 * static_cast<double>(cycle_);
  double acc = 0;
  for (const auto& s : segs) {
    acc += static_cast<double>(s.dur);
    if (acc >= target) return s.mb;
  }
  return segs.back().mb;
}

double AppProfile::peak_memory_mb() const {
  double peak = 0;
  for (const auto& ph : phases_) peak = std::max(peak, ph.usage.memory_mb);
  return peak;
}

double AppProfile::peak_sm() const {
  double peak = 0;
  for (const auto& ph : phases_) peak = std::max(peak, ph.usage.sm);
  return peak;
}

double AppProfile::mean_sm() const {
  double acc = 0;
  for (const auto& ph : phases_)
    acc += ph.usage.sm * static_cast<double>(ph.duration);
  return acc / static_cast<double>(cycle_);
}

double AppProfile::mean_memory_mb() const {
  double acc = 0;
  for (const auto& ph : phases_)
    acc += ph.usage.memory_mb * static_cast<double>(ph.duration);
  return acc / static_cast<double>(cycle_);
}

AppProfile AppProfile::time_scaled(double factor) const {
  KNOTS_CHECK(factor > 0);
  std::vector<Phase> scaled = phases_;
  for (auto& ph : scaled) {
    ph.duration = std::max<SimTime>(
        1, static_cast<SimTime>(std::llround(
               static_cast<double>(ph.duration) * factor)));
  }
  return AppProfile(name_, std::move(scaled), cycles_);
}

AppProfile AppProfile::memory_scaled(double factor) const {
  KNOTS_CHECK(factor > 0);
  std::vector<Phase> scaled = phases_;
  for (auto& ph : scaled) ph.usage.memory_mb *= factor;
  return AppProfile(name_, std::move(scaled), cycles_);
}

AppProfile AppProfile::with_cycles(int cycles) const {
  return AppProfile(name_, phases_, cycles);
}

std::vector<double> AppProfile::memory_signature(std::size_t points) const {
  std::vector<double> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const SimTime t = static_cast<SimTime>(
        static_cast<double>(cycle_) * static_cast<double>(i) /
        static_cast<double>(points));
    out.push_back(usage_at(t).memory_mb);
  }
  return out;
}

std::vector<double> AppProfile::sm_signature(std::size_t points) const {
  std::vector<double> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const SimTime t = static_cast<SimTime>(
        static_cast<double>(cycle_) * static_cast<double>(i) /
        static_cast<double>(points));
    out.push_back(usage_at(t).sm);
  }
  return out;
}

}  // namespace knots::workload
