// The three datacenter application mixes of Table I: batch Rodinia jobs
// blended with latency-critical inference queries, binned by offered load
// and load variability (COV).
#pragma once

#include <string>
#include <vector>

#include "workload/djinn_tonic.hpp"
#include "workload/rodinia.hpp"

namespace knots::workload {

enum class LoadLevel { kLow, kMedium, kHigh };
enum class CovLevel { kLow, kMedium, kHigh };

struct AppMix {
  int id = 0;
  std::string name;
  std::vector<RodiniaApp> batch_apps;
  std::vector<Service> lc_services;
  LoadLevel load = LoadLevel::kMedium;
  CovLevel cov = CovLevel::kMedium;
};

/// Table I rows; `id` in {1, 2, 3}.
AppMix app_mix(int id);

std::vector<AppMix> all_app_mixes();

std::string to_string(LoadLevel l);
std::string to_string(CovLevel c);

}  // namespace knots::workload
