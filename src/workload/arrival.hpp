// Composable open-loop arrival processes.
//
// An ArrivalProcess turns (window, Rng) into a sorted list of arrival
// times. Generators are pure: the same (process, duration, rng) triple
// always yields the same stream, so serving runs and workload generation
// stay bit-identical across lane counts and thread schedules. Seed child
// streams off `Rng::fork_at` when a scenario needs several independent
// processes from one seed.
//
// Shapes (ROADMAP item 3): Poisson baseline, diurnal sinusoid (daily
// peaks), flash crowd (a breaking-news rate spike on top of a Poisson
// floor), verbatim trace replay, and the Alibaba-2017 log-normal burst
// model that the batch load generator has always used — now one
// implementation of the shared interface.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace knots::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Arrival times in (0, duration), ascending. Pure in (duration, rng).
  [[nodiscard]] virtual std::vector<SimTime> generate(SimTime duration,
                                                      Rng rng) const = 0;

  /// Nominal mean rate in requests/sec (for capacity planning; shapes with
  /// time-varying intensity report their time-averaged rate).
  [[nodiscard]] virtual double mean_qps() const noexcept = 0;
};

/// Memoryless arrivals at a constant rate — the open-loop baseline.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double qps);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "poisson";
  }
  [[nodiscard]] std::vector<SimTime> generate(SimTime duration,
                                              Rng rng) const override;
  [[nodiscard]] double mean_qps() const noexcept override { return qps_; }

 private:
  double qps_;
};

/// Poisson arrivals whose intensity follows a sinusoidal daily envelope:
/// rate(t) = mean_qps * (1 + amplitude * sin(2*pi * peaks * t/duration)).
/// `amplitude` in [0, 1); `peaks` is the number of peaks in the window.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  DiurnalArrivals(double mean_qps, double amplitude = 0.4, int peaks = 2);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "diurnal";
  }
  [[nodiscard]] std::vector<SimTime> generate(SimTime duration,
                                              Rng rng) const override;
  [[nodiscard]] double mean_qps() const noexcept override { return qps_; }

 private:
  double qps_;
  double amplitude_;
  int peaks_;
};

/// Poisson floor at base_qps, multiplied by `spike_multiplier` inside the
/// window [spike_at, spike_at + spike_duration) — breaking-news traffic.
class FlashCrowdArrivals final : public ArrivalProcess {
 public:
  FlashCrowdArrivals(double base_qps, double spike_multiplier,
                     SimTime spike_at, SimTime spike_duration);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flash-crowd";
  }
  [[nodiscard]] std::vector<SimTime> generate(SimTime duration,
                                              Rng rng) const override;
  [[nodiscard]] double mean_qps() const noexcept override;

  [[nodiscard]] SimTime spike_at() const noexcept { return spike_at_; }
  [[nodiscard]] SimTime spike_end() const noexcept {
    return spike_at_ + spike_duration_;
  }

 private:
  double base_qps_;
  double multiplier_;
  SimTime spike_at_;
  SimTime spike_duration_;
};

/// Replays recorded arrival times verbatim (clipped to the window). Draws
/// no randomness; the rng argument is unused.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<SimTime> times);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "trace";
  }
  [[nodiscard]] std::vector<SimTime> generate(SimTime duration,
                                              Rng rng) const override;
  [[nodiscard]] double mean_qps() const noexcept override;

 private:
  std::vector<SimTime> times_;
};

/// The Alibaba-2017 model: log-normal inter-arrival bursts (COV set by
/// `burstiness`) under a two-peak diurnal envelope — bit-identical to
/// AlibabaTrace::arrivals() with the same rng.
class AlibabaArrivals final : public ArrivalProcess {
 public:
  AlibabaArrivals(SimTime mean_interarrival, double burstiness = 0.5,
                  bool diurnal = true);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "alibaba";
  }
  [[nodiscard]] std::vector<SimTime> generate(SimTime duration,
                                              Rng rng) const override;
  [[nodiscard]] double mean_qps() const noexcept override;

 private:
  SimTime mean_interarrival_;
  double burstiness_;
  bool diurnal_;
};

}  // namespace knots::workload
