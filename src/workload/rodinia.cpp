#include "workload/rodinia.hpp"

#include "core/check.hpp"

namespace knots::workload {

std::string_view rodinia_name(RodiniaApp app) noexcept {
  switch (app) {
    case RodiniaApp::kLeukocyte: return "leukocyte";
    case RodiniaApp::kHeartwall: return "heartwall";
    case RodiniaApp::kParticleFilter: return "particlefilter";
    case RodiniaApp::kMummerGpu: return "mummergpu";
    case RodiniaApp::kPathfinder: return "pathfinder";
    case RodiniaApp::kLud: return "lud";
    case RodiniaApp::kKmeans: return "kmeans";
    case RodiniaApp::kStreamCluster: return "streamcluster";
    case RodiniaApp::kMyocyte: return "myocyte";
  }
  return "unknown";
}

RodiniaApp rodinia_from_name(std::string_view name) {
  for (RodiniaApp app : kAllRodinia) {
    if (rodinia_name(app) == name) return app;
  }
  KNOTS_CHECK_MSG(false, "unknown rodinia app name");
  return RodiniaApp::kLeukocyte;
}

namespace {
/// Shorthand phase constructor (duration ms; sm fraction; mem MB; tx/rx MBps).
Phase ph(double ms, double sm, double mem_mb, double tx = 0, double rx = 0) {
  Phase p;
  p.duration = static_cast<SimTime>(ms * static_cast<double>(kMsec));
  p.usage = gpu::Usage{sm, mem_mb, tx, rx};
  return p;
}
}  // namespace

AppProfile rodinia_profile(RodiniaApp app) {
  switch (app) {
    case RodiniaApp::kLeukocyte:
      // Compute-heavy cell tracker: strong input burst, long mid-compute,
      // short near-peak detection kernel.
      return AppProfile("leukocyte",
                        {ph(12, 0.04, 380, 4200, 0), ph(60, 0.80, 820),
                         ph(90, 0.90, 1050), ph(14, 1.00, 1580),
                         ph(80, 0.35, 760), ph(14, 0.03, 420, 0, 2600)},
                        1);
    case RodiniaApp::kHeartwall:
      // Memory-bound tracker: the suite's largest footprint (~2.3 GB peak).
      return AppProfile("heartwall",
                        {ph(16, 0.05, 700, 5000, 0), ph(70, 0.75, 1600),
                         ph(18, 0.95, 2350), ph(90, 0.55, 1400),
                         ph(12, 0.04, 640, 0, 3200)},
                        1);
    case RodiniaApp::kParticleFilter:
      // Bursty and mostly idle: rare tall spikes dominate the shape.
      return AppProfile("particlefilter",
                        {ph(90, 0.012, 180), ph(6, 0.92, 900, 1500, 0),
                         ph(110, 0.02, 210), ph(8, 0.85, 860),
                         ph(70, 0.015, 190, 0, 500)},
                        1);
    case RodiniaApp::kMummerGpu:
      // Bandwidth-heavy sequence matcher: PCIe dominates, modest compute.
      return AppProfile("mummergpu",
                        {ph(30, 0.06, 500, 5200, 0), ph(40, 0.55, 950),
                         ph(25, 0.10, 700, 4700, 0), ph(45, 0.60, 1150),
                         ph(20, 0.05, 520, 0, 4100)},
                        1);
    case RodiniaApp::kPathfinder:
      // Short grid walker: light everything.
      return AppProfile("pathfinder",
                        {ph(8, 0.03, 150, 1800, 0), ph(28, 0.55, 320),
                         ph(6, 0.80, 430), ph(20, 0.10, 240, 0, 900)},
                        1);
    case RodiniaApp::kLud:
      // LU decomposition: compute spikes that sharpen as the matrix shrinks.
      return AppProfile("lud",
                        {ph(10, 0.05, 260, 2600, 0), ph(30, 0.85, 520),
                         ph(8, 1.00, 640), ph(24, 0.60, 480),
                         ph(6, 1.00, 660), ph(16, 0.06, 300, 0, 1200)},
                        1);
    case RodiniaApp::kKmeans:
      // Iterative: many small assign/update cycles, moderate footprint.
      return AppProfile("kmeans",
                        {ph(6, 0.04, 420, 2200, 0), ph(16, 0.85, 760),
                         ph(6, 0.20, 700), ph(16, 0.90, 780),
                         ph(6, 0.05, 500, 0, 900)},
                        1);
    case RodiniaApp::kStreamCluster:
      // Streaming: steady medium compute, steady inbound traffic.
      return AppProfile("streamcluster",
                        {ph(20, 0.25, 600, 1400, 0), ph(60, 0.65, 900, 800, 0),
                         ph(50, 0.60, 880, 700, 0), ph(16, 0.08, 560, 0, 1100)},
                        1);
    case RodiniaApp::kMyocyte:
      // Mostly serial ODE solver: tiny footprint, very low utilization.
      return AppProfile("myocyte",
                        {ph(50, 0.008, 90, 250, 0), ph(120, 0.03, 140),
                         ph(8, 0.35, 260), ph(90, 0.015, 110, 0, 150)},
                        1);
  }
  KNOTS_CHECK_MSG(false, "unhandled rodinia app");
  return AppProfile("invalid", {ph(1, 0, 0)}, 1);
}

std::vector<AppProfile> all_rodinia_profiles() {
  std::vector<AppProfile> out;
  out.reserve(kAllRodinia.size());
  for (RodiniaApp app : kAllRodinia) out.push_back(rodinia_profile(app));
  return out;
}

}  // namespace knots::workload
