// Phased application resource profiles.
//
// Every workload (Rodinia batch app, Djinn&Tonic inference query) is a
// sequence of phases, each with a nominal GPU demand tuple. A profile is a
// pure function of *application time* (time actually executed on the GPU,
// i.e. wall time divided by the co-location slowdown), which reproduces the
// paper's key observable: PCIe bursts lead compute/memory peaks by a
// deterministic phase pattern (Observation 4) that CBP/PP can forecast.
#pragma once

#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"
#include "gpu/gpu_device.hpp"

namespace knots::workload {

struct Phase {
  SimTime duration = 0;
  gpu::Usage usage{};  ///< Nominal demand during the phase.
};

class AppProfile {
 public:
  AppProfile() = default;
  /// `cycles` repeats the phase list; total duration = cycle × cycles.
  AppProfile(std::string name, std::vector<Phase> phases, int cycles = 1);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] int cycles() const noexcept { return cycles_; }
  [[nodiscard]] SimTime cycle_duration() const noexcept { return cycle_; }
  [[nodiscard]] SimTime total_duration() const noexcept {
    return cycle_ * cycles_;
  }

  /// Demand at application time `t` (clamped to the last phase beyond the
  /// end; callers normally stop at total_duration()).
  [[nodiscard]] const gpu::Usage& usage_at(SimTime t) const;

  /// Duration-weighted quantile of the memory demand, in MB. p in [0,100].
  /// This is what CBP's 80th-percentile container resizing reads.
  [[nodiscard]] double memory_percentile_mb(double p) const;

  [[nodiscard]] double peak_memory_mb() const;
  [[nodiscard]] double peak_sm() const;
  /// Duration-weighted mean SM demand.
  [[nodiscard]] double mean_sm() const;
  /// Duration-weighted mean memory demand, MB.
  [[nodiscard]] double mean_memory_mb() const;

  /// Returns a copy with every phase duration multiplied by `factor`
  /// (scaling a sub-second characterization run up to batch-job length).
  [[nodiscard]] AppProfile time_scaled(double factor) const;

  /// Returns a copy with every phase's memory demand multiplied by `factor`
  /// (SM/PCIe demand unchanged). With power-of-two factors the scaling is
  /// exact in IEEE arithmetic — the metamorphic scheduler tests rely on it.
  [[nodiscard]] AppProfile memory_scaled(double factor) const;

  /// Returns a copy repeating for `cycles` cycles.
  [[nodiscard]] AppProfile with_cycles(int cycles) const;

  /// Samples the memory series at fixed steps over one cycle — the
  /// "container resource usage profile" the head node keeps per image.
  [[nodiscard]] std::vector<double> memory_signature(
      std::size_t points = 64) const;
  /// Same for SM demand.
  [[nodiscard]] std::vector<double> sm_signature(std::size_t points = 64) const;

 private:
  std::string name_;
  std::vector<Phase> phases_;
  int cycles_ = 1;
  SimTime cycle_ = 0;
};

}  // namespace knots::workload
