#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "core/check.hpp"
#include "gpu/gpu_device.hpp"

namespace knots::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Residual bytes below this are treated as delivered (float dust from
/// rate * elapsed subtraction).
constexpr double kEpsMb = 1e-9;

/// Smallest whole-microsecond duration in which `rate` MB/s delivers
/// `remaining` MB. Exact when the division lands on an integer tick, so
/// doubling every capacity exactly halves every transfer time (the pinned
/// ×2 metamorphic law).
SimTime xfer_usec(double remaining, double rate) {
  const double secs = remaining / rate;
  SimTime t = from_seconds(secs);
  if (remaining - rate * to_seconds(t) > kEpsMb) ++t;
  return t;
}

}  // namespace

std::string_view to_string(LinkKind kind) noexcept {
  switch (kind) {
    case LinkKind::kNvlink: return "nvlink";
    case LinkKind::kPcie: return "pcie";
    case LinkKind::kNodeUplink: return "node-uplink";
    case LinkKind::kTorUplink: return "tor-uplink";
    case LinkKind::kSpine: return "spine";
  }
  return "unknown";
}

std::string_view to_string(FlowKind kind) noexcept {
  switch (kind) {
    case FlowKind::kImagePull: return "image-pull";
    case FlowKind::kMigration: return "migration";
    case FlowKind::kAllReduce: return "all-reduce";
    case FlowKind::kScrape: return "scrape";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// FabricPlan

FabricPlan& FabricPlan::spine(std::string name, double mb_per_s,
                              SimTime latency) {
  links.push_back({std::move(name), LinkKind::kSpine, mb_per_s, latency,
                   -1, -1});
  return *this;
}

FabricPlan& FabricPlan::tor_uplink(int tor, std::string name, double mb_per_s,
                                   SimTime latency) {
  links.push_back({std::move(name), LinkKind::kTorUplink, mb_per_s, latency,
                   -1, tor});
  return *this;
}

FabricPlan& FabricPlan::node_uplink(int node, std::string name,
                                    double mb_per_s, SimTime latency) {
  links.push_back({std::move(name), LinkKind::kNodeUplink, mb_per_s, latency,
                   node, -1});
  return *this;
}

FabricPlan& FabricPlan::intra_node(int node, LinkKind kind, std::string name,
                                   double mb_per_s, SimTime latency) {
  KNOTS_CHECK_MSG(kind == LinkKind::kNvlink || kind == LinkKind::kPcie,
                  "intra-node links must be NVLink or PCIe");
  links.push_back({std::move(name), kind, mb_per_s, latency, node, -1});
  return *this;
}

FabricPlan& FabricPlan::assign_tor(int node, int tor) {
  KNOTS_CHECK(node >= 0 && tor >= 0);
  if (static_cast<std::size_t>(node) >= tor_assignment.size()) {
    tor_assignment.resize(static_cast<std::size_t>(node) + 1, 0);
  }
  tor_assignment[static_cast<std::size_t>(node)] = tor;
  return *this;
}

FabricPlan& FabricPlan::telemetry_reserve(double mb_per_s) {
  telemetry_reserve_mb_per_s = mb_per_s;
  return *this;
}

bool FabricPlan::has_link(std::string_view name) const {
  return std::any_of(links.begin(), links.end(),
                     [&](const LinkSpec& l) { return l.name == name; });
}

std::vector<std::string> FabricPlan::link_names() const {
  std::vector<std::string> names;
  names.reserve(links.size());
  for (const LinkSpec& l : links) names.push_back(l.name);
  return names;
}

FabricPlan& FabricPlan::scale_bandwidth(double factor) {
  KNOTS_CHECK(factor > 0);
  for (LinkSpec& l : links) {
    if (l.mb_per_s > 0) l.mb_per_s *= factor;
  }
  return *this;
}

void FabricPlan::validate(int node_count) const {
  std::set<std::string_view> names;
  std::set<int> node_uplinks;
  std::set<int> intra_links;
  std::set<int> tor_uplinks;
  for (const LinkSpec& l : links) {
    KNOTS_CHECK_MSG(!l.name.empty(), "fabric link needs a name");
    KNOTS_CHECK_MSG(names.insert(l.name).second, "duplicate fabric link name");
    KNOTS_CHECK_MSG(l.latency >= 0, "negative link latency");
    switch (l.kind) {
      case LinkKind::kNvlink:
      case LinkKind::kPcie:
        KNOTS_CHECK_MSG(l.node >= 0 && l.node < node_count,
                        "intra-node link owner outside the cluster");
        KNOTS_CHECK_MSG(intra_links.insert(l.node).second,
                        "node has two intra-node links");
        break;
      case LinkKind::kNodeUplink:
        KNOTS_CHECK_MSG(l.node >= 0 && l.node < node_count,
                        "node uplink owner outside the cluster");
        KNOTS_CHECK_MSG(node_uplinks.insert(l.node).second,
                        "node has two uplinks");
        break;
      case LinkKind::kTorUplink:
        KNOTS_CHECK_MSG(l.tor >= 0, "ToR uplink needs a ToR index");
        KNOTS_CHECK_MSG(tor_uplinks.insert(l.tor).second,
                        "ToR has two uplinks");
        break;
      case LinkKind::kSpine:
        break;
    }
  }
  KNOTS_CHECK_MSG(tor_assignment.size() <=
                      static_cast<std::size_t>(node_count),
                  "ToR assignment names a node outside the cluster");
  for (const int tor : tor_assignment) {
    KNOTS_CHECK_MSG(tor >= 0, "negative ToR assignment");
  }
  KNOTS_CHECK_MSG(telemetry_reserve_mb_per_s >= 0,
                  "negative telemetry reserve");
}

FabricPlan FabricPlan::auto_derive(int node_count,
                                   const AutoFabricOptions& options) {
  KNOTS_CHECK(node_count > 0 && options.nodes_per_tor > 0);
  const double intra = options.intra_node_mb_per_s > 0
                           ? options.intra_node_mb_per_s
                           : gpu::GpuSpec{}.nvlink_mbps;
  FabricPlan plan;
  plan.spine("spine", options.spine_mb_per_s, options.link_latency);
  const int tors =
      (node_count + options.nodes_per_tor - 1) / options.nodes_per_tor;
  for (int t = 0; t < tors; ++t) {
    plan.tor_uplink(t, "tor" + std::to_string(t) + "-up",
                    options.tor_uplink_mb_per_s, options.link_latency);
  }
  for (int n = 0; n < node_count; ++n) {
    plan.node_uplink(n, "n" + std::to_string(n) + "-up",
                     options.node_uplink_mb_per_s, options.link_latency);
    plan.intra_node(n, LinkKind::kNvlink, "n" + std::to_string(n) + "-nvl",
                    intra, 0);
    plan.assign_tor(n, n / options.nodes_per_tor);
  }
  plan.telemetry_reserve(options.telemetry_reserve_mb_per_s);
  return plan;
}

FabricPlan FabricPlan::zero_latency(int node_count, int nodes_per_tor) {
  KNOTS_CHECK(node_count > 0 && nodes_per_tor > 0);
  // Same shape as auto_derive, but every link unlimited at zero latency:
  // the canonical inert fabric.
  FabricPlan plan;
  plan.spine("spine", 0.0, 0);
  const int tors = (node_count + nodes_per_tor - 1) / nodes_per_tor;
  for (int t = 0; t < tors; ++t) {
    plan.tor_uplink(t, "tor" + std::to_string(t) + "-up", 0.0, 0);
  }
  for (int n = 0; n < node_count; ++n) {
    plan.node_uplink(n, "n" + std::to_string(n) + "-up", 0.0, 0);
    plan.intra_node(n, LinkKind::kNvlink, "n" + std::to_string(n) + "-nvl",
                    0.0, 0);
    plan.assign_tor(n, n / nodes_per_tor);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Fabric

Fabric::Fabric(const FabricPlan& plan, int node_count)
    : node_count_(node_count), telemetry_reserve_(plan.telemetry_reserve_mb_per_s) {
  KNOTS_CHECK(node_count > 0);
  plan.validate(node_count);
  specs_ = plan.links;
  // Canonical order: sorted by (unique) name, so permuting the plan's
  // declaration order changes nothing observable — link indices, routes,
  // digests all come out identical.
  std::sort(specs_.begin(), specs_.end(),
            [](const LinkSpec& a, const LinkSpec& b) { return a.name < b.name; });
  states_.assign(specs_.size(), LinkState{});

  tor_of_node_.assign(static_cast<std::size_t>(node_count), 0);
  for (std::size_t n = 0; n < plan.tor_assignment.size(); ++n) {
    tor_of_node_[n] = plan.tor_assignment[n];
  }
  int max_tor = 0;
  for (const int t : tor_of_node_) max_tor = std::max(max_tor, t);
  for (const LinkSpec& l : specs_) {
    if (l.kind == LinkKind::kTorUplink) max_tor = std::max(max_tor, l.tor);
  }
  tors_ = max_tor + 1;

  node_uplink_.assign(static_cast<std::size_t>(node_count), -1);
  intra_link_.assign(static_cast<std::size_t>(node_count), -1);
  tor_uplink_.assign(static_cast<std::size_t>(tors_), -1);
  inert_ = true;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const LinkSpec& l = specs_[i];
    if (l.mb_per_s > 0 || l.latency > 0) inert_ = false;
    switch (l.kind) {
      case LinkKind::kNvlink:
      case LinkKind::kPcie:
        intra_link_[static_cast<std::size_t>(l.node)] = static_cast<int>(i);
        break;
      case LinkKind::kNodeUplink:
        node_uplink_[static_cast<std::size_t>(l.node)] = static_cast<int>(i);
        break;
      case LinkKind::kTorUplink:
        tor_uplink_[static_cast<std::size_t>(l.tor)] = static_cast<int>(i);
        break;
      case LinkKind::kSpine:
        // Routes traverse only the lexicographically-first spine link;
        // further spine declarations are inert by construction.
        if (spine_ < 0) spine_ = static_cast<int>(i);
        break;
    }
  }
}

int Fabric::tor_of(int node) const {
  KNOTS_CHECK(node >= 0 && node < node_count_);
  return tor_of_node_[static_cast<std::size_t>(node)];
}

std::optional<std::size_t> Fabric::link_index(std::string_view name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Fabric::link_names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const LinkSpec& l : specs_) names.push_back(l.name);
  return names;
}

std::vector<int> Fabric::route(int src, int dst) const {
  std::vector<int> r;
  const auto push = [&](int idx) {
    if (idx >= 0) r.push_back(idx);
  };
  const auto up = [&](int node) {
    return node_uplink_[static_cast<std::size_t>(node)];
  };
  const auto tor_up = [&](int node) {
    return tor_uplink_[static_cast<std::size_t>(tor_of(node))];
  };
  if (src == kRegistry && dst == kRegistry) return r;
  if (src == kRegistry) {
    KNOTS_CHECK(dst >= 0 && dst < node_count_);
    push(spine_);
    push(tor_up(dst));
    push(up(dst));
    return r;
  }
  if (dst == kRegistry) {
    KNOTS_CHECK(src >= 0 && src < node_count_);
    push(up(src));
    push(tor_up(src));
    push(spine_);
    return r;
  }
  KNOTS_CHECK(src >= 0 && src < node_count_ && dst >= 0 && dst < node_count_);
  if (src == dst) {
    push(intra_link_[static_cast<std::size_t>(src)]);
    return r;
  }
  push(up(src));
  if (tor_of(src) != tor_of(dst)) {
    push(tor_up(src));
    push(spine_);
    push(tor_up(dst));
  }
  push(up(dst));
  return r;
}

std::vector<int> Fabric::gang_route(const std::vector<int>& nodes) const {
  std::vector<int> distinct = nodes;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<int> r;
  if (distinct.empty()) return r;
  if (distinct.size() == 1) {
    const int intra = intra_link_[static_cast<std::size_t>(distinct[0])];
    if (intra >= 0) r.push_back(intra);
    return r;
  }
  std::set<int> tors;
  for (const int n : distinct) {
    KNOTS_CHECK(n >= 0 && n < node_count_);
    const int uplink = node_uplink_[static_cast<std::size_t>(n)];
    if (uplink >= 0) r.push_back(uplink);
    tors.insert(tor_of(n));
  }
  if (tors.size() > 1) {
    for (const int t : tors) {
      const int uplink = tor_uplink_[static_cast<std::size_t>(t)];
      if (uplink >= 0) r.push_back(uplink);
    }
    if (spine_ >= 0) r.push_back(spine_);
  }
  std::sort(r.begin(), r.end());
  r.erase(std::unique(r.begin(), r.end()), r.end());
  return r;
}

SimTime Fabric::route_latency(const std::vector<int>& links) const {
  SimTime total = 0;
  for (const int l : links) total += specs_[static_cast<std::size_t>(l)].latency;
  return total;
}

double Fabric::path_capacity(const std::vector<int>& links) const {
  double cap = kInf;
  for (const int l : links) {
    cap = std::min(cap, effective_capacity(static_cast<std::size_t>(l)));
  }
  return cap;
}

double Fabric::effective_capacity(std::size_t link) const {
  KNOTS_CHECK(link < specs_.size());
  const LinkSpec& spec = specs_[link];
  const LinkState& state = states_[link];
  if (!state.up) return 0.0;
  if (spec.mb_per_s <= 0) return kInf;
  double cap = spec.mb_per_s;
  if (spec.kind == LinkKind::kNodeUplink && telemetry_reserve_ > 0) {
    // The scrape keeps a slice of every access link; it can squeeze but
    // never fully starve foreground flows.
    cap = std::max(cap - telemetry_reserve_, 0.05 * spec.mb_per_s);
  }
  return cap / state.slowdown;
}

std::uint64_t Fabric::start_flow(FlowKind kind, int src, int dst, double mb,
                                 FinishFn on_finish) {
  KNOTS_CHECK_MSG(sim_ != nullptr, "Fabric::start_flow requires bind()");
  const SimTime now = sim_->now();
  advance(now);
  Flow flow;
  flow.id = next_flow_id_++;
  flow.kind = kind;
  flow.src = src;
  flow.dst = dst;
  flow.size_mb = std::max(0.0, mb);
  flow.remaining_mb = flow.size_mb;
  flow.links = route(src, dst);
  flow.gate = now + route_latency(flow.links);
  flow.done = std::move(on_finish);
  const std::uint64_t id = flow.id;
  flows_.push_back(std::move(flow));
  ++stats_.flows_started;
  if (observer_ != nullptr) {
    observer_->on_flow_start(id, kind, src, dst, std::max(0.0, mb), now);
  }
  recompute_rates();
  reschedule(now);
  return id;
}

SimTime Fabric::transfer_time(int src, int dst, double mb) const {
  const std::vector<int> r = route(src, dst);
  const SimTime latency = route_latency(r);
  if (mb <= 0) return latency;
  const double cap = path_capacity(r);
  if (cap == 0.0) return kNever;
  if (cap == kInf) return latency;
  return latency + xfer_usec(mb, cap);
}

std::vector<double> Fabric::stream_rates(
    const std::vector<std::vector<int>>& routes) const {
  std::vector<FlowDemand> demands;
  demands.reserve(routes.size());
  for (const auto& r : routes) demands.push_back(FlowDemand{r});
  std::vector<double> caps(specs_.size());
  for (std::size_t l = 0; l < specs_.size(); ++l) {
    caps[l] = effective_capacity(l);
  }
  return fair_share(demands, caps);
}

void Fabric::set_link_down(std::size_t link) {
  KNOTS_CHECK(link < states_.size());
  if (!states_[link].up) return;
  states_[link].up = false;
  link_state_changed(link, false);
}

void Fabric::set_link_up(std::size_t link) {
  KNOTS_CHECK(link < states_.size());
  if (states_[link].up) return;
  states_[link].up = true;
  link_state_changed(link, true);
}

void Fabric::degrade_link(std::size_t link, double slowdown) {
  KNOTS_CHECK(link < states_.size());
  KNOTS_CHECK_MSG(slowdown >= 1.0, "link degrade slowdown must be >= 1");
  states_[link].slowdown = std::max(states_[link].slowdown, slowdown);
  link_state_changed(link, false);
}

void Fabric::restore_link(std::size_t link) {
  KNOTS_CHECK(link < states_.size());
  if (states_[link].slowdown == 1.0 && states_[link].up) return;
  states_[link].slowdown = 1.0;
  states_[link].up = true;
  link_state_changed(link, true);
}

bool Fabric::link_up(std::size_t link) const {
  KNOTS_CHECK(link < states_.size());
  return states_[link].up;
}

void Fabric::link_state_changed(std::size_t link, bool up) {
  ++stats_.link_events;
  SimTime now = 0;
  if (sim_ != nullptr) {
    now = sim_->now();
    advance(now);
    recompute_rates();
    reschedule(now);
  }
  if (observer_ != nullptr) observer_->on_link_state(link, up, now);
}

void Fabric::advance(SimTime now) {
  if (now <= last_advance_) return;
  for (Flow& f : flows_) {
    if (f.remaining_mb <= 0) continue;
    const SimTime from = std::max(last_advance_, f.gate);
    if (now <= from) continue;
    if (std::isinf(f.rate)) {
      f.remaining_mb = 0;
      continue;
    }
    f.remaining_mb =
        std::max(0.0, f.remaining_mb - f.rate * to_seconds(now - from));
  }
  last_advance_ = now;
}

void Fabric::recompute_rates() {
  if (flows_.empty()) return;
  std::vector<FlowDemand> demands;
  demands.reserve(flows_.size());
  for (const Flow& f : flows_) demands.push_back(FlowDemand{f.links});
  std::vector<double> caps(specs_.size());
  for (std::size_t l = 0; l < specs_.size(); ++l) {
    caps[l] = effective_capacity(l);
  }
  const std::vector<double> rates = fair_share(demands, caps);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    f.rate = rates[i];
    // A flow is contended when sharing pushed it below its own path's
    // bottleneck capacity (a downed path is stalled, not contended).
    if (!std::isinf(f.rate) && f.rate + kEpsMb < path_capacity(f.links)) {
      f.contended = true;
    }
  }
}

void Fabric::reschedule(SimTime now) {
  if (timer_armed_) {
    sim_->cancel(timer_id_);
    timer_armed_ = false;
  }
  SimTime next = kNever;
  for (const Flow& f : flows_) {
    SimTime t = 0;
    if (f.remaining_mb <= kEpsMb || std::isinf(f.rate)) {
      t = std::max(now, f.gate);
    } else if (f.rate <= 0) {
      continue;  // stalled on a downed link; a state change re-arms us
    } else {
      t = std::max(now, f.gate) + xfer_usec(f.remaining_mb, f.rate);
    }
    next = std::min(next, t);
  }
  if (next == kNever) return;
  timer_id_ = sim_->schedule_at(std::max(next, now), [this] {
    timer_armed_ = false;
    on_timer();
  });
  timer_armed_ = true;
}

void Fabric::on_timer() {
  const SimTime now = sim_->now();
  advance(now);
  // An unconstrained flow delivers instantaneously once its latency gate
  // opens; advance() can miss it when the gate IS the timer instant (there
  // is no elapsed interval to integrate over), which would re-arm a timer
  // at `now` forever.
  for (Flow& f : flows_) {
    if (std::isinf(f.rate) && now >= f.gate) f.remaining_mb = 0;
  }
  std::vector<Flow> finished;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    if (f.remaining_mb <= kEpsMb && now >= f.gate) {
      finished.push_back(std::move(f));
    } else {
      if (keep != i) flows_[keep] = std::move(f);
      ++keep;
    }
  }
  flows_.resize(keep);
  for (const Flow& f : finished) {
    ++stats_.flows_finished;
    if (f.contended) ++stats_.flows_contended;
    stats_.mb_transferred += f.size_mb;
    if (observer_ != nullptr) {
      observer_->on_flow_finish(f.id, f.kind, f.contended, now);
    }
  }
  recompute_rates();
  reschedule(now);
  // Callbacks run last: they may start new flows reentrantly, which
  // re-advances and re-arms the timer on top of a consistent state.
  for (Flow& f : finished) {
    if (f.done) f.done(now);
  }
}

}  // namespace knots::net
