// Topology-aware datacenter fabric: shared links, deterministic fair-share
// contention, and fluid flows on the discrete-event engine.
//
// The model is a two-tier Clos sketch of the paper's testbed network:
// every node hangs off a ToR switch through a node uplink, every ToR hangs
// off one shared spine link, and each node optionally has an intra-node
// NVLink/PCIe link for GPU-to-GPU traffic that never leaves the host. The
// container image registry sits at the spine, so a cold image pull crosses
// the spine, the destination ToR's uplink and the node's access link.
//
// `FabricPlan` is the declarative description (fluent builder + validate);
// `Fabric` is the live object. Link declaration order is irrelevant by
// construction: the fabric canonicalizes by sorting links on their unique
// names, so permuting the plan is digest-invariant (a pinned metamorphic
// law). When several spine links are declared, routes traverse only the
// lexicographically-first one — extra spine links are provably inert.
//
// Transfers are fluid flows: each active flow gets the max-min fair share
// of its path (net::fair_share) and rates are recomputed only on flow
// arrival, flow completion, and link-state changes, with the single
// earliest predicted completion scheduled on the bound sim::Simulation.
// Everything runs from the serial event loop, so fabric behaviour is
// bit-identical across lane counts by construction.
//
// Inertness law: a fabric whose links are all unlimited (mb_per_s <= 0)
// with zero latency reports inert(); charge sites (image pulls, gang
// all-reduce, migration) skip inert fabrics entirely — no flow, no digest
// record, no event — so such a run reproduces the fabric-free goldens
// bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "net/fair_share.hpp"
#include "sim/simulation.hpp"

namespace knots::net {

enum class LinkKind {
  kNvlink,      ///< Intra-node GPU interconnect.
  kPcie,        ///< Intra-node host<->device lanes.
  kNodeUplink,  ///< Node -> ToR access link.
  kTorUplink,   ///< ToR -> spine uplink.
  kSpine,       ///< Shared core backplane.
};

[[nodiscard]] std::string_view to_string(LinkKind kind) noexcept;

struct LinkSpec {
  std::string name;
  LinkKind kind = LinkKind::kNodeUplink;
  double mb_per_s = 0.0;  ///< Capacity; <= 0 means unlimited.
  SimTime latency = 0;    ///< Per-traversal latency (setup/propagation).
  int node = -1;          ///< Owner for kNvlink/kPcie/kNodeUplink.
  int tor = -1;           ///< Owner for kTorUplink.

  bool operator==(const LinkSpec&) const = default;
};

/// Knobs for the auto-derived default topology (paper-ish numbers:
/// 10 GbE access, 40 G ToR uplinks, a fat shared spine, NVLink-class
/// intra-node bandwidth taken from gpu::GpuSpec).
struct AutoFabricOptions {
  int nodes_per_tor = 8;
  double node_uplink_mb_per_s = 1250.0;
  double tor_uplink_mb_per_s = 5000.0;
  double spine_mb_per_s = 40000.0;
  /// <= 0 resolves to gpu::GpuSpec{}.nvlink_mb_per_s.
  double intra_node_mb_per_s = 0.0;
  SimTime link_latency = 50;  ///< Per-hop, microseconds.
  double telemetry_reserve_mb_per_s = 1.0;
};

/// Declarative fabric description. An empty plan means "no fabric".
struct FabricPlan {
  std::vector<LinkSpec> links;
  /// node -> ToR; nodes beyond the vector default to ToR 0.
  std::vector<int> tor_assignment;
  /// Static background bandwidth the telemetry scrape reserves on every
  /// finite node uplink (the Prometheus pull cost of §IV-A).
  double telemetry_reserve_mb_per_s = 0.0;

  [[nodiscard]] bool empty() const noexcept { return links.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return links.size(); }

  // -- Fluent builders --
  FabricPlan& spine(std::string name, double mb_per_s, SimTime latency = 0);
  FabricPlan& tor_uplink(int tor, std::string name, double mb_per_s,
                         SimTime latency = 0);
  FabricPlan& node_uplink(int node, std::string name, double mb_per_s,
                          SimTime latency = 0);
  FabricPlan& intra_node(int node, LinkKind kind, std::string name,
                         double mb_per_s, SimTime latency = 0);
  FabricPlan& assign_tor(int node, int tor);
  FabricPlan& telemetry_reserve(double mb_per_s);

  [[nodiscard]] bool has_link(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> link_names() const;

  /// Multiplies every finite link capacity by `factor` (metamorphic
  /// bandwidth-scaling law harness). Unlimited links stay unlimited.
  FabricPlan& scale_bandwidth(double factor);

  /// Aborts (KNOTS_CHECK) on duplicate/empty link names, owners outside
  /// [0, node_count), negative latencies, bad ToR assignments, or more
  /// than one uplink/intra link per owner.
  void validate(int node_count) const;

  /// Default contended topology: nodes grouped onto ToRs, one spine, one
  /// uplink and one NVLink per node.
  [[nodiscard]] static FabricPlan auto_derive(
      int node_count, const AutoFabricOptions& options = {});

  /// Same shape as auto_derive but every link unlimited with zero latency
  /// — a provably inert fabric (the inertness-law fixture).
  [[nodiscard]] static FabricPlan zero_latency(int node_count,
                                               int nodes_per_tor = 8);

  bool operator==(const FabricPlan&) const = default;
};

enum class FlowKind {
  kImagePull,  ///< Registry -> node container image pull.
  kMigration,  ///< Checkpoint transfer for a job/pod migration.
  kAllReduce,  ///< DL gang gradient exchange.
  kScrape,     ///< Telemetry scrape traffic.
};

[[nodiscard]] std::string_view to_string(FlowKind kind) noexcept;

/// Passive fabric observation: flow lifecycle and link-state edges, in the
/// deterministic order the fabric resolves them. `on_link_state(l, false)`
/// covers both hard downs and degrades (any capacity-reducing edge);
/// `up == true` is the matching restoration.
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  virtual void on_flow_start(std::uint64_t /*flow*/, FlowKind /*kind*/,
                             int /*src_node*/, int /*dst_node*/,
                             double /*mb*/, SimTime /*now*/) {}
  virtual void on_flow_finish(std::uint64_t /*flow*/, FlowKind /*kind*/,
                              bool /*contended*/, SimTime /*now*/) {}
  virtual void on_link_state(std::size_t /*link*/, bool /*up*/,
                             SimTime /*now*/) {}
};

class Fabric {
 public:
  /// Pseudo-node id for the image registry at the spine.
  static constexpr int kRegistry = -1;
  using FinishFn = std::function<void(SimTime)>;

  /// Validates the plan against `node_count` and canonicalizes it
  /// (links sorted by name).
  Fabric(const FabricPlan& plan, int node_count);

  /// Attaches the event engine flows are scheduled on. Must be called
  /// before start_flow; analytic queries work unbound.
  void bind(sim::Simulation* sim) noexcept { sim_ = sim; }
  void set_observer(FabricObserver* observer) noexcept {
    observer_ = observer;
  }

  [[nodiscard]] bool inert() const noexcept { return inert_; }
  [[nodiscard]] int node_count() const noexcept { return node_count_; }
  [[nodiscard]] int tor_count() const noexcept { return tors_; }
  [[nodiscard]] int tor_of(int node) const;

  /// Links in canonical (name-sorted) order; indices below refer to it.
  [[nodiscard]] const std::vector<LinkSpec>& links() const noexcept {
    return specs_;
  }
  [[nodiscard]] std::optional<std::size_t> link_index(
      std::string_view name) const;
  [[nodiscard]] std::vector<std::string> link_names() const;

  // -- Routing --
  /// Ordered link indices from `src_node` to `dst_node` (kRegistry pulls
  /// from the registry at the spine). Links a plan never declared simply
  /// don't appear; an empty route is a free path.
  [[nodiscard]] std::vector<int> route(int src_node, int dst_node) const;
  /// Shared-link set a gang spanning `nodes` stresses every step: each
  /// node's uplink, plus the ToR uplinks and spine when it crosses ToRs.
  /// Sorted, deduplicated. Single-node gangs return the intra-node link.
  [[nodiscard]] std::vector<int> gang_route(
      const std::vector<int>& nodes) const;
  [[nodiscard]] SimTime route_latency(const std::vector<int>& links) const;
  /// Current bottleneck capacity of a route (degrades/downs included);
  /// infinity when unconstrained, 0 when a link is down.
  [[nodiscard]] double path_capacity(const std::vector<int>& links) const;

  // -- Flows (requires bind()) --
  std::uint64_t start_flow(FlowKind kind, int src_node, int dst_node,
                           double mb, FinishFn on_finish = {});
  [[nodiscard]] std::size_t active_flows() const noexcept {
    return flows_.size();
  }

  /// Analytic uncontended transfer time for `mb` from src to dst at the
  /// current link state: route latency + size over bottleneck capacity.
  /// kNever when the path is down.
  [[nodiscard]] SimTime transfer_time(int src_node, int dst_node,
                                      double mb) const;
  /// Max-min fair rates for persistent streams over the given routes at
  /// current link state (the dlsim per-step all-reduce query). Pure.
  [[nodiscard]] std::vector<double> stream_rates(
      const std::vector<std::vector<int>>& routes) const;

  // -- Link state (fault wiring) --
  void set_link_down(std::size_t link);
  void set_link_up(std::size_t link);
  /// Divides the link's capacity by `slowdown` (>= 1) until restored.
  void degrade_link(std::size_t link, double slowdown);
  void restore_link(std::size_t link);
  [[nodiscard]] bool link_up(std::size_t link) const;
  [[nodiscard]] double effective_capacity(std::size_t link) const;

  struct Stats {
    std::uint64_t flows_started = 0;
    std::uint64_t flows_finished = 0;
    std::uint64_t flows_contended = 0;
    std::uint64_t link_events = 0;
    double mb_transferred = 0.0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct LinkState {
    bool up = true;
    double slowdown = 1.0;
  };
  struct Flow {
    std::uint64_t id = 0;
    FlowKind kind = FlowKind::kImagePull;
    int src = kRegistry;
    int dst = 0;
    double size_mb = 0.0;
    double remaining_mb = 0.0;
    double rate = 0.0;  ///< Current fair share, MB/s (may be infinite).
    bool contended = false;
    SimTime gate = 0;  ///< Start + route latency; transfer counts after.
    std::vector<int> links;
    FinishFn done;
  };

  void advance(SimTime now);
  void recompute_rates();
  void reschedule(SimTime now);
  void on_timer();
  /// Shared tail of every link-state mutation: re-shares active flows and
  /// notifies the observer.
  void link_state_changed(std::size_t link, bool up);

  int node_count_ = 0;
  int tors_ = 1;
  bool inert_ = true;
  double telemetry_reserve_ = 0.0;
  std::vector<LinkSpec> specs_;       ///< Canonical order.
  std::vector<LinkState> states_;
  std::vector<int> tor_of_node_;
  std::vector<int> node_uplink_;      ///< node -> link index or -1.
  std::vector<int> intra_link_;       ///< node -> link index or -1.
  std::vector<int> tor_uplink_;       ///< tor -> link index or -1.
  int spine_ = -1;

  sim::Simulation* sim_ = nullptr;
  FabricObserver* observer_ = nullptr;
  std::vector<Flow> flows_;           ///< Insertion order.
  std::uint64_t next_flow_id_ = 1;
  SimTime last_advance_ = 0;
  std::uint64_t timer_id_ = 0;
  bool timer_armed_ = false;
  Stats stats_;
};

}  // namespace knots::net
