// Max-min fair bandwidth allocation by progressive filling.
//
// Given a set of flows, each crossing an ordered set of shared links, and
// per-link capacities, the allocator raises every flow's rate uniformly
// until a link saturates, freezes the flows bottlenecked there, and
// repeats. The result is the classic max-min fair allocation:
//
//   * feasibility     — the rates crossing any link sum to at most its
//                       capacity;
//   * work conservation — every flow is bottlenecked at some saturated
//                       link (or is unconstrained and gets infinity);
//   * no starvation   — a flow's rate is zero only when one of its links
//                       has zero capacity (a downed link).
//
// The function is pure and deterministic: identical inputs give identical
// outputs, with no dependence on container iteration order beyond the
// caller-supplied ordering. knots::net::Fabric calls it on every flow
// arrival/departure and link-state change; the property-fuzz suite in
// tests/net/ checks the three laws above against randomized flow sets.
#pragma once

#include <vector>

namespace knots::net {

/// One flow's demand: the link indices it crosses. Duplicates are
/// tolerated (counted once); an empty set means the flow is unconstrained.
struct FlowDemand {
  std::vector<int> links;
};

/// Max-min fair rates, one per demand, in MB/s.
///
/// `capacity_mb_per_s[l]` is link l's capacity: pass
/// std::numeric_limits<double>::infinity() for an unlimited link and 0.0
/// for a downed one (its flows get rate 0). Unconstrained flows get
/// infinity.
[[nodiscard]] std::vector<double> fair_share(
    const std::vector<FlowDemand>& demands,
    const std::vector<double>& capacity_mb_per_s);

}  // namespace knots::net
