#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "core/check.hpp"

namespace knots::net {

std::vector<double> fair_share(const std::vector<FlowDemand>& demands,
                               const std::vector<double>& capacity_mb_per_s) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t nf = demands.size();
  const std::size_t nl = capacity_mb_per_s.size();

  std::vector<double> rate(nf, kInf);
  std::vector<double> remaining(nl);
  std::vector<int> count(nl, 0);  // unfrozen flows crossing each link
  for (std::size_t l = 0; l < nl; ++l) {
    const double cap = capacity_mb_per_s[l];
    KNOTS_CHECK_MSG(cap >= 0, "link capacity must be >= 0 (or infinity)");
    remaining[l] = cap;
  }

  // De-duplicated per-flow link sets: a route never charges one link twice.
  std::vector<std::vector<int>> links(nf);
  std::vector<char> frozen(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    links[f] = demands[f].links;
    std::sort(links[f].begin(), links[f].end());
    links[f].erase(std::unique(links[f].begin(), links[f].end()),
                   links[f].end());
    bool constrained = false;
    for (const int l : links[f]) {
      KNOTS_CHECK_MSG(l >= 0 && static_cast<std::size_t>(l) < nl,
                      "flow demand names an unknown link");
      if (remaining[static_cast<std::size_t>(l)] < kInf) {
        ++count[static_cast<std::size_t>(l)];
        constrained = true;
      }
    }
    if (!constrained) frozen[f] = 1;  // rate stays infinite
  }

  // Progressive filling: saturate the tightest link, freeze its flows at
  // the fill level, subtract, repeat. At most one link saturates per pass,
  // so the loop runs at most nl times.
  while (true) {
    double fill = kInf;
    std::size_t bottleneck = nl;
    for (std::size_t l = 0; l < nl; ++l) {
      if (remaining[l] == kInf || count[l] == 0) continue;
      const double share = remaining[l] / count[l];
      if (share < fill) {
        fill = share;
        bottleneck = l;
      }
    }
    if (bottleneck == nl) break;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f] != 0) continue;
      if (!std::binary_search(links[f].begin(), links[f].end(),
                              static_cast<int>(bottleneck))) {
        continue;
      }
      frozen[f] = 1;
      rate[f] = fill;
      for (const int l : links[f]) {
        const auto li = static_cast<std::size_t>(l);
        if (remaining[li] == kInf) continue;
        remaining[li] = std::max(0.0, remaining[li] - fill);
        --count[li];
      }
    }
  }
  return rate;
}

}  // namespace knots::net
