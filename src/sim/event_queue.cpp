#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/check.hpp"

namespace knots::sim {

std::uint64_t EventQueue::schedule(SimTime t, Handler fn) {
  const std::uint64_t id = next_seq_++;
  Event ev{t, id, std::move(fn)};
  const std::int64_t ab = bucket_of(t);
  if (in_horizon(ab)) {
    insert_wheel(std::move(ev));
  } else {
    // Appending in already-descending position keeps the list clean (rare);
    // anything else defers the re-sort to the next migration wave.
    if (!overflow_.empty() && !event_before(ev, overflow_.back())) {
      overflow_sorted_ = false;
    }
    overflow_min_ab_ = std::min(overflow_min_ab_, ab);
    overflow_.push_back(std::move(ev));
  }
  ++size_;
  return id;
}

void EventQueue::cancel(std::uint64_t id) {
  KNOTS_CHECK_MSG(size_ > 0, "cancel on an empty queue");
  canceled_.insert(id);
  --size_;
}

bool EventQueue::peek_time(SimTime& t) {
  if (!prepare_next()) return false;
  t = slot(cur_ab_)[cur_pos_].time;
  return true;
}

bool EventQueue::pop(SimTime& t, Handler& fn) {
  if (!prepare_next()) return false;
  auto& b = slot(cur_ab_);
  Event& ev = b[cur_pos_];
  t = ev.time;
  fn = std::move(ev.fn);
  ++cur_pos_;
  --wheel_total_;
  --size_;
  // Clear the bucket the moment it drains: a slot must be empty before the
  // sliding horizon maps a later absolute bucket onto it.
  if (cur_pos_ == b.size()) {
    b.clear();
    cur_pos_ = 0;
  }
  return true;
}

void EventQueue::insert_wheel(Event ev) {
  std::int64_t ab = bucket_of(ev.time);
  // The cursor may sit past this bucket: run_until() peeks the next event
  // (advancing the cursor over empty buckets), stops at its time bound, and
  // the caller then schedules between the bound and the peeked event. Every
  // bucket the cursor skipped was empty, so redirecting into the cursor's
  // bucket keeps pop order exact — the event's (time, seq) sorts before
  // everything the wheel still holds.
  if (ab < cur_ab_) ab = cur_ab_;
  auto& b = slot(ab);
  if (ab == cur_ab_ && cur_sorted_) {
    // Sorted insert into the draining bucket's pending region. Popped
    // entries in [0, cur_pos_) all precede `ev` (its time is >= now and its
    // seq is fresh), so [cur_pos_, end) is the correct search window.
    auto it = std::upper_bound(
        b.begin() + static_cast<std::ptrdiff_t>(cur_pos_), b.end(), ev,
        [](const Event& a, const Event& x) { return event_before(a, x); });
    b.insert(it, std::move(ev));
  } else {
    b.push_back(std::move(ev));
  }
  ++wheel_total_;
}

void EventQueue::migrate_overflow() {
  if (overflow_.empty() || !in_horizon(overflow_min_ab_)) return;
  if (!overflow_sorted_) {
    std::sort(overflow_.begin(), overflow_.end(),
              [](const Event& a, const Event& b) { return event_before(b, a); });
    overflow_sorted_ = true;
  }
  while (!overflow_.empty() && in_horizon(bucket_of(overflow_.back().time))) {
    insert_wheel(std::move(overflow_.back()));
    overflow_.pop_back();
  }
  overflow_min_ab_ = overflow_.empty()
                         ? std::numeric_limits<std::int64_t>::max()
                         : bucket_of(overflow_.back().time);
}

bool EventQueue::prepare_next() {
  if (size_ == 0) return false;
  while (true) {
    migrate_overflow();
    if (wheel_total_ == 0) {
      // Every live event sits past the horizon: jump the cursor to the
      // overflow's earliest bucket and re-migrate. All wheel slots are
      // empty, so the jump cannot alias live storage.
      KNOTS_CHECK_MSG(!overflow_.empty(), "live events lost");
      cur_ab_ = overflow_min_ab_;
      cur_pos_ = 0;
      cur_sorted_ = false;
      continue;
    }
    // Advance to the next live event. Overflow events are strictly later
    // than every wheel event (their absolute buckets are beyond the
    // horizon), so no mid-scan migration is needed.
    while (wheel_total_ > 0) {
      auto& b = slot(cur_ab_);
      if (!cur_sorted_) {
        std::sort(b.begin(), b.end(), event_before);
        cur_sorted_ = true;
        cur_pos_ = 0;
      }
      while (cur_pos_ < b.size()) {
        auto it = canceled_.find(b[cur_pos_].seq);
        if (it == canceled_.end()) return true;
        canceled_.erase(it);
        ++cur_pos_;
        --wheel_total_;
      }
      b.clear();
      cur_pos_ = 0;
      cur_sorted_ = false;
      ++cur_ab_;
    }
  }
}

}  // namespace knots::sim
