// Bucketed event queue for the discrete-event engine.
//
// A two-level calendar queue tuned for the engine's dominant workload —
// dense periodic events (cluster ticks every 10 ms, heartbeats, relaunch
// timers) plus a long tail of far-future one-shots (the load generator
// schedules every pod arrival up front):
//
//  * the *wheel* covers a sliding horizon of kBuckets × kBucketWidth of
//    simulated time. An event at absolute time t lands in absolute bucket
//    t >> kBucketWidthLog2; buckets are plain vectors, appended unsorted
//    and sorted once by (time, seq) when the drain cursor enters them.
//    Near-term inserts and pops are O(1) amortized — no heap percolation;
//  * events past the horizon go to the *overflow* list, kept sorted
//    descending (lazily — appends mark it dirty, the next migration
//    re-sorts) so the earliest entry pops off the back in O(1). Before
//    every pop/peek, overflow entries whose bucket has slid into the
//    horizon migrate into the wheel. The horizon slides only as the
//    cursor advances, so a migrated event always lands in a bucket the
//    cursor has not entered yet — ordering is preserved by construction.
//
// Ordering contract (identical to the std::priority_queue it replaced):
// events pop in ascending (time, insertion-sequence) order, so
// same-timestamp events run FIFO and every run replays identically.
//
// cancel(id) lazily tombstones a *pending* event by the id schedule()
// returned; the slot is skipped (and the handler destroyed) when the
// cursor reaches it. Canceling an id that already fired or was already
// canceled is undefined (the engine never does it; the fuzz suite tracks
// liveness explicitly).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "core/types.hpp"

namespace knots::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Wheel geometry: 2^13 us (~8.2 ms) buckets — about one cluster tick —
  /// and 2^10 of them (~8.4 s horizon), comfortably past the crash (3 s)
  /// and eviction (5 s) relaunch delays.
  static constexpr int kBucketWidthLog2 = 13;
  static constexpr std::size_t kBucketsLog2 = 10;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketsLog2;

  EventQueue() : buckets_(kBuckets) {}

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Enqueues `fn` at absolute time `t` (must be >= the time of the last
  /// event popped). Returns the event's id (its insertion sequence).
  std::uint64_t schedule(SimTime t, Handler fn);

  /// Tombstones the pending event `id` (see header contract).
  void cancel(std::uint64_t id);

  /// Time of the earliest pending event; false when empty. Performs
  /// overflow migration and bucket sorting as a side effect, so a
  /// subsequent pop() is O(1).
  [[nodiscard]] bool peek_time(SimTime& t);

  /// Extracts the earliest event into `t`/`fn`; false when empty.
  bool pop(SimTime& t, Handler& fn);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  static bool event_before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  static std::int64_t bucket_of(SimTime t) noexcept {
    return static_cast<std::int64_t>(t >> kBucketWidthLog2);
  }
  [[nodiscard]] std::vector<Event>& slot(std::int64_t ab) noexcept {
    return buckets_[static_cast<std::size_t>(ab) & (kBuckets - 1)];
  }
  [[nodiscard]] bool in_horizon(std::int64_t ab) const noexcept {
    return ab < cur_ab_ + static_cast<std::int64_t>(kBuckets);
  }
  static constexpr std::int64_t kNoOverflow =
      std::numeric_limits<std::int64_t>::max();

  void insert_wheel(Event ev);
  void migrate_overflow();
  /// Positions (cur_ab_, cur_pos_) at the earliest live event. Returns
  /// false when the queue is empty.
  bool prepare_next();

  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;       ///< Sorted descending when clean.
  bool overflow_sorted_ = true;
  std::int64_t overflow_min_ab_ = kNoOverflow;  ///< Earliest overflow bucket.
  std::int64_t cur_ab_ = 0;           ///< Cursor's absolute bucket.
  std::size_t cur_pos_ = 0;           ///< Next index in the current bucket.
  bool cur_sorted_ = false;           ///< Current bucket sorted & draining.
  std::size_t wheel_total_ = 0;       ///< Wheel events, tombstoned included.
  std::size_t size_ = 0;              ///< Live events, wheel + overflow.
  std::uint64_t next_seq_ = 0;
  std::unordered_set<std::uint64_t> canceled_;
};

}  // namespace knots::sim
