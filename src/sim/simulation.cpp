#include "sim/simulation.hpp"

#include <memory>
#include <utility>

#include "obs/profile.hpp"

namespace knots::sim {

std::uint64_t Simulation::schedule_at(SimTime t, Handler fn) {
  KNOTS_CHECK_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(fn));
}

void Simulation::run_until(SimTime end) {
  stop_requested_ = false;
  SimTime t = 0;
  while (!stop_requested_ && queue_.peek_time(t)) {
    if (t > end) break;
    Handler fn;
    queue_.pop(t, fn);
    KNOTS_CHECK_MSG(t >= now_, "event time moved backwards");
    now_ = t;
    ++processed_;
    {
      KNOTS_PROF_SCOPE(dispatch_profile_);
      fn();
    }
  }
  if (now_ < end) now_ = end;
}

void Simulation::run_all() {
  stop_requested_ = false;
  SimTime t = 0;
  Handler fn;
  while (!stop_requested_ && queue_.pop(t, fn)) {
    KNOTS_CHECK_MSG(t >= now_, "event time moved backwards");
    now_ = t;
    ++processed_;
    {
      KNOTS_PROF_SCOPE(dispatch_profile_);
      fn();
    }
    fn = nullptr;
  }
}

void schedule_periodic(Simulation& sim, SimTime first, SimTime period,
                       std::function<bool(SimTime)> fn) {
  KNOTS_CHECK(period > 0);
  auto shared = std::make_shared<std::function<bool(SimTime)>>(std::move(fn));
  // Self-rescheduling closure; stops when the callback returns false. The
  // stored function holds only a weak self-reference — each *queued* event
  // owns a strong one — so the closure is freed once no event references
  // it, instead of leaking through a shared_ptr cycle.
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [&sim, period, shared, weak_step] {
    if ((*shared)(sim.now())) {
      if (auto strong = weak_step.lock()) {
        sim.schedule_after(period, [strong] { (*strong)(); });
      }
    }
  };
  sim.schedule_at(first, [step] { (*step)(); });
}

}  // namespace knots::sim
