// Deterministic discrete-event simulation engine.
//
// Events fire in (time, insertion-sequence) order, so same-timestamp events
// run FIFO and every run with the same inputs replays identically. Storage
// is a two-level calendar queue (see event_queue.hpp) with the same
// ordering contract as the binary heap it replaced.
#pragma once

#include <cstdint>
#include <functional>

#include "core/check.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace knots::sim {

class Simulation {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Schedules `fn` at absolute simulated time `t` (must not be in the
  /// past). Returns an id accepted by cancel().
  std::uint64_t schedule_at(SimTime t, Handler fn);

  /// Schedules `fn` `dt` after the current time.
  std::uint64_t schedule_after(SimTime dt, Handler fn) {
    KNOTS_CHECK(dt >= 0);
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancels a *pending* event by the id schedule_at/schedule_after
  /// returned. Canceling an event that already fired or was already
  /// canceled is a caller error (see EventQueue::cancel).
  void cancel(std::uint64_t id) { queue_.cancel(id); }

  /// Runs until the queue drains or the next event is past `end`.
  /// Advances `now()` to `end` when stopping on the time bound.
  void run_until(SimTime end);

  /// Runs until the queue drains completely.
  void run_all();

  /// Requests an orderly stop: the current run_* call returns after the
  /// in-flight event completes.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Profiles each event dispatch (handler wall time, ns) into `hist`.
  /// Pass nullptr to detach. Observation only — never affects ordering.
  void set_dispatch_profile(obs::Histogram* hist) noexcept {
    dispatch_profile_ = hist;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
  obs::Histogram* dispatch_profile_ = nullptr;
};

/// Repeating tick helper: invokes `fn(now)` every `period` until it returns
/// false or the simulation stops scheduling.
void schedule_periodic(Simulation& sim, SimTime first, SimTime period,
                       std::function<bool(SimTime)> fn);

}  // namespace knots::sim
