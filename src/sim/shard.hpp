// Sharded execution substrate for the tick hot path.
//
// A datacenter-scale tick partitions its per-node work (pod advance,
// telemetry sampling) into `lanes` independent event lanes that run
// concurrently on a thread pool. Determinism is preserved by construction:
//
//  * ShardPlan maps every item (node) to exactly one lane, so state coupled
//    through a node/GPU (co-resident pods, the node's TimeSeriesDb) is
//    always mutated by a single lane;
//  * lane-local effects commute (disjoint state), and every *global* effect
//    (completion bookkeeping, crash relaunch scheduling, digest/observer
//    hooks) is deferred into a BarrierMerge and replayed sequentially in
//    (time, seq, lane) order — `seq` is the item's position in the canonical
//    single-lane iteration order, so the drained sequence is bit-identical
//    to the unsharded loop no matter how many lanes ran or how the OS
//    scheduled them.
//
// DESIGN.md §10 carries the full argument.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"

namespace knots::sim {

/// Item → lane assignment. Items are whatever the caller shards over
/// (cluster nodes, DL job stripes); the default layout is contiguous blocks,
/// and any explicit assignment (e.g. a permutation, for the metamorphic
/// partition-invariance tests) is accepted as long as every lane id is in
/// range. Lanes may be empty (more lanes than items is valid).
class ShardPlan {
 public:
  /// Single lane over `items` items (the identity plan).
  ShardPlan() = default;

  /// Contiguous blocks: items [i*ceil(n/lanes), ...) land on lane i.
  [[nodiscard]] static ShardPlan contiguous(std::size_t items,
                                            std::size_t lanes);

  /// Explicit assignment; `lane_of[i]` is item i's lane, each < `lanes`.
  [[nodiscard]] static ShardPlan from_assignment(
      std::vector<std::uint32_t> lane_of, std::size_t lanes);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t items() const noexcept { return lane_of_.size(); }
  [[nodiscard]] std::size_t lane_of(std::size_t item) const {
    KNOTS_CHECK(item < lane_of_.size());
    return lane_of_[item];
  }
  /// Item indices of one lane, in ascending (canonical) order.
  [[nodiscard]] const std::vector<std::size_t>& members(
      std::size_t lane) const {
    KNOTS_CHECK(lane < members_.size());
    return members_[lane];
  }

 private:
  std::vector<std::uint32_t> lane_of_;
  std::vector<std::vector<std::size_t>> members_;
  std::size_t lanes_ = 1;
};

/// Runs one callback per lane, concurrently when the plan has more than one
/// lane. Single-lane executors run inline on the caller's thread — the
/// sharded code path and the historical sequential path are the same code.
class LaneExecutor {
 public:
  /// `threads == 0` sizes the pool to min(lanes, hardware_concurrency).
  /// Passing an explicit `threads` < lanes oversubscribes deliberately
  /// (stress tests); lanes == 1 never spins up a pool.
  explicit LaneExecutor(std::size_t lanes, std::size_t threads = 0);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] bool parallel() const noexcept { return pool_ != nullptr; }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_ == nullptr ? 1 : pool_->thread_count();
  }

  /// Invokes fn(lane) for every lane in [0, lanes) and waits for all of
  /// them. fn must only touch lane-local state plus its own BarrierMerge
  /// buffers.
  void for_each_lane(const std::function<void(std::size_t)>& fn);

 private:
  std::size_t lanes_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when lanes == 1.
};

/// Deferred-effect buffer for one barrier: lanes push into private
/// per-lane buffers (no locks, no false sharing on the push path), and
/// drain() replays every effect in exact (time, seq, lane) order.
///
/// The buffers double as the pool allocator for deferred events: clearing
/// retains capacity, so after warm-up a tick's pushes never allocate.
template <typename T>
class BarrierMerge {
 public:
  explicit BarrierMerge(std::size_t lanes = 1) : buffers_(lanes) {}

  /// Re-shapes to `lanes` buffers, keeping each buffer's capacity.
  void reset(std::size_t lanes) {
    KNOTS_CHECK(lanes > 0);
    if (buffers_.size() < lanes) buffers_.resize(lanes);
    for (auto& buf : buffers_) buf.clear();
    lanes_ = lanes;
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (std::size_t l = 0; l < lanes_; ++l) n += buffers_[l].size();
    return n;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Records one effect from `lane`. Safe to call concurrently from
  /// different lanes (each lane owns its buffer exclusively).
  void push(std::size_t lane, SimTime time, std::uint64_t seq, T value) {
    KNOTS_CHECK(lane < lanes_);
    buffers_[lane].push_back(Item{time, seq, std::move(value)});
  }

  /// Replays every pushed effect as fn(time, seq, lane, value&) in
  /// ascending (time, seq, lane) order; same-key pushes within one lane
  /// replay in push order. Buffers are cleared (capacity retained).
  template <typename Fn>
  void drain(Fn&& fn) {
    // Lanes usually push in nondecreasing (time, seq) order already (they
    // iterate their members in canonical order), so the sort is a no-op
    // check in the common case.
    for (std::size_t l = 0; l < lanes_; ++l) {
      auto& buf = buffers_[l];
      if (!std::is_sorted(buf.begin(), buf.end(), item_before)) {
        std::stable_sort(buf.begin(), buf.end(), item_before);
      }
    }
    // K-way merge with a linear min-scan: lane counts are small (≤ ~64),
    // and ties on (time, seq) resolve to the lowest lane.
    cursors_.assign(lanes_, 0);
    for (;;) {
      std::size_t best = lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) {
        if (cursors_[l] >= buffers_[l].size()) continue;
        if (best == lanes_ ||
            item_before(buffers_[l][cursors_[l]],
                        buffers_[best][cursors_[best]])) {
          best = l;
        }
      }
      if (best == lanes_) break;
      Item& item = buffers_[best][cursors_[best]++];
      fn(item.time, item.seq, best, item.value);
    }
    for (std::size_t l = 0; l < lanes_; ++l) buffers_[l].clear();
  }

 private:
  struct Item {
    SimTime time;
    std::uint64_t seq;
    T value;
  };
  static bool item_before(const Item& a, const Item& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::vector<std::vector<Item>> buffers_;
  std::vector<std::size_t> cursors_;
  std::size_t lanes_ = 1;
};

}  // namespace knots::sim
