#include "sim/shard.hpp"

#include <thread>

namespace knots::sim {

namespace {

std::vector<std::vector<std::size_t>> build_members(
    const std::vector<std::uint32_t>& lane_of, std::size_t lanes) {
  std::vector<std::vector<std::size_t>> members(lanes);
  for (std::size_t i = 0; i < lane_of.size(); ++i) {
    members[lane_of[i]].push_back(i);
  }
  return members;
}

}  // namespace

ShardPlan ShardPlan::contiguous(std::size_t items, std::size_t lanes) {
  KNOTS_CHECK(lanes > 0);
  ShardPlan plan;
  plan.lanes_ = lanes;
  plan.lane_of_.resize(items);
  const std::size_t block = (items + lanes - 1) / std::max<std::size_t>(lanes, 1);
  for (std::size_t i = 0; i < items; ++i) {
    plan.lane_of_[i] =
        static_cast<std::uint32_t>(block == 0 ? 0 : std::min(i / block, lanes - 1));
  }
  plan.members_ = build_members(plan.lane_of_, lanes);
  return plan;
}

ShardPlan ShardPlan::from_assignment(std::vector<std::uint32_t> lane_of,
                                     std::size_t lanes) {
  KNOTS_CHECK(lanes > 0);
  for (std::uint32_t lane : lane_of) KNOTS_CHECK(lane < lanes);
  ShardPlan plan;
  plan.lanes_ = lanes;
  plan.lane_of_ = std::move(lane_of);
  plan.members_ = build_members(plan.lane_of_, lanes);
  return plan;
}

LaneExecutor::LaneExecutor(std::size_t lanes, std::size_t threads)
    : lanes_(lanes) {
  KNOTS_CHECK(lanes_ > 0);
  if (lanes_ == 1) return;
  if (threads == 0) {
    const std::size_t hw = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    threads = std::min(lanes_, hw);
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

void LaneExecutor::for_each_lane(const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr) {
    for (std::size_t lane = 0; lane < lanes_; ++lane) fn(lane);
    return;
  }
  pool_->parallel_for(lanes_, fn);
}

}  // namespace knots::sim
