#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots::stats {

double mean(std::span<const double> xs) {
  KNOTS_CHECK(!xs.empty());
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double min_value(std::span<const double> xs) {
  KNOTS_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  KNOTS_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace knots::stats
