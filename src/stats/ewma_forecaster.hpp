// Extension forecasters beyond the paper's Fig 10b set.
//
// EWMA: the classic production baseline (what most autoscalers actually
// ship); Seasonal-naive: repeats the value one detected period back, which
// exploits exactly the periodic phase structure the PP scheduler's
// autocorrelation probe finds (§IV-D) — a natural "future work" model.
#pragma once

#include <vector>

#include "stats/forecaster.hpp"

namespace knots::stats {

/// Exponentially-weighted moving average; forecast = current smoothed level.
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha = 0.2) : alpha_(alpha) {}

  void fit(std::span<const double> window) override;
  [[nodiscard]] double predict_next() const override { return level_; }
  [[nodiscard]] std::string name() const override { return "EWMA"; }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double level_ = 0.0;
};

/// Seasonal-naive: detects the dominant positive autocorrelation lag in the
/// window and forecasts by repeating the cycle one period back; falls back
/// to last-value when no period is found.
class SeasonalNaive final : public Forecaster {
 public:
  explicit SeasonalNaive(std::size_t max_lag = 256) : max_lag_(max_lag) {}

  void fit(std::span<const double> window) override;
  [[nodiscard]] double predict_next() const override;
  [[nodiscard]] double predict_ahead(std::size_t steps) const override;
  [[nodiscard]] std::string name() const override { return "Seasonal-naive"; }

  /// Detected period in samples (0 = none, falls back to last value).
  [[nodiscard]] std::size_t period() const noexcept { return period_; }

 private:
  std::size_t max_lag_;
  std::size_t period_ = 0;
  std::vector<double> window_;
};

}  // namespace knots::stats
