#include "stats/rolling.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "core/percentile.hpp"

namespace knots::stats {

RollingStats::RollingStats(std::size_t capacity) : window_(capacity) {
  KNOTS_CHECK(capacity > 0);
}

void RollingStats::push(double x) {
  if (size_ == window_.size()) {
    const double evicted = window_[head_];
    sum_ -= evicted;
    sumsq_ -= evicted * evicted;
  } else {
    ++size_;
  }
  window_[head_] = x;
  head_ = (head_ + 1) % window_.size();
  sum_ += x;
  sumsq_ += x * x;
  ++pushes_;

  // Running sums accumulate one rounding error per eviction; a full exact
  // recompute every window turnover keeps the drift O(capacity * ulp),
  // invisible at 1e-9 for telemetry-scale values.
  if (pushes_ % window_.size() == 0 && size_ == window_.size()) {
    recompute_sums();
  }

  while (!min_q_.empty() && min_q_.back().second >= x) min_q_.pop_back();
  min_q_.emplace_back(pushes_, x);
  while (!max_q_.empty() && max_q_.back().second <= x) max_q_.pop_back();
  max_q_.emplace_back(pushes_, x);
  // Expire extrema that fell out of the window (push indices are 1-based).
  const std::uint64_t oldest = pushes_ - size_ + 1;
  while (min_q_.front().first < oldest) min_q_.pop_front();
  while (max_q_.front().first < oldest) max_q_.pop_front();
}

void RollingStats::recompute_sums() noexcept {
  double s = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    const double v = window_[(head_ + window_.size() - size_ + i) %
                             window_.size()];
    s += v;
    sq += v * v;
  }
  sum_ = s;
  sumsq_ = sq;
}

double RollingStats::mean() const noexcept {
  return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
}

double RollingStats::variance() const noexcept {
  if (size_ < 2) return 0.0;
  const double n = static_cast<double>(size_);
  const double var = (sumsq_ - sum_ * sum_ / n) / (n - 1.0);
  return var < 0.0 ? 0.0 : var;  // Clamp cancellation noise.
}

double RollingStats::stddev() const noexcept { return std::sqrt(variance()); }

double RollingStats::min() const noexcept {
  return min_q_.empty() ? 0.0 : min_q_.front().second;
}

double RollingStats::max() const noexcept {
  return max_q_.empty() ? 0.0 : max_q_.front().second;
}

void RollingStats::clear() noexcept {
  head_ = size_ = 0;
  pushes_ = 0;
  sum_ = sumsq_ = 0.0;
  min_q_.clear();
  max_q_.clear();
}

RollingQuantile::RollingQuantile(std::size_t capacity) : ring_(capacity) {
  KNOTS_CHECK(capacity > 0);
  sorted_.reserve(capacity);
}

void RollingQuantile::push(double x) {
  if (ring_size_ == ring_.size()) {
    const double evicted = ring_[head_];
    const auto it =
        std::lower_bound(sorted_.begin(), sorted_.end(), evicted);
    KNOTS_CHECK(it != sorted_.end());
    sorted_.erase(it);
  } else {
    ++ring_size_;
  }
  ring_[head_] = x;
  head_ = (head_ + 1) % ring_.size();
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
}

double RollingQuantile::quantile(double p) const {
  return sorted_.empty() ? 0.0 : percentile_sorted(sorted_, p);
}

double RollingQuantile::min() const {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double RollingQuantile::max() const {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

void RollingQuantile::clear() noexcept {
  head_ = ring_size_ = 0;
  sorted_.clear();
}

}  // namespace knots::stats
