// Common one-step-ahead forecaster interface.
//
// The Peak Prediction scheduler and the Fig 10b accuracy experiment treat
// every model (ARIMA/AR(1), Theil–Sen, SGD linear, MLP) uniformly: fit on a
// sliding window, forecast the next sample.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace knots::stats {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Fits on a window of equally spaced samples (oldest first).
  /// Windows shorter than the model's minimum leave it in fallback mode
  /// (predicting the last observed value).
  virtual void fit(std::span<const double> window) = 0;

  /// One-step-ahead forecast after fit().
  [[nodiscard]] virtual double predict_next() const = 0;

  /// Forecast `steps` samples ahead (>= 1). Defaults to the one-step value;
  /// models with an explicit time axis extrapolate.
  [[nodiscard]] virtual double predict_ahead(std::size_t steps) const {
    (void)steps;
    return predict_next();
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

enum class ForecastModel { kArima, kTheilSen, kSgd, kMlp };

/// Factory for the four models compared in Fig 10b.
std::unique_ptr<Forecaster> make_forecaster(ForecastModel model);

}  // namespace knots::stats
