#include "stats/regressors.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"
#include "stats/arima.hpp"

namespace knots::stats {

void TheilSen::fit(std::span<const double> window) {
  fitted_ = false;
  last_ = window.empty() ? 0.0 : window.back();
  const std::size_t n = window.size();
  next_x_ = static_cast<double>(n);
  if (n < 3) return;

  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      slopes.push_back((window[j] - window[i]) /
                       static_cast<double>(j - i));
    }
  }
  std::nth_element(slopes.begin(), slopes.begin() + slopes.size() / 2,
                   slopes.end());
  slope_ = slopes[slopes.size() / 2];

  // Intercept = median of (y_i - slope * x_i).
  std::vector<double> residues(n);
  for (std::size_t i = 0; i < n; ++i)
    residues[i] = window[i] - slope_ * static_cast<double>(i);
  std::nth_element(residues.begin(), residues.begin() + n / 2, residues.end());
  intercept_ = residues[n / 2];
  fitted_ = true;
}

double TheilSen::predict_next() const {
  if (!fitted_) return last_;
  return intercept_ + slope_ * next_x_;
}

double TheilSen::predict_ahead(std::size_t steps) const {
  if (!fitted_) return last_;
  return intercept_ +
         slope_ * (next_x_ + static_cast<double>(steps) - 1.0);
}

void SgdLinear::fit(std::span<const double> window) {
  fitted_ = false;
  last_ = window.empty() ? 0.0 : window.back();
  const std::size_t n = window.size();
  if (n < 3) return;

  // Normalize x to [0,1] so the fixed learning rate behaves across window
  // lengths; y is left in its natural units.
  scale_ = static_cast<double>(n - 1);
  next_x_ = static_cast<double>(n) / scale_;
  w_ = 0.0;
  b_ = window[0];
  for (std::size_t e = 0; e < epochs_; ++e) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) / scale_;
      const double err = (w_ * x + b_) - window[i];
      w_ -= lr_ * err * x;
      b_ -= lr_ * err;
    }
  }
  fitted_ = true;
}

double SgdLinear::predict_next() const {
  if (!fitted_) return last_;
  return w_ * next_x_ + b_;
}

double SgdLinear::predict_ahead(std::size_t steps) const {
  if (!fitted_) return last_;
  return w_ * (next_x_ + (static_cast<double>(steps) - 1.0) / scale_) + b_;
}

Mlp::Mlp(std::size_t hidden, std::size_t epochs, double lr)
    : hidden_(hidden), epochs_(epochs), lr_(lr) {}

double Mlp::forward(double x) const {
  double out = b2_;
  for (std::size_t h = 0; h < hidden_; ++h) {
    out += w2_[h] * std::tanh(w1_[h] * x + b1_[h]);
  }
  return out;
}

void Mlp::fit(std::span<const double> window) {
  fitted_ = false;
  last_ = window.empty() ? 0.0 : window.back();
  const std::size_t n = window.size();
  if (n < 4) return;

  // Normalize x to [0,1] and y to [0,1].
  ymin_ = *std::min_element(window.begin(), window.end());
  ymax_ = *std::max_element(window.begin(), window.end());
  if (ymax_ - ymin_ < 1e-12) {
    // Constant series: forward() returns the constant via bias.
    w1_.assign(hidden_, 0.0);
    b1_.assign(hidden_, 0.0);
    w2_.assign(hidden_, 0.0);
    b2_ = 0.0;
    next_x_ = 1.0;
    xstep_ = 0.0;
    fitted_ = true;
    return;
  }

  // Deterministic small-weight init.
  Rng rng(0x4d4c50ull + n);  // "MLP"
  w1_.resize(hidden_);
  b1_.resize(hidden_);
  w2_.resize(hidden_);
  for (std::size_t h = 0; h < hidden_; ++h) {
    w1_[h] = rng.uniform(-0.5, 0.5);
    b1_[h] = rng.uniform(-0.5, 0.5);
    w2_[h] = rng.uniform(-0.5, 0.5);
  }
  b2_ = 0.0;

  const double xscale = static_cast<double>(n - 1);
  next_x_ = static_cast<double>(n) / xscale;
  xstep_ = 1.0 / xscale;
  for (std::size_t e = 0; e < epochs_; ++e) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) / xscale;
      const double target = (window[i] - ymin_) / (ymax_ - ymin_);
      const double pred = forward(x);
      const double err = pred - target;
      // Backprop through the single hidden layer.
      b2_ -= lr_ * err;
      for (std::size_t h = 0; h < hidden_; ++h) {
        const double a = std::tanh(w1_[h] * x + b1_[h]);
        const double gw2 = err * a;
        const double ga = err * w2_[h] * (1.0 - a * a);
        w2_[h] -= lr_ * gw2;
        w1_[h] -= lr_ * ga * x;
        b1_[h] -= lr_ * ga;
      }
    }
  }
  fitted_ = true;
}

double Mlp::predict_at(double x) const {
  const double norm = forward(x);
  return ymin_ + norm * (ymax_ - ymin_);
}

double Mlp::predict_next() const {
  if (!fitted_) return last_;
  return predict_at(next_x_);
}

double Mlp::predict_ahead(std::size_t steps) const {
  if (!fitted_) return last_;
  return predict_at(next_x_ + xstep_ * (static_cast<double>(steps) - 1.0));
}

std::unique_ptr<Forecaster> make_forecaster(ForecastModel model) {
  switch (model) {
    case ForecastModel::kArima:
      return std::make_unique<Arima1>();
    case ForecastModel::kTheilSen:
      return std::make_unique<TheilSen>();
    case ForecastModel::kSgd:
      return std::make_unique<SgdLinear>();
    case ForecastModel::kMlp:
      return std::make_unique<Mlp>();
  }
  return std::make_unique<Arima1>();
}

}  // namespace knots::stats
