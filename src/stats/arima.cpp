#include "stats/arima.hpp"

#include <algorithm>
#include <cmath>

namespace knots::stats {

void Arima1::fit(std::span<const double> window) {
  fitted_ = false;
  mu_ = 0.0;
  phi_ = 0.0;
  last_ = window.empty() ? 0.0 : window.back();
  const std::size_t n = window.size();
  if (n < 3) return;

  // Least squares of Y_t on Y_{t-1}.
  double mx = 0, my = 0;
  const std::size_t pairs = n - 1;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    mx += window[i];
    my += window[i + 1];
  }
  mx /= static_cast<double>(pairs);
  my /= static_cast<double>(pairs);
  double sxy = 0, sxx = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double dx = window[i] - mx;
    sxy += dx * (window[i + 1] - my);
    sxx += dx * dx;
  }
  if (sxx == 0.0) {
    // Constant input: predict the constant.
    mu_ = my;
    phi_ = 0.0;
    fitted_ = true;
    return;
  }
  phi_ = std::clamp(sxy / sxx, -1.0, 1.0);
  mu_ = my - phi_ * mx;
  fitted_ = true;
}

double Arima1::predict_next() const {
  if (!fitted_) return last_;
  return mu_ + phi_ * last_;
}

double Arima1::predict_ahead(std::size_t steps) const {
  double y = last_;
  if (!fitted_) return y;
  for (std::size_t i = 0; i < steps; ++i) y = mu_ + phi_ * y;
  return y;
}

}  // namespace knots::stats
