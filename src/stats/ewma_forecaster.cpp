#include "stats/ewma_forecaster.hpp"

#include "core/check.hpp"
#include "stats/autocorrelation.hpp"

namespace knots::stats {

void EwmaForecaster::fit(std::span<const double> window) {
  KNOTS_CHECK(alpha_ > 0.0 && alpha_ <= 1.0);
  level_ = 0.0;
  if (window.empty()) return;
  level_ = window.front();
  for (std::size_t i = 1; i < window.size(); ++i) {
    level_ = (1.0 - alpha_) * level_ + alpha_ * window[i];
  }
}

void SeasonalNaive::fit(std::span<const double> window) {
  window_.assign(window.begin(), window.end());
  period_ = 0;
  if (window_.size() < 8) return;
  const std::size_t max_lag = std::min(max_lag_, window_.size() / 2);
  const auto acf = autocorrelations(window_, max_lag);  // acf[i] = lag i+1

  // Standard ACF period detection: smooth signals autocorrelate strongly at
  // lag 1, so wait for the ACF to dip below a low-water mark, then take the
  // first strong local maximum after it — the fundamental period.
  std::size_t i = 0;
  while (i < acf.size() && acf[i] > 0.2) ++i;
  for (; i + 1 < acf.size(); ++i) {
    if (acf[i] > 0.5 && acf[i] >= acf[i + 1] &&
        (i == 0 || acf[i] > acf[i - 1])) {
      period_ = i + 1;
      return;
    }
  }
  // Spike trains: the ACF never exceeds the dip threshold at lag 1, so the
  // loop above starts at 0; fall back to the dominant positive lag when it
  // is strong and non-trivial.
  const std::size_t lag = dominant_positive_lag(window_, max_lag);
  if (lag > 1 && autocorrelation(window_, lag) > 0.5) period_ = lag;
}

double SeasonalNaive::predict_next() const { return predict_ahead(1); }

double SeasonalNaive::predict_ahead(std::size_t steps) const {
  if (window_.empty()) return 0.0;
  if (period_ == 0) return window_.back();
  // Value `steps` ahead mirrors the sample one period earlier.
  const std::size_t n = window_.size();
  const std::size_t offset = (steps - 1) % period_;
  const std::size_t idx = n - period_ + offset;
  return window_[idx < n ? idx : n - 1];
}

}  // namespace knots::stats
