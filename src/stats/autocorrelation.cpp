#include "stats/autocorrelation.hpp"

#include "stats/descriptive.hpp"

namespace knots::stats {

double autocorrelation(std::span<const double> ys, std::size_t lag) {
  const std::size_t n = ys.size();
  if (lag == 0) return 1.0;
  if (n < 2 || lag >= n) return 0.0;
  const double ybar = mean(ys);
  double denom = 0.0;
  for (double y : ys) denom += (y - ybar) * (y - ybar);
  if (denom == 0.0) return 0.0;
  double num = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (ys[i] - ybar) * (ys[i + lag] - ybar);
  }
  return num / denom;
}

std::vector<double> autocorrelations(std::span<const double> ys,
                                     std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag);
  for (std::size_t k = 1; k <= max_lag; ++k)
    out.push_back(autocorrelation(ys, k));
  return out;
}

std::size_t dominant_positive_lag(std::span<const double> ys,
                                  std::size_t max_lag) {
  std::size_t best_lag = 0;
  double best = 0.0;
  for (std::size_t k = 1; k <= max_lag && k < ys.size(); ++k) {
    const double r = autocorrelation(ys, k);
    if (r > best) {
      best = r;
      best_lag = k;
    }
  }
  return best_lag;
}

}  // namespace knots::stats
