// Comparison forecasters for Fig 10b: Theil–Sen, SGD linear regression and a
// tiny multi-layer perceptron. All regress the sample value on its window
// index and extrapolate one step. The paper's point — that on a 5-second
// window these models match or trail ARIMA at far higher cost — emerges from
// the models themselves.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/forecaster.hpp"

namespace knots::stats {

/// Median-of-pairwise-slopes robust linear fit over (index, value).
class TheilSen final : public Forecaster {
 public:
  void fit(std::span<const double> window) override;
  [[nodiscard]] double predict_next() const override;
  [[nodiscard]] double predict_ahead(std::size_t steps) const override;
  [[nodiscard]] std::string name() const override { return "Theil-Sen"; }

  [[nodiscard]] double slope() const noexcept { return slope_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

 private:
  double slope_ = 0.0;
  double intercept_ = 0.0;
  double next_x_ = 0.0;
  double last_ = 0.0;
  bool fitted_ = false;
};

/// Plain stochastic-gradient-descent linear regression on (index, value),
/// fixed epochs, deterministic in-order passes.
class SgdLinear final : public Forecaster {
 public:
  explicit SgdLinear(std::size_t epochs = 50, double lr = 0.05)
      : epochs_(epochs), lr_(lr) {}

  void fit(std::span<const double> window) override;
  [[nodiscard]] double predict_next() const override;
  [[nodiscard]] double predict_ahead(std::size_t steps) const override;
  [[nodiscard]] std::string name() const override { return "SGD"; }

 private:
  std::size_t epochs_;
  double lr_;
  double w_ = 0.0;
  double b_ = 0.0;
  double next_x_ = 0.0;
  double scale_ = 1.0;
  double last_ = 0.0;
  bool fitted_ = false;
};

/// 1-input, one-hidden-layer (tanh) perceptron trained by full-batch gradient
/// descent; deliberately small, mirroring the paper's observation that the
/// limited 5 s training window starves complex models.
class Mlp final : public Forecaster {
 public:
  explicit Mlp(std::size_t hidden = 4, std::size_t epochs = 200,
               double lr = 0.05);

  void fit(std::span<const double> window) override;
  [[nodiscard]] double predict_next() const override;
  [[nodiscard]] double predict_ahead(std::size_t steps) const override;
  [[nodiscard]] std::string name() const override { return "MLP"; }

 private:
  [[nodiscard]] double forward(double x) const;
  [[nodiscard]] double predict_at(double x) const;

  std::size_t hidden_;
  std::size_t epochs_;
  double lr_;
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
  double next_x_ = 0.0;
  double xstep_ = 0.0;  ///< Normalized-x distance between samples.
  double ymin_ = 0.0, ymax_ = 1.0;
  double last_ = 0.0;
  bool fitted_ = false;
};

}  // namespace knots::stats
