// Rolling-window accumulators for the telemetry hot path.
//
// The schedulers interrogate fixed-length windows of every (GPU, metric)
// series once per tick; recomputing mean/variance or re-sorting the window
// per query is what capped cluster sizes before PR 2. These structures pay
// the cost on write instead:
//
//  * RollingStats     — mean/variance/min/max of the last `capacity` samples
//                       in O(1) amortized per push (running sums + monotonic
//                       deques, with a periodic exact recompute that bounds
//                       floating-point drift to well under the 1e-9 the
//                       equivalence suite demands for O(1)-magnitude data).
//  * RollingQuantile  — exact order statistics of the last `capacity`
//                       samples: a sorted shadow of the window maintained by
//                       binary-search insert/erase (O(n) memmove, ~100 ns at
//                       telemetry window sizes, vs O(n log n) sort per
//                       query). quantile(p) is bit-identical to
//                       core::percentile over the same window.
//
// Neither structure is thread-safe; each telemetry series owns its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace knots::stats {

class RollingStats {
 public:
  explicit RollingStats(std::size_t capacity);

  /// Adds a sample, evicting the oldest when the window is full.
  void push(double x);

  [[nodiscard]] std::size_t count() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return window_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::uint64_t pushes() const noexcept { return pushes_; }

  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  void clear() noexcept;

 private:
  void recompute_sums() noexcept;

  std::vector<double> window_;  ///< Ring storage; index = push count % cap.
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t pushes_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  /// Monotonic deques of (push index, value): front is the window extremum.
  std::deque<std::pair<std::uint64_t, double>> min_q_;
  std::deque<std::pair<std::uint64_t, double>> max_q_;
};

class RollingQuantile {
 public:
  explicit RollingQuantile(std::size_t capacity);

  /// Adds a sample, evicting the oldest when the window is full.
  void push(double x);

  [[nodiscard]] std::size_t count() const noexcept { return ring_size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return ring_size_ == 0; }

  /// Type-7 (numpy-default) percentile of the current window, `p` in
  /// [0, 100]. Exactly equal to core::percentile over the same samples;
  /// 0 when the window is empty.
  [[nodiscard]] double quantile(double p) const;

  /// Window extrema; 0 when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// The window in ascending order (the maintained sorted shadow).
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

  void clear() noexcept;

 private:
  std::vector<double> ring_;  ///< Arrival order, for eviction.
  std::size_t head_ = 0;
  std::size_t ring_size_ = 0;
  std::vector<double> sorted_;  ///< Ascending shadow of ring_ contents.
};

}  // namespace knots::stats
