// Descriptive statistics over spans (mean, variance, COV).
#pragma once

#include <span>

namespace knots::stats {

double mean(std::span<const double> xs);
/// Sample variance (n-1); 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Coefficient of variation sigma/mu (0 if mu == 0). Paper §III-C.
double coefficient_of_variation(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

}  // namespace knots::stats
