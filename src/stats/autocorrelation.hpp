// Autocorrelation function (paper Eq. 2) used by the Peak Prediction
// scheduler to decide whether a utilization series carries a forecastable
// trend before spending an ARIMA fit on it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace knots::stats {

/// r_k = sum_{i=1}^{n-k} (Y_i - Ybar)(Y_{i+k} - Ybar) / sum (Y_i - Ybar)^2.
/// Returns 0 for constant or too-short series.
double autocorrelation(std::span<const double> ys, std::size_t lag);

/// r_1..r_max_lag in one pass over the centered series.
std::vector<double> autocorrelations(std::span<const double> ys,
                                     std::size_t max_lag);

/// Lag of the strongest positive autocorrelation in [1, max_lag], or 0 when
/// none is positive — the "interval between two consecutive peaks" probe.
std::size_t dominant_positive_lag(std::span<const double> ys,
                                  std::size_t max_lag);

}  // namespace knots::stats
