#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.hpp"

namespace knots::stats {

double pearson(std::span<const double> xs, std::span<const double> ys) {
  KNOTS_CHECK(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> fractional_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank across the tie group; ranks are 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  KNOTS_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const auto rx = fractional_ranks(xs);
  const auto ry = fractional_ranks(ys);
  return pearson(rx, ry);
}

CorrelationMatrix spearman_matrix(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<double>>& columns) {
  KNOTS_CHECK(labels.size() == columns.size());
  const std::size_t m = columns.size();
  for (const auto& col : columns) {
    KNOTS_CHECK_MSG(col.size() == columns.front().size(),
                    "all metric columns must have equal length");
  }
  CorrelationMatrix out;
  out.labels = labels;
  out.rho.assign(m, std::vector<double>(m, 0.0));
  // Rank once per column, correlate ranks pairwise.
  std::vector<std::vector<double>> ranks;
  ranks.reserve(m);
  for (const auto& col : columns) ranks.push_back(fractional_ranks(col));
  for (std::size_t i = 0; i < m; ++i) {
    out.rho[i][i] = 1.0;
    for (std::size_t j = i + 1; j < m; ++j) {
      const double r = pearson(ranks[i], ranks[j]);
      out.rho[i][j] = r;
      out.rho[j][i] = r;
    }
  }
  return out;
}

}  // namespace knots::stats
