// Non-seasonal first-order ARIMA — i.e. AR(1): Y_pred = mu + phi * Y_{t-1}
// (paper Eq. 3). Fit by least squares on lag-1 pairs of the window.
#pragma once

#include <span>
#include <string>

#include "stats/forecaster.hpp"

namespace knots::stats {

class Arima1 final : public Forecaster {
 public:
  void fit(std::span<const double> window) override;
  [[nodiscard]] double predict_next() const override;
  [[nodiscard]] std::string name() const override { return "ARIMA(1,0,0)"; }

  /// Model intercept mu (Eq. 3); meaningful after fit().
  [[nodiscard]] double intercept() const noexcept { return mu_; }
  /// Lag-1 slope phi (Eq. 3); clamped to [-1, 1] for stability.
  [[nodiscard]] double slope() const noexcept { return phi_; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Forecasts `steps` ahead by iterating the recurrence.
  [[nodiscard]] double predict_ahead(std::size_t steps) const override;

 private:
  double mu_ = 0.0;
  double phi_ = 0.0;
  double last_ = 0.0;
  bool fitted_ = false;
};

}  // namespace knots::stats
