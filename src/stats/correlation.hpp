// Pearson and Spearman correlation (tie-aware), plus pairwise matrices.
//
// Spearman's rho is the correlation score the paper uses both for the
// Alibaba heatmaps (Fig 2a/2c, Eq. 1) and for CBP's co-location decisions.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace knots::stats {

/// Pearson product-moment correlation; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fractional (average) ranks, handling ties; ranks start at 1.
std::vector<double> fractional_ranks(std::span<const double> xs);

/// Spearman rank correlation (Pearson over fractional ranks — exactly the
/// paper's Eq. 1 when there are no ties, and the standard tie correction
/// otherwise). Returns 0 when either side is constant.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Labelled square correlation matrix (the Fig 2 heat maps).
struct CorrelationMatrix {
  std::vector<std::string> labels;
  std::vector<std::vector<double>> rho;  ///< rho[i][j], symmetric, diag = 1.

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return rho[i][j];
  }
};

/// Computes the pairwise Spearman matrix of equally-long metric columns.
CorrelationMatrix spearman_matrix(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<double>>& columns);

}  // namespace knots::stats
