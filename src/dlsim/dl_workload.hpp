// Deep-learning workload model for the trace-driven simulator (§V-C).
//
// 520 DL-training (DLT) jobs modelled after Tiresias' job characteristics
// (gang size skewed to one GPU, service times from minutes to hours) and
// 1400 DL-inference (DLI) queries (10–50 ms), with inter-arrivals following
// the Alibaba trace pattern over a 12 h window, split across the Table I
// app-mix bins.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace knots::dlsim {

struct DltJob {
  int id = 0;
  SimTime arrival = 0;
  int gpus = 1;          ///< Gang size (all-or-nothing).
  SimTime service = 0;   ///< GPU-resident time to completion at full speed.
  /// Fraction of each iteration spent in all-reduce/input lulls; PP
  /// harvests these windows for inference co-location.
  double lull_fraction = 0.15;
  /// Owning tenant (0 = default; scenario runs label jobs per tenant).
  int tenant = 0;

  // -- runtime state --
  SimTime progress = 0;
  SimTime completion = -1;
  SimTime attained = 0;  ///< For LAS priority (Tiresias).
  int restarts = 0;
  bool running = false;
  std::vector<int> placed_gpus;

  [[nodiscard]] bool done() const noexcept { return completion >= 0; }
};

struct DliQuery {
  int id = 0;
  SimTime arrival = 0;
  SimTime base_latency = 0;  ///< Uncontended GPU time (10–50 ms).
  SimTime qos = 0;           ///< Deadline (150 ms budget class).
  int mix = 1;
};

struct DlWorkload {
  std::vector<DltJob> jobs;      ///< Sorted by arrival.
  std::vector<DliQuery> queries; ///< Sorted by arrival.
  SimTime horizon = 12 * kHour;
};

struct DlWorkloadConfig {
  int dlt_jobs = 520;
  int dli_queries = 1400;
  SimTime window = 12 * kHour;
  int mix_id = 1;  ///< Table I bin controlling size/burstiness skew.
};

DlWorkload generate_dl_workload(const DlWorkloadConfig& config, Rng rng);

}  // namespace knots::dlsim
