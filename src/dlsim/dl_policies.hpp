// The four DL scheduling policies of Fig 12 / Table IV.
//
// Res-Ag      — FCFS gang placement, utilization-blind DLI placement with
//               TF-greedy crash risk for the co-located trainer; crashed
//               jobs requeue at the back (relaunch + checkpoint loss).
// Gandiva     — introspective packing: GPUs time-slice up to two trainers
//               when the queue is non-empty and jobs migrate to defragment
//               (trial-and-error placement costs pauses); DLI suffers from
//               sliced contexts and migration stalls.
// Tiresias    — preemptive two-queue LAS: every quantum the least-attained
//               jobs get the GPUs; suspended jobs pay a resume pause. DLI
//               waits for a free GPU (no co-location).
// CBP+PP      — Kube-Knots: crash-free FCFS gang placement with best-fit
//               consolidation; DLI is co-located into predicted mini-batch
//               lulls (PP forecast, Fig 10b accuracy), FCFS without
//               preemption or HOL blocking.
#pragma once

#include "dlsim/dl_cluster.hpp"

namespace knots::dlsim {

class DlPolicyImpl {
 public:
  DlPolicyImpl(const DlClusterConfig& config, Rng rng)
      : cfg_(config), rng_(rng) {}
  virtual ~DlPolicyImpl() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Admits pending DLT jobs for this step.
  virtual void schedule(DlState& state) = 0;

  /// Serves one inference query analytically; returns its end-to-end
  /// latency. May mutate state (Res-Ag crash side effects).
  virtual SimTime serve_query(DlState& state, const DliQuery& query) = 0;

  [[nodiscard]] std::size_t crash_restarts() const { return crashes_; }
  [[nodiscard]] std::size_t migrations() const { return migrations_; }
  [[nodiscard]] std::size_t preemptions() const { return preemptions_; }

 protected:
  /// Picks a uniformly random GPU index.
  [[nodiscard]] std::size_t random_gpu(const DlState& state);
  /// Crashes one trainer on the GPU: checkpoint rollback + requeue at back.
  void crash_trainer(DlState& state, std::size_t gpu);

  DlClusterConfig cfg_;
  Rng rng_;
  std::size_t crashes_ = 0;
  std::size_t migrations_ = 0;
  std::size_t preemptions_ = 0;
};

class ResAgDlPolicy final : public DlPolicyImpl {
 public:
  using DlPolicyImpl::DlPolicyImpl;
  [[nodiscard]] std::string name() const override { return "Res-Ag"; }
  void schedule(DlState& state) override;
  SimTime serve_query(DlState& state, const DliQuery& query) override;
};

class GandivaDlPolicy final : public DlPolicyImpl {
 public:
  using DlPolicyImpl::DlPolicyImpl;
  [[nodiscard]] std::string name() const override { return "Gandiva"; }
  void schedule(DlState& state) override;
  SimTime serve_query(DlState& state, const DliQuery& query) override;
};

class TiresiasDlPolicy final : public DlPolicyImpl {
 public:
  using DlPolicyImpl::DlPolicyImpl;
  [[nodiscard]] std::string name() const override { return "Tiresias"; }
  void schedule(DlState& state) override;
  SimTime serve_query(DlState& state, const DliQuery& query) override;

 private:
  SimTime last_quantum_ = -kHour;
};

class CbpPpDlPolicy final : public DlPolicyImpl {
 public:
  using DlPolicyImpl::DlPolicyImpl;
  [[nodiscard]] std::string name() const override { return "CBP+PP"; }
  void schedule(DlState& state) override;
  SimTime serve_query(DlState& state, const DliQuery& query) override;
};

std::unique_ptr<DlPolicyImpl> make_dl_policy(DlPolicy policy,
                                             const DlClusterConfig& config,
                                             Rng rng);

}  // namespace knots::dlsim
