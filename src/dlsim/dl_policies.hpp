// The four DL scheduling policies of Fig 12 / Table IV, as
// cluster::Scheduler plug-ins on the shared substrate.
//
// Res-Ag      — FCFS gang placement, utilization-blind DLI placement with
//               TF-greedy crash risk for the co-located trainer; crashed
//               jobs requeue at the back (relaunch + checkpoint loss).
// Gandiva     — introspective packing: GPUs time-slice up to two trainers
//               when the queue is non-empty and jobs migrate to defragment
//               (trial-and-error placement costs pauses); DLI suffers from
//               sliced contexts and migration stalls.
// Tiresias    — preemptive two-queue LAS: every quantum the least-attained
//               jobs get the GPUs; suspended jobs pay a resume pause. DLI
//               waits for a free GPU (no co-location).
// CBP+PP      — Kube-Knots: crash-free FCFS gang placement with best-fit
//               consolidation; DLI is co-located into predicted mini-batch
//               lulls (PP forecast, Fig 10b accuracy), FCFS without
//               preemption or HOL blocking.
//
// Every policy registers in sched::registry under its lowercase key
// ("resag", "gandiva", "tiresias", "cbp-pp") and implements
// Scheduler::on_schedule — the shared hook the DlEngine drives each tick —
// recovering its DlSchedView from the context extension. serve_query is the
// DL-specific extension the engine calls for each inference arrival.
#pragma once

#include <cstddef>
#include <string>

#include "cluster/scheduler.hpp"
#include "dlsim/dl_cluster.hpp"

namespace knots::dlsim {

/// Base of all DL policies: adapts the shared Scheduler hook onto the
/// DL-typed schedule()/serve_query() pair and owns the per-run counters.
/// Config and RNG come from the view (engine-owned), so instances are
/// constructible by the registry with no DL-specific arguments; one
/// instance drives exactly one run.
class DlScheduler : public cluster::Scheduler {
 public:
  /// Shared entry point: recovers the DlSchedView the engine attached and
  /// runs one DL scheduling round.
  void on_schedule(cluster::SchedulingContext& ctx) final;

  /// Admits pending DLT jobs for this step.
  virtual void schedule(DlSchedView& view) = 0;

  /// Serves one inference query analytically; returns its end-to-end
  /// latency. May mutate state (Res-Ag crash side effects).
  virtual SimTime serve_query(DlSchedView& view, const DliQuery& query) = 0;

  [[nodiscard]] std::size_t crash_restarts() const { return crashes_; }
  [[nodiscard]] std::size_t migrations() const { return migrations_; }
  [[nodiscard]] std::size_t preemptions() const { return preemptions_; }

 protected:
  /// Picks a uniformly random GPU index.
  [[nodiscard]] std::size_t random_gpu(DlSchedView& view);
  /// Crashes one trainer on the GPU: checkpoint rollback + requeue at back
  /// (engine-side, digest-visible) plus a relaunch pause on the device.
  void crash_trainer(DlSchedView& view, std::size_t gpu);

  std::size_t crashes_ = 0;
  std::size_t migrations_ = 0;
  std::size_t preemptions_ = 0;
};

class ResAgDlPolicy final : public DlScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Res-Ag"; }
  void schedule(DlSchedView& view) override;
  SimTime serve_query(DlSchedView& view, const DliQuery& query) override;
};

class GandivaDlPolicy final : public DlScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Gandiva"; }
  void schedule(DlSchedView& view) override;
  SimTime serve_query(DlSchedView& view, const DliQuery& query) override;
};

class TiresiasDlPolicy final : public DlScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Tiresias"; }
  void schedule(DlSchedView& view) override;
  SimTime serve_query(DlSchedView& view, const DliQuery& query) override;
  /// A node death reshuffles capacity: force a LAS quantum on the next
  /// round so survivors re-rank immediately instead of waiting it out.
  void on_node_down(cluster::SchedulingContext& ctx, NodeId node) override;

 private:
  SimTime last_quantum_ = -kHour;
};

class CbpPpDlPolicy : public DlScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "CBP+PP"; }
  void schedule(DlSchedView& view) override;
  SimTime serve_query(DlSchedView& view, const DliQuery& query) override;
};

/// CBP+PP with locality-aware gang packing on top (registry key
/// "cbp-local"). Same FCFS-with-backfill admission and PP query path, but
/// each gang is steered to the *smallest* node that holds it whole, then
/// the smallest ToR, and only then placed anywhere (CBP+PP's behaviour).
/// On a contended fabric (knots::net) the packed gang exchanges gradients
/// over NVLink or a single ToR instead of dragging them across the spine —
/// the pack-vs-spread JCT law pins the resulting ordering.
class CbpLocalDlPolicy final : public CbpPpDlPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "CBP-Local"; }
  void schedule(DlSchedView& view) override;

 private:
  /// Three-pass locality placement for one job; mirrors view.place's
  /// eligibility so a narrowed pass never succeeds where place would fail.
  bool place_local(DlSchedView& view, int job, int gang);
};

/// Registers the DL policies in sched::registry (the canonical quartet of
/// kDlPolicyNames plus "cbp-local"). Idempotent and thread-safe; every
/// dlsim entry point calls it, so any path that can construct a DL policy
/// has the registry populated.
void register_dl_schedulers();

}  // namespace knots::dlsim
