#include "dlsim/dl_cluster.hpp"

#include <algorithm>
#include <numeric>

#include "core/check.hpp"
#include "core/percentile.hpp"
#include "dlsim/dl_policies.hpp"

namespace knots::dlsim {

std::string to_string(DlPolicy policy) {
  switch (policy) {
    case DlPolicy::kResAg: return "Res-Ag";
    case DlPolicy::kGandiva: return "Gandiva";
    case DlPolicy::kTiresias: return "Tiresias";
    case DlPolicy::kCbpPp: return "CBP+PP";
  }
  return "unknown";
}

int DlState::free_gpus() const {
  int n = 0;
  for (const auto& slot : gpus) n += slot.free() ? 1 : 0;
  return n;
}

bool DlState::place(int job_id, int count, int max_share) {
  auto& job = jobs[static_cast<std::size_t>(job_id)];
  KNOTS_CHECK(!job.running);
  // Lowest-load GPUs first (consolidates exclusive placements, spreads
  // shared ones evenly).
  std::vector<std::size_t> order(gpus.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return gpus[a].load() < gpus[b].load();
                   });
  std::vector<std::size_t> chosen;
  for (std::size_t g : order) {
    if (gpus[g].load() < max_share) {
      chosen.push_back(g);
      if (static_cast<int>(chosen.size()) == count) break;
    }
  }
  if (static_cast<int>(chosen.size()) < count) return false;
  job.placed_gpus.clear();
  for (std::size_t g : chosen) {
    gpus[g].jobs.push_back(job_id);
    job.placed_gpus.push_back(static_cast<int>(g));
  }
  return true;
}

void DlState::evict(int job_id) {
  auto& job = jobs[static_cast<std::size_t>(job_id)];
  for (int g : job.placed_gpus) {
    auto& slot = gpus[static_cast<std::size_t>(g)];
    std::erase(slot.jobs, job_id);
  }
  job.placed_gpus.clear();
}

DlResult run_dl_simulation(DlPolicy policy, const DlClusterConfig& cluster,
                           const DlWorkloadConfig& workload,
                           std::uint64_t seed) {
  Rng rng(seed);
  return run_dl_simulation(policy, cluster,
                           generate_dl_workload(workload, rng.fork(1)), seed);
}

DlResult run_dl_simulation(DlPolicy policy, const DlClusterConfig& cluster,
                           const DlWorkload& wl, std::uint64_t seed) {
  Rng rng(seed);
  auto impl = make_dl_policy(policy, cluster, rng.fork(2));

  DlState state;
  state.gpus.assign(
      static_cast<std::size_t>(cluster.nodes * cluster.gpus_per_node),
      GpuSlot{});
  state.jobs = wl.jobs;

  DlResult result;
  result.policy = impl->name();
  result.dlt_total = state.jobs.size();

  std::size_t next_job = 0;
  std::size_t next_query = 0;
  std::size_t completed = 0;
  // Run until every job finishes, with a generous horizon backstop.
  const SimTime deadline = 3 * wl.horizon;
  for (SimTime t = 0; completed < state.jobs.size() && t < deadline;
       t += cluster.step) {
    state.now = t;
    // Arrivals.
    while (next_job < state.jobs.size() &&
           state.jobs[next_job].arrival <= t) {
      state.pending.push_back(static_cast<int>(next_job));
      ++next_job;
    }
    impl->schedule(state);

    // Progress: time-sliced GPUs deliver 1/k to each resident; a gang runs
    // at the slowest of its GPUs; paused GPUs deliver nothing.
    for (auto& job : state.jobs) {
      if (!job.running || job.done()) continue;
      double speed = 1.0;
      for (int g : job.placed_gpus) {
        const auto& slot = state.gpus[static_cast<std::size_t>(g)];
        double s = slot.paused_until > t
                       ? 0.0
                       : 1.0 / static_cast<double>(std::max(1, slot.load()));
        if (slot.load() > 1) s *= cluster.slicing_overhead;
        speed = std::min(speed, s);
      }
      const auto delta =
          static_cast<SimTime>(static_cast<double>(cluster.step) * speed);
      job.progress += delta;
      job.attained += delta;
      if (job.progress >= job.service) {
        job.completion = t + cluster.step;
        state.evict(job.id);
        job.running = false;
        ++completed;
      }
    }

    // Inference queries that arrived during this step.
    while (next_query < wl.queries.size() &&
           wl.queries[next_query].arrival <= t) {
      const auto& q = wl.queries[next_query];
      const SimTime latency = impl->serve_query(state, q);
      result.queries.push_back(
          DliRecord{q.arrival, latency, latency > q.qos});
      ++next_query;
    }
  }

  for (const auto& job : state.jobs) {
    if (!job.done()) continue;
    result.jct_hours.push_back(
        static_cast<double>(job.completion - job.arrival) /
        static_cast<double>(kHour));
  }
  result.dlt_completed = result.jct_hours.size();
  if (!result.jct_hours.empty()) {
    double sum = 0;
    for (double j : result.jct_hours) sum += j;
    result.avg_jct_h = sum / static_cast<double>(result.jct_hours.size());
    result.median_jct_h = percentile(result.jct_hours, 50);
    result.p99_jct_h = percentile(result.jct_hours, 99);
  }
  for (const auto& q : result.queries) {
    result.dli_violations += q.violated ? 1 : 0;
  }
  const double hours = static_cast<double>(wl.horizon) /
                       static_cast<double>(kHour);
  result.violations_per_hour =
      static_cast<double>(result.dli_violations) / hours;
  result.crash_restarts = impl->crash_restarts();
  result.migrations = impl->migrations();
  result.preemptions = impl->preemptions();
  return result;
}

}  // namespace knots::dlsim
