#include "dlsim/dl_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.hpp"
#include "core/percentile.hpp"
#include "dlsim/dl_policies.hpp"
#include "sched/registry.hpp"

namespace knots::dlsim {

using verify::RunDigest;
using Tag = verify::RunDigest::Tag;

std::vector<std::string> dl_policy_names() {
  std::vector<std::string> names;
  names.reserve(kDlPolicyNames.size() + 1);
  for (std::string_view name : kDlPolicyNames) names.emplace_back(name);
  // Registered policies beyond the canonical report quartet (kDlPolicyNames
  // drives run_all_policies' fixed report layout; the CLI lists everything).
  names.emplace_back("cbp-local");
  return names;
}

DlEngine::DlEngine(const DlClusterConfig& config, DlScheduler& policy,
                   std::uint64_t seed)
    : cfg_(config),
      policy_(&policy),
      policy_rng_(Rng(seed).fork(2)),
      injector_(static_cast<std::size_t>(config.nodes)) {
  KNOTS_CHECK(cfg_.nodes > 0 && cfg_.gpus_per_node > 0 && cfg_.step > 0);
  KNOTS_CHECK_MSG(cfg_.lanes >= 1, "lanes must be >= 1");
  if (cfg_.lanes > 1) {
    lane_exec_ = std::make_unique<sim::LaneExecutor>(
        static_cast<std::size_t>(cfg_.lanes));
  }
  gpu::NodeSpec node_spec;
  node_spec.gpus_per_node = cfg_.gpus_per_node;
  node_spec.host_idle_watts = cfg_.host_idle_watts;
  node_spec.gpu = cfg_.gpu;
  nodes_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) {
    nodes_.emplace_back(NodeId{n}, node_spec, n * cfg_.gpus_per_node);
  }
  for (auto& node : nodes_) {
    for (std::size_t i = 0; i < node.gpu_count(); ++i) {
      devices_.push_back(&node.gpu(i));
    }
  }
  residents_.resize(devices_.size());
  paused_until_.assign(devices_.size(), 0);
  deadline_ = 3 * horizon_;
  view_ = std::make_unique<DlSchedView>(*this);
  if (!cfg_.fabric.empty()) {
    fabric_ = std::make_unique<net::Fabric>(cfg_.fabric, cfg_.nodes);
    fabric_->bind(&sim_);
    fabric_->set_observer(this);
  }
}

DlEngine::~DlEngine() = default;

void DlEngine::load(const DlWorkload& workload) {
  KNOTS_CHECK_MSG(sim_.now() == 0 && ticks_ == 0,
                  "load() must precede run()");
  jobs_ = workload.jobs;
  queries_ = workload.queries;
  horizon_ = workload.horizon;
  deadline_ = 3 * horizon_;
}

void DlEngine::set_fault_plan(const fault::FaultPlan& plan) {
  plan.validate(cfg_.nodes,
                fabric_ ? fabric_->link_names() : std::vector<std::string>{});
  plan_ = plan;
}

void DlEngine::on_link_state(std::size_t link, bool up, SimTime now) {
  digest_.begin_record(up ? Tag::kLinkUp : Tag::kLinkDown, now);
  digest_.mix_u64(static_cast<std::uint64_t>(link));
  if (trace_ != nullptr) {
    trace_->record(now,
                   up ? obs::EventKind::kLinkUp : obs::EventKind::kLinkDown,
                   static_cast<std::int32_t>(link));
  }
}

void DlEngine::pause_gpu(std::size_t g, SimTime until) {
  paused_until_[g] = std::max(paused_until_[g], until);
}

int DlEngine::free_gpu_count() const {
  int n = 0;
  for (const auto& res : residents_) n += res.empty() ? 1 : 0;
  return n;
}

bool DlEngine::gpu_serviceable(std::size_t g) const {
  return gpu_online(g) && residents_[g].empty() &&
         paused_until_[g] <= sim_.now() &&
         devices_[g]->provision_fits(cfg_.job_memory_mb);
}

std::size_t DlEngine::first_serviceable_gpu() const {
  for (std::size_t g = 0; g < devices_.size(); ++g) {
    if (gpu_serviceable(g)) return g;
  }
  return npos;
}

void DlEngine::attach_job(int job_id, std::size_t g) {
  residents_[g].push_back(job_id);
  const PodId pod{job_id};
  KNOTS_CHECK(devices_[g]->attach(pod, cfg_.job_memory_mb));
  // Usage tracks the provisioned working set, so the power model sees a
  // busy device and ECC shrink below the resident set is a capacity
  // violation. provision_fits() was checked before attach, hence usage
  // cannot exceed effective capacity here.
  KNOTS_CHECK(
      devices_[g]->set_usage(pod, gpu::Usage{1.0, cfg_.job_memory_mb, 0, 0}));
}

void DlEngine::detach_job(int job_id, std::size_t g) {
  std::erase(residents_[g], job_id);
  devices_[g]->detach(PodId{job_id});
}

bool DlEngine::place(int job_id, int count, int max_share,
                     const std::function<bool(std::size_t)>& eligible) {
  auto& job = jobs_[static_cast<std::size_t>(job_id)];
  KNOTS_CHECK(!job.running);
  // Lowest-load GPUs first (consolidates exclusive placements, spreads
  // shared ones evenly); the stable sort keeps index order among ties, so
  // the choice is identical to the pre-substrate simulator whenever every
  // device is online and has room (always, in a fault-free run).
  std::vector<std::size_t> order(devices_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return residents_[a].size() < residents_[b].size();
                   });
  std::vector<std::size_t> chosen;
  for (std::size_t g : order) {
    if (static_cast<int>(residents_[g].size()) >= max_share) continue;
    if (!gpu_online(g)) continue;
    if (!devices_[g]->provision_fits(cfg_.job_memory_mb)) continue;
    if (eligible && !eligible(g)) continue;
    chosen.push_back(g);
    if (static_cast<int>(chosen.size()) == count) break;
  }
  if (static_cast<int>(chosen.size()) < count) return false;
  job.placed_gpus.clear();
  const SimTime t = sim_.now();
  for (std::size_t g : chosen) {
    attach_job(job_id, g);
    job.placed_gpus.push_back(static_cast<int>(g));
    digest_.begin_record(Tag::kPlace, t);
    digest_.mix_u64(static_cast<std::uint64_t>(job_id));
    digest_.mix_u64(static_cast<std::uint64_t>(g));
    digest_.mix_double(cfg_.job_memory_mb);
    if (trace_ != nullptr) {
      trace_->record(t, obs::EventKind::kPlace, job_id,
                     static_cast<std::int32_t>(g), cfg_.job_memory_mb);
    }
  }
  return true;
}

void DlEngine::evict(int job_id) {
  auto& job = jobs_[static_cast<std::size_t>(job_id)];
  for (int g : job.placed_gpus) {
    detach_job(job_id, static_cast<std::size_t>(g));
  }
  job.placed_gpus.clear();
}

void DlEngine::requeue(int job_id) {
  auto& job = jobs_[static_cast<std::size_t>(job_id)];
  if (!job.placed_gpus.empty()) evict(job_id);
  job.running = false;
  pending_.push_back(job_id);
  digest_.begin_record(Tag::kRequeue, sim_.now());
  digest_.mix_u64(static_cast<std::uint64_t>(job_id));
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), obs::EventKind::kRequeue, job_id);
  }
}

void DlEngine::migrate(int job_id, std::size_t from, std::size_t to) {
  auto& job = jobs_[static_cast<std::size_t>(job_id)];
  detach_job(job_id, from);
  attach_job(job_id, to);
  job.placed_gpus = {static_cast<int>(to)};
  const SimTime t = sim_.now();
  digest_.begin_record(Tag::kPlace, t);
  digest_.mix_u64(static_cast<std::uint64_t>(job_id));
  digest_.mix_u64(static_cast<std::uint64_t>(to));
  digest_.mix_double(cfg_.job_memory_mb);
  if (trace_ != nullptr) {
    trace_->record(t, obs::EventKind::kPlace, job_id,
                   static_cast<std::int32_t>(to), cfg_.job_memory_mb);
  }
  // Cross-node migrations on a live fabric drag the checkpoint over the
  // network: the target GPU stays paused for the analytic (uncontended)
  // transfer time on top of whatever pause the policy already charged. The
  // charge is folded as a flow record so digests distinguish topology-aware
  // from free migrations.
  const int src_node = node_of(from).value;
  const int dst_node = node_of(to).value;
  if (fabric_active() && cfg_.checkpoint_mb > 0 && src_node != dst_node) {
    SimTime xfer = fabric_->transfer_time(src_node, dst_node,
                                          cfg_.checkpoint_mb);
    if (xfer == kNever) xfer = kHour;  // path down: harsh but finite stall
    pause_gpu(to, t + xfer);
    const std::uint64_t flow = ++flow_seq_;
    digest_.begin_record(Tag::kFlowStart, t);
    digest_.mix_u64(flow);
    digest_.mix_u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(dst_node)));
    digest_.mix_double(cfg_.checkpoint_mb);
    digest_.begin_record(Tag::kFlowFinish, t);
    digest_.mix_u64(flow);
    if (trace_ != nullptr) {
      trace_->record(t, obs::EventKind::kFlowStart,
                     static_cast<std::int32_t>(flow), dst_node,
                     cfg_.checkpoint_mb,
                     net::to_string(net::FlowKind::kMigration));
      trace_->record(t, obs::EventKind::kFlowFinish,
                     static_cast<std::int32_t>(flow), 0, 0.0,
                     net::to_string(net::FlowKind::kMigration));
    }
  }
}

void DlEngine::crash_job(int job_id) {
  auto& job = jobs_[static_cast<std::size_t>(job_id)];
  // Progress rolls back to the last checkpoint; the relaunched container
  // rejoins the queue at the back.
  job.progress =
      (job.progress / cfg_.checkpoint_interval) * cfg_.checkpoint_interval;
  evict(job_id);
  job.running = false;
  ++job.restarts;
  const SimTime t = sim_.now();
  digest_.begin_record(Tag::kCrash, t);
  digest_.mix_u64(static_cast<std::uint64_t>(job_id));
  if (trace_ != nullptr) {
    trace_->record(t, obs::EventKind::kCrash, job_id);
  }
  pending_.push_back(job_id);
  digest_.begin_record(Tag::kRequeue, t);
  digest_.mix_u64(static_cast<std::uint64_t>(job_id));
  if (trace_ != nullptr) {
    trace_->record(t, obs::EventKind::kRequeue, job_id);
  }
}

cluster::SchedulingContext DlEngine::make_context() {
  cluster::SchedulingContext ctx;
  ctx.now = sim_.now();
  ctx.fault_feed = &fault_feed_;
  ctx.trace = trace_;
  ctx.extension = view_.get();
  return ctx;
}

void DlEngine::schedule_round() {
  auto ctx = make_context();
  policy_->on_schedule(ctx);
}

void DlEngine::run() {
  for (const auto& event : plan_.events) {
    sim_.schedule_at(event.at, [this, event] { apply_fault(event); });
  }
  sim::schedule_periodic(sim_, 0, cfg_.step,
                         [this](SimTime t) { return tick(t); });
  sim_.run_all();
  audit(/*deep=*/true);
}

bool DlEngine::tick(SimTime t) {
  if (completed_ >= jobs_.size() || t >= deadline_) {
    // Done (or past the horizon backstop): stop the periodic chain and
    // abandon any fault events scheduled beyond the end of the run.
    sim_.request_stop();
    return false;
  }
  ++ticks_;
  // Arrivals.
  while (next_job_ < jobs_.size() && jobs_[next_job_].arrival <= t) {
    pending_.push_back(static_cast<int>(next_job_));
    if (trace_ != nullptr) {
      trace_->record(t, obs::EventKind::kSubmit, jobs_[next_job_].id);
    }
    ++next_job_;
  }
  schedule_round();
  fault_feed_.clear();
  refresh_comm_factors();
  advance_jobs(t);
  serve_queries(t);

  const double watts = cluster_watts();
  energy_joules_ += watts * to_seconds(cfg_.step);
  if (metrics_ != nullptr) {
    metrics_->gauge("dlsim.pending_depth")
        .set(static_cast<double>(pending_.size()));
    metrics_->gauge("dlsim.power_watts").set(watts);
  }
  // Deep residency/conservation audit periodically and on the final tick;
  // the cheap monotonicity check runs every tick.
  audit(/*deep=*/(ticks_ % 60) == 0);
  return true;
}

double DlEngine::job_speed(const DltJob& job, SimTime t,
                           bool fault_effects) const {
  // Progress: time-sliced GPUs deliver 1/k to each resident; a gang runs
  // at the slowest of its GPUs; paused GPUs deliver nothing; a PCIe stall
  // on the hosting node divides what remains. Multi-GPU gangs on a live
  // fabric additionally pay the per-step all-reduce (comm_factor_, a
  // read-only snapshot refresh_comm_factors built serially this tick, so
  // lane-parallel callers never race).
  double speed = 1.0;
  for (int g : job.placed_gpus) {
    const auto gi = static_cast<std::size_t>(g);
    const int load_g = load(gi);
    double s = paused_until_[gi] > t
                   ? 0.0
                   : 1.0 / static_cast<double>(std::max(1, load_g));
    if (load_g > 1) s *= cfg_.slicing_overhead;
    if (fault_effects) s /= injector_.pcie_slowdown(node_of(gi), t);
    speed = std::min(speed, s);
  }
  // Device-class throughput: a V100/A100-class substrate retires the same
  // training step in 1/compute_factor of the P100 wall time (exact no-op
  // at the default 1.0).
  if (cfg_.gpu.compute_factor != 1.0) speed *= cfg_.gpu.compute_factor;
  if (!comm_factor_.empty()) {
    speed *= comm_factor_[static_cast<std::size_t>(job.id)];
  }
  return speed;
}

void DlEngine::refresh_comm_factors() {
  if (!fabric_active() || cfg_.allreduce_mb_per_step <= 0) {
    comm_factor_.clear();
    return;
  }
  comm_factor_.assign(jobs_.size(), 1.0);
  gang_routes_scratch_.clear();
  gang_jobs_scratch_.clear();
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const DltJob& job = jobs_[j];
    if (!job.running || job.done() || job.placed_gpus.size() < 2) continue;
    gang_nodes_scratch_.clear();
    for (int g : job.placed_gpus) {
      gang_nodes_scratch_.push_back(node_of(static_cast<std::size_t>(g)).value);
    }
    gang_routes_scratch_.push_back(fabric_->gang_route(gang_nodes_scratch_));
    gang_jobs_scratch_.push_back(j);
  }
  if (gang_jobs_scratch_.empty()) return;
  // One joint max-min share across every active gang: concurrent gangs on a
  // shared uplink or spine squeeze each other, exactly like flows do.
  const std::vector<double> rates = fabric_->stream_rates(gang_routes_scratch_);
  const double step_sec = to_seconds(cfg_.step);
  for (std::size_t i = 0; i < gang_jobs_scratch_.size(); ++i) {
    const double rate = rates[i];
    double factor = 1.0;
    if (rate <= 0.0) {
      factor = 0.0;  // path down: the gang stalls until the link recovers
    } else if (!std::isinf(rate)) {
      const double comm_sec = cfg_.allreduce_mb_per_step / rate;
      factor = step_sec / (step_sec + comm_sec);
    }
    comm_factor_[gang_jobs_scratch_[i]] = factor;
  }
}

void DlEngine::advance_jobs(SimTime t) {
  const bool fault_effects = injector_.any_effects();
  // Optimistic lane-parallel pre-pass: per-job deltas are a pure function
  // of the tick-entry placement snapshot (loads, pauses, stalls), so lanes
  // compute them concurrently over strided job slices.
  if (lane_exec_ != nullptr) {
    const auto lanes = static_cast<std::size_t>(cfg_.lanes);
    delta_scratch_.assign(jobs_.size(), 0);
    lane_exec_->for_each_lane([&](std::size_t lane) {
      for (std::size_t j = lane; j < jobs_.size(); j += lanes) {
        const DltJob& job = jobs_[j];
        if (!job.running || job.done()) continue;
        delta_scratch_[j] = static_cast<SimTime>(
            static_cast<double>(cfg_.step) * job_speed(job, t, fault_effects));
      }
    });
  }
  // Sequential apply in job order. The precomputed deltas are valid up to
  // and including the tick's first completion — completing a job evicts
  // it, changing the loads later jobs see — so from that point the apply
  // recomputes speeds live, which is exactly the single-lane behaviour.
  bool placements_dirty = false;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    DltJob& job = jobs_[j];
    if (!job.running || job.done()) continue;
    const SimTime delta =
        (lane_exec_ != nullptr && !placements_dirty)
            ? delta_scratch_[j]
            : static_cast<SimTime>(static_cast<double>(cfg_.step) *
                                   job_speed(job, t, fault_effects));
    job.progress += delta;
    job.attained += delta;
    if (job.progress >= job.service) {
      complete_job(job, t);
      placements_dirty = true;
    }
  }
}

void DlEngine::complete_job(DltJob& job, SimTime t) {
  job.completion = t + cfg_.step;
  evict(job.id);
  job.running = false;
  ++completed_;
  digest_.begin_record(Tag::kComplete, t);
  digest_.mix_u64(static_cast<std::uint64_t>(job.id));
  digest_.mix_double(static_cast<double>(job.progress));
  if (trace_ != nullptr) {
    trace_->record(t, obs::EventKind::kComplete, job.id, -1,
                   static_cast<double>(job.progress));
  }
  if (metrics_ != nullptr) metrics_->counter("dlsim.jobs_completed").inc();
}

void DlEngine::serve_queries(SimTime t) {
  while (next_query_ < queries_.size() && queries_[next_query_].arrival <= t) {
    const DliQuery& query = queries_[next_query_];
    const SimTime latency = policy_->serve_query(*view_, query);
    records_.push_back(DliRecord{query.arrival, latency, latency > query.qos});
    if (metrics_ != nullptr) {
      metrics_->counter("dlsim.queries").inc();
      metrics_->histogram("dlsim.query_latency_ms")
          .record(static_cast<double>(latency) /
                   static_cast<double>(kMsec));
      if (latency > query.qos) metrics_->counter("dlsim.qos_violations").inc();
    }
    ++next_query_;
  }
}

void DlEngine::apply_fault(const fault::FaultEvent& event) {
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), obs::EventKind::kFaultInject, event.node.value,
                   -1, event.severity, fault::to_string(event.kind));
  }
  switch (event.kind) {
    case fault::FaultKind::kNodeCrash:
      crash_node(event);
      break;
    case fault::FaultKind::kGpuEccDegrade:
      apply_ecc(event);
      break;
    case fault::FaultKind::kHeartbeatLoss:
      // The DL simulator has no telemetry pipeline to mute; the gap is
      // tallied so mixed plans stay valid across substrates.
      injector_.note_heartbeat_gap(event.node, sim_.now() + event.duration);
      fault_feed_.push_back(
          fault::FaultNotice{sim_.now(), event.kind, event.node, false});
      break;
    case fault::FaultKind::kPcieStall:
      injector_.note_pcie_stall(event.node, sim_.now(),
                                sim_.now() + event.duration, event.severity);
      fault_feed_.push_back(
          fault::FaultNotice{sim_.now(), event.kind, event.node, false});
      break;
    case fault::FaultKind::kLinkDown:
    case fault::FaultKind::kLinkDegrade: {
      // set_fault_plan already validated the name against the fabric.
      KNOTS_CHECK_MSG(fabric_ != nullptr,
                      "link fault installed without a fabric");
      const auto link = fabric_->link_index(event.link);
      KNOTS_CHECK_MSG(link.has_value(), "link fault names an unknown link");
      const bool hard = event.kind == fault::FaultKind::kLinkDown;
      if (hard) {
        fabric_->set_link_down(*link);
      } else {
        fabric_->degrade_link(*link, event.severity);
      }
      fault_feed_.push_back(
          fault::FaultNotice{sim_.now(), event.kind, event.node, false});
      if (event.duration > 0) {
        sim_.schedule_after(
            event.duration, [this, l = *link, hard, kind = event.kind] {
              if (hard) {
                fabric_->set_link_up(l);
              } else {
                fabric_->restore_link(l);
              }
              fault_feed_.push_back(
                  fault::FaultNotice{sim_.now(), kind, NodeId{}, true});
              if (trace_ != nullptr) {
                trace_->record(sim_.now(), obs::EventKind::kFaultRecover,
                               static_cast<std::int32_t>(l), -1, 0.0,
                               fault::to_string(kind));
              }
            });
      }
      break;
    }
  }
}

void DlEngine::crash_node(const fault::FaultEvent& event) {
  const SimTime t = sim_.now();
  if (!injector_.node_down(event.node)) {
    injector_.note_node_down(event.node);
    const auto ni = static_cast<std::size_t>(event.node.value);
    nodes_[ni].set_online(false);
    // Evict every job with a foot on this node (gangs spanning nodes lose
    // all their GPUs), in GPU-index order, deduplicated.
    std::vector<int> victims;
    const auto first = ni * static_cast<std::size_t>(cfg_.gpus_per_node);
    for (std::size_t g = first;
         g < first + static_cast<std::size_t>(cfg_.gpus_per_node); ++g) {
      for (int j : residents_[g]) {
        if (std::find(victims.begin(), victims.end(), j) == victims.end()) {
          victims.push_back(j);
        }
      }
    }
    for (int j : victims) {
      auto& job = jobs_[static_cast<std::size_t>(j)];
      // The relaunch restarts from the last checkpoint.
      job.progress = (job.progress / cfg_.checkpoint_interval) *
                     cfg_.checkpoint_interval;
      evict(j);
      job.running = false;
      ++job.restarts;
      ++jobs_evicted_;
      digest_.begin_record(Tag::kEvict, t);
      digest_.mix_u64(static_cast<std::uint64_t>(j));
      digest_.mix_u64(static_cast<std::uint64_t>(event.node.value));
      if (trace_ != nullptr) {
        trace_->record(t, obs::EventKind::kEvict, j, event.node.value);
      }
      pending_.push_back(j);
    }
    injector_.note_evictions(victims.size());
    digest_.begin_record(Tag::kNodeDown, t);
    digest_.mix_u64(static_cast<std::uint64_t>(event.node.value));
    if (trace_ != nullptr) {
      trace_->record(t, obs::EventKind::kNodeDown, event.node.value);
    }
    fault_feed_.push_back(
        fault::FaultNotice{t, fault::FaultKind::kNodeCrash, event.node, false});
    auto ctx = make_context();
    policy_->on_node_down(ctx, event.node);
  }
  if (event.duration > 0) {
    sim_.schedule_at(event.at + event.duration,
                     [this, node = event.node] { recover_node(node); });
  }
}

void DlEngine::recover_node(NodeId node_id) {
  if (!injector_.node_down(node_id)) return;  // absorbed (double recovery)
  const SimTime t = sim_.now();
  injector_.note_node_up(node_id);
  nodes_[static_cast<std::size_t>(node_id.value)].set_online(true);
  digest_.begin_record(Tag::kNodeUp, t);
  digest_.mix_u64(static_cast<std::uint64_t>(node_id.value));
  if (trace_ != nullptr) {
    trace_->record(t, obs::EventKind::kNodeUp, node_id.value);
    trace_->record(t, obs::EventKind::kFaultRecover, node_id.value, -1, 0.0,
                   fault::to_string(fault::FaultKind::kNodeCrash));
  }
  fault_feed_.push_back(
      fault::FaultNotice{t, fault::FaultKind::kNodeCrash, node_id, true});
  auto ctx = make_context();
  policy_->on_node_up(ctx, node_id);
}

void DlEngine::apply_ecc(const fault::FaultEvent& event) {
  injector_.note_ecc_degrade(event.node);
  const auto ni = static_cast<std::size_t>(event.node.value);
  const auto first = ni * static_cast<std::size_t>(cfg_.gpus_per_node);
  for (std::size_t g = first;
       g < first + static_cast<std::size_t>(cfg_.gpus_per_node); ++g) {
    devices_[g]->retire_memory_mb(event.severity);
    // Retired pages may undercut the resident working sets: crash the
    // most-recently-attached trainers until usage fits again (the cluster's
    // capacity-violation rule, applied at the ECC edge).
    while (!residents_[g].empty() &&
           devices_[g]->totals().memory_used_mb >
               devices_[g]->effective_memory_mb() + 1e-9) {
      ++capacity_crashes_;
      crash_job(residents_[g].back());
    }
  }
  fault_feed_.push_back(
      fault::FaultNotice{sim_.now(), event.kind, event.node, false});
}

double DlEngine::cluster_watts() const {
  double watts = 0.0;
  for (const auto& node : nodes_) watts += node.power_watts();
  return watts;
}

void DlEngine::audit(bool deep) {
  ++invariant_checks_;
  bool ok = sim_.now() >= last_audit_time_;  // time marches forward
  last_audit_time_ = sim_.now();
  if (deep) {
    // Residency index ↔ device truth, capacity bounds, offline emptiness.
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      const auto totals = devices_[g]->totals();
      ok = ok && static_cast<int>(residents_[g].size()) == totals.residents;
      ok = ok && totals.memory_provisioned_mb <=
                     devices_[g]->effective_memory_mb() + 1e-6;
      ok = ok && (gpu_online(g) || residents_[g].empty());
      for (int j : residents_[g]) {
        const auto& placed =
            jobs_[static_cast<std::size_t>(j)].placed_gpus;
        ok = ok && std::find(placed.begin(), placed.end(),
                             static_cast<int>(g)) != placed.end();
      }
    }
    // Job-state partition: running ⇔ fully placed; done ⇒ idle; the
    // completion counter conserves.
    std::size_t done_count = 0;
    for (const auto& job : jobs_) {
      if (job.done()) {
        ++done_count;
        ok = ok && !job.running;
      }
      if (job.running) {
        ok = ok && static_cast<int>(job.placed_gpus.size()) == job.gpus;
      } else {
        ok = ok && job.placed_gpus.empty();
      }
    }
    ok = ok && done_count == completed_;
    for (int p : pending_) {
      ok = ok && !jobs_[static_cast<std::size_t>(p)].running;
    }
  }
  if (!ok) {
    ++invariant_violations_;
    KNOTS_CHECK_MSG(false, "DL cluster invariant violation");
  }
}

void DlEngine::advance_to(SimTime t) {
  KNOTS_CHECK(t >= sim_.now());
  sim_.schedule_at(t, [] {});
  sim_.run_all();
}

DlResult DlEngine::result() const {
  DlResult result;
  result.policy = policy_->name();
  result.dlt_total = jobs_.size();
  for (const auto& job : jobs_) {
    if (!job.done()) continue;
    result.jct_hours.push_back(
        static_cast<double>(job.completion - job.arrival) /
        static_cast<double>(kHour));
  }
  result.dlt_completed = result.jct_hours.size();
  if (!result.jct_hours.empty()) {
    double sum = 0;
    for (double j : result.jct_hours) sum += j;
    result.avg_jct_h = sum / static_cast<double>(result.jct_hours.size());
    result.median_jct_h = percentile(result.jct_hours, 50);
    result.p99_jct_h = percentile(result.jct_hours, 99);
  }
  result.queries = records_;
  for (const auto& q : records_) {
    result.dli_violations += q.violated ? 1 : 0;
  }
  const double hours =
      static_cast<double>(horizon_) / static_cast<double>(kHour);
  result.violations_per_hour =
      static_cast<double>(result.dli_violations) / hours;
  result.crash_restarts = policy_->crash_restarts();
  result.migrations = policy_->migrations();
  result.preemptions = policy_->preemptions();

  result.run_digest = digest_.value();
  result.digest_events = digest_.events();
  const auto& stats = injector_.stats();
  result.node_crashes = stats.node_crashes;
  result.node_recoveries = stats.node_recoveries;
  result.jobs_evicted = jobs_evicted_;
  result.capacity_crashes = capacity_crashes_;
  result.energy_joules = energy_joules_;
  result.mean_power_watts =
      ticks_ > 0 ? energy_joules_ / (static_cast<double>(ticks_) *
                                     to_seconds(cfg_.step))
                 : 0.0;
  result.invariant_checks = invariant_checks_;
  result.invariant_violations = invariant_violations_;
  return result;
}

DlResult run_dl_simulation(const std::string& policy,
                           const DlClusterConfig& cluster,
                           const DlWorkloadConfig& workload,
                           std::uint64_t seed, const DlRunOptions& options) {
  Rng rng(seed);
  return run_dl_simulation(policy, cluster,
                           generate_dl_workload(workload, rng.fork(1)), seed,
                           options);
}

DlResult run_dl_simulation(const std::string& policy,
                           const DlClusterConfig& cluster,
                           const DlWorkload& workload, std::uint64_t seed,
                           const DlRunOptions& options) {
  register_dl_schedulers();
  auto scheduler = sched::make_scheduler(policy);
  auto* dl = dynamic_cast<DlScheduler*>(scheduler.get());
  KNOTS_CHECK_MSG(dl != nullptr, "named scheduler is not a DL policy");
  DlEngine engine(cluster, *dl, seed);
  engine.load(workload);
  engine.set_fault_plan(options.faults);
  engine.set_trace(options.trace);
  engine.set_metrics(options.metrics);
  engine.run();
  return engine.result();
}

}  // namespace knots::dlsim
