#include "dlsim/dl_policies.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "core/check.hpp"
#include "sched/registry.hpp"

namespace knots::dlsim {

void DlScheduler::on_schedule(cluster::SchedulingContext& ctx) {
  KNOTS_CHECK_MSG(ctx.extension != nullptr,
                  "DL policies schedule through a DlSchedView extension");
  schedule(static_cast<DlSchedView&>(*ctx.extension));
}

std::size_t DlScheduler::random_gpu(DlSchedView& view) {
  return static_cast<std::size_t>(view.rng().uniform_int(
      0, static_cast<std::int64_t>(view.gpu_count()) - 1));
}

void DlScheduler::crash_trainer(DlSchedView& view, std::size_t gpu) {
  const auto& residents = view.residents(gpu);
  if (residents.empty()) return;
  // Progress rolls back to the last checkpoint; the container relaunches
  // and the job rejoins the FCFS queue at the back (§IV-C: relaunched tasks
  // cannot be prioritized over tasks already ahead in the queue).
  view.crash_job(residents.front());
  ++crashes_;
  view.pause_gpu(gpu, view.now() + view.config().restart_pause);
}

// ---------------------------------------------------------------- Res-Ag --

void ResAgDlPolicy::schedule(DlSchedView& view) {
  // Strict FCFS gang placement on exclusive GPUs; the head blocks the rest.
  auto& pending = view.pending();
  while (!pending.empty()) {
    const int head = pending.front();
    auto& job = view.job(head);
    if (!view.place(head, job.gpus, /*max_share=*/1)) break;
    job.running = true;
    pending.erase(pending.begin());
  }
}

SimTime ResAgDlPolicy::serve_query(DlSchedView& view, const DliQuery& query) {
  const DlClusterConfig& cfg = view.config();
  // Blind placement: any GPU, busy or not.
  const std::size_t gpu = random_gpu(view);
  if (view.free(gpu)) return query.base_latency;
  // Blocked behind non-preemptive training kernels…
  SimTime latency = static_cast<SimTime>(
      static_cast<double>(query.base_latency) *
      (1.0 + cfg.dli_blocking * static_cast<double>(view.load(gpu))));
  // …and TF's greedy allocator may blow the device's memory, crashing the
  // co-located trainer and forcing the query itself to relaunch elsewhere.
  if (view.rng().chance(cfg.crash_prob)) {
    crash_trainer(view, gpu);
    latency += cfg.restart_pause / 20 + query.base_latency;  // retry cost
  }
  return latency;
}

// --------------------------------------------------------------- Gandiva --

void GandivaDlPolicy::schedule(DlSchedView& view) {
  const DlClusterConfig& cfg = view.config();
  // Pass 0: de-slice — once a shared trainer outgrows the young threshold,
  // migrate its cohabitant to a free GPU when one exists.
  for (std::size_t g = 0; g < view.gpu_count(); ++g) {
    if (view.load(g) < 2) continue;
    bool has_old = false;
    for (int j : view.residents(g)) {
      if (view.job(j).attained > cfg.slice_young_threshold) has_old = true;
    }
    if (!has_old) continue;
    // Move the youngest single-GPU resident to a free GPU (gangs stay put).
    int mover = -1;
    for (int j : view.residents(g)) {
      const auto& res = view.job(j);
      if (res.placed_gpus.size() != 1) continue;
      if (mover < 0 || res.attained < view.job(mover).attained) mover = j;
    }
    if (mover < 0) continue;
    const std::size_t target = view.first_serviceable_gpu();
    if (target != DlEngine::npos) {
      view.migrate(mover, g, target);
      view.pause_gpu(target, view.now() + cfg.migration_pause);
      ++migrations_;
    } else {
      // Trial-and-error fallback: suspend the young cohabitant back to the
      // queue so the long trainer regains exclusive access.
      view.requeue(mover);
      ++migrations_;
    }
  }

  // Pass 1: exclusive placement while GPUs are free.
  auto& pending = view.pending();
  while (!pending.empty()) {
    const int head = pending.front();
    auto& job = view.job(head);
    if (!view.place(head, job.gpus, /*max_share=*/1)) break;
    job.running = true;
    pending.erase(pending.begin());
  }
  // Pass 2: introspective oversubscription — when jobs still queue, pack
  // them two-way onto GPUs whose incumbent trainer is still young (long
  // trainers keep exclusive GPUs; GPUs with old incumbents are ineligible).
  auto incumbent_young = [&](std::size_t g) {
    for (int j : view.residents(g)) {
      const auto& res = view.job(j);
      if (res.attained > cfg.slice_young_threshold) return false;
      // Never slice under a gang: one shared member halves the whole gang.
      if (res.gpus > 1) return false;
    }
    return true;
  };
  while (!pending.empty()) {
    const int head = pending.front();
    auto& job = view.job(head);
    if (!view.place(head, job.gpus, /*max_share=*/2, incumbent_young)) break;
    job.running = true;
    pending.erase(pending.begin());
    ++migrations_;
    for (int g : job.placed_gpus) {
      const auto gi = static_cast<std::size_t>(g);
      if (view.load(gi) > 1) {
        view.pause_gpu(gi, view.now() + cfg.migration_pause);
      }
    }
  }
}

SimTime GandivaDlPolicy::serve_query(DlSchedView& view,
                                     const DliQuery& query) {
  const DlClusterConfig& cfg = view.config();
  const std::size_t gpu = random_gpu(view);
  const double factor =
      1.0 + cfg.dli_blocking * static_cast<double>(view.load(gpu));
  SimTime latency = static_cast<SimTime>(
      static_cast<double>(query.base_latency) * factor);
  if (!view.free(gpu)) {
    // Time-slice quantum wait: the query queues for the incumbent's slice.
    latency += static_cast<SimTime>(
        view.rng().uniform(0.0, 80.0 * static_cast<double>(kMsec)));
  }
  // A migration in flight on the chosen GPU stalls the query outright.
  if (view.paused_until(gpu) > view.now()) {
    latency += std::min<SimTime>(view.paused_until(gpu) - view.now(),
                                 cfg.migration_pause);
  }
  return latency;
}

// -------------------------------------------------------------- Tiresias --

void TiresiasDlPolicy::schedule(DlSchedView& view) {
  const DlClusterConfig& cfg = view.config();
  auto& pending = view.pending();
  if (view.now() - last_quantum_ < cfg.quantum) {
    // Between quanta, only fill genuinely free GPUs FCFS (no preemption).
    for (auto it = pending.begin(); it != pending.end();) {
      auto& job = view.job(*it);
      if (view.place(*it, job.gpus, 1)) {
        job.running = true;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    return;
  }
  last_quantum_ = view.now();

  // Discretized LAS: rank every live job by attained service (least first)
  // and rebuild the allocation greedily; descheduled jobs pay a suspend.
  std::vector<int> live;
  for (const auto& job : view.jobs()) {
    if (!job.done() && job.arrival <= view.now()) live.push_back(job.id);
  }
  // Two-queue discretization: attained service saturates at the cap, so
  // long-running jobs stop losing priority (no starvation) and compete
  // FIFO among themselves.
  std::stable_sort(live.begin(), live.end(), [&](int a, int b) {
    const auto& ja = view.job(a);
    const auto& jb = view.job(b);
    const SimTime ka = std::min(ja.attained, cfg.las_attained_cap);
    const SimTime kb = std::min(jb.attained, cfg.las_attained_cap);
    if (ka != kb) return ka < kb;
    return ja.arrival < jb.arrival;
  });

  std::vector<int> previously_running;
  for (auto& job : view.jobs()) {
    if (job.running) previously_running.push_back(job.id);
  }
  for (int id : previously_running) {
    view.evict(id);
    view.job(id).running = false;
  }
  pending.clear();

  for (int id : live) {
    auto& job = view.job(id);
    if (view.place(id, job.gpus, 1)) {
      job.running = true;
      const bool was_running =
          std::find(previously_running.begin(), previously_running.end(),
                    id) != previously_running.end();
      if (!was_running && job.attained > 0) {
        // Resuming a suspended job costs a pause on its GPUs.
        ++preemptions_;
        for (int g : job.placed_gpus) {
          view.pause_gpu(static_cast<std::size_t>(g),
                         view.now() + cfg.preemption_pause);
        }
      }
    } else {
      pending.push_back(id);
    }
  }
}

SimTime TiresiasDlPolicy::serve_query(DlSchedView& view,
                                      const DliQuery& query) {
  const DlClusterConfig& cfg = view.config();
  // A free GPU serves the query natively.
  for (std::size_t g = 0; g < view.gpu_count(); ++g) {
    if (view.gpu_serviceable(g)) return query.base_latency;
  }
  // Otherwise Tiresias usually preempts a trainer to prioritize the short
  // query (suspend/resume overhead inflates it a little); the rest queue
  // behind the running quantum.
  if (view.rng().chance(cfg.tiresias_dli_priority)) {
    ++preemptions_;
    return static_cast<SimTime>(
        static_cast<double>(query.base_latency) * 1.2);
  }
  const SimTime wait = static_cast<SimTime>(
      view.rng().uniform(0.0, 2.0 * static_cast<double>(kSec)));
  return query.base_latency + wait;
}

void TiresiasDlPolicy::on_node_down(cluster::SchedulingContext& /*ctx*/,
                                    NodeId /*node*/) {
  last_quantum_ = -kHour;
}

// ---------------------------------------------------------------- CBP+PP --

void CbpPpDlPolicy::schedule(DlSchedView& view) {
  // Crash-free FCFS with backfill: the head waits for its gang, but smaller
  // jobs behind it may start on GPUs the head cannot use yet (utilization-
  // aware harvesting keeps them safe), bounded to a small lookahead so the
  // head cannot starve.
  auto& pending = view.pending();
  std::size_t scanned = 0;
  for (auto it = pending.begin(); it != pending.end() && scanned < 64;
       ++scanned) {
    auto& job = view.job(*it);
    if (view.place(*it, job.gpus, 1)) {
      job.running = true;
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
}

SimTime CbpPpDlPolicy::serve_query(DlSchedView& view, const DliQuery& query) {
  const DlClusterConfig& cfg = view.config();
  // Prefer a free GPU.
  for (std::size_t g = 0; g < view.gpu_count(); ++g) {
    if (view.gpu_serviceable(g)) return query.base_latency;
  }
  // Otherwise co-locate into a predicted mini-batch lull. With probability
  // = forecast accuracy the query slips into the lull (near-native speed);
  // a misprediction collides with the compute phase.
  const std::size_t gpu = random_gpu(view);
  if (view.rng().chance(cfg.pp_accuracy)) {
    return static_cast<SimTime>(
        static_cast<double>(query.base_latency) * 1.15);
  }
  return static_cast<SimTime>(
      static_cast<double>(query.base_latency) *
      (1.0 +
       cfg.dli_blocking * static_cast<double>(std::max(1, view.load(gpu)))));
}

// ------------------------------------------------------------- CBP-Local --

bool CbpLocalDlPolicy::place_local(DlSchedView& view, int job, int gang) {
  const DlClusterConfig& cfg = view.config();
  const std::size_t gpu_count = view.gpu_count();
  const auto nodes = static_cast<int>(
      gpu_count / static_cast<std::size_t>(cfg.gpus_per_node));

  // Serviceable-GPU census per node (exclusive placement: a candidate GPU
  // is online, empty, unpaused and fits one trainer — view.place re-checks
  // all of it, the census only ranks locality domains).
  std::vector<int> node_free(static_cast<std::size_t>(nodes), 0);
  for (std::size_t g = 0; g < gpu_count; ++g) {
    if (view.gpu_serviceable(g)) {
      ++node_free[static_cast<std::size_t>(view.node_of(g).value)];
    }
  }

  // Pass 1: best-fit node — the fullest node that still holds the whole
  // gang (ties: lowest index). Packing under one host keeps the all-reduce
  // on NVLink and leaves big nodes free for big gangs.
  int best_node = -1;
  for (int n = 0; n < nodes; ++n) {
    const int free = node_free[static_cast<std::size_t>(n)];
    if (free < gang) continue;
    if (best_node < 0 ||
        free < node_free[static_cast<std::size_t>(best_node)]) {
      best_node = n;
    }
  }
  if (best_node >= 0 &&
      view.place(job, gang, /*max_share=*/1, [&](std::size_t g) {
        return view.node_of(g).value == best_node;
      })) {
    return true;
  }

  // Pass 2: best-fit ToR — same rule one tier up; the gang spans nodes but
  // its gradient exchange stays under one switch.
  int tors = 1;
  for (int n = 0; n < nodes; ++n) {
    tors = std::max(tors, view.tor_of(NodeId{n}) + 1);
  }
  std::vector<int> tor_free(static_cast<std::size_t>(tors), 0);
  for (int n = 0; n < nodes; ++n) {
    tor_free[static_cast<std::size_t>(view.tor_of(NodeId{n}))] +=
        node_free[static_cast<std::size_t>(n)];
  }
  int best_tor = -1;
  for (int t = 0; t < tors; ++t) {
    const int free = tor_free[static_cast<std::size_t>(t)];
    if (free < gang) continue;
    if (best_tor < 0 || free < tor_free[static_cast<std::size_t>(best_tor)]) {
      best_tor = t;
    }
  }
  if (best_tor >= 0 &&
      view.place(job, gang, /*max_share=*/1, [&](std::size_t g) {
        return view.tor_of(view.node_of(g)) == best_tor;
      })) {
    return true;
  }

  // Pass 3: anywhere — exactly CBP+PP's placement.
  return view.place(job, gang, /*max_share=*/1);
}

void CbpLocalDlPolicy::schedule(DlSchedView& view) {
  // CBP+PP's FCFS-with-bounded-backfill admission, with the three-pass
  // locality placement swapped in.
  auto& pending = view.pending();
  std::size_t scanned = 0;
  for (auto it = pending.begin(); it != pending.end() && scanned < 64;
       ++scanned) {
    auto& job = view.job(*it);
    if (place_local(view, *it, job.gpus)) {
      job.running = true;
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
}

void register_dl_schedulers() {
  static std::once_flag once;
  std::call_once(once, [] {
    sched::register_scheduler("resag", [](const sched::SchedParams&) {
      return std::make_unique<ResAgDlPolicy>();
    });
    sched::register_scheduler("gandiva", [](const sched::SchedParams&) {
      return std::make_unique<GandivaDlPolicy>();
    });
    sched::register_scheduler("tiresias", [](const sched::SchedParams&) {
      return std::make_unique<TiresiasDlPolicy>();
    });
    sched::register_scheduler("cbp-pp", [](const sched::SchedParams&) {
      return std::make_unique<CbpPpDlPolicy>();
    });
    sched::register_scheduler("cbp-local", [](const sched::SchedParams&) {
      return std::make_unique<CbpLocalDlPolicy>();
    });
  });
}

}  // namespace knots::dlsim
