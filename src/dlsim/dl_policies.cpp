#include "dlsim/dl_policies.hpp"

#include <algorithm>
#include <numeric>

#include "core/check.hpp"

namespace knots::dlsim {

std::size_t DlPolicyImpl::random_gpu(const DlState& state) {
  return static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(state.gpus.size()) - 1));
}

void DlPolicyImpl::crash_trainer(DlState& state, std::size_t gpu) {
  auto& slot = state.gpus[gpu];
  if (slot.jobs.empty()) return;
  const int victim = slot.jobs.front();
  auto& job = state.jobs[static_cast<std::size_t>(victim)];
  // Progress rolls back to the last checkpoint; the container relaunches
  // and the job rejoins the FCFS queue at the back (§IV-C: relaunched tasks
  // cannot be prioritized over tasks already ahead in the queue).
  job.progress =
      (job.progress / cfg_.checkpoint_interval) * cfg_.checkpoint_interval;
  state.evict(victim);
  job.running = false;
  ++job.restarts;
  ++crashes_;
  state.pending.push_back(victim);
  slot.paused_until = std::max(slot.paused_until,
                               state.now + cfg_.restart_pause);
}

// ---------------------------------------------------------------- Res-Ag --

void ResAgDlPolicy::schedule(DlState& state) {
  // Strict FCFS gang placement on exclusive GPUs; the head blocks the rest.
  while (!state.pending.empty()) {
    const int head = state.pending.front();
    auto& job = state.jobs[static_cast<std::size_t>(head)];
    if (!state.place(head, job.gpus, /*max_share=*/1)) break;
    job.running = true;
    state.pending.erase(state.pending.begin());
  }
}

SimTime ResAgDlPolicy::serve_query(DlState& state, const DliQuery& query) {
  // Blind placement: any GPU, busy or not.
  const std::size_t gpu = random_gpu(state);
  const auto& slot = state.gpus[gpu];
  if (slot.free()) return query.base_latency;
  // Blocked behind non-preemptive training kernels…
  SimTime latency = static_cast<SimTime>(
      static_cast<double>(query.base_latency) *
      (1.0 + cfg_.dli_blocking * static_cast<double>(slot.load())));
  // …and TF's greedy allocator may blow the device's memory, crashing the
  // co-located trainer and forcing the query itself to relaunch elsewhere.
  if (rng_.chance(cfg_.crash_prob)) {
    crash_trainer(state, gpu);
    latency += cfg_.restart_pause / 20 + query.base_latency;  // retry cost
  }
  return latency;
}

// --------------------------------------------------------------- Gandiva --

void GandivaDlPolicy::schedule(DlState& state) {
  // Pass 0: de-slice — once a shared trainer outgrows the young threshold,
  // migrate its cohabitant to a free GPU when one exists.
  for (std::size_t g = 0; g < state.gpus.size(); ++g) {
    auto& slot = state.gpus[g];
    if (slot.load() < 2) continue;
    bool has_old = false;
    for (int j : slot.jobs) {
      if (state.jobs[static_cast<std::size_t>(j)].attained >
          cfg_.slice_young_threshold) {
        has_old = true;
      }
    }
    if (!has_old) continue;
    // Move the youngest single-GPU resident to a free GPU (gangs stay put).
    int mover = -1;
    for (int j : slot.jobs) {
      const auto& res = state.jobs[static_cast<std::size_t>(j)];
      if (res.placed_gpus.size() != 1) continue;
      if (mover < 0 ||
          res.attained < state.jobs[static_cast<std::size_t>(mover)].attained) {
        mover = j;
      }
    }
    if (mover < 0) continue;
    auto& mjob = state.jobs[static_cast<std::size_t>(mover)];
    bool moved = false;
    for (std::size_t h = 0; h < state.gpus.size(); ++h) {
      if (state.gpus[h].free() && state.gpus[h].paused_until <= state.now) {
        std::erase(slot.jobs, mover);
        state.gpus[h].jobs.push_back(mover);
        mjob.placed_gpus = {static_cast<int>(h)};
        state.gpus[h].paused_until = state.now + cfg_.migration_pause;
        ++migrations_;
        moved = true;
        break;
      }
    }
    if (!moved) {
      // Trial-and-error fallback: suspend the young cohabitant back to the
      // queue so the long trainer regains exclusive access.
      state.evict(mover);
      mjob.running = false;
      state.pending.push_back(mover);
      ++migrations_;
    }
  }

  // Pass 1: exclusive placement while GPUs are free.
  while (!state.pending.empty()) {
    const int head = state.pending.front();
    auto& job = state.jobs[static_cast<std::size_t>(head)];
    if (!state.place(head, job.gpus, /*max_share=*/1)) break;
    job.running = true;
    state.pending.erase(state.pending.begin());
  }
  // Pass 2: introspective oversubscription — when jobs still queue, pack
  // them two-way onto GPUs whose incumbent trainer is still young (long
  // trainers keep exclusive GPUs). Each trial-and-error placement migrates
  // the incumbent (pause).
  auto incumbent_young = [&](const GpuSlot& slot) {
    for (int j : slot.jobs) {
      const auto& res = state.jobs[static_cast<std::size_t>(j)];
      if (res.attained > cfg_.slice_young_threshold) return false;
      // Never slice under a gang: one shared member halves the whole gang.
      if (res.gpus > 1) return false;
    }
    return true;
  };
  while (!state.pending.empty()) {
    const int head = state.pending.front();
    auto& job = state.jobs[static_cast<std::size_t>(head)];
    // Temporarily mask GPUs with old incumbents by treating them as full.
    std::vector<std::size_t> masked;
    for (std::size_t g = 0; g < state.gpus.size(); ++g) {
      if (!state.gpus[g].free() && !incumbent_young(state.gpus[g])) {
        masked.push_back(g);
        state.gpus[g].jobs.push_back(-1);  // sentinel blocks sharing
      }
    }
    const bool ok = state.place(head, job.gpus, /*max_share=*/2);
    for (std::size_t g : masked) state.gpus[g].jobs.pop_back();
    if (!ok) break;
    job.running = true;
    state.pending.erase(state.pending.begin());
    ++migrations_;
    for (int g : job.placed_gpus) {
      auto& slot = state.gpus[static_cast<std::size_t>(g)];
      if (slot.load() > 1) {
        slot.paused_until =
            std::max(slot.paused_until, state.now + cfg_.migration_pause);
      }
    }
  }
}

SimTime GandivaDlPolicy::serve_query(DlState& state, const DliQuery& query) {
  const std::size_t gpu = random_gpu(state);
  const auto& slot = state.gpus[gpu];
  double factor = 1.0 + cfg_.dli_blocking * static_cast<double>(slot.load());
  SimTime latency = static_cast<SimTime>(
      static_cast<double>(query.base_latency) * factor);
  if (!slot.free()) {
    // Time-slice quantum wait: the query queues for the incumbent's slice.
    latency += static_cast<SimTime>(
        rng_.uniform(0.0, 80.0 * static_cast<double>(kMsec)));
  }
  // A migration in flight on the chosen GPU stalls the query outright.
  if (slot.paused_until > state.now) {
    latency += std::min<SimTime>(slot.paused_until - state.now,
                                 cfg_.migration_pause);
  }
  return latency;
}

// -------------------------------------------------------------- Tiresias --

void TiresiasDlPolicy::schedule(DlState& state) {
  if (state.now - last_quantum_ < cfg_.quantum) {
    // Between quanta, only fill genuinely free GPUs FCFS (no preemption).
    for (auto it = state.pending.begin(); it != state.pending.end();) {
      auto& job = state.jobs[static_cast<std::size_t>(*it)];
      if (state.place(*it, job.gpus, 1)) {
        job.running = true;
        it = state.pending.erase(it);
      } else {
        ++it;
      }
    }
    return;
  }
  last_quantum_ = state.now;

  // Discretized LAS: rank every live job by attained service (least first)
  // and rebuild the allocation greedily; descheduled jobs pay a suspend.
  std::vector<int> live;
  for (const auto& job : state.jobs) {
    if (!job.done() && job.arrival <= state.now) {
      live.push_back(job.id);
    }
  }
  // Two-queue discretization: attained service saturates at the cap, so
  // long-running jobs stop losing priority (no starvation) and compete
  // FIFO among themselves.
  std::stable_sort(live.begin(), live.end(), [&](int a, int b) {
    const auto& ja = state.jobs[static_cast<std::size_t>(a)];
    const auto& jb = state.jobs[static_cast<std::size_t>(b)];
    const SimTime ka = std::min(ja.attained, cfg_.las_attained_cap);
    const SimTime kb = std::min(jb.attained, cfg_.las_attained_cap);
    if (ka != kb) return ka < kb;
    return ja.arrival < jb.arrival;
  });

  std::vector<int> previously_running;
  for (auto& job : state.jobs) {
    if (job.running) previously_running.push_back(job.id);
  }
  for (int id : previously_running) {
    state.evict(id);
    state.jobs[static_cast<std::size_t>(id)].running = false;
  }
  state.pending.clear();

  for (int id : live) {
    auto& job = state.jobs[static_cast<std::size_t>(id)];
    if (state.place(id, job.gpus, 1)) {
      job.running = true;
      const bool was_running =
          std::find(previously_running.begin(), previously_running.end(),
                    id) != previously_running.end();
      if (!was_running && job.attained > 0) {
        // Resuming a suspended job costs a pause on its GPUs.
        ++preemptions_;
        for (int g : job.placed_gpus) {
          auto& slot = state.gpus[static_cast<std::size_t>(g)];
          slot.paused_until =
              std::max(slot.paused_until, state.now + cfg_.preemption_pause);
        }
      }
    } else {
      state.pending.push_back(id);
    }
  }
}

SimTime TiresiasDlPolicy::serve_query(DlState& state, const DliQuery& query) {
  // A free GPU serves the query natively.
  for (const auto& slot : state.gpus) {
    if (slot.free() && slot.paused_until <= state.now) {
      return query.base_latency;
    }
  }
  // Otherwise Tiresias usually preempts a trainer to prioritize the short
  // query (suspend/resume overhead inflates it a little); the rest queue
  // behind the running quantum.
  if (rng_.chance(cfg_.tiresias_dli_priority)) {
    ++preemptions_;
    return static_cast<SimTime>(
        static_cast<double>(query.base_latency) * 1.2);
  }
  const SimTime wait =
      static_cast<SimTime>(rng_.uniform(0.0, 2.0 * static_cast<double>(kSec)));
  return query.base_latency + wait;
}

// ---------------------------------------------------------------- CBP+PP --

void CbpPpDlPolicy::schedule(DlState& state) {
  // Crash-free FCFS with backfill: the head waits for its gang, but smaller
  // jobs behind it may start on GPUs the head cannot use yet (utilization-
  // aware harvesting keeps them safe), bounded to a small lookahead so the
  // head cannot starve.
  std::size_t scanned = 0;
  for (auto it = state.pending.begin();
       it != state.pending.end() && scanned < 64; ++scanned) {
    auto& job = state.jobs[static_cast<std::size_t>(*it)];
    if (state.place(*it, job.gpus, 1)) {
      job.running = true;
      it = state.pending.erase(it);
    } else {
      ++it;
    }
  }
}

SimTime CbpPpDlPolicy::serve_query(DlState& state, const DliQuery& query) {
  // Prefer a free GPU.
  for (const auto& slot : state.gpus) {
    if (slot.free() && slot.paused_until <= state.now) {
      return query.base_latency;
    }
  }
  // Otherwise co-locate into a predicted mini-batch lull. With probability
  // = forecast accuracy the query slips into the lull (near-native speed);
  // a misprediction collides with the compute phase.
  const std::size_t gpu = random_gpu(state);
  const auto& slot = state.gpus[gpu];
  if (rng_.chance(cfg_.pp_accuracy)) {
    return static_cast<SimTime>(static_cast<double>(query.base_latency) * 1.15);
  }
  return static_cast<SimTime>(
      static_cast<double>(query.base_latency) *
      (1.0 + cfg_.dli_blocking * static_cast<double>(std::max(1, slot.load()))));
}

std::unique_ptr<DlPolicyImpl> make_dl_policy(DlPolicy policy,
                                             const DlClusterConfig& config,
                                             Rng rng) {
  switch (policy) {
    case DlPolicy::kResAg:
      return std::make_unique<ResAgDlPolicy>(config, rng);
    case DlPolicy::kGandiva:
      return std::make_unique<GandivaDlPolicy>(config, rng);
    case DlPolicy::kTiresias:
      return std::make_unique<TiresiasDlPolicy>(config, rng);
    case DlPolicy::kCbpPp:
      return std::make_unique<CbpPpDlPolicy>(config, rng);
  }
  return nullptr;
}

}  // namespace knots::dlsim
