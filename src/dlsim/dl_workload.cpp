#include "dlsim/dl_workload.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots::dlsim {

namespace {
/// Gang sizes follow the Microsoft/Tiresias skew: most jobs are single-GPU.
int sample_gang(Rng& rng) {
  static const int kSizes[] = {1, 2, 4, 8};
  const std::size_t idx = rng.weighted_index({0.62, 0.18, 0.12, 0.08});
  return kSizes[idx];
}

/// Service times span minutes to hours, log-normally (Tiresias Fig 2-like).
/// Sized so the 520-job trace keeps the 256-GPU cluster near capacity —
/// the regime where scheduler differences matter.
SimTime sample_service(Rng& rng, int mix_id) {
  // Mix bins shift the size distribution: mix 1 (high load) trains longer.
  const double mu = mix_id == 1 ? 4.8 : (mix_id == 2 ? 4.5 : 4.2);
  const double minutes = rng.lognormal(mu, 1.0);  // mix 1 median ≈ 2 h
  const double clamped = std::clamp(minutes, 5.0, 600.0);
  return static_cast<SimTime>(clamped * static_cast<double>(kMinute));
}
}  // namespace

DlWorkload generate_dl_workload(const DlWorkloadConfig& config, Rng rng) {
  KNOTS_CHECK(config.dlt_jobs > 0 && config.dli_queries > 0);
  DlWorkload wl;
  wl.horizon = config.window;
  Rng job_rng = rng.fork(11);
  Rng query_rng = rng.fork(12);

  // DLT arrivals: uniform-with-bursts over the first 80 % of the window so
  // late jobs can still finish inside the simulation horizon.
  wl.jobs.reserve(static_cast<std::size_t>(config.dlt_jobs));
  for (int i = 0; i < config.dlt_jobs; ++i) {
    DltJob job;
    job.id = i;
    job.arrival = static_cast<SimTime>(
        job_rng.uniform(0.0, 0.8 * static_cast<double>(config.window)));
    job.gpus = sample_gang(job_rng);
    job.service = sample_service(job_rng, config.mix_id);
    job.lull_fraction = job_rng.uniform(0.10, 0.25);
    wl.jobs.push_back(job);
  }
  std::sort(wl.jobs.begin(), wl.jobs.end(),
            [](const DltJob& a, const DltJob& b) {
              return a.arrival < b.arrival;
            });
  for (int i = 0; i < config.dlt_jobs; ++i) wl.jobs[static_cast<std::size_t>(i)].id = i;

  wl.queries.reserve(static_cast<std::size_t>(config.dli_queries));
  for (int i = 0; i < config.dli_queries; ++i) {
    DliQuery q;
    q.id = i;
    q.arrival = static_cast<SimTime>(
        query_rng.uniform(0.0, static_cast<double>(config.window)));
    const double ms = query_rng.uniform(10.0, 50.0);
    q.base_latency = static_cast<SimTime>(ms * static_cast<double>(kMsec));
    q.qos = 150 * kMsec;
    q.mix = config.mix_id;
    wl.queries.push_back(q);
  }
  std::sort(wl.queries.begin(), wl.queries.end(),
            [](const DliQuery& a, const DliQuery& b) {
              return a.arrival < b.arrival;
            });
  for (int i = 0; i < config.dli_queries; ++i) {
    wl.queries[static_cast<std::size_t>(i)].id = i;
  }
  return wl;
}

}  // namespace knots::dlsim
