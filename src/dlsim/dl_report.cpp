#include "dlsim/dl_report.hpp"

#include <algorithm>
#include <ostream>

#include "core/check.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"

namespace knots::dlsim {

std::vector<DlResult> run_all_policies(const DlClusterConfig& cluster,
                                       const DlWorkloadConfig& workload,
                                       std::uint64_t seed) {
  std::vector<DlResult> results(kDlPolicyNames.size());
  ThreadPool pool(4);
  pool.parallel_for(kDlPolicyNames.size(), [&](std::size_t i) {
    results[i] = run_dl_simulation(std::string(kDlPolicyNames[i]), cluster,
                                   workload, seed);
  });
  return results;
}

std::vector<JctRatios> normalized_jct(const std::vector<DlResult>& results) {
  const DlResult* base = nullptr;
  for (const auto& r : results) {
    if (r.policy == "CBP+PP") base = &r;
  }
  KNOTS_CHECK_MSG(base != nullptr, "CBP+PP result required for Table IV");
  std::vector<JctRatios> out;
  for (const auto& r : results) {
    if (&r == base) continue;
    JctRatios ratio;
    ratio.policy = r.policy;
    ratio.avg = base->avg_jct_h > 0 ? r.avg_jct_h / base->avg_jct_h : 0;
    ratio.median =
        base->median_jct_h > 0 ? r.median_jct_h / base->median_jct_h : 0;
    ratio.p99 = base->p99_jct_h > 0 ? r.p99_jct_h / base->p99_jct_h : 0;
    out.push_back(ratio);
  }
  return out;
}

std::vector<JctCdf> jct_cdfs(const std::vector<DlResult>& results,
                             std::size_t points) {
  double max_h = 0;
  for (const auto& r : results) {
    for (double j : r.jct_hours) max_h = std::max(max_h, j);
  }
  std::vector<JctCdf> out;
  for (const auto& r : results) {
    JctCdf cdf;
    cdf.policy = r.policy;
    std::vector<double> sorted = r.jct_hours;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i <= points; ++i) {
      double h = max_h * static_cast<double>(i) / static_cast<double>(points);
      if (i == points) h = max_h;  // avoid i/points rounding below max
      const auto it = std::upper_bound(sorted.begin(), sorted.end(), h);
      cdf.hours.push_back(h);
      cdf.fraction.push_back(
          sorted.empty()
              ? 0.0
              : 100.0 * static_cast<double>(it - sorted.begin()) /
                    static_cast<double>(sorted.size()));
    }
    out.push_back(std::move(cdf));
  }
  return out;
}

void print_dl_report(std::ostream& os, const std::vector<DlResult>& results) {
  TablePrinter table("DL scheduler comparison (32 nodes x 8 GPUs)");
  table.columns({"policy", "avg JCT h", "median h", "p99 h", "DLT done",
                 "DLI viol/hr", "crashes", "migr", "preempt"});
  for (const auto& r : results) {
    table.row({r.policy, fmt(r.avg_jct_h, 2), fmt(r.median_jct_h, 2),
               fmt(r.p99_jct_h, 2),
               std::to_string(r.dlt_completed) + "/" +
                   std::to_string(r.dlt_total),
               fmt(r.violations_per_hour, 1), std::to_string(r.crash_restarts),
               std::to_string(r.migrations), std::to_string(r.preemptions)});
  }
  table.print(os);

  TablePrinter ratios("Table IV: JCT normalized to CBP+PP");
  ratios.columns({"policy", "average", "median", "99%"});
  for (const auto& r : normalized_jct(results)) {
    ratios.row({r.policy, fmt(r.avg, 2) + "x", fmt(r.median, 2) + "x",
                fmt(r.p99, 2) + "x"});
  }
  ratios.print(os);
}

}  // namespace knots::dlsim
