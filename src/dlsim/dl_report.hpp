// Report helpers for Fig 12 / Table IV.
#pragma once

#include <iosfwd>
#include <vector>

#include "dlsim/dl_cluster.hpp"

namespace knots::dlsim {

/// Runs all four policies on the same workload (one thread each).
std::vector<DlResult> run_all_policies(const DlClusterConfig& cluster,
                                       const DlWorkloadConfig& workload,
                                       std::uint64_t seed = 42);

/// Table IV: JCT ratios (avg/median/p99) normalized to CBP+PP.
struct JctRatios {
  std::string policy;
  double avg = 0, median = 0, p99 = 0;
};
std::vector<JctRatios> normalized_jct(const std::vector<DlResult>& results);

/// Fig 12a data: fraction of jobs completed within each JCT bound.
struct JctCdf {
  std::string policy;
  std::vector<double> hours;     ///< x axis.
  std::vector<double> fraction;  ///< y axis (0..100).
};
std::vector<JctCdf> jct_cdfs(const std::vector<DlResult>& results,
                             std::size_t points = 40);

void print_dl_report(std::ostream& os, const std::vector<DlResult>& results);

}  // namespace knots::dlsim
