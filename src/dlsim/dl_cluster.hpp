// Discrete-time DL cluster simulator (§V-C): 32 nodes × 8 GPUs, driven in
// one-second steps, comparing Kube-Knots (CBP+PP) against Res-Ag and the
// application-aware DLT schedulers Gandiva and Tiresias.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "dlsim/dl_workload.hpp"

namespace knots::dlsim {

/// One GPU's slot state: resident DLT jobs (time-sliced if >1) and an
/// optional pause deadline (migration / preemption / restart in flight).
struct GpuSlot {
  std::vector<int> jobs;
  SimTime paused_until = 0;

  [[nodiscard]] bool free() const noexcept { return jobs.empty(); }
  [[nodiscard]] int load() const noexcept {
    return static_cast<int>(jobs.size());
  }
};

struct DlClusterConfig {
  int nodes = 32;
  int gpus_per_node = 8;
  SimTime step = 1 * kSec;
  SimTime checkpoint_interval = 60 * kMinute;  ///< DLT checkpoint cadence.
  SimTime restart_pause = 180 * kSec;  ///< Container relaunch after a crash.
  SimTime migration_pause = 15 * kSec; ///< Gandiva job migration cost.
  SimTime preemption_pause = 30 * kSec;///< Tiresias suspend/resume cost.
  SimTime quantum = 10 * kMinute;      ///< Tiresias LAS rescheduling period.
  double slicing_overhead = 0.92;      ///< Gandiva time-slice efficiency.
  /// Gandiva only oversubscribes GPUs whose incumbent is still young —
  /// long-running trainers keep exclusive access.
  SimTime slice_young_threshold = 2 * kHour;
  /// Tiresias' discretized two-queue LAS: attained service saturates at
  /// this cap, so long jobs compete FIFO instead of starving.
  SimTime las_attained_cap = 20 * kMinute;
  double dli_blocking = 2.2;   ///< Latency factor per busy training context.
  double crash_prob = 0.60;    ///< P(TF-greedy DLI crashes the co-located DLT).
  double pp_accuracy = 0.84;   ///< PP peak-prediction accuracy (Fig 10b).
  /// Tiresias preempts trainers to serve inference most of the time; the
  /// rest queue behind the running quantum.
  double tiresias_dli_priority = 0.80;
};

/// Mutable simulation state shared with the policy.
struct DlState {
  std::vector<GpuSlot> gpus;
  std::vector<DltJob> jobs;
  std::vector<int> pending;  ///< Job indices waiting for GPUs, FIFO order.
  SimTime now = 0;

  [[nodiscard]] int free_gpus() const;
  /// Places a job on `count` GPUs (lowest-load first). Returns false when
  /// not enough GPUs satisfy `max_share` (residents per GPU after placing).
  bool place(int job, int count, int max_share = 1);
  /// Removes the job from its GPUs.
  void evict(int job);
};

struct DliRecord {
  SimTime arrival;
  SimTime latency;
  bool violated;
};

struct DlResult {
  std::string policy;
  std::vector<double> jct_hours;  ///< Completed DLT JCTs.
  double avg_jct_h = 0, median_jct_h = 0, p99_jct_h = 0;
  std::size_t dlt_total = 0, dlt_completed = 0;
  std::vector<DliRecord> queries;
  std::size_t dli_violations = 0;
  double violations_per_hour = 0;
  std::size_t crash_restarts = 0, migrations = 0, preemptions = 0;
};

enum class DlPolicy { kResAg, kGandiva, kTiresias, kCbpPp };

std::string to_string(DlPolicy policy);

DlResult run_dl_simulation(DlPolicy policy, const DlClusterConfig& cluster,
                           const DlWorkloadConfig& workload,
                           std::uint64_t seed = 42);

/// Runs a caller-built workload (hand-crafted job/query lists, edge-case
/// tests). Bit-identical to the config overload when handed the workload it
/// would have generated: the policy RNG is forked from the same stream.
DlResult run_dl_simulation(DlPolicy policy, const DlClusterConfig& cluster,
                           const DlWorkload& workload,
                           std::uint64_t seed = 42);

}  // namespace knots::dlsim
