// DL cluster simulation on the shared Kube-Knots substrate (§V-C).
//
// Since PR 5 the DL simulator is no longer a parallel universe: devices are
// `knots::gpu` GpuNode/GpuDevice instances (ECC-aware effective capacity,
// power model), time advances through the `knots::sim` discrete-event
// engine, policies implement `cluster::Scheduler::on_schedule`, faults come
// from `knots::fault` plans, and every decision folds into a
// `verify::RunDigest` and (optionally) an `obs::TraceSink` with the same
// tag recipe as pod-cluster runs. The default 32×8 topology driven in
// one-second periodic ticks reproduces the pre-refactor Fig 12 numerics
// bit-for-bit when the fault plan is empty.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/scheduler.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"
#include "dlsim/dl_workload.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "gpu/gpu_node.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "verify/run_digest.hpp"

namespace knots::dlsim {

class DlScheduler;
class DlSchedView;

struct DlClusterConfig {
  int nodes = 32;
  int gpus_per_node = 8;
  SimTime step = 1 * kSec;
  SimTime checkpoint_interval = 60 * kMinute;  ///< DLT checkpoint cadence.
  SimTime restart_pause = 180 * kSec;  ///< Container relaunch after a crash.
  SimTime migration_pause = 15 * kSec; ///< Gandiva job migration cost.
  SimTime preemption_pause = 30 * kSec;///< Tiresias suspend/resume cost.
  SimTime quantum = 10 * kMinute;      ///< Tiresias LAS rescheduling period.
  double slicing_overhead = 0.92;      ///< Gandiva time-slice efficiency.
  /// Gandiva only oversubscribes GPUs whose incumbent is still young —
  /// long-running trainers keep exclusive access.
  SimTime slice_young_threshold = 2 * kHour;
  /// Tiresias' discretized two-queue LAS: attained service saturates at
  /// this cap, so long jobs compete FIFO instead of starving.
  SimTime las_attained_cap = 20 * kMinute;
  double dli_blocking = 2.2;   ///< Latency factor per busy training context.
  double crash_prob = 0.60;    ///< P(TF-greedy DLI crashes the co-located DLT).
  double pp_accuracy = 0.84;   ///< PP peak-prediction accuracy (Fig 10b).
  /// Tiresias preempts trainers to serve inference most of the time; the
  /// rest queue behind the running quantum.
  double tiresias_dli_priority = 0.80;

  // -- Shared-substrate device model --
  /// Per-GPU spec (P100 by default); ECC degrades shrink its effective
  /// capacity and the placement path respects the remainder.
  gpu::GpuSpec gpu{};
  /// Per-GPU working set one trainer pins. Sized so the default spec hosts
  /// two time-sliced trainers with room to spare — fault-free placements
  /// are identical to the pre-substrate simulator.
  double job_memory_mb = 4096.0;
  /// Host CPU floor folded into node power (0 = GPU-only, as measured).
  double host_idle_watts = 0.0;
  /// Event lanes for the job-advance hot path. Lanes precompute per-job
  /// progress deltas in parallel from the tick-entry placement snapshot;
  /// the apply pass stays sequential and falls back to live computation
  /// after the first completion of the tick (completions evict, changing
  /// the loads later jobs see). Any lane count is bit-identical to 1.
  int lanes = 1;

  // -- Fabric (knots::net) --
  /// Optional datacenter fabric. Empty = no fabric (communication-free, the
  /// historical model). With a non-inert fabric and allreduce_mb_per_step
  /// > 0, multi-node gangs pay a per-step gradient exchange at the max-min
  /// fair rate of their shared links — packing a gang under one ToR beats
  /// spreading it across the spine.
  net::FabricPlan fabric{};
  /// Gradient bytes each multi-node gang exchanges per training step.
  double allreduce_mb_per_step = 0.0;
  /// Checkpoint bytes a cross-node migration drags over the fabric (added
  /// to migration_pause as real transfer time).
  double checkpoint_mb = 0.0;
};

struct DliRecord {
  SimTime arrival;
  SimTime latency;
  bool violated;
};

struct DlResult {
  std::string policy;
  std::vector<double> jct_hours;  ///< Completed DLT JCTs.
  double avg_jct_h = 0, median_jct_h = 0, p99_jct_h = 0;
  std::size_t dlt_total = 0, dlt_completed = 0;
  std::vector<DliRecord> queries;
  std::size_t dli_violations = 0;
  double violations_per_hour = 0;
  std::size_t crash_restarts = 0, migrations = 0, preemptions = 0;

  // -- Unified-substrate extensions --
  std::uint64_t run_digest = 0;      ///< verify::RunDigest over the run.
  std::uint64_t digest_events = 0;
  std::uint64_t node_crashes = 0;    ///< Fault-plan node deaths applied.
  std::uint64_t node_recoveries = 0;
  std::uint64_t jobs_evicted = 0;    ///< Evictions from node crashes.
  std::uint64_t capacity_crashes = 0;///< ECC shrink crashed a resident.
  double mean_power_watts = 0;
  double energy_joules = 0;
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
};

/// Registry keys of the four DL policies, in canonical report order
/// (sched::make_scheduler(name) builds each one).
inline constexpr std::array<std::string_view, 4> kDlPolicyNames = {
    "resag", "gandiva", "tiresias", "cbp-pp"};

[[nodiscard]] std::vector<std::string> dl_policy_names();

/// Optional per-run attachments, mirroring knots::RunObservability.
struct DlRunOptions {
  fault::FaultPlan faults{};
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// The DL simulation engine: gpu::GpuNode topology + sim::Simulation event
/// loop + fault::FaultInjector + verify::RunDigest. Owns all mutable run
/// state; policies observe and mutate it through DlSchedView only.
class DlEngine : private net::FabricObserver {
 public:
  DlEngine(const DlClusterConfig& config, DlScheduler& policy,
           std::uint64_t seed);
  ~DlEngine();
  DlEngine(const DlEngine&) = delete;
  DlEngine& operator=(const DlEngine&) = delete;

  /// Installs the workload (jobs/queries sorted by arrival). Arrivals are
  /// queued by the periodic tick, not here.
  void load(const DlWorkload& workload);

  /// Validates the plan against the topology and schedules its events on
  /// the event engine ahead of the first tick.
  void set_fault_plan(const fault::FaultPlan& plan);
  void set_trace(obs::TraceSink* trace) noexcept { trace_ = trace; }
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Drives the run to completion: periodic one-`step` ticks (arrivals →
  /// policy round → progress → queries) interleaved with fault events, on
  /// the shared discrete-event engine.
  void run();

  /// Distils the run into a DlResult (JCT stats, QoS, digest, fault and
  /// power accounting).
  [[nodiscard]] DlResult result() const;

  // -- Topology / state queries (the view and tests read through these) --
  [[nodiscard]] const DlClusterConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] SimTime now() const noexcept { return sim_.now(); }
  [[nodiscard]] Rng& policy_rng() noexcept { return policy_rng_; }
  [[nodiscard]] std::vector<DltJob>& jobs() noexcept { return jobs_; }
  [[nodiscard]] const std::vector<DltJob>& jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] std::vector<int>& pending() noexcept { return pending_; }
  [[nodiscard]] std::size_t gpu_count() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] gpu::GpuDevice& device(std::size_t g) {
    return *devices_[g];
  }
  [[nodiscard]] const gpu::GpuDevice& device(std::size_t g) const {
    return *devices_[g];
  }
  [[nodiscard]] gpu::GpuNode& node(std::size_t n) { return nodes_[n]; }
  [[nodiscard]] const gpu::GpuNode& node(std::size_t n) const {
    return nodes_[n];
  }
  [[nodiscard]] NodeId node_of(std::size_t g) const noexcept {
    return NodeId{static_cast<std::int32_t>(
        g / static_cast<std::size_t>(cfg_.gpus_per_node))};
  }
  [[nodiscard]] bool gpu_online(std::size_t g) const {
    return nodes_[static_cast<std::size_t>(node_of(g).value)].online();
  }
  /// Residents in attach order (the crash victim is the front — FIFO).
  /// This is an *index* over GpuDevice residency, not a device model: the
  /// GpuDevice stays the source of truth for capacity, memory and power.
  [[nodiscard]] const std::vector<int>& residents(std::size_t g) const {
    return residents_[g];
  }
  [[nodiscard]] int load(std::size_t g) const noexcept {
    return static_cast<int>(residents_[g].size());
  }
  [[nodiscard]] SimTime paused_until(std::size_t g) const noexcept {
    return paused_until_[g];
  }
  /// Extends the GPU's pause window (max-merge, never shortens).
  void pause_gpu(std::size_t g, SimTime until);
  [[nodiscard]] int free_gpu_count() const;
  /// Online, empty, unpaused, and with room for one trainer.
  [[nodiscard]] bool gpu_serviceable(std::size_t g) const;
  /// First serviceable GPU in index order, or npos (Gandiva's migration
  /// target scan).
  [[nodiscard]] std::size_t first_serviceable_gpu() const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // -- Mutations (digest/trace emitting) --
  /// Places a job gang on `count` GPUs, lowest-load first, skipping
  /// offline/full devices and those failing `eligible`. All-or-nothing;
  /// emits kPlace per GPU on success. Does not set job.running.
  bool place(int job, int count, int max_share = 1,
             const std::function<bool(std::size_t)>& eligible = nullptr);
  /// Detaches the job from its GPUs (no digest record — policy-internal
  /// reshuffles like Tiresias' quantum rebuild use this).
  void evict(int job);
  /// Evicts (if placed) and requeues the job at the back; emits kRequeue.
  void requeue(int job);
  /// Moves a single-GPU job between devices; emits kPlace for the target.
  void migrate(int job, std::size_t from, std::size_t to);
  /// Checkpoint rollback + requeue at the back; emits kCrash + kRequeue.
  void crash_job(int job);

  /// One policy scheduling round against the current state (tests drive
  /// this directly; run() calls it every tick).
  void schedule_round();
  [[nodiscard]] DlSchedView& view() noexcept { return *view_; }

  [[nodiscard]] const verify::RunDigest& digest() const noexcept {
    return digest_;
  }
  [[nodiscard]] const fault::FaultStats& fault_stats() const noexcept {
    return injector_.stats();
  }

  // -- Fabric queries --
  /// The live fabric, or nullptr when the config declared none.
  [[nodiscard]] const net::Fabric* fabric() const noexcept {
    return fabric_.get();
  }
  /// True when gang all-reduce / migration traffic is actually charged.
  [[nodiscard]] bool fabric_active() const noexcept {
    return fabric_ != nullptr && !fabric_->inert();
  }
  /// ToR the node hangs off (0 without a fabric) — cbp-local's locality key.
  [[nodiscard]] int tor_of(NodeId node) const {
    return fabric_ ? fabric_->tor_of(node.value) : 0;
  }
  /// Communication efficiency factor the last tick computed for a job
  /// (1 = communication-free; tests read this).
  [[nodiscard]] double comm_factor(int job) const noexcept {
    const auto j = static_cast<std::size_t>(job);
    return j < comm_factor_.size() ? comm_factor_[j] : 1.0;
  }

  /// Test helper: advances simulated time to `t` without running ticks.
  void advance_to(SimTime t);

 private:
  // -- net::FabricObserver (link-state edges → digest/trace) --
  void on_link_state(std::size_t link, bool up, SimTime now) override;

  bool tick(SimTime t);
  /// Serial pre-advance pass: per-gang all-reduce efficiency factors from
  /// the fabric's max-min stream rates. Empty vector = all 1.0 (no fabric
  /// or no all-reduce traffic); lanes read it concurrently in job_speed.
  void refresh_comm_factors();
  void apply_fault(const fault::FaultEvent& event);
  void recover_node(NodeId node_id);
  void crash_node(const fault::FaultEvent& event);
  void apply_ecc(const fault::FaultEvent& event);
  void advance_jobs(SimTime t);
  [[nodiscard]] double job_speed(const DltJob& job, SimTime t,
                                 bool fault_effects) const;
  void serve_queries(SimTime t);
  void complete_job(DltJob& job, SimTime t);
  void attach_job(int job, std::size_t g);
  void detach_job(int job, std::size_t g);
  void audit(bool deep);
  [[nodiscard]] cluster::SchedulingContext make_context();
  [[nodiscard]] double cluster_watts() const;

  DlClusterConfig cfg_;
  DlScheduler* policy_;
  Rng policy_rng_;
  sim::Simulation sim_;
  std::vector<gpu::GpuNode> nodes_;
  std::vector<gpu::GpuDevice*> devices_;  ///< Flat GPU index over nodes_.
  std::vector<std::vector<int>> residents_;  ///< Attach-ordered, per GPU.
  std::vector<SimTime> paused_until_;

  std::vector<DltJob> jobs_;
  std::vector<DliQuery> queries_;
  std::vector<int> pending_;
  SimTime horizon_ = 12 * kHour;
  SimTime deadline_ = 0;
  std::size_t next_job_ = 0;
  std::size_t next_query_ = 0;
  std::size_t completed_ = 0;
  std::vector<DliRecord> records_;

  fault::FaultInjector injector_;
  fault::FaultPlan plan_;
  std::vector<fault::FaultNotice> fault_feed_;
  verify::RunDigest digest_;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<DlSchedView> view_;

  std::unique_ptr<sim::LaneExecutor> lane_exec_;  ///< null when lanes == 1
  std::vector<SimTime> delta_scratch_;  ///< per-job precomputed progress

  std::unique_ptr<net::Fabric> fabric_;  ///< null when cfg_.fabric empty
  std::vector<double> comm_factor_;      ///< per-job, see refresh_comm_factors
  std::vector<int> gang_nodes_scratch_;
  std::vector<std::vector<int>> gang_routes_scratch_;
  std::vector<std::size_t> gang_jobs_scratch_;
  std::uint64_t flow_seq_ = 0;  ///< Migration-charge flow ids (digest/trace).

  std::uint64_t jobs_evicted_ = 0;
  std::uint64_t capacity_crashes_ = 0;
  std::uint64_t ticks_ = 0;
  double energy_joules_ = 0;
  std::uint64_t invariant_checks_ = 0;
  std::uint64_t invariant_violations_ = 0;
  SimTime last_audit_time_ = -1;
};

/// The curated view a DL policy receives each round, carried through
/// SchedulingContext::extension. Thin inline delegation onto the engine —
/// policies never touch devices or the event queue directly.
class DlSchedView final : public cluster::ContextExtension {
 public:
  explicit DlSchedView(DlEngine& engine) : engine_(engine) {}

  [[nodiscard]] const DlClusterConfig& config() const {
    return engine_.config();
  }
  [[nodiscard]] SimTime now() const { return engine_.now(); }
  [[nodiscard]] Rng& rng() { return engine_.policy_rng(); }
  [[nodiscard]] std::vector<DltJob>& jobs() { return engine_.jobs(); }
  [[nodiscard]] DltJob& job(int id) {
    return engine_.jobs()[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::vector<int>& pending() { return engine_.pending(); }
  [[nodiscard]] std::size_t gpu_count() const { return engine_.gpu_count(); }
  [[nodiscard]] int load(std::size_t g) const { return engine_.load(g); }
  [[nodiscard]] bool free(std::size_t g) const {
    return engine_.load(g) == 0;
  }
  [[nodiscard]] const std::vector<int>& residents(std::size_t g) const {
    return engine_.residents(g);
  }
  [[nodiscard]] SimTime paused_until(std::size_t g) const {
    return engine_.paused_until(g);
  }
  void pause_gpu(std::size_t g, SimTime until) {
    engine_.pause_gpu(g, until);
  }
  [[nodiscard]] int free_gpu_count() const {
    return engine_.free_gpu_count();
  }
  [[nodiscard]] bool gpu_serviceable(std::size_t g) const {
    return engine_.gpu_serviceable(g);
  }
  [[nodiscard]] std::size_t first_serviceable_gpu() const {
    return engine_.first_serviceable_gpu();
  }
  [[nodiscard]] NodeId node_of(std::size_t g) const {
    return engine_.node_of(g);
  }
  /// ToR of a node (0 for every node without a fabric) — the locality key
  /// cbp-local packs gangs by.
  [[nodiscard]] int tor_of(NodeId node) const { return engine_.tor_of(node); }
  bool place(int job, int count, int max_share = 1,
             const std::function<bool(std::size_t)>& eligible = nullptr) {
    return engine_.place(job, count, max_share, eligible);
  }
  void evict(int job) { engine_.evict(job); }
  void requeue(int job) { engine_.requeue(job); }
  void migrate(int job, std::size_t from, std::size_t to) {
    engine_.migrate(job, from, to);
  }
  void crash_job(int job) { engine_.crash_job(job); }

 private:
  DlEngine& engine_;
};

/// Runs one DL policy (a sched::registry key: "resag", "gandiva",
/// "tiresias", "cbp-pp") over a generated workload. Thin adapter: forks the
/// workload/policy RNG streams exactly as the pre-substrate simulator did,
/// builds a DlEngine, and distils its result.
DlResult run_dl_simulation(const std::string& policy,
                           const DlClusterConfig& cluster,
                           const DlWorkloadConfig& workload,
                           std::uint64_t seed = 42,
                           const DlRunOptions& options = {});

/// Runs a caller-built workload (hand-crafted job/query lists, edge-case
/// tests). Bit-identical to the config overload when handed the workload it
/// would have generated: the policy RNG is forked from the same stream.
DlResult run_dl_simulation(const std::string& policy,
                           const DlClusterConfig& cluster,
                           const DlWorkload& workload,
                           std::uint64_t seed = 42,
                           const DlRunOptions& options = {});

}  // namespace knots::dlsim
