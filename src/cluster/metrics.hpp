// Experiment metrics collector: everything Figures 6–11 read.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/percentile.hpp"
#include "core/types.hpp"

namespace knots::cluster {

/// One completed latency-critical query.
struct QueryRecord {
  SimTime arrival;
  SimTime latency;   ///< End-to-end (queue + start + transfer + compute).
  bool violated;     ///< latency > QoS threshold.
};

/// One completed batch job.
struct BatchRecord {
  SimTime arrival;
  SimTime jct;       ///< Completion − arrival.
  int crashes;
};

class MetricsCollector {
 public:
  explicit MetricsCollector(std::size_t gpu_count);

  // -- Recording (called by the Cluster) --
  void sample_gpu_util(std::size_t gpu_index, double sm_util, bool parked);
  void add_power_sample(double cluster_watts);
  void add_energy(double joules) { energy_joules_ += joules; }
  void record_query(const QueryRecord& q) { queries_.push_back(q); }
  void record_batch(const BatchRecord& b) { batches_.push_back(b); }
  void record_crash() { ++crashes_; }

  // -- Figure data --
  [[nodiscard]] std::size_t gpu_count() const { return per_gpu_util_.size(); }

  /// Per-GPU utilization samples in percent (parked samples excluded).
  [[nodiscard]] const std::vector<double>& gpu_util_samples(
      std::size_t gpu_index) const;

  /// Percentile of one GPU's active utilization, in percent (Fig 6/8 bars).
  [[nodiscard]] double gpu_util_percentile(std::size_t gpu_index,
                                           double p) const;

  /// Several percentiles of one GPU's active utilization with one shared
  /// sort (report building reads four per GPU). Zeros when no samples.
  [[nodiscard]] std::vector<double> gpu_util_percentiles(
      std::size_t gpu_index, std::span<const double> ps) const;

  /// Cluster-wide utilization percentile pooling active-GPU samples (Fig 9).
  [[nodiscard]] double cluster_util_percentile(double p) const;

  /// Batched cluster-wide percentiles: one pooling pass + one sort.
  [[nodiscard]] std::vector<double> cluster_util_percentiles(
      std::span<const double> ps) const;

  /// Coefficient of variation of one GPU's active utilization (Fig 7).
  [[nodiscard]] double gpu_util_cov(std::size_t gpu_index) const;

  /// Mean pairwise COV of two GPUs' concurrent loads (Fig 11b): for each
  /// sample k, COV of the pair {u_i(k), u_j(k)}, averaged over samples where
  /// both GPUs were active.
  [[nodiscard]] double pairwise_load_cov(std::size_t i, std::size_t j) const;

  [[nodiscard]] const std::vector<QueryRecord>& queries() const {
    return queries_;
  }
  [[nodiscard]] const std::vector<BatchRecord>& batches() const {
    return batches_;
  }

  /// QoS violations per 1000 inference queries (Fig 10a bars).
  [[nodiscard]] double qos_violations_per_kilo() const;
  [[nodiscard]] std::size_t query_count() const { return queries_.size(); }
  [[nodiscard]] std::size_t violation_count() const;

  [[nodiscard]] double mean_power_watts() const { return power_.mean(); }
  [[nodiscard]] double energy_joules() const { return energy_joules_; }
  [[nodiscard]] std::size_t crash_count() const { return crashes_; }

  /// Batch JCT percentile in seconds.
  [[nodiscard]] double batch_jct_percentile(double p) const;
  /// Batched variant: one materialization + one sort for all `ps`.
  [[nodiscard]] std::vector<double> batch_jct_percentiles(
      std::span<const double> ps) const;
  [[nodiscard]] double mean_batch_jct_seconds() const;
  /// LC end-to-end latency percentile in milliseconds.
  [[nodiscard]] double query_latency_percentile(double p) const;
  /// Batched variant: one materialization + one sort for all `ps`.
  [[nodiscard]] std::vector<double> query_latency_percentiles(
      std::span<const double> ps) const;

 private:
  // Per GPU: utilization% samples while active, and the aligned full trace
  // (including parked ticks, flagged) for pairwise statistics.
  std::vector<std::vector<double>> per_gpu_util_;
  std::vector<std::vector<double>> per_gpu_trace_;
  std::vector<std::vector<bool>> per_gpu_parked_;
  OnlineStats power_;
  double energy_joules_ = 0;
  std::vector<QueryRecord> queries_;
  std::vector<BatchRecord> batches_;
  std::size_t crashes_ = 0;
};

}  // namespace knots::cluster
