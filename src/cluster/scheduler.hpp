// Scheduler plug-in interface (event-driven since PR 3).
//
// The Cluster invokes the policy once per scheduling tick through
// on_schedule(), handing it a SchedulingContext — a curated view of
// everything a policy may read (pending queue, telemetry aggregator,
// profile store, this tick's fault feed) plus the Cluster reference it
// mutates through place / resize_pod / park. Fault transitions additionally
// fire the optional on_node_down / on_node_up / on_telemetry_stale hooks,
// so policies can react at the event edge instead of re-deriving health
// from telemetry every round.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "fault/fault_plan.hpp"

namespace knots::telemetry {
class UtilizationAggregator;
}
namespace knots::obs {
class TraceSink;
}

namespace knots::cluster {

class Cluster;
class ProfileStore;

/// Everything a scheduling policy may consult in one round. Views are
/// borrowed from the Cluster and valid only for the duration of the call.
struct SchedulingContext {
  Cluster& cluster;
  SimTime now;
  const std::deque<PodId>& pending;
  const telemetry::UtilizationAggregator& aggregator;
  const ProfileStore& profiles;
  /// Fault transitions applied since the previous scheduling round,
  /// oldest-first (empty on every tick of a fault-free run).
  const std::vector<fault::FaultNotice>& fault_feed;
  /// Optional tracer for kDecision rationale events; nullptr when the run
  /// is untraced. Policies must behave identically either way.
  obs::TraceSink* trace = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// One scheduling round. Called after pod progress/telemetry updates.
  virtual void on_schedule(SchedulingContext& ctx) = 0;

  // -- Optional fault hooks (default: no reaction) --
  /// A worker node died; its pods are already evicted back to pending.
  virtual void on_node_down(SchedulingContext& /*ctx*/, NodeId /*node*/) {}
  /// A crashed node recovered and may host pods again.
  virtual void on_node_up(SchedulingContext& /*ctx*/, NodeId /*node*/) {}
  /// A GPU's telemetry series crossed the staleness horizon (K missed
  /// heartbeats); its aggregator view is last-known-good, not current.
  virtual void on_telemetry_stale(SchedulingContext& /*ctx*/,
                                  GpuId /*gpu*/) {}

  /// Policies that consolidate may let the cluster park long-idle GPUs into
  /// deep sleep (p-state 12).
  [[nodiscard]] virtual bool parks_idle_gpus() const { return false; }
};

}  // namespace knots::cluster
