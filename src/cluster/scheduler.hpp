// Scheduler plug-in interface.
//
// The Cluster invokes the policy once per scheduling tick; the policy reads
// cluster state (pending queue, telemetry aggregator, profile store) and
// acts through Cluster::place / resize_pod / park.
#pragma once

#include <string>

namespace knots::cluster {

class Cluster;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// One scheduling round. Called after pod progress/telemetry updates.
  virtual void on_tick(Cluster& cluster) = 0;

  /// Policies that consolidate may let the cluster park long-idle GPUs into
  /// deep sleep (p-state 12).
  [[nodiscard]] virtual bool parks_idle_gpus() const { return false; }
};

}  // namespace knots::cluster
