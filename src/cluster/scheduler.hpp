// Scheduler plug-in interface (event-driven since PR 3).
//
// An engine invokes the policy once per scheduling tick through
// on_schedule(), handing it a SchedulingContext — a curated view of
// everything a policy may read (pending queue, telemetry aggregator,
// profile store, this tick's fault feed) plus the Cluster pointer it
// mutates through place / resize_pod / park. The DL engine drives the same
// interface with the pod-specific members null and its own view in
// `extension` (see dlsim/). Fault transitions additionally
// fire the optional on_node_down / on_node_up / on_telemetry_stale hooks,
// so policies can react at the event edge instead of re-deriving health
// from telemetry every round.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "fault/fault_plan.hpp"

namespace knots::telemetry {
class UtilizationAggregator;
}
namespace knots::obs {
class TraceSink;
}

namespace knots::cluster {

class Cluster;
class ProfileStore;
class TenantLedger;

/// Engine-specific payload a substrate may hang off the SchedulingContext.
/// Pod scheduling leaves it null; the DL engine passes its DlSchedView so
/// DL policies can recover their richer view from the shared hook
/// signature. Policies downcast to the concrete type they were built for.
struct ContextExtension {
  virtual ~ContextExtension() = default;
};

/// Everything a scheduling policy may consult in one round. Views are
/// borrowed from the owning engine and valid only for the duration of the
/// call. The pod-cluster members are pointers because more than one engine
/// now drives this interface: a Cluster tick fills them all in, while the
/// DL engine runs with them null and hands policies its own view through
/// `extension`.
struct SchedulingContext {
  Cluster* cluster = nullptr;
  SimTime now = 0;
  const std::deque<PodId>* pending = nullptr;
  const telemetry::UtilizationAggregator* aggregator = nullptr;
  const ProfileStore* profiles = nullptr;
  /// Fault transitions applied since the previous scheduling round,
  /// oldest-first (empty on every tick of a fault-free run).
  const std::vector<fault::FaultNotice>* fault_feed = nullptr;
  /// Optional tracer for kDecision rationale events; nullptr when the run
  /// is untraced. Policies must behave identically either way.
  obs::TraceSink* trace = nullptr;
  /// Per-tenant quota accounting, non-null only when the cluster enforces
  /// quotas. Policies may consult it to skip pods whose tenant is over
  /// budget (the cluster re-checks admission in place() regardless, so this
  /// is an efficiency hint, not the enforcement point).
  const TenantLedger* tenants = nullptr;
  /// Substrate-specific view (null for pod-cluster rounds).
  ContextExtension* extension = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// One scheduling round. Called after pod progress/telemetry updates.
  virtual void on_schedule(SchedulingContext& ctx) = 0;

  // -- Optional fault hooks (default: no reaction) --
  /// A worker node died; its pods are already evicted back to pending.
  virtual void on_node_down(SchedulingContext& /*ctx*/, NodeId /*node*/) {}
  /// A crashed node recovered and may host pods again.
  virtual void on_node_up(SchedulingContext& /*ctx*/, NodeId /*node*/) {}
  /// A GPU's telemetry series crossed the staleness horizon (K missed
  /// heartbeats); its aggregator view is last-known-good, not current.
  virtual void on_telemetry_stale(SchedulingContext& /*ctx*/,
                                  GpuId /*gpu*/) {}

  /// Policies that consolidate may let the cluster park long-idle GPUs into
  /// deep sleep (p-state 12).
  [[nodiscard]] virtual bool parks_idle_gpus() const { return false; }
};

}  // namespace knots::cluster
