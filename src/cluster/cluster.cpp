#include "cluster/cluster.hpp"

#include <algorithm>
#include <bit>

#include "core/check.hpp"
#include "gpu/device_model.hpp"
#include "obs/profile.hpp"

namespace knots::cluster {

using obs::EventKind;

Cluster::Cluster(const ClusterConfig& config, Scheduler& scheduler)
    : config_(config), scheduler_(&scheduler), rng_(config.seed) {
  KNOTS_CHECK(config_.gpus_per_node > 0);
  // The per-node build list. Homogeneous (the historical default, taken
  // whenever node_classes is empty) repeats node_spec; a heterogeneous
  // cluster expands its classes in list order, so node ids are contiguous
  // per class and the layout is deterministic in the config alone.
  std::vector<gpu::NodeSpec> node_specs;
  if (config_.node_classes.empty()) {
    KNOTS_CHECK(config_.nodes > 0);
    gpu::NodeSpec node_spec = config_.node_spec;
    node_spec.gpus_per_node = config_.gpus_per_node;
    node_specs.assign(static_cast<std::size_t>(config_.nodes), node_spec);
  } else {
    for (const NodeClass& cls : config_.node_classes) {
      const auto model = gpu::find_device_model(cls.device_model);
      KNOTS_CHECK_MSG(model.has_value(),
                      "node class names an unknown device model");
      KNOTS_CHECK_MSG(cls.count > 0, "node class must have a positive count");
      gpu::NodeSpec node_spec = config_.node_spec;
      node_spec.gpu = model->gpu;
      node_spec.gpus_per_node =
          cls.gpus_per_node > 0 ? cls.gpus_per_node : config_.gpus_per_node;
      node_spec.preemptible = cls.preemptible;
      node_spec.spot_notice = cls.spot_notice;
      node_specs.insert(node_specs.end(), static_cast<std::size_t>(cls.count),
                        node_spec);
    }
    // Keep node_count() (and everything downstream: fault validation, lane
    // partition, fabric sizing) consistent with the expanded class list.
    config_.nodes = static_cast<int>(node_specs.size());
  }

  std::int32_t next_gpu = 0;
  for (int n = 0; n < config_.nodes; ++n) {
    const gpu::NodeSpec& node_spec = node_specs[static_cast<std::size_t>(n)];
    nodes_.push_back(std::make_unique<gpu::GpuNode>(NodeId{n}, node_spec,
                                                    next_gpu));
    dbs_.push_back(std::make_unique<telemetry::TimeSeriesDb>(
        config_.telemetry_retention, /*stats_window=*/0, &telemetry_arena_));
    for (int g = 0; g < node_spec.gpus_per_node; ++g) {
      gpu_index_.emplace_back(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(g));
      ++next_gpu;
    }
  }
  devices_.reserve(gpu_index_.size());
  compute_factor_.reserve(gpu_index_.size());
  for (const auto& [n, g] : gpu_index_) {
    devices_.push_back(&nodes_[n]->gpu(g));
    compute_factor_.push_back(nodes_[n]->gpu(g).spec().compute_factor);
  }
  for (const auto& node : nodes_) {
    if (node->spec().preemptible) has_preemptible_ = true;
  }
  for (const TenantQuotaSpec& quota : config_.tenant_quotas) {
    ledger_.set_quota(quota);
  }
  samplers_.reserve(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    samplers_.emplace_back(*nodes_[n], *dbs_[n],
                           rng_.fork(1000 + n), config_.telemetry_noise);
    aggregator_.register_node(*nodes_[n], *dbs_[n]);
  }
  metrics_ = std::make_unique<MetricsCollector>(gpu_index_.size());
  occupied_bits_.assign((gpu_index_.size() + 63) / 64, 0);
  parked_bits_.assign((gpu_index_.size() + 63) / 64, 0);
  aggregator_.set_live_epoch(&device_epoch_);
  gpu_last_busy_.assign(gpu_index_.size(), 0);
  injector_ = std::make_unique<fault::FaultInjector>(nodes_.size());
  gpu_stale_.assign(gpu_index_.size(), false);
  aggregator_.set_staleness_horizon(
      static_cast<SimTime>(config_.stale_after_heartbeats) * config_.tick);

  // Carve the node set into event lanes. The partition is by node, so pods
  // sharing a GPU (the only intra-tick coupling) always land in one lane.
  KNOTS_CHECK_MSG(config_.lanes >= 1, "lanes must be >= 1");
  const auto lanes = static_cast<std::size_t>(config_.lanes);
  if (config_.lane_assignment.empty()) {
    shard_ = sim::ShardPlan::contiguous(nodes_.size(), lanes);
  } else {
    KNOTS_CHECK_MSG(config_.lane_assignment.size() == nodes_.size(),
                    "lane_assignment must map every node");
    std::vector<std::uint32_t> lane_of;
    lane_of.reserve(nodes_.size());
    for (const int lane : config_.lane_assignment) {
      KNOTS_CHECK_MSG(lane >= 0 && lane < config_.lanes,
                      "lane_assignment entry out of range");
      lane_of.push_back(static_cast<std::uint32_t>(lane));
    }
    shard_ = sim::ShardPlan::from_assignment(std::move(lane_of), lanes);
  }
  if (lanes > 1) lane_exec_ = std::make_unique<sim::LaneExecutor>(lanes);
  commit_.reset(lanes);
  lane_members_.resize(lanes);
  lane_sampled_.assign(lanes, 0);

  // Mirror the node shard into the aggregator so its sorted-by-free-memory
  // runs partition the same way as telemetry sampling; refresh_lane() can
  // then piggyback on the lane-parallel scrape phase.
  std::vector<std::uint32_t> agg_lanes;
  agg_lanes.reserve(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    agg_lanes.push_back(static_cast<std::uint32_t>(shard_.lane_of(n)));
  }
  aggregator_.set_lane_partition(std::move(agg_lanes), lanes);

  if (!config_.fabric.empty()) {
    fabric_ = std::make_unique<net::Fabric>(config_.fabric, config_.nodes);
    fabric_->bind(&sim_);
    fabric_->set_observer(this);
  }
}

void Cluster::set_fault_plan(fault::FaultPlan plan) {
  std::vector<bool> preemptible(nodes_.size(), false);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    preemptible[n] = nodes_[n]->spec().preemptible;
  }
  plan.validate(config_.nodes,
                fabric_ ? fabric_->link_names() : std::vector<std::string>{},
                preemptible);
  fault_plan_ = std::move(plan);
}

// Fabric events fan out through the cluster observer chain (digest, audit)
// and the trace. The fabric only fires these while non-inert, so inert runs
// stay bit-identical to fabric-free ones.
void Cluster::on_flow_start(std::uint64_t flow, net::FlowKind kind,
                            int src_node, int dst_node, double mb,
                            SimTime /*now*/) {
  for (auto* o : observers_) {
    o->on_flow_start(*this, flow, static_cast<int>(kind), src_node, dst_node,
                     mb);
  }
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kFlowStart,
                   static_cast<std::int32_t>(flow), dst_node, mb,
                   net::to_string(kind));
  }
}

void Cluster::on_flow_finish(std::uint64_t flow, net::FlowKind kind,
                             bool contended, SimTime /*now*/) {
  for (auto* o : observers_) o->on_flow_finish(*this, flow, contended);
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kFlowFinish,
                   static_cast<std::int32_t>(flow), contended ? 1 : 0, 0.0,
                   net::to_string(kind));
  }
}

void Cluster::on_link_state(std::size_t link, bool up, SimTime /*now*/) {
  for (auto* o : observers_) {
    if (up) {
      o->on_link_up(*this, link);
    } else {
      o->on_link_down(*this, link);
    }
  }
  if (trace_ != nullptr) {
    trace_->record(now(), up ? EventKind::kLinkUp : EventKind::kLinkDown,
                   static_cast<std::int32_t>(link));
  }
}

void Cluster::load(std::vector<workload::PodSpec> specs) {
  KNOTS_CHECK_MSG(pods_.empty(), "load() must be called once");
  std::sort(specs.begin(), specs.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  pods_.reserve(specs.size());
  for (auto& spec : specs) {
    KNOTS_CHECK_MSG(spec.id.value == static_cast<std::int32_t>(pods_.size()),
                    "pod ids must be dense and zero-based");
    last_arrival_ = std::max(last_arrival_, spec.arrival);
    const SimTime arrival = spec.arrival;
    const PodId id = spec.id;
    pods_.push_back(pod_arena_.create(std::move(spec)));
    sim_.schedule_at(arrival, [this, id] { on_arrival(id); });
  }
  pod_states_.assign(pods_.size(),
                     static_cast<std::uint8_t>(PodState::kPending));
}

void Cluster::run() {
  // Fault events land before the tick at the same timestamp: the scheduler
  // sees a consistent post-fault world in its next round.
  for (const fault::FaultEvent& event : fault_plan_.events) {
    sim_.schedule_at(event.at, [this, event] { apply_fault(event); });
  }
  // The drain deadline is evaluated per tick (not captured once) so pods
  // submitted mid-run via submit_pod() extend it.
  sim::schedule_periodic(sim_, config_.tick, config_.tick,
                         [this](SimTime now) {
                           tick();
                           return !(all_terminal() ||
                                    now >= last_arrival_ + config_.drain_grace);
                         });
  sim_.run_all();
}

PodId Cluster::submit_pod(workload::PodSpec spec) {
  const PodId id{static_cast<std::int32_t>(pods_.size())};
  spec.id = id;
  spec.arrival = std::max(spec.arrival, now());
  last_arrival_ = std::max(last_arrival_, spec.arrival);
  const SimTime arrival = spec.arrival;
  pods_.push_back(pod_arena_.create(std::move(spec)));
  pod_states_.push_back(static_cast<std::uint8_t>(PodState::kPending));
  sim_.schedule_at(arrival, [this, id] { on_arrival(id); });
  return id;
}

bool Cluster::finish_pod(PodId id) {
  KNOTS_CHECK(id.valid() && static_cast<std::size_t>(id.value) < pods_.size());
  auto& p = *pods_[static_cast<std::size_t>(id.value)];
  if (p.state() != PodState::kRunning) return false;
  const GpuId g = p.gpu();
  device(g).detach(id);
  p.complete(now());
  note_state(p);
  note_detach(g);
  gpu_last_busy_[static_cast<std::size_t>(g.value)] = now();
  std::erase(active_, id);
  commit_complete(p);
  return true;
}

const Pod& Cluster::pod(PodId id) const {
  KNOTS_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value) < pods_.size());
  return *pods_[static_cast<std::size_t>(id.value)];
}

std::vector<GpuId> Cluster::all_gpus() const {
  std::vector<GpuId> out;
  out.reserve(gpu_index_.size());
  for (std::size_t i = 0; i < gpu_index_.size(); ++i) {
    out.push_back(GpuId{static_cast<std::int32_t>(i)});
  }
  return out;
}

std::size_t Cluster::gpu_dense_index(GpuId id) const {
  KNOTS_CHECK(id.valid() &&
              static_cast<std::size_t>(id.value) < gpu_index_.size());
  return static_cast<std::size_t>(id.value);
}

NodeId Cluster::node_of_gpu(GpuId id) const {
  const auto [n, g] = gpu_index_.at(static_cast<std::size_t>(id.value));
  return nodes_[n]->id();
}

NodeHealth Cluster::node_health(NodeId id) const {
  return injector_->node_down(id) ? NodeHealth::kDown : NodeHealth::kHealthy;
}

double Cluster::total_power_watts() const {
  double watts = 0;
  for (const auto& node : nodes_) watts += node->power_watts();
  return watts;
}

bool Cluster::place(PodId id, GpuId gpu_id, double provisioned_mb) {
  auto& p = *pods_.at(static_cast<std::size_t>(id.value));
  if (p.state() != PodState::kPending) return false;
  auto it = std::find(pending_.begin(), pending_.end(), id);
  if (it == pending_.end()) return false;

  const auto [node_idx, gpu_in_node] =
      gpu_index_.at(static_cast<std::size_t>(gpu_id.value));
  if (!nodes_[node_idx]->online()) return false;
  // Central quota admission: whichever scheduler asked, a tenant over its
  // caps cannot place. The pod stays pending and retries when quota frees.
  if (ledger_.enforcing() &&
      !ledger_.admits(p.spec().tenant, provisioned_mb)) {
    ledger_.note_rejection(p.spec().tenant);
    return false;
  }
  auto& dev = device(gpu_id);
  if (!dev.attach(id, provisioned_mb)) return false;
  ledger_.charge(p.spec().tenant, id, provisioned_mb);
  note_attach(gpu_id);
  pending_.erase(it);

  const auto cache_key = std::make_pair(node_idx, p.spec().app);
  // Inference services (queries and serving replicas alike) are long-lived
  // deployments whose images are pre-pulled (§V-B: only the first-ever
  // query pays the docker pull); batch images cold-start once per node.
  const bool cached = p.spec().klass != workload::PodClass::kBatch ||
                      image_cache_.contains(cache_key);
  image_cache_.insert(cache_key);
  const SimTime start_latency = cached ? config_.warm_start : config_.cold_start;
  p.begin_start(gpu_id, provisioned_mb, now(), now() + start_latency);
  note_state(p);
  active_.push_back(id);
  starting_.push_back(id);
  gpu_last_busy_[static_cast<std::size_t>(gpu_id.value)] = now();
  for (auto* o : observers_) o->on_place(*this, id, gpu_id, provisioned_mb);
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kPlace, id.value, gpu_id.value,
                   provisioned_mb);
  }
  if (placements_counter_ != nullptr) placements_counter_->inc();

  // Cold pulls on a live fabric are real registry→node flows: readiness is
  // gated on the transfer landing (never earlier than the base cold-start).
  // The callback guards against the pod having moved on — an eviction or
  // crash mid-pull invalidates the transfer.
  if (!cached && fabric_active() && config_.image_mb > 0) {
    p.set_ready_at(kNever);
    const SimTime floor_ready = now() + start_latency;
    const int restarts = p.crash_count() + p.evict_count();
    fabric_->start_flow(
        net::FlowKind::kImagePull, net::Fabric::kRegistry,
        static_cast<int>(node_idx), config_.image_mb,
        [this, id, gpu_id, floor_ready, restarts](SimTime t) {
          auto& pod_ref = *pods_[static_cast<std::size_t>(id.value)];
          if (pod_ref.state() != PodState::kStarting) return;
          if (pod_ref.gpu() != gpu_id) return;
          if (pod_ref.crash_count() + pod_ref.evict_count() != restarts) {
            return;
          }
          pod_ref.set_ready_at(std::max(floor_ready, t));
        });
  }
  return true;
}

bool Cluster::resize_pod(PodId id, double provisioned_mb) {
  auto& p = *pods_.at(static_cast<std::size_t>(id.value));
  if (p.state() != PodState::kRunning && p.state() != PodState::kStarting) {
    return false;
  }
  // Growth is quota-gated like a fresh placement; shrinking always admits
  // (it frees quota).
  const double growth = provisioned_mb - p.provisioned_mb();
  if (growth > 0 && ledger_.enforcing() &&
      !ledger_.admits(p.spec().tenant, growth)) {
    ledger_.note_rejection(p.spec().tenant);
    return false;
  }
  if (!device(p.gpu()).resize(id, provisioned_mb)) return false;
  ledger_.recharge(id, provisioned_mb);
  p.set_provisioned_mb(provisioned_mb);
  for (auto* o : observers_) o->on_resize(*this, id, provisioned_mb);
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kResize, id.value, -1, provisioned_mb);
  }
  return true;
}

bool Cluster::park(GpuId id) {
  const auto [node_idx, gpu_in_node] =
      gpu_index_.at(static_cast<std::size_t>(id.value));
  if (!nodes_[node_idx]->online()) return false;
  auto& dev = device(id);
  if (dev.totals().residents > 0) return false;
  dev.set_parked(true);
  note_parked(id);
  for (auto* o : observers_) o->on_park(*this, id);
  if (trace_ != nullptr) trace_->record(now(), EventKind::kPark, id.value);
  return true;
}

void Cluster::evict_node(NodeId id) {
  auto& node = *nodes_.at(static_cast<std::size_t>(id.value));
  std::uint64_t evicted = 0;
  for (std::size_t g = 0; g < node.gpu_count(); ++g) {
    auto& dev = node.gpu(g);
    for (PodId pod_id : dev.resident_pods()) {
      auto& p = *pods_[static_cast<std::size_t>(pod_id.value)];
      dev.detach(pod_id);
      note_detach(dev.id());
      ledger_.release(pod_id);
      p.evict(now());
      note_state(p);
      ++evicted;
      for (auto* o : observers_) o->on_evict(*this, pod_id, id);
      if (trace_ != nullptr) {
        trace_->record(now(), EventKind::kEvict, pod_id.value, id.value);
      }
      sim_.schedule_after(config_.evict_relaunch_delay, [this, pod_id] {
        auto& pod_ref = *pods_[static_cast<std::size_t>(pod_id.value)];
        pod_ref.requeue();
        note_state(pod_ref);
        pending_.push_back(pod_id);
        for (auto* o : observers_) o->on_requeue(*this, pod_id);
        if (trace_ != nullptr) {
          trace_->record(now(), EventKind::kRequeue, pod_id.value);
        }
      });
    }
  }
  std::erase_if(active_, [this](PodId pid) {
    return pods_[static_cast<std::size_t>(pid.value)]->state() ==
           PodState::kEvicted;
  });
  // Images die with the node: after recovery, pulls cold-start again.
  const auto node_idx = static_cast<std::size_t>(id.value);
  std::erase_if(image_cache_, [node_idx](const auto& key) {
    return key.first == node_idx;
  });
  injector_->note_evictions(evicted);
  if (evictions_counter_ != nullptr) evictions_counter_->inc(evicted);
}

void Cluster::add_observer(ClusterObserver* observer) {
  KNOTS_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void Cluster::set_trace_sink(obs::TraceSink* sink) noexcept { trace_ = sink; }

void Cluster::set_metrics_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    sched_profile_ = nullptr;
    advance_profile_ = scrape_profile_ = merge_profile_ = nullptr;
    aggregator_.set_sort_profile(nullptr);
    sim_.set_dispatch_profile(nullptr);
    ticks_counter_ = placements_counter_ = completions_counter_ = nullptr;
    crashes_counter_ = evictions_counter_ = faults_counter_ = nullptr;
    pending_gauge_ = active_gauge_ = completed_gauge_ = nullptr;
    power_gauge_ = parked_gauge_ = nullptr;
    return;
  }
  sched_profile_ = &registry->histogram("sched.on_schedule_ns");
  // Per-phase tick breakdown (bench_scale --json reads these): pod advance,
  // telemetry scrape, barrier merge, plus the existing scheduler round /
  // aggregator sort / event dispatch timers.
  advance_profile_ = &registry->histogram("cluster.advance_ns");
  scrape_profile_ = &registry->histogram("telemetry.scrape_ns");
  merge_profile_ = &registry->histogram("cluster.barrier_merge_ns");
  aggregator_.set_sort_profile(&registry->histogram("telemetry.agg_sort_ns"));
  sim_.set_dispatch_profile(&registry->histogram("sim.dispatch_ns"));
  // Resolve every hot-path instrument once; registry handles stay valid for
  // the registry's lifetime, so per-tick paths skip the name lookup.
  ticks_counter_ = &registry->counter("cluster.ticks");
  placements_counter_ = &registry->counter("cluster.placements");
  completions_counter_ = &registry->counter("cluster.completions");
  crashes_counter_ = &registry->counter("cluster.crashes");
  evictions_counter_ = &registry->counter("cluster.evictions");
  faults_counter_ = &registry->counter("cluster.faults_injected");
  pending_gauge_ = &registry->gauge("cluster.pending_pods");
  active_gauge_ = &registry->gauge("cluster.active_pods");
  completed_gauge_ = &registry->gauge("cluster.completed_pods");
  power_gauge_ = &registry->gauge("cluster.power_watts");
  parked_gauge_ = &registry->gauge("cluster.parked_gpus");
}

void Cluster::on_arrival(PodId id) {
  pending_.push_back(id);
  if (trace_ != nullptr) trace_->record(now(), EventKind::kSubmit, id.value);
}

SchedulingContext Cluster::make_context() {
  SchedulingContext ctx;
  ctx.cluster = this;
  ctx.now = now();
  ctx.pending = &pending_;
  ctx.aggregator = &aggregator_;
  ctx.profiles = &profile_store_;
  ctx.fault_feed = &fault_feed_;
  ctx.trace = trace_;
  // Exposed only while quotas are actually enforced, so policies behave
  // bit-identically on quota-free runs.
  ctx.tenants = ledger_.enforcing() ? &ledger_ : nullptr;
  return ctx;
}

void Cluster::apply_fault(const fault::FaultEvent& event) {
  const auto node_idx = static_cast<std::size_t>(event.node.value);
  // A node-crash on an already-down node is absorbed below without effect;
  // its kFaultInject record still lands, mirroring the injector's view.
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kFaultInject, event.node.value, -1,
                   event.severity, fault::to_string(event.kind));
  }
  if (faults_counter_ != nullptr) faults_counter_->inc();
  switch (event.kind) {
    case fault::FaultKind::kNodeCrash: {
      // A crash while already down (overlapping random-plan intervals) is
      // absorbed by the outstanding outage.
      if (injector_->node_down(event.node)) return;
      injector_->note_node_down(event.node);
      nodes_[node_idx]->set_online(false);
      evict_node(event.node);
      fault_feed_.push_back(
          {now(), fault::FaultKind::kNodeCrash, event.node, false});
      for (auto* o : observers_) o->on_node_down(*this, event.node);
      if (trace_ != nullptr) {
        trace_->record(now(), EventKind::kNodeDown, event.node.value);
      }
      SchedulingContext ctx = make_context();
      scheduler_->on_node_down(ctx, event.node);
      if (event.duration > 0) {
        sim_.schedule_after(event.duration,
                            [this, node = event.node] { recover_node(node); });
      }
      break;
    }
    case fault::FaultKind::kGpuEccDegrade: {
      auto& node = *nodes_[node_idx];
      for (std::size_t g = 0; g < node.gpu_count(); ++g) {
        node.gpu(g).retire_memory_mb(event.severity);
      }
      ++device_epoch_;  // usable capacity moved → aggregator views stale
      injector_->note_ecc_degrade(event.node);
      fault_feed_.push_back(
          {now(), fault::FaultKind::kGpuEccDegrade, event.node, false});
      break;
    }
    case fault::FaultKind::kHeartbeatLoss: {
      injector_->note_heartbeat_gap(event.node, event.at + event.duration);
      fault_feed_.push_back(
          {now(), fault::FaultKind::kHeartbeatLoss, event.node, false});
      sim_.schedule_after(event.duration, [this, node = event.node] {
        if (!injector_->heartbeat_muted(node, now())) {
          fault_feed_.push_back(
              {now(), fault::FaultKind::kHeartbeatLoss, node, true});
          if (trace_ != nullptr) {
            trace_->record(now(), EventKind::kFaultRecover, node.value, -1,
                           0.0, "heartbeat-loss");
          }
        }
      });
      break;
    }
    case fault::FaultKind::kPcieStall: {
      injector_->note_pcie_stall(event.node, now(), event.at + event.duration,
                                 event.severity);
      fault_feed_.push_back(
          {now(), fault::FaultKind::kPcieStall, event.node, false});
      sim_.schedule_after(event.duration, [this, node = event.node] {
        if (injector_->pcie_slowdown(node, now()) == 1.0) {
          fault_feed_.push_back(
              {now(), fault::FaultKind::kPcieStall, node, true});
          if (trace_ != nullptr) {
            trace_->record(now(), EventKind::kFaultRecover, node.value, -1,
                           0.0, "pcie-stall");
          }
        }
      });
      break;
    }
    case fault::FaultKind::kSpotReclaim: {
      // Stage 1: the reclaim *notice*. Schedulers (and serve's autoscaler,
      // through the feed) get the node's spot_notice grace to drain or
      // re-place before the capacity actually disappears.
      if (injector_->node_down(event.node)) return;
      fault_feed_.push_back(
          {now(), fault::FaultKind::kSpotReclaim, event.node, false});
      const SimTime notice = nodes_[node_idx]->spec().spot_notice;
      sim_.schedule_after(notice,
                          [this, node = event.node, d = event.duration] {
                            reclaim_node(node, d);
                          });
      break;
    }
    case fault::FaultKind::kLinkDown:
    case fault::FaultKind::kLinkDegrade: {
      // set_fault_plan already validated the name against the fabric.
      KNOTS_CHECK_MSG(fabric_ != nullptr,
                      "link fault installed without a fabric");
      const auto link = fabric_->link_index(event.link);
      KNOTS_CHECK_MSG(link.has_value(), "link fault names an unknown link");
      const bool hard = event.kind == fault::FaultKind::kLinkDown;
      if (hard) {
        fabric_->set_link_down(*link);
      } else {
        fabric_->degrade_link(*link, event.severity);
      }
      fault_feed_.push_back({now(), event.kind, event.node, false});
      if (event.duration > 0) {
        sim_.schedule_after(
            event.duration, [this, l = *link, hard, kind = event.kind] {
              if (hard) {
                fabric_->set_link_up(l);
              } else {
                fabric_->restore_link(l);
              }
              fault_feed_.push_back({now(), kind, NodeId{}, true});
              if (trace_ != nullptr) {
                trace_->record(now(), EventKind::kFaultRecover,
                               static_cast<std::int32_t>(l), -1, 0.0,
                               fault::to_string(kind));
              }
            });
      }
      break;
    }
  }
}

void Cluster::reclaim_node(NodeId id, SimTime duration) {
  // Stage 2: the notice grace elapsed; the provider takes the node. From
  // here it is a node-crash in every observable way — evictions ride the
  // kEvicted requeue path, telemetry goes dark, power drops to zero — so
  // every conservation invariant and observer contract holds unchanged.
  if (injector_->node_down(id)) return;  // crashed during the notice window
  injector_->note_node_down(id);
  nodes_[static_cast<std::size_t>(id.value)]->set_online(false);
  evict_node(id);
  for (auto* o : observers_) o->on_node_down(*this, id);
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kNodeDown, id.value);
  }
  SchedulingContext ctx = make_context();
  scheduler_->on_node_down(ctx, id);
  if (duration > 0) {
    sim_.schedule_after(duration, [this, id] { recover_node(id); });
  }
}

void Cluster::recover_node(NodeId id) {
  injector_->note_node_up(id);
  nodes_[static_cast<std::size_t>(id.value)]->set_online(true);
  fault_feed_.push_back({now(), fault::FaultKind::kNodeCrash, id, true});
  for (auto* o : observers_) o->on_node_up(*this, id);
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kNodeUp, id.value);
    trace_->record(now(), EventKind::kFaultRecover, id.value, -1, 0.0,
                   "node-crash");
  }
  SchedulingContext ctx = make_context();
  scheduler_->on_node_up(ctx, id);
}

void Cluster::detect_stale_transitions(SchedulingContext& ctx) {
  for (std::size_t i = 0; i < gpu_index_.size(); ++i) {
    const GpuId gpu{static_cast<std::int32_t>(i)};
    const bool is_stale = aggregator_.stale(gpu);
    if (is_stale && !gpu_stale_[i]) {
      injector_->note_stale_transition();
      scheduler_->on_telemetry_stale(ctx, gpu);
    }
    gpu_stale_[i] = is_stale;
  }
}

gpu::Usage Cluster::jittered(const gpu::Usage& usage, Rng& rng) const {
  if (config_.usage_jitter <= 0) return usage;
  gpu::Usage out = usage;
  const double j = 1.0 + rng.normal(0.0, config_.usage_jitter);
  const double f = std::clamp(j, 0.5, 1.5);
  out.sm = std::clamp(out.sm * f, 0.0, 1.2);
  out.memory_mb *= f;
  out.tx_mbps *= f;
  out.rx_mbps *= f;
  return out;
}

void Cluster::advance_running_pods() {
  // Phase A — snapshot. Slowdowns and co-resident batch SM pressure are
  // computed from the device state at tick entry, so pod advance order
  // within the tick cannot feed back into this tick's factors.
  const std::size_t gpus = gpu_index_.size();
  slowdown_scratch_.assign(gpus, 1.0);
  batch_sm_scratch_.assign(gpus, 0.0);
  const bool faults_live = injector_->any_effects();
  for (std::size_t i = 0; i < gpus; ++i) {
    slowdown_scratch_[i] =
        device(GpuId{static_cast<std::int32_t>(i)}).slowdown();
    if (faults_live) {
      slowdown_scratch_[i] *= injector_->pcie_slowdown(
          nodes_[gpu_index_[i].first]->id(), now());
    }
  }
  for (PodId id : active_) {
    const auto& p = *pods_[static_cast<std::size_t>(id.value)];
    if (p.state() == PodState::kRunning && !p.latency_critical()) {
      batch_sm_scratch_[static_cast<std::size_t>(p.gpu().value)] +=
          p.current_usage().sm;
    }
  }

  if (lane_exec_ == nullptr) {
    advance_fused();
    return;
  }

  // Phase B1 — lane-parallel pre-pass. Every lane scans the full active_
  // list and fills the slots of its own pods (dt, run, needs_stream) plus
  // its member list; canonical order is preserved because members are
  // pushed in ascending active_ index. No lane touches RNG state — stream
  // ranks come from the serial prefix scan below.
  advance_slots_.resize(active_.size());
  for (auto& members : lane_members_) members.clear();
  const auto plan_lane = [&](std::size_t lane) {
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const auto& p = *pods_[static_cast<std::size_t>(active_[i].value)];
      const auto gi = static_cast<std::size_t>(p.gpu().value);
      if (shard_.lane_of(gpu_index_[gi].first) != lane) continue;
      auto& slot = advance_slots_[i];
      slot = AdvanceSlot{};
      if (p.state() != PodState::kRunning) {
        slot.keep = p.state() == PodState::kStarting ? 1 : 0;
        continue;
      }
      double factor = slowdown_scratch_[gi];
      if (p.latency_critical()) {
        // Non-preemptive blocking behind co-resident batch kernels.
        factor *= 1.0 + config_.lc_blocking_tax * batch_sm_scratch_[gi];
      }
      const auto dt = static_cast<SimTime>(
          static_cast<double>(config_.tick) / factor);
      slot.dt = std::max<SimTime>(1, dt);
      // Device generation: a faster GPU retires proportionally more profile
      // time per wall tick. Applied after quantization so the homogeneous
      // P100 path (factor 1.0) is an exact no-op, and power-of-two factors
      // scale dt exactly (the heterogeneity metamorphic law leans on both).
      const double cf = compute_factor_[gi];
      if (cf != 1.0) {
        slot.dt = std::max<SimTime>(
            1, static_cast<SimTime>(static_cast<double>(slot.dt) * cf));
      }
      slot.run = 1;
      // A pod that will finish this tick draws no jitter; one that will
      // crash still draws (jitter is what crashes it).
      slot.needs_stream = p.would_finish(slot.dt) ? 0 : 1;
      lane_members_[lane].push_back(static_cast<std::uint32_t>(i));
    }
  };
  lane_exec_->for_each_lane(plan_lane);

  // Phase B2 — serial stream-rank prefix scan in canonical active_ order.
  // fork_at's counter-based derivation makes the rank the only serial part:
  // the i-th needs_stream pod gets the i-th stream, exactly the sequence
  // the old full sequential pre-pass produced.
  for (auto& slot : advance_slots_) {
    if (slot.needs_stream != 0) {
      slot.rng_stream = 0x9000 + pod_rng_counter_++;
    }
  }

  // Phase C — lane-parallel advance. Everything touched here is lane-local
  // (a node's pods, devices and gpu_last_busy_ slots belong to one lane) or
  // a disjoint advance_slots_ write; completions and crashes detach and
  // edge the pod locally, then defer their global half to the barrier with
  // seq = canonical active_ index.
  commit_.reset(shard_.lanes());
  const SimTime tick_now = now();
  const auto run_lane = [&](std::size_t lane) {
    for (const std::uint32_t i : lane_members_[lane]) {
      const PodId id = active_[i];
      auto& p = *pods_[static_cast<std::size_t>(id.value)];
      auto& slot = advance_slots_[i];
      p.advance(slot.dt);
      if (p.finished_profile()) {
        const GpuId g = p.gpu();
        device(g).detach(id);
        p.complete(tick_now);
        note_state(p);
        commit_.push(lane, tick_now, i, PodEffect{id, /*crashed=*/false, g});
        continue;
      }
      Rng jrng = rng_.fork(slot.rng_stream);
      gpu::Usage usage = jittered(p.current_usage(), jrng);
      if (p.spec().tf_greedy) {
        // TF never allocates past its own earmark, jitter or not.
        usage.memory_mb =
            std::min(usage.memory_mb, 0.995 * p.provisioned_mb());
      }
      if (!device(p.gpu()).set_usage(id, usage)) {
        const GpuId g = p.gpu();
        device(g).detach(id);
        p.crash(tick_now);
        note_state(p);
        commit_.push(lane, tick_now, i, PodEffect{id, /*crashed=*/true, g});
        continue;
      }
      gpu_last_busy_[static_cast<std::size_t>(p.gpu().value)] = tick_now;
      slot.keep = 1;
    }
  };
  lane_exec_->for_each_lane(run_lane);

  // Phase D — deterministic commit. Draining in (time, seq, partition)
  // order — seq is the canonical active_ index — replays the global halves
  // (metrics, profile store, observers, traces, relaunch scheduling) in
  // exactly the order the single-lane loop interleaved them.
  {
    KNOTS_PROF_SCOPE(merge_profile_);
    commit_.drain([this](SimTime, std::uint64_t, std::size_t, PodEffect& e) {
      note_detach(e.gpu);  // serial half of the lane's detach
      auto& p = *pods_[static_cast<std::size_t>(e.id.value)];
      if (e.crashed) {
        commit_crash(p);
      } else {
        commit_complete(p);
      }
    });
  }

  // Rebuild active_ in canonical order: kept runners plus starting pods.
  still_active_scratch_.clear();
  still_active_scratch_.reserve(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (advance_slots_[i].keep != 0) still_active_scratch_.push_back(active_[i]);
  }
  std::swap(active_, still_active_scratch_);
}

void Cluster::advance_fused() {
  // Single-lane fast path: one pass over active_, completions and crashes
  // committed inline. Equivalent to the phased path run at one lane — the
  // commit halves fire in the same canonical active_ order (barrier drain
  // order equals push order at one lane), the stream-rank sequence matches
  // the prefix scan (same predicate, same order), and pod advancement
  // never reads another pod's state (factors were snapshotted in Phase A),
  // so interleaving commits with advances changes no recorded value.
  still_active_scratch_.clear();
  still_active_scratch_.reserve(active_.size());
  const SimTime tick_now = now();
  for (const PodId id : active_) {
    auto& p = *pods_[static_cast<std::size_t>(id.value)];
    if (p.state() != PodState::kRunning) {
      if (p.state() == PodState::kStarting) {
        still_active_scratch_.push_back(id);
      }
      continue;
    }
    const auto gi = static_cast<std::size_t>(p.gpu().value);
    double factor = slowdown_scratch_[gi];
    if (p.latency_critical()) {
      // Non-preemptive blocking behind co-resident batch kernels.
      factor *= 1.0 + config_.lc_blocking_tax * batch_sm_scratch_[gi];
    }
    const auto scaled = static_cast<SimTime>(
        static_cast<double>(config_.tick) / factor);
    SimTime dt = std::max<SimTime>(1, scaled);
    // Same compute-factor application as the phased path (see plan_lane).
    const double cf = compute_factor_[gi];
    if (cf != 1.0) {
      dt = std::max<SimTime>(
          1, static_cast<SimTime>(static_cast<double>(dt) * cf));
    }
    // A pod that will finish this tick draws no jitter; one that will
    // crash still draws (jitter is what crashes it). The rank must be
    // consumed before the outcome is known to match the phased pre-pass.
    std::uint64_t stream = 0;
    if (!p.would_finish(dt)) stream = 0x9000 + pod_rng_counter_++;
    p.advance(dt);
    if (p.finished_profile()) {
      const GpuId g = p.gpu();
      device(g).detach(id);
      p.complete(tick_now);
      note_state(p);
      note_detach(g);
      commit_complete(p);
      continue;
    }
    Rng jrng = rng_.fork(stream);
    gpu::Usage usage = jittered(p.current_usage(), jrng);
    if (p.spec().tf_greedy) {
      // TF never allocates past its own earmark, jitter or not.
      usage.memory_mb = std::min(usage.memory_mb, 0.995 * p.provisioned_mb());
    }
    if (!device(p.gpu()).set_usage(id, usage)) {
      const GpuId g = p.gpu();
      device(g).detach(id);
      p.crash(tick_now);
      note_state(p);
      note_detach(g);
      commit_crash(p);
      continue;
    }
    gpu_last_busy_[gi] = tick_now;
    still_active_scratch_.push_back(id);
  }
  std::swap(active_, still_active_scratch_);
}

void Cluster::start_ready_pods() {
  // Sweep the starting_ list instead of all of active_. Entries whose pod
  // moved on (evicted/crashed elsewhere) are dropped here; list order is
  // placement order, which is exactly the relative order these pods hold
  // in active_, so begin_running fires in the same sequence the full
  // active_ scan produced.
  if (starting_.empty()) return;
  bool any_crashed = false;
  std::size_t w = 0;
  for (std::size_t r = 0; r < starting_.size(); ++r) {
    const PodId id = starting_[r];
    auto& p = *pods_[static_cast<std::size_t>(id.value)];
    if (p.state() != PodState::kStarting) continue;  // stale entry
    if (p.ready_at() > now()) {
      starting_[w++] = id;  // still warming up
      continue;
    }
    p.begin_running(now());
    note_state(p);
    if (trace_ != nullptr) {
      trace_->record(now(), EventKind::kStart, id.value, p.gpu().value);
    }
    if (!device(p.gpu()).set_usage(id, p.current_usage())) {
      crash_pod(p);
      any_crashed = true;
    }
  }
  starting_.resize(w);
  if (any_crashed) {
    std::erase_if(active_, [this](PodId id) {
      return pods_[static_cast<std::size_t>(id.value)]->state() ==
             PodState::kCrashed;
    });
  }
}

void Cluster::commit_complete(Pod& p) {
  ++completed_;
  ledger_.release(p.id());

  const auto& spec = p.spec();
  profile_store_.record_run(
      p.profile_key(), spec.profile.memory_percentile_mb(80.0),
      spec.profile.peak_memory_mb(), spec.profile.mean_sm(),
      spec.profile.peak_sm(), spec.profile.memory_signature(),
      spec.profile.sm_signature());

  if (p.latency_critical()) {
    QueryRecord q;
    q.arrival = spec.arrival;
    q.latency = p.completion() - spec.arrival;
    q.violated = spec.qos_latency > 0 && q.latency > spec.qos_latency;
    metrics_->record_query(q);
  } else if (spec.klass == workload::PodClass::kBatch) {
    BatchRecord b;
    b.arrival = spec.arrival;
    b.jct = p.completion() - spec.arrival;
    b.crashes = p.crash_count();
    metrics_->record_batch(b);
  }
  // kService replicas report per-request latency through knots::serve;
  // neither query nor batch-JCT metrics apply to the replica lifetime.
  for (auto* o : observers_) o->on_complete(*this, p.id());
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kComplete, p.id().value, -1,
                   p.progress());
  }
  if (completions_counter_ != nullptr) completions_counter_->inc();
}

void Cluster::crash_pod(Pod& p) {
  const GpuId g = p.gpu();
  device(g).detach(p.id());
  p.crash(now());
  note_state(p);
  note_detach(g);
  commit_crash(p);
}

void Cluster::commit_crash(Pod& p) {
  ledger_.release(p.id());
  metrics_->record_crash();
  const PodId id = p.id();
  for (auto* o : observers_) o->on_crash(*this, id);
  if (trace_ != nullptr) trace_->record(now(), EventKind::kCrash, id.value);
  if (crashes_counter_ != nullptr) crashes_counter_->inc();
  sim_.schedule_after(config_.relaunch_delay, [this, id] {
    auto& pod_ref = *pods_[static_cast<std::size_t>(id.value)];
    pod_ref.requeue();
    note_state(pod_ref);
    pending_.push_back(id);
    for (auto* o : observers_) o->on_requeue(*this, id);
    if (trace_ != nullptr) trace_->record(now(), EventKind::kRequeue, id.value);
  });
}

void Cluster::sample_figure_metrics() {
  // Utilization/power figures sample the trace-replay window only; the
  // drain tail (no arrivals left) would otherwise dilute every scheduler's
  // percentiles with idle samples. Energy keeps integrating over the full
  // run (makespan differences are the point of Fig 11a).
  if (now() > last_arrival_) return;
  metrics_->add_power_sample(total_power_watts());
  for (std::size_t i = 0; i < gpu_index_.size(); ++i) {
    const auto& dev = device(GpuId{static_cast<std::int32_t>(i)});
    // Percentiles are over utilization *while serving work*: parked and
    // empty GPUs contribute no sample. This profiles how well a scheduler
    // uses the GPUs it occupies — fragmentation shows up as low in-service
    // utilization, consolidation as high.
    const bool inactive = dev.parked() || dev.totals().residents == 0;
    metrics_->sample_gpu_util(i, dev.totals().sm_util, inactive);
  }
}

void Cluster::maybe_park_idle_gpus() {
  if (!scheduler_->parks_idle_gpus()) return;
  // Park candidates are exactly the unoccupied, unparked devices — walk the
  // bitmap complement (ascending, matching the historical full scan) so the
  // sweep costs O(idle) instead of O(gpus) once the datacenter warms up.
  const std::size_t gpus = gpu_index_.size();
  for (std::size_t w = 0; w < parked_bits_.size(); ++w) {
    std::uint64_t cand = ~(occupied_bits_[w] | parked_bits_[w]);
    if (w + 1 == parked_bits_.size() && (gpus & 63) != 0) {
      cand &= (std::uint64_t{1} << (gpus & 63)) - 1;  // mask tail padding
    }
    while (cand != 0) {
      const std::size_t i =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(cand));
      cand &= cand - 1;
      if (!nodes_[gpu_index_[i].first]->online()) continue;
      if (now() - gpu_last_busy_[i] < config_.idle_park_after) continue;
      const GpuId id{static_cast<std::int32_t>(i)};
      device(id).set_parked(true);
      note_parked(id);
      for (auto* o : observers_) o->on_park(*this, id);
      if (trace_ != nullptr) {
        trace_->record(now(), EventKind::kPark, id.value);
      }
    }
  }
}

bool Cluster::all_terminal() const {
  return completed_ == pods_.size() && now() >= last_arrival_;
}

void Cluster::tick() {
  ++ticks_;
  {
    KNOTS_PROF_SCOPE(advance_profile_);
    advance_running_pods();
  }
  start_ready_pods();
  // Telemetry heartbeats shard cleanly: each sampler owns its node's
  // time-series store and RNG, and the injector queries are const, so lanes
  // sample concurrently. Down or heartbeat-muted nodes stop reporting;
  // their series age toward the staleness horizon while last-known-good
  // values persist.
  // Advance the aggregator's clock before the scrape so refresh_lane stamps
  // its freshness under this tick's `now` — the scheduler's first query then
  // skips re-checking every db stamp the scrape just refreshed.
  aggregator_.begin_tick(now());
  {
    KNOTS_PROF_SCOPE(scrape_profile_);
    const bool muting = injector_->any_effects();
    const auto sample_lane = [&](std::size_t lane) {
      std::size_t count = 0;
      for (const std::size_t n : shard_.members(lane)) {
        if (muting && injector_->heartbeat_muted(nodes_[n]->id(), now())) {
          continue;
        }
        samplers_[n].sample(now());
        ++count;
      }
      lane_sampled_[lane] = count;
      // Pull the fresh samples into the aggregator's per-lane series cache
      // and sorted run while we are still lane-parallel; the scheduler's
      // first query then reduces to a k-way merge. No-op for policies that
      // never query the aggregator.
      aggregator_.refresh_lane(lane);
    };
    if (lane_exec_ != nullptr) {
      lane_exec_->for_each_lane(sample_lane);
    } else {
      for (std::size_t lane = 0; lane < shard_.lanes(); ++lane) {
        sample_lane(lane);
      }
    }
  }
  std::size_t nodes_sampled = 0;
  for (const std::size_t count : lane_sampled_) nodes_sampled += count;
  if (trace_ != nullptr) {
    trace_->record(now(), EventKind::kScrape, -1, -1,
                   static_cast<double>(nodes_sampled));
  }
  SchedulingContext ctx = make_context();
  if (injector_->any_effects()) detect_stale_transitions(ctx);
  {
    KNOTS_PROF_SCOPE(sched_profile_);
    scheduler_->on_schedule(ctx);
  }
  fault_feed_.clear();
  maybe_park_idle_gpus();

  // Energy integrates every tick; figure metrics sample at 1 s cadence.
  const double cluster_watts = total_power_watts();
  metrics_->add_energy(cluster_watts * to_seconds(config_.tick));
  // GPU-seconds accounting for tracked tenants (the ledger is empty — and
  // this loop skipped — on default single-tenant runs).
  if (!ledger_.empty()) {
    const double tick_seconds = to_seconds(config_.tick);
    for (const PodId id : active_) {
      const auto& p = *pods_[static_cast<std::size_t>(id.value)];
      if (p.state() == PodState::kRunning) {
        ledger_.accrue_gpu_seconds(p.spec().tenant, tick_seconds);
      }
    }
  }
  if (config_.metrics_period > 0 &&
      (now() / config_.tick) % (config_.metrics_period / config_.tick) == 0) {
    sample_figure_metrics();
  }
  if (registry_ != nullptr) update_tick_metrics(cluster_watts);
  for (auto* o : observers_) o->on_tick_end(*this);
}

void Cluster::update_tick_metrics(double cluster_watts) {
  ticks_counter_->inc();
  pending_gauge_->set(static_cast<double>(pending_.size()));
  active_gauge_->set(static_cast<double>(active_.size()));
  completed_gauge_->set(static_cast<double>(completed_));
  std::size_t parked = 0;
  for (const std::uint64_t w : parked_bits_) {
    parked += static_cast<std::size_t>(std::popcount(w));
  }
  power_gauge_->set(cluster_watts);
  parked_gauge_->set(static_cast<double>(parked));
}

}  // namespace knots::cluster
