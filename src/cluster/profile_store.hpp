// Head-node container resource-usage profile store (Fig 5).
//
// Kube-Knots needs no *a priori* profiling: the first pod of an image runs
// conservatively provisioned, and its observed usage builds a per-image
// profile that later placements consult for 80th-percentile sizing and for
// CBP's inter-application correlation checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace knots::cluster {

struct ImageProfile {
  std::string image;
  int observed_runs = 0;
  double p80_memory_mb = 0;   ///< 80th-percentile footprint (CBP's resize target).
  double peak_memory_mb = 0;  ///< Largest footprint ever observed.
  double mean_sm = 0;         ///< Average SM demand.
  double peak_sm = 0;
  /// Phase-aligned memory signature over one application cycle (fixed
  /// length); used for pairwise Spearman correlation between images.
  std::vector<double> memory_signature;
  std::vector<double> sm_signature;
  /// memory_signature ascending, maintained by record_run(). CBP reads
  /// footprint percentiles of this once per pending pod per tick (and
  /// O(n log n) times inside its sort comparator); keeping the sorted copy
  /// here turns each of those into an O(1) percentile_sorted() lookup.
  std::vector<double> memory_signature_sorted;
};

class ProfileStore {
 public:
  /// Folds one completed (or crashed-late) run's observations into the
  /// image's profile with an exponential moving average.
  void record_run(const std::string& image, double p80_memory_mb,
                  double peak_memory_mb, double mean_sm, double peak_sm,
                  const std::vector<double>& memory_signature,
                  const std::vector<double>& sm_signature);

  [[nodiscard]] const ImageProfile* find(const std::string& image) const;
  [[nodiscard]] bool known(const std::string& image) const {
    return profiles_.contains(image);
  }
  [[nodiscard]] std::size_t size() const noexcept { return profiles_.size(); }

  /// Bumped on every record_run(). Schedulers key per-pod profile caches on
  /// this: while the generation stands still, a cached find() result —
  /// including a miss — is still current. ImageProfile pointers are stable
  /// (node-based map), so caching the pointer itself is safe.
  [[nodiscard]] std::uint64_t generation() const noexcept { return gen_; }

  /// Spearman correlation between two images' memory signatures; nullopt
  /// when either image is unknown (CBP then provisions conservatively).
  [[nodiscard]] std::optional<double> memory_correlation(
      const std::string& a, const std::string& b) const;

 private:
  std::unordered_map<std::string, ImageProfile> profiles_;
  std::uint64_t gen_ = 0;
};

}  // namespace knots::cluster
