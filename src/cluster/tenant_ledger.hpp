// Per-tenant accounting and quota enforcement.
//
// Every pod carries a tenant id (0 = the default single tenant). The ledger
// charges *provisioned* device memory at placement and releases it at every
// detach-terminal transition (complete, crash, eviction), and accrues
// GPU-seconds while pods run. Quotas cap either axis; admission is checked
// centrally in Cluster::place(), so "no tenant ever exceeds its quota" holds
// by construction regardless of which scheduler asked.
//
// Golden preservation: with no quotas configured and every pod on tenant 0,
// the ledger never tracks anything — reports carry no tenant rows and digests
// are bit-identical to pre-ledger runs.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace knots::cluster {

/// One tenant's caps. A cap of 0 means unlimited on that axis.
struct TenantQuotaSpec {
  int tenant = 0;
  double provision_cap_mb = 0.0;   ///< Max simultaneous provisioned MB.
  double gpu_seconds_cap = 0.0;    ///< Lifetime GPU-seconds budget.
  friend bool operator==(const TenantQuotaSpec&,
                         const TenantQuotaSpec&) = default;
};

/// Accounting snapshot for one tenant (reported and digest-mixed).
struct TenantRow {
  int tenant = 0;
  double provisioned_mb = 0.0;      ///< Currently charged provision.
  double peak_provisioned_mb = 0.0; ///< High-water mark over the run.
  double gpu_seconds = 0.0;         ///< Accrued pod-runtime on devices.
  std::int64_t placements = 0;      ///< Successful quota-admitted placements.
  std::int64_t rejections = 0;      ///< Admissions refused by quota.
  TenantQuotaSpec quota{};          ///< Caps in force (0 = unlimited).
  friend bool operator==(const TenantRow&, const TenantRow&) = default;
};

class TenantLedger {
 public:
  /// Installs a quota; any configured quota switches the ledger to
  /// enforcing, which also turns on tracking for tenant 0.
  void set_quota(const TenantQuotaSpec& quota);

  /// True once any quota is configured.
  [[nodiscard]] bool enforcing() const noexcept { return enforcing_; }

  /// True when this tenant's activity should be accounted (and eventually
  /// reported). Tenant 0 with no quotas anywhere stays invisible so default
  /// runs keep their goldens.
  [[nodiscard]] bool tracks(int tenant) const noexcept {
    return enforcing_ || tenant != 0;
  }

  /// Would an extra `mb` of provision for `tenant` stay within its caps?
  /// Always true for tenants without quotas.
  [[nodiscard]] bool admits(int tenant, double mb) const;

  /// Records a quota refusal (pod stays pending and may retry later).
  void note_rejection(int tenant);

  /// Charges `mb` of provision to `tenant` on behalf of `pod`. The per-pod
  /// amount is remembered internally because Pod::crash()/evict() zero the
  /// pod's own provisioned_mb before the ledger hears about it.
  void charge(int tenant, PodId pod, double mb);

  /// Adjusts an existing pod's charge to `mb` (container resize).
  void recharge(PodId pod, double mb);

  /// Releases whatever `pod` is currently charged; idempotent.
  void release(PodId pod);

  /// Accrues device runtime for a tracked tenant.
  void accrue_gpu_seconds(int tenant, double seconds);

  /// Current charge held against a pod (0 when unknown).
  [[nodiscard]] double charged_mb(PodId pod) const;

  /// All tracked tenants' rows, ascending tenant id (deterministic).
  [[nodiscard]] std::vector<TenantRow> rows() const;

  [[nodiscard]] bool empty() const noexcept { return tenants_.empty(); }

 private:
  struct PodCharge {
    int tenant = 0;
    double mb = 0.0;
  };

  TenantRow& row(int tenant);

  bool enforcing_ = false;
  std::map<int, TenantRow> tenants_;
  std::unordered_map<PodId, PodCharge> pod_charges_;
};

}  // namespace knots::cluster
