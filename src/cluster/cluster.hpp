// The simulated GPU cluster: worker nodes with telemetry, a head node with
// the utilization aggregator and profile store, pod lifecycle management,
// and the experiment metrics the figures read.
//
// Sharing semantics (§IV-B): GPU compute is time-shared — aggregate SM
// demand above 100 % slows every resident proportionally (plus a context-
// switch tax); memory is space-shared — aggregate *usage* above physical
// capacity crashes the pod whose growth tripped the violation, which
// relaunches from scratch at the back of the queue after a delay.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/observer.hpp"
#include "cluster/pod.hpp"
#include "cluster/profile_store.hpp"
#include "cluster/scheduler.hpp"
#include "cluster/tenant_ledger.hpp"
#include "core/arena.hpp"
#include "core/page_arena.hpp"
#include "core/rng.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "gpu/gpu_node.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeseries_db.hpp"

namespace knots::cluster {

/// One class of identical worker nodes in a heterogeneous cluster: a device
/// model from the gpu::DeviceModel registry times a count, optionally spot.
struct NodeClass {
  std::string device_model;  ///< Registry name, e.g. "v100-32g".
  int count = 0;
  int gpus_per_node = 0;     ///< 0 = inherit ClusterConfig::gpus_per_node.
  bool preemptible = false;  ///< Spot capacity (reclaimable via FaultPlan).
  SimTime spot_notice = 0;   ///< Reclaim warning → actual node-down grace.
  friend bool operator==(const NodeClass&, const NodeClass&) = default;
};

struct ClusterConfig {
  int nodes = 10;               ///< Paper testbed: ten P100 worker nodes.
  int gpus_per_node = 1;
  gpu::NodeSpec node_spec{};    ///< gpus_per_node above overrides the spec's.
  /// Heterogeneous substrate: when non-empty, nodes are built class by class
  /// (in list order, so node ids are contiguous per class) from the device
  /// model registry and `nodes`/`node_spec.gpu` above are ignored. Empty
  /// keeps the historical homogeneous construction bit-for-bit.
  std::vector<NodeClass> node_classes{};
  /// Per-tenant admission caps. Any entry switches the TenantLedger to
  /// enforcing: placements are quota-gated centrally in place(). Empty =
  /// no quotas, and tenant-0-only runs stay ledger-invisible.
  std::vector<TenantQuotaSpec> tenant_quotas{};
  /// Cluster-wide instantaneous power budget in watts (0 = uncapped). Not a
  /// control loop — the invariant checker audits that the simulated draw
  /// never exceeds it, for power-capped-rack scenarios.
  double power_cap_watts = 0.0;
  SimTime tick = 10 * kMsec;    ///< Progress/scheduling quantum.
  SimTime metrics_period = 1 * kSec;  ///< Figure-metrics sampling cadence.
  SimTime cold_start = 2 * kSec;      ///< First image pull on a node (§V-B).
  SimTime warm_start = 25 * kMsec;    ///< Cached-image container launch.
  SimTime relaunch_delay = 3 * kSec;  ///< Crash → rejoin pending queue.
  /// Node-death eviction → rejoin pending queue. Longer than the crash
  /// relaunch delay: kubelet must notice the node is gone before pods are
  /// rescheduled.
  SimTime evict_relaunch_delay = 5 * kSec;
  /// Missed heartbeats before the aggregator marks a GPU's series stale.
  int stale_after_heartbeats = 5;
  SimTime idle_park_after = 15 * kSec;///< Idle time before deep sleep.
  SimTime drain_grace = 30 * kMinute; ///< Max drain time past last arrival.
  double usage_jitter = 0.02;         ///< Run-to-run usage noise (fraction).
  /// Non-preemptive kernel blocking: a latency-critical pod's progress is
  /// further slowed by 1 + tax × (aggregate SM demand of co-resident batch
  /// pods). Short inference kernels queue behind long batch kernels; batch
  /// pods barely notice the reverse (§I: GPUs cannot preempt).
  double lc_blocking_tax = 2.5;
  double telemetry_noise = 0.005;     ///< NVML measurement noise (sigma).
  std::uint64_t seed = 42;
  /// Event-lane shards for the tick hot path. Nodes are partitioned across
  /// lanes (contiguous blocks unless lane_assignment overrides); pod
  /// advance and telemetry sampling run lane-parallel, with every global
  /// effect committed through a deterministic (time, seq, partition)
  /// barrier merge — any lane count, and any node→lane permutation,
  /// reproduces the single-lane run bit-for-bit.
  int lanes = 1;
  /// Optional explicit node→lane map (size == nodes, each entry < lanes).
  /// Empty picks contiguous blocks. Pods sharing a GPU always share a lane
  /// because the partition is by node.
  std::vector<int> lane_assignment{};
  /// Samples retained per telemetry series (the node-local time-series
  /// store's retention policy). The default preserves the historical
  /// capacity; datacenter-scale runs shrink it to bound memory — results
  /// are unchanged as long as it covers the widest scheduler lookback
  /// window (window / tick samples; 500 at the defaults).
  std::size_t telemetry_retention = 65536;
  /// Optional datacenter fabric (empty = no fabric — the historical model
  /// where transfers are free). A non-inert fabric charges cold image pulls
  /// as real registry→node flows, stretching pod startup under contention.
  net::FabricPlan fabric{};
  /// Container image size a cold pull transfers over the fabric. Ignored
  /// without a (non-inert) fabric.
  double image_mb = 2048.0;
};

enum class NodeHealth { kHealthy, kDown };

class Cluster : private net::FabricObserver {
 public:
  Cluster(const ClusterConfig& config, Scheduler& scheduler);

  /// Registers the workload; call once before run().
  void load(std::vector<workload::PodSpec> specs);

  /// Installs a fault schedule (validated against the topology); call
  /// before run(). Every event is replayed on the discrete-event engine, so
  /// identical (config, seed, plan) runs are bit-identical.
  void set_fault_plan(fault::FaultPlan plan);

  /// Runs to completion (all pods terminal) or the drain-grace deadline.
  /// The deadline tracks the latest arrival, including pods submitted
  /// mid-run via submit_pod().
  void run();

  // ---- Control-plane API (knots::serve and other mid-run drivers) ----
  /// Submits a pod while the cluster is running (autoscaler scale-up). The
  /// spec's id is overwritten with the next dense id; its arrival is
  /// clamped to now-or-later. The pod joins the pending queue at its
  /// arrival time and is placed by the scheduler like any other pod.
  PodId submit_pod(workload::PodSpec spec);

  /// Gracefully retires a *running* pod (autoscaler scale-down): detaches
  /// it from its GPU and completes it through the normal completion path.
  /// Returns false when the pod is not currently running (pending or
  /// still starting replicas cannot be retired yet).
  bool finish_pod(PodId id);

  /// The cluster's discrete-event engine. Control planes (the serving
  /// engine, autoscalers) schedule their own events here so request
  /// processing, scale decisions and cluster ticks interleave in one
  /// deterministic (time, insertion-seq) order.
  [[nodiscard]] sim::Simulation& engine() noexcept { return sim_; }

  // ---- Read API (schedulers, tests, benches) ----
  [[nodiscard]] SimTime now() const noexcept { return sim_.now(); }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::deque<PodId>& pending() const noexcept {
    return pending_;
  }
  [[nodiscard]] const Pod& pod(PodId id) const;
  [[nodiscard]] std::size_t pod_count() const noexcept { return pods_.size(); }
  [[nodiscard]] std::size_t completed_count() const noexcept {
    return completed_;
  }
  /// Scheduling quanta executed so far (the bench harness's ticks/sec
  /// denominator).
  [[nodiscard]] std::uint64_t tick_count() const noexcept { return ticks_; }
  /// Discrete events dispatched by the underlying engine (bench events/sec
  /// numerator).
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return sim_.events_processed();
  }
  /// Event lanes the tick hot path is sharded into (1 = sequential).
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return shard_.lanes();
  }
  [[nodiscard]] const telemetry::UtilizationAggregator& aggregator() const {
    return aggregator_;
  }
  [[nodiscard]] const ProfileStore& profiles() const { return profile_store_; }
  [[nodiscard]] const MetricsCollector& metrics() const { return *metrics_; }
  /// Per-tenant accounting (inactive — no rows — in default single-tenant
  /// runs without quotas).
  [[nodiscard]] const TenantLedger& tenant_ledger() const noexcept {
    return ledger_;
  }

  [[nodiscard]] std::size_t gpu_count() const noexcept { return gpu_index_.size(); }
  // Flat device table: one indirection instead of gpu_index_ + node + slot
  // (the tick hot path resolves tens of millions of GpuIds per run).
  [[nodiscard]] gpu::GpuDevice& device(GpuId id) {
    return *devices_[static_cast<std::size_t>(id.value)];
  }
  [[nodiscard]] const gpu::GpuDevice& device(GpuId id) const {
    return *devices_[static_cast<std::size_t>(id.value)];
  }
  [[nodiscard]] std::vector<GpuId> all_gpus() const;
  /// Dense index of a GPU (0..gpu_count), for metrics addressing.
  [[nodiscard]] std::size_t gpu_dense_index(GpuId id) const;

  /// Occupancy bitmap over dense GPU indices: bit (i & 63) of word (i >> 6)
  /// is set while GPU i hosts at least one pod. Maintained at every
  /// attach/detach; schedulers iterate the set bits (ascending, identical
  /// to a full scan that skips empty devices) instead of touching every
  /// device in the datacenter.
  [[nodiscard]] const std::vector<std::uint64_t>& occupied_gpu_bits()
      const noexcept {
    return occupied_bits_;
  }
  /// Parked bitmap over dense GPU indices (same layout). Set on park,
  /// cleared on attach (attach wakes the device).
  [[nodiscard]] const std::vector<std::uint64_t>& parked_gpu_bits()
      const noexcept {
    return parked_bits_;
  }

  // ---- Fault/health API ----
  [[nodiscard]] int node_count() const noexcept { return config_.nodes; }
  [[nodiscard]] NodeId node_of_gpu(GpuId id) const;
  /// The node's spec (device model, spot flags) — heterogeneous clusters
  /// differ per node.
  [[nodiscard]] const gpu::NodeSpec& node_spec(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id.value))->spec();
  }
  /// True when any node is spot capacity. Spot-aware schedulers gate their
  /// two-pass preference walk on this so spot-free clusters pay nothing
  /// (and place bit-identically to the pre-spot code).
  [[nodiscard]] bool has_preemptible_nodes() const noexcept {
    return has_preemptible_;
  }
  [[nodiscard]] NodeHealth node_health(NodeId id) const;
  /// Instantaneous whole-cluster draw (hosts + GPUs) — the same sum the
  /// energy integrator uses; audited against config().power_cap_watts.
  [[nodiscard]] double total_power_watts() const;
  [[nodiscard]] const fault::FaultStats& fault_stats() const noexcept {
    return injector_->stats();
  }
  [[nodiscard]] const fault::FaultPlan& fault_plan() const noexcept {
    return fault_plan_;
  }

  // ---- Fabric API ----
  /// The live fabric, or nullptr when the config declared none.
  [[nodiscard]] const net::Fabric* fabric() const noexcept {
    return fabric_.get();
  }
  /// True when pulls/migrations are actually charged on a fabric (a fabric
  /// exists and is not inert).
  [[nodiscard]] bool fabric_active() const noexcept {
    return fabric_ != nullptr && !fabric_->inert();
  }

  // ---- Mutation API (schedulers) ----
  /// Places a pending pod on a GPU with the given container allocation.
  /// Removes it from the pending queue; start latency depends on whether the
  /// image is cached on the target node. Returns false if the pod is not
  /// pending.
  bool place(PodId id, GpuId gpu, double provisioned_mb);

  /// Docker resize of a running pod's container allocation. Fails when the
  /// new size is below current usage.
  bool resize_pod(PodId id, double provisioned_mb);

  /// Records a tenant-quota refusal a scheduler discovered in its own
  /// pre-check (CBP skips the node walk for over-budget tenants). Counting
  /// here keeps its rejection accounting identical to schedulers that only
  /// find out inside place().
  void note_quota_rejection(int tenant) { ledger_.note_rejection(tenant); }

  /// Parks an empty GPU into deep sleep; fails when occupied or on a dead
  /// node.
  bool park(GpuId id);

  /// Drains a node for a crash: evicts every resident pod back to pending
  /// (after the eviction relaunch delay) and forgets the node's image
  /// cache. Also usable directly for graceful-drain experiments.
  void evict_node(NodeId id);

  // ---- Observation API (verification layer) ----
  /// Registers a passive observer notified on every lifecycle edge and at
  /// the end of every tick, in registration order. The observer must
  /// outlive the cluster's run(); it is not owned.
  void add_observer(ClusterObserver* observer);

  /// Packed per-pod state table (index = pod id, value = PodState),
  /// maintained at every transition. Lets auditors diff one byte per pod
  /// per tick instead of dereferencing every Pod; always consistent with
  /// pod(id).state() at observer time.
  [[nodiscard]] const std::vector<std::uint8_t>& pod_state_table()
      const noexcept {
    return pod_states_;
  }

  // ---- Observability API (obs layer; call before run()) ----
  /// Attaches a tracer recording every lifecycle edge, fault transition,
  /// telemetry scrape and scheduler decision. Not owned; nullptr detaches.
  /// Purely observational — the decision sequence (and run digest) of a
  /// traced run is bit-identical to the untraced run.
  void set_trace_sink(obs::TraceSink* sink) noexcept;
  /// Attaches a metrics registry: per-tick cluster gauges, lifecycle
  /// counters, and the hot-path profiling histograms (sched.on_schedule_ns,
  /// telemetry.agg_sort_ns, sim.dispatch_ns). Not owned; nullptr detaches.
  void set_metrics_registry(obs::MetricsRegistry* registry);

 private:
  // -- net::FabricObserver (fabric events fan out to cluster observers) --
  void on_flow_start(std::uint64_t flow, net::FlowKind kind, int src_node,
                     int dst_node, double mb, SimTime now) override;
  void on_flow_finish(std::uint64_t flow, net::FlowKind kind, bool contended,
                      SimTime now) override;
  void on_link_state(std::size_t link, bool up, SimTime now) override;

  void on_arrival(PodId id);
  void tick();
  void advance_running_pods();
  void advance_fused();  ///< Single-lane advance: one pass, no barrier.
  void start_ready_pods();
  void crash_pod(Pod& pod);
  /// Global bookkeeping halves of complete/crash — run at barrier-commit
  /// time, after the lane halves (detach + state edge) already ran.
  void commit_complete(Pod& pod);
  void commit_crash(Pod& pod);
  void sample_figure_metrics();
  void maybe_park_idle_gpus();
  [[nodiscard]] SchedulingContext make_context();
  void apply_fault(const fault::FaultEvent& event);
  void recover_node(NodeId id);
  /// Spot-reclaim landing after the notice grace: the preemptible node goes
  /// down exactly like a crash (evictions through the kEvicted requeue path)
  /// and recovers after `duration` (0 = never).
  void reclaim_node(NodeId id, SimTime duration);
  void detect_stale_transitions(SchedulingContext& ctx);
  void update_tick_metrics(double cluster_watts);
  [[nodiscard]] bool all_terminal() const;
  [[nodiscard]] gpu::Usage jittered(const gpu::Usage& usage, Rng& rng) const;
  /// Mirrors a pod's state into the packed table. In lane context this
  /// writes the pod's own byte only — distinct pods are distinct memory
  /// locations, so concurrent lane calls never race.
  void note_state(const Pod& p) noexcept {
    pod_states_[static_cast<std::size_t>(p.id().value)] =
        static_cast<std::uint8_t>(p.state());
  }
  // Bitmap/epoch bookkeeping for device mutations. Serial-phase only: lanes
  // never call these (the lane advance defers its detaches to the barrier
  // drain, which runs them serially via the PodEffect's captured GpuId).
  void note_attach(GpuId g) noexcept {
    const auto i = static_cast<std::size_t>(g.value);
    occupied_bits_[i >> 6] |= std::uint64_t{1} << (i & 63);
    parked_bits_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));  // attach wakes
    ++device_epoch_;
  }
  void note_detach(GpuId g) noexcept {
    const auto i = static_cast<std::size_t>(g.value);
    if (devices_[i]->totals().residents == 0) {
      occupied_bits_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }
    ++device_epoch_;
  }
  void note_parked(GpuId g) noexcept {
    const auto i = static_cast<std::size_t>(g.value);
    parked_bits_[i >> 6] |= std::uint64_t{1} << (i & 63);
    ++device_epoch_;
  }

  ClusterConfig config_;
  Scheduler* scheduler_;
  sim::Simulation sim_;
  Rng rng_;

  std::vector<std::unique_ptr<gpu::GpuNode>> nodes_;
  /// Backs every node db's telemetry rings (declared before dbs_ so it
  /// outlives them): one shared huge-page arena packs the whole
  /// datacenter's rings contiguously in node order — per-node arenas would
  /// never fill a huge page (a node's five series are ~KBs each).
  core::PageArena telemetry_arena_;
  std::vector<std::unique_ptr<telemetry::TimeSeriesDb>> dbs_;
  std::vector<telemetry::HeartbeatSampler> samplers_;
  telemetry::UtilizationAggregator aggregator_;
  // GpuId -> (node index, gpu index within node); ids are dense from 0.
  std::vector<std::pair<std::size_t, std::size_t>> gpu_index_;
  // GpuId -> device, flat. Stable: GpuNode owns devices by unique_ptr.
  std::vector<gpu::GpuDevice*> devices_;
  /// Bumped by note_attach/note_detach/note_parked and ECC retirement —
  /// every change to the live device fields the aggregator's views depend
  /// on (parked/residents/usable capacity). The aggregator watches it via
  /// set_live_epoch to skip its O(slots) live-bits diff on quiet queries.
  std::uint64_t device_epoch_ = 0;
  std::vector<std::uint64_t> occupied_bits_;  ///< see occupied_gpu_bits()
  std::vector<std::uint64_t> parked_bits_;    ///< see parked_gpu_bits()

  // Pods live in a slab arena: stable addresses, one bulk allocation per
  // slab instead of one heap node per pod (10k-node runs create hundreds of
  // thousands of relaunch-churned pods).
  core::SlabArena<Pod> pod_arena_;
  std::vector<Pod*> pods_;
  std::deque<PodId> pending_;
  std::vector<PodId> active_;  ///< Starting or running, in placement order.
  /// Pods possibly still kStarting, in placement order (a subsequence of
  /// active_'s order). May hold stale entries after an eviction/crash; the
  /// per-tick start_ready_pods() sweep drops any whose state moved on —
  /// always before the pod can re-enter kStarting, because re-entry requires
  /// a requeue event plus an on_schedule placement, and every tick runs this
  /// sweep before on_schedule.
  std::vector<PodId> starting_;
  /// Packed PodState per pod id (see pod_state_table()).
  std::vector<std::uint8_t> pod_states_;
  ProfileStore profile_store_;
  TenantLedger ledger_;
  /// Per-device compute factor (dense GpuId order), snapshotted once at
  /// construction so the tick hot path never chases spec pointers. All 1.0
  /// on a homogeneous P100 cluster.
  std::vector<double> compute_factor_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::set<std::pair<std::size_t, std::string>> image_cache_;
  std::vector<SimTime> gpu_last_busy_;
  std::vector<ClusterObserver*> observers_;
  std::unique_ptr<net::Fabric> fabric_;  ///< null when config_.fabric empty
  fault::FaultPlan fault_plan_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<fault::FaultNotice> fault_feed_;
  std::vector<bool> gpu_stale_;  ///< Previous-tick staleness, for edges.
  bool has_preemptible_ = false;  ///< Any node is spot capacity.
  SimTime last_arrival_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t pod_rng_counter_ = 0;
  std::uint64_t ticks_ = 0;

  // ---- Sharded tick machinery ----
  /// A pod lifecycle edge detected inside a lane, deferred to the barrier.
  struct PodEffect {
    PodId id;
    bool crashed = false;  ///< false → completed
    /// Device the pod detached from, captured in the lane before the state
    /// edge (Pod::crash clears gpu_). The serial drain applies the
    /// bitmap/epoch update the lane could not.
    GpuId gpu{};
  };
  /// Per-active-pod advance plan. Lanes fill their own pods' slots in
  /// parallel (dt, run, needs_stream); a tiny serial prefix scan then
  /// assigns rng_stream ranks in canonical active_ order, reproducing the
  /// exact stream sequence of the old sequential pre-pass.
  struct AdvanceSlot {
    SimTime dt = 0;
    std::uint64_t rng_stream = 0;
    std::uint8_t run = 0;           ///< Pod was kRunning at tick entry.
    std::uint8_t keep = 0;          ///< Pod stays in active_ after this tick.
    std::uint8_t needs_stream = 0;  ///< Running and not finishing: draws jitter.
  };
  sim::ShardPlan shard_;  ///< node index → lane
  std::unique_ptr<sim::LaneExecutor> lane_exec_;  ///< null when lanes == 1
  sim::BarrierMerge<PodEffect> commit_;
  // Persistent per-tick scratch: the tick hot loop never reallocates.
  std::vector<double> slowdown_scratch_;
  std::vector<double> batch_sm_scratch_;
  std::vector<AdvanceSlot> advance_slots_;
  std::vector<std::vector<std::uint32_t>> lane_members_;
  std::vector<PodId> still_active_scratch_;
  std::vector<std::size_t> lane_sampled_;

  // Observability (all optional, never sampled by the simulation itself).
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Histogram* sched_profile_ = nullptr;  ///< sched.on_schedule_ns
  obs::Histogram* advance_profile_ = nullptr;  ///< cluster.advance_ns
  obs::Histogram* scrape_profile_ = nullptr;   ///< telemetry.scrape_ns
  obs::Histogram* merge_profile_ = nullptr;    ///< cluster.barrier_merge_ns
  // Instrument handles resolved once at attach time — the per-tick and
  // per-lifecycle-edge paths never pay the registry's name lookup.
  obs::Counter* ticks_counter_ = nullptr;
  obs::Counter* placements_counter_ = nullptr;
  obs::Counter* completions_counter_ = nullptr;
  obs::Counter* crashes_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* faults_counter_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* completed_gauge_ = nullptr;
  obs::Gauge* power_gauge_ = nullptr;
  obs::Gauge* parked_gauge_ = nullptr;
};

}  // namespace knots::cluster
