// Passive observation hooks on the cluster's lifecycle edges.
//
// The Cluster notifies registered observers after every state-changing
// action (placement, resize, crash, requeue, completion, park) and at the
// end of every scheduling tick. Observers never mutate the cluster; they
// exist so the verification layer (knots::verify) can audit invariants and
// accumulate run digests without the cluster depending on it.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace knots::cluster {

class Cluster;

class ClusterObserver {
 public:
  virtual ~ClusterObserver() = default;

  /// A pending pod was placed on a GPU with the given container allocation.
  virtual void on_place(const Cluster& /*cluster*/, PodId /*pod*/,
                        GpuId /*gpu*/, double /*provisioned_mb*/) {}

  /// A running/starting pod's container allocation was resized.
  virtual void on_resize(const Cluster& /*cluster*/, PodId /*pod*/,
                         double /*provisioned_mb*/) {}

  /// A pod tripped a capacity violation and was evicted from its GPU.
  virtual void on_crash(const Cluster& /*cluster*/, PodId /*pod*/) {}

  /// A crashed/evicted pod re-entered the pending queue after its delay.
  virtual void on_requeue(const Cluster& /*cluster*/, PodId /*pod*/) {}

  /// A pod was evicted from a dying node (fault path, not a capacity
  /// violation); it re-enters pending after the eviction relaunch delay.
  virtual void on_evict(const Cluster& /*cluster*/, PodId /*pod*/,
                        NodeId /*node*/) {}

  /// A worker node crashed; its residents were evicted first.
  virtual void on_node_down(const Cluster& /*cluster*/, NodeId /*node*/) {}

  /// A crashed worker node recovered.
  virtual void on_node_up(const Cluster& /*cluster*/, NodeId /*node*/) {}

  /// A pod executed its full profile and left the cluster.
  virtual void on_complete(const Cluster& /*cluster*/, PodId /*pod*/) {}

  /// An idle GPU was parked into deep sleep.
  virtual void on_park(const Cluster& /*cluster*/, GpuId /*gpu*/) {}

  /// A fabric flow started (image pull, migration…). `kind` is the
  /// net::FlowKind as an int so observers stay independent of knots::net;
  /// `src_node` is -1 when the source is the image registry at the spine.
  virtual void on_flow_start(const Cluster& /*cluster*/,
                             std::uint64_t /*flow*/, int /*kind*/,
                             int /*src_node*/, int /*dst_node*/,
                             double /*mb*/) {}

  /// A fabric flow delivered its last byte. `contended` marks flows that
  /// ever ran below their path's bottleneck capacity.
  virtual void on_flow_finish(const Cluster& /*cluster*/,
                              std::uint64_t /*flow*/, bool /*contended*/) {}

  /// A fabric link lost capacity (hard down or degrade).
  virtual void on_link_down(const Cluster& /*cluster*/,
                            std::size_t /*link*/) {}

  /// A fabric link was restored to full capacity.
  virtual void on_link_up(const Cluster& /*cluster*/, std::size_t /*link*/) {}

  /// End of one scheduling tick: progress, telemetry, the scheduling round
  /// and parking have all run; the cluster is in a consistent rest state.
  virtual void on_tick_end(const Cluster& /*cluster*/) {}
};

}  // namespace knots::cluster
