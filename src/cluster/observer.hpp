// Passive observation hooks on the cluster's lifecycle edges.
//
// The Cluster notifies registered observers after every state-changing
// action (placement, resize, crash, requeue, completion, park) and at the
// end of every scheduling tick. Observers never mutate the cluster; they
// exist so the verification layer (knots::verify) can audit invariants and
// accumulate run digests without the cluster depending on it.
#pragma once

#include "core/types.hpp"

namespace knots::cluster {

class Cluster;

class ClusterObserver {
 public:
  virtual ~ClusterObserver() = default;

  /// A pending pod was placed on a GPU with the given container allocation.
  virtual void on_place(const Cluster& /*cluster*/, PodId /*pod*/,
                        GpuId /*gpu*/, double /*provisioned_mb*/) {}

  /// A running/starting pod's container allocation was resized.
  virtual void on_resize(const Cluster& /*cluster*/, PodId /*pod*/,
                         double /*provisioned_mb*/) {}

  /// A pod tripped a capacity violation and was evicted from its GPU.
  virtual void on_crash(const Cluster& /*cluster*/, PodId /*pod*/) {}

  /// A crashed/evicted pod re-entered the pending queue after its delay.
  virtual void on_requeue(const Cluster& /*cluster*/, PodId /*pod*/) {}

  /// A pod was evicted from a dying node (fault path, not a capacity
  /// violation); it re-enters pending after the eviction relaunch delay.
  virtual void on_evict(const Cluster& /*cluster*/, PodId /*pod*/,
                        NodeId /*node*/) {}

  /// A worker node crashed; its residents were evicted first.
  virtual void on_node_down(const Cluster& /*cluster*/, NodeId /*node*/) {}

  /// A crashed worker node recovered.
  virtual void on_node_up(const Cluster& /*cluster*/, NodeId /*node*/) {}

  /// A pod executed its full profile and left the cluster.
  virtual void on_complete(const Cluster& /*cluster*/, PodId /*pod*/) {}

  /// An idle GPU was parked into deep sleep.
  virtual void on_park(const Cluster& /*cluster*/, GpuId /*gpu*/) {}

  /// End of one scheduling tick: progress, telemetry, the scheduling round
  /// and parking have all run; the cluster is in a consistent rest state.
  virtual void on_tick_end(const Cluster& /*cluster*/) {}
};

}  // namespace knots::cluster
