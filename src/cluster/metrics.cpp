#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots::cluster {

MetricsCollector::MetricsCollector(std::size_t gpu_count)
    : per_gpu_util_(gpu_count),
      per_gpu_trace_(gpu_count),
      per_gpu_parked_(gpu_count) {
  KNOTS_CHECK(gpu_count > 0);
}

void MetricsCollector::sample_gpu_util(std::size_t gpu_index, double sm_util,
                                       bool parked) {
  KNOTS_CHECK(gpu_index < per_gpu_util_.size());
  const double pct = sm_util * 100.0;
  per_gpu_trace_[gpu_index].push_back(pct);
  per_gpu_parked_[gpu_index].push_back(parked);
  if (!parked) per_gpu_util_[gpu_index].push_back(pct);
}

void MetricsCollector::add_power_sample(double cluster_watts) {
  power_.add(cluster_watts);
}

const std::vector<double>& MetricsCollector::gpu_util_samples(
    std::size_t gpu_index) const {
  KNOTS_CHECK(gpu_index < per_gpu_util_.size());
  return per_gpu_util_[gpu_index];
}

double MetricsCollector::gpu_util_percentile(std::size_t gpu_index,
                                             double p) const {
  const auto& samples = gpu_util_samples(gpu_index);
  if (samples.empty()) return 0.0;
  return percentile(samples, p);
}

std::vector<double> MetricsCollector::gpu_util_percentiles(
    std::size_t gpu_index, std::span<const double> ps) const {
  const auto& samples = gpu_util_samples(gpu_index);
  if (samples.empty()) return std::vector<double>(ps.size(), 0.0);
  return percentiles(samples, ps);
}

double MetricsCollector::cluster_util_percentile(double p) const {
  std::vector<double> pooled;
  for (const auto& samples : per_gpu_util_) {
    pooled.insert(pooled.end(), samples.begin(), samples.end());
  }
  if (pooled.empty()) return 0.0;
  return percentile(pooled, p);
}

std::vector<double> MetricsCollector::cluster_util_percentiles(
    std::span<const double> ps) const {
  std::vector<double> pooled;
  for (const auto& samples : per_gpu_util_) {
    pooled.insert(pooled.end(), samples.begin(), samples.end());
  }
  if (pooled.empty()) return std::vector<double>(ps.size(), 0.0);
  return percentiles(pooled, ps);
}

double MetricsCollector::gpu_util_cov(std::size_t gpu_index) const {
  const auto& samples = gpu_util_samples(gpu_index);
  OnlineStats st;
  for (double s : samples) st.add(s);
  return st.cov();
}

double MetricsCollector::pairwise_load_cov(std::size_t i, std::size_t j) const {
  KNOTS_CHECK(i < per_gpu_trace_.size() && j < per_gpu_trace_.size());
  const auto& a = per_gpu_trace_[i];
  const auto& b = per_gpu_trace_[j];
  const std::size_t n = std::min(a.size(), b.size());
  OnlineStats avg;
  for (std::size_t k = 0; k < n; ++k) {
    if (per_gpu_parked_[i][k] || per_gpu_parked_[j][k]) continue;
    const double mean2 = (a[k] + b[k]) / 2.0;
    if (mean2 <= 0) continue;
    // COV of a two-element sample {a, b}: |a-b| / (sqrt(2) * mean).
    const double sd = std::abs(a[k] - b[k]) / std::sqrt(2.0);
    avg.add(sd / mean2);
  }
  return avg.mean();
}

std::size_t MetricsCollector::violation_count() const {
  std::size_t v = 0;
  for (const auto& q : queries_) v += q.violated ? 1 : 0;
  return v;
}

double MetricsCollector::qos_violations_per_kilo() const {
  if (queries_.empty()) return 0.0;
  return 1000.0 * static_cast<double>(violation_count()) /
         static_cast<double>(queries_.size());
}

double MetricsCollector::batch_jct_percentile(double p) const {
  if (batches_.empty()) return 0.0;
  std::vector<double> jcts;
  jcts.reserve(batches_.size());
  for (const auto& b : batches_) jcts.push_back(to_seconds(b.jct));
  return percentile(jcts, p);
}

std::vector<double> MetricsCollector::batch_jct_percentiles(
    std::span<const double> ps) const {
  if (batches_.empty()) return std::vector<double>(ps.size(), 0.0);
  std::vector<double> jcts;
  jcts.reserve(batches_.size());
  for (const auto& b : batches_) jcts.push_back(to_seconds(b.jct));
  return percentiles(jcts, ps);
}

double MetricsCollector::mean_batch_jct_seconds() const {
  if (batches_.empty()) return 0.0;
  double sum = 0;
  for (const auto& b : batches_) sum += to_seconds(b.jct);
  return sum / static_cast<double>(batches_.size());
}

double MetricsCollector::query_latency_percentile(double p) const {
  if (queries_.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(queries_.size());
  for (const auto& q : queries_)
    lat.push_back(static_cast<double>(q.latency) / static_cast<double>(kMsec));
  return percentile(lat, p);
}

std::vector<double> MetricsCollector::query_latency_percentiles(
    std::span<const double> ps) const {
  if (queries_.empty()) return std::vector<double>(ps.size(), 0.0);
  std::vector<double> lat;
  lat.reserve(queries_.size());
  for (const auto& q : queries_)
    lat.push_back(static_cast<double>(q.latency) / static_cast<double>(kMsec));
  return percentiles(lat, ps);
}

}  // namespace knots::cluster
