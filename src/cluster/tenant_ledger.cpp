#include "cluster/tenant_ledger.hpp"

#include <algorithm>

namespace knots::cluster {

void TenantLedger::set_quota(const TenantQuotaSpec& quota) {
  enforcing_ = true;
  row(quota.tenant).quota = quota;
}

bool TenantLedger::admits(int tenant, double mb) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return true;
  const TenantRow& r = it->second;
  if (r.quota.provision_cap_mb > 0.0 &&
      r.provisioned_mb + mb > r.quota.provision_cap_mb) {
    return false;
  }
  if (r.quota.gpu_seconds_cap > 0.0 &&
      r.gpu_seconds >= r.quota.gpu_seconds_cap) {
    return false;
  }
  return true;
}

void TenantLedger::note_rejection(int tenant) {
  if (!tracks(tenant)) return;
  ++row(tenant).rejections;
}

void TenantLedger::charge(int tenant, PodId pod, double mb) {
  if (!tracks(tenant)) return;
  TenantRow& r = row(tenant);
  r.provisioned_mb += mb;
  r.peak_provisioned_mb = std::max(r.peak_provisioned_mb, r.provisioned_mb);
  ++r.placements;
  pod_charges_[pod] = PodCharge{tenant, mb};
}

void TenantLedger::recharge(PodId pod, double mb) {
  const auto it = pod_charges_.find(pod);
  if (it == pod_charges_.end()) return;
  TenantRow& r = row(it->second.tenant);
  r.provisioned_mb += mb - it->second.mb;
  r.peak_provisioned_mb = std::max(r.peak_provisioned_mb, r.provisioned_mb);
  it->second.mb = mb;
}

void TenantLedger::release(PodId pod) {
  const auto it = pod_charges_.find(pod);
  if (it == pod_charges_.end()) return;
  row(it->second.tenant).provisioned_mb -= it->second.mb;
  pod_charges_.erase(it);
}

void TenantLedger::accrue_gpu_seconds(int tenant, double seconds) {
  if (!tracks(tenant)) return;
  row(tenant).gpu_seconds += seconds;
}

double TenantLedger::charged_mb(PodId pod) const {
  const auto it = pod_charges_.find(pod);
  return it == pod_charges_.end() ? 0.0 : it->second.mb;
}

std::vector<TenantRow> TenantLedger::rows() const {
  std::vector<TenantRow> out;
  out.reserve(tenants_.size());
  for (const auto& [id, r] : tenants_) out.push_back(r);
  return out;
}

TenantRow& TenantLedger::row(int tenant) {
  TenantRow& r = tenants_[tenant];
  r.tenant = tenant;
  return r;
}

}  // namespace knots::cluster
