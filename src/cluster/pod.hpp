// Pod runtime state machine.
//
//   Pending → Starting (image pull / container launch) → Running
//     → Completed                  (profile fully executed)
//     → Crashed → Pending          (capacity violation; relaunch after delay,
//                                   back of the queue, progress lost)
//     → Evicted → Pending          (hosting node died; relaunch after the
//                                   eviction delay, progress lost)
#pragma once

#include <string_view>

#include "core/types.hpp"
#include "workload/load_generator.hpp"

namespace knots::cluster {

enum class PodState {
  kPending,
  kStarting,
  kRunning,
  kCompleted,
  kCrashed,
  kEvicted,
};

std::string_view to_string(PodState s) noexcept;

/// Profile-store key for a pod: batch pods profile per image; inference
/// pods profile per (service, batch size) since the footprint scales with
/// the batch.
std::string image_key(const workload::PodSpec& spec);

class Pod {
 public:
  explicit Pod(workload::PodSpec spec)
      : spec_(std::move(spec)), profile_key_(image_key(spec_)) {}

  [[nodiscard]] const workload::PodSpec& spec() const noexcept { return spec_; }
  /// image_key(spec()), computed once — the schedulers' profile lookups
  /// would otherwise rebuild the string per resident per tick.
  [[nodiscard]] const std::string& profile_key() const noexcept {
    return profile_key_;
  }
  [[nodiscard]] PodId id() const noexcept { return spec_.id; }
  [[nodiscard]] PodState state() const noexcept { return state_; }
  [[nodiscard]] bool terminal() const noexcept {
    return state_ == PodState::kCompleted;
  }
  [[nodiscard]] bool latency_critical() const noexcept {
    return spec_.klass == workload::PodClass::kLatencyCritical;
  }

  [[nodiscard]] GpuId gpu() const noexcept { return gpu_; }
  [[nodiscard]] SimTime app_time() const noexcept { return app_time_; }
  [[nodiscard]] double provisioned_mb() const noexcept { return provisioned_mb_; }
  [[nodiscard]] int crash_count() const noexcept { return crash_count_; }
  [[nodiscard]] int evict_count() const noexcept { return evict_count_; }
  [[nodiscard]] SimTime first_start() const noexcept { return first_start_; }
  [[nodiscard]] SimTime completion() const noexcept { return completion_; }
  [[nodiscard]] SimTime running_since() const noexcept { return running_since_; }

  /// Fraction of the profile executed, in [0,1].
  [[nodiscard]] double progress() const noexcept;
  [[nodiscard]] bool finished_profile() const noexcept {
    return app_time_ >= spec_.profile.total_duration();
  }
  /// Whether advancing by `dt` would finish the profile. The sharded tick's
  /// sequential pre-pass uses this to assign usage-jitter RNG streams in
  /// canonical order before the lanes advance in parallel (a completing pod
  /// draws no jitter, so it consumes no stream).
  [[nodiscard]] bool would_finish(SimTime dt) const noexcept {
    return app_time_ + dt >= spec_.profile.total_duration();
  }

  /// Current ground-truth demand (profile evaluated at app-time).
  [[nodiscard]] gpu::Usage current_usage() const;

  // -- State transitions (driven by the Cluster) --
  void begin_start(GpuId gpu, double provisioned_mb, SimTime now,
                   SimTime ready_at);
  [[nodiscard]] SimTime ready_at() const noexcept { return ready_at_; }
  /// Moves the start deadline of a kStarting pod (fabric image pulls gate
  /// readiness on the transfer finishing instead of a fixed latency).
  void set_ready_at(SimTime ready_at) noexcept { ready_at_ = ready_at; }
  void begin_running(SimTime now);
  /// Advances virtual application time by `dt` of delivered GPU time.
  void advance(SimTime dt);
  void complete(SimTime now);
  void crash(SimTime now);
  /// Fault-path removal from a dying node (progress lost, like a crash,
  /// but tallied separately — the pod did nothing wrong).
  void evict(SimTime now);
  /// Re-enters the pending queue after a crash or eviction.
  void requeue() ;
  void set_provisioned_mb(double mb) noexcept { provisioned_mb_ = mb; }

 private:
  workload::PodSpec spec_;
  std::string profile_key_;
  PodState state_ = PodState::kPending;
  GpuId gpu_{};
  double provisioned_mb_ = 0;
  SimTime app_time_ = 0;
  SimTime ready_at_ = 0;
  SimTime first_start_ = -1;
  SimTime running_since_ = -1;
  SimTime completion_ = -1;
  int crash_count_ = 0;
  int evict_count_ = 0;
};

}  // namespace knots::cluster
