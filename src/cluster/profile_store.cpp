#include "cluster/profile_store.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "stats/correlation.hpp"

namespace knots::cluster {

namespace {
constexpr double kEma = 0.3;  ///< Weight of the newest run.

void ema_merge(std::vector<double>& acc, const std::vector<double>& next) {
  if (acc.empty()) {
    acc = next;
    return;
  }
  KNOTS_CHECK(acc.size() == next.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = (1.0 - kEma) * acc[i] + kEma * next[i];
  }
}
}  // namespace

void ProfileStore::record_run(const std::string& image, double p80_memory_mb,
                              double peak_memory_mb, double mean_sm,
                              double peak_sm,
                              const std::vector<double>& memory_signature,
                              const std::vector<double>& sm_signature) {
  ++gen_;
  auto& prof = profiles_[image];
  if (prof.observed_runs == 0) {
    prof.image = image;
    prof.p80_memory_mb = p80_memory_mb;
    prof.peak_memory_mb = peak_memory_mb;
    prof.mean_sm = mean_sm;
    prof.peak_sm = peak_sm;
    prof.memory_signature = memory_signature;
    prof.sm_signature = sm_signature;
  } else {
    prof.p80_memory_mb =
        (1.0 - kEma) * prof.p80_memory_mb + kEma * p80_memory_mb;
    prof.peak_memory_mb = std::max(prof.peak_memory_mb, peak_memory_mb);
    prof.mean_sm = (1.0 - kEma) * prof.mean_sm + kEma * mean_sm;
    prof.peak_sm = std::max(prof.peak_sm, peak_sm);
    ema_merge(prof.memory_signature, memory_signature);
    ema_merge(prof.sm_signature, sm_signature);
  }
  // Runs complete far less often than schedulers read percentiles, so the
  // sorted shadow is refreshed here rather than per query.
  prof.memory_signature_sorted = prof.memory_signature;
  std::sort(prof.memory_signature_sorted.begin(),
            prof.memory_signature_sorted.end());
  ++prof.observed_runs;
}

const ImageProfile* ProfileStore::find(const std::string& image) const {
  auto it = profiles_.find(image);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::optional<double> ProfileStore::memory_correlation(
    const std::string& a, const std::string& b) const {
  const ImageProfile* pa = find(a);
  const ImageProfile* pb = find(b);
  if (pa == nullptr || pb == nullptr) return std::nullopt;
  if (pa->memory_signature.size() != pb->memory_signature.size()) {
    return std::nullopt;
  }
  return stats::spearman(pa->memory_signature, pb->memory_signature);
}

}  // namespace knots::cluster
