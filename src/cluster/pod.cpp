#include "cluster/pod.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace knots::cluster {

std::string_view to_string(PodState s) noexcept {
  switch (s) {
    case PodState::kPending: return "pending";
    case PodState::kStarting: return "starting";
    case PodState::kRunning: return "running";
    case PodState::kCompleted: return "completed";
    case PodState::kCrashed: return "crashed";
    case PodState::kEvicted: return "evicted";
  }
  return "unknown";
}

std::string image_key(const workload::PodSpec& spec) {
  if (spec.klass == workload::PodClass::kLatencyCritical) {
    return spec.app + "#" + std::to_string(spec.batch_size);
  }
  return spec.app;
}

double Pod::progress() const noexcept {
  const auto total = static_cast<double>(spec_.profile.total_duration());
  if (total <= 0) return 1.0;
  return std::min(1.0, static_cast<double>(app_time_) / total);
}

gpu::Usage Pod::current_usage() const {
  gpu::Usage usage = spec_.profile.usage_at(app_time_);
  if (spec_.tf_greedy) {
    // TF's default allocator earmarks ~99 % of the container's allocation
    // up front; only a Knots-resized (small) allocation constrains it.
    usage.memory_mb = std::max(usage.memory_mb, 0.99 * provisioned_mb_);
  }
  return usage;
}

void Pod::begin_start(GpuId gpu_id, double provisioned_mb, SimTime now,
                      SimTime ready) {
  KNOTS_CHECK_MSG(state_ == PodState::kPending, "place requires pending pod");
  state_ = PodState::kStarting;
  gpu_ = gpu_id;
  provisioned_mb_ = provisioned_mb;
  ready_at_ = ready;
  if (first_start_ < 0) first_start_ = now;
}

void Pod::begin_running(SimTime now) {
  KNOTS_CHECK(state_ == PodState::kStarting);
  state_ = PodState::kRunning;
  running_since_ = now;
}

void Pod::advance(SimTime dt) {
  KNOTS_CHECK(state_ == PodState::kRunning);
  app_time_ += dt;
}

void Pod::complete(SimTime now) {
  KNOTS_CHECK(state_ == PodState::kRunning);
  state_ = PodState::kCompleted;
  completion_ = now;
}

void Pod::crash(SimTime now) {
  KNOTS_CHECK(state_ == PodState::kRunning || state_ == PodState::kStarting);
  state_ = PodState::kCrashed;
  ++crash_count_;
  gpu_ = GpuId{};
  provisioned_mb_ = 0;
  app_time_ = 0;  // Containers restart from scratch.
  completion_ = now;  // Transient; overwritten on eventual completion.
}

void Pod::evict(SimTime now) {
  KNOTS_CHECK(state_ == PodState::kRunning || state_ == PodState::kStarting);
  state_ = PodState::kEvicted;
  ++evict_count_;
  gpu_ = GpuId{};
  provisioned_mb_ = 0;
  app_time_ = 0;  // Containers restart from scratch.
  completion_ = now;  // Transient; overwritten on eventual completion.
}

void Pod::requeue() {
  KNOTS_CHECK(state_ == PodState::kCrashed || state_ == PodState::kEvicted);
  state_ = PodState::kPending;
}

}  // namespace knots::cluster
