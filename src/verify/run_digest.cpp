#include "verify/run_digest.hpp"

#include <bit>

#include "cluster/cluster.hpp"

namespace knots::verify {

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

void RunDigest::mix_u64(std::uint64_t v) noexcept {
  // Fold byte-by-byte in little-endian order so the digest does not depend
  // on the host's endianness.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffu;
    hash_ *= kFnvPrime;
  }
}

void RunDigest::mix_double(double v) noexcept {
  if (v == 0.0) v = 0.0;  // Collapse -0.0 and +0.0 to one bit pattern.
  mix_u64(std::bit_cast<std::uint64_t>(v));
}

void RunDigest::mix_string(std::string_view s) noexcept {
  hash_ = fnv1a64(s.data(), s.size(), hash_);
  mix_u64(s.size());
}

void RunDigest::begin_record(Tag tag, SimTime now) {
  ++events_;
  mix_u64(static_cast<std::uint64_t>(tag));
  mix_u64(static_cast<std::uint64_t>(now));
}

void RunDigest::begin_record(Tag tag, const cluster::Cluster& cluster) {
  begin_record(tag, cluster.now());
}

void RunDigest::on_place(const cluster::Cluster& cluster, PodId pod,
                         GpuId gpu, double provisioned_mb) {
  begin_record(Tag::kPlace, cluster);
  mix_u64(static_cast<std::uint64_t>(pod.value));
  mix_u64(static_cast<std::uint64_t>(gpu.value));
  mix_double(provisioned_mb);
}

void RunDigest::on_resize(const cluster::Cluster& cluster, PodId pod,
                          double provisioned_mb) {
  begin_record(Tag::kResize, cluster);
  mix_u64(static_cast<std::uint64_t>(pod.value));
  mix_double(provisioned_mb);
}

void RunDigest::on_crash(const cluster::Cluster& cluster, PodId pod) {
  begin_record(Tag::kCrash, cluster);
  mix_u64(static_cast<std::uint64_t>(pod.value));
}

void RunDigest::on_requeue(const cluster::Cluster& cluster, PodId pod) {
  begin_record(Tag::kRequeue, cluster);
  mix_u64(static_cast<std::uint64_t>(pod.value));
}

void RunDigest::on_complete(const cluster::Cluster& cluster, PodId pod) {
  begin_record(Tag::kComplete, cluster);
  mix_u64(static_cast<std::uint64_t>(pod.value));
  mix_double(cluster.pod(pod).progress());
}

void RunDigest::on_park(const cluster::Cluster& cluster, GpuId gpu) {
  begin_record(Tag::kPark, cluster);
  mix_u64(static_cast<std::uint64_t>(gpu.value));
}

void RunDigest::on_evict(const cluster::Cluster& cluster, PodId pod,
                         NodeId node) {
  begin_record(Tag::kEvict, cluster);
  mix_u64(static_cast<std::uint64_t>(pod.value));
  mix_u64(static_cast<std::uint64_t>(node.value));
}

void RunDigest::on_node_down(const cluster::Cluster& cluster, NodeId node) {
  begin_record(Tag::kNodeDown, cluster);
  mix_u64(static_cast<std::uint64_t>(node.value));
}

void RunDigest::on_node_up(const cluster::Cluster& cluster, NodeId node) {
  begin_record(Tag::kNodeUp, cluster);
  mix_u64(static_cast<std::uint64_t>(node.value));
}

// Fabric records mix only operands the trace carries (flow id, destination,
// size, contention bit) so traced runs replay bit-for-bit; the flow kind
// and source ride in the trace/observer stream but not the digest.
void RunDigest::on_flow_start(const cluster::Cluster& cluster,
                              std::uint64_t flow, int /*kind*/,
                              int /*src_node*/, int dst_node, double mb) {
  begin_record(Tag::kFlowStart, cluster);
  mix_u64(flow);
  mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(dst_node)));
  mix_double(mb);
}

void RunDigest::on_flow_finish(const cluster::Cluster& cluster,
                               std::uint64_t flow, bool contended) {
  begin_record(Tag::kFlowFinish, cluster);
  mix_u64(flow);
  if (contended) {
    begin_record(Tag::kFlowContend, cluster);
    mix_u64(flow);
  }
}

void RunDigest::on_link_down(const cluster::Cluster& cluster,
                             std::size_t link) {
  begin_record(Tag::kLinkDown, cluster);
  mix_u64(static_cast<std::uint64_t>(link));
}

void RunDigest::on_link_up(const cluster::Cluster& cluster,
                           std::size_t link) {
  begin_record(Tag::kLinkUp, cluster);
  mix_u64(static_cast<std::uint64_t>(link));
}

}  // namespace knots::verify
