#include "verify/invariant_checker.hpp"

#include <array>
#include <cmath>
#include <map>
#include <string>

#include "cluster/cluster.hpp"
#include "core/check.hpp"

namespace knots::verify {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string gpu_tag(GpuId gpu) {
  return "gpu " + std::to_string(gpu.value);
}

std::string pod_tag(PodId pod) {
  return "pod " + std::to_string(pod.value);
}

/// Transitions observable between two consecutive tick-end audits. These
/// are the closures of the single-step transitions in pod.hpp over one
/// tick: e.g. a crashed pod can requeue *and* be re-placed within one tick,
/// so Crashed → Starting is observable even though the state machine only
/// allows Crashed → Pending → Starting.
bool observable_transition(cluster::PodState from,
                           cluster::PodState to) noexcept {
  using S = cluster::PodState;
  if (from == to) return true;
  switch (from) {
    case S::kPending:
      return to == S::kStarting;
    case S::kStarting:
      return to == S::kRunning || to == S::kCrashed || to == S::kEvicted;
    case S::kRunning:
      return to == S::kCompleted || to == S::kCrashed || to == S::kEvicted;
    case S::kCrashed:
      return to == S::kPending || to == S::kStarting;
    case S::kEvicted:
      return to == S::kPending || to == S::kStarting;
    case S::kCompleted:
      return false;  // Terminal.
  }
  return false;
}

}  // namespace

InvariantChecker::InvariantChecker(InvariantOptions options)
    : options_(options) {}

void InvariantChecker::report(const cluster::Cluster& cluster,
                              std::string category, std::string message) {
  ++violation_count_;
  if (options_.fatal) {
    const std::string full = category + ": " + message;
    KNOTS_CHECK_MSG(false, full.c_str());
  }
  if (violations_.size() < options_.max_recorded) {
    violations_.push_back(
        Violation{std::move(category), std::move(message), cluster.now()});
  }
}

void InvariantChecker::check_time(const cluster::Cluster& cluster) {
  const SimTime now = cluster.now();
  if (now <= last_tick_) {
    report(cluster, "time-monotonicity",
           "tick time " + std::to_string(now) +
               " did not advance past previous tick " +
               std::to_string(last_tick_));
  }
  last_tick_ = now;
}

void InvariantChecker::check_devices(const cluster::Cluster& cluster) {
  const double eps = options_.memory_epsilon_mb;
  for (GpuId gpu : cluster.all_gpus()) {
    const auto& dev = cluster.device(gpu);
    const auto totals = dev.totals();
    const auto& spec = dev.spec();

    // Space-shared memory: aggregate *usage* must fit the usable device
    // (physical capacity minus ECC-retired pages) at every rest state
    // (transient overshoot crashes the grower before the tick ends).
    if (totals.memory_used_mb > dev.effective_memory_mb() + eps) {
      report(cluster, "gpu-memory",
             gpu_tag(gpu) + " usage " + fmt_double(totals.memory_used_mb) +
                 " MB exceeds usable capacity " +
                 fmt_double(dev.effective_memory_mb()) + " MB");
    }
    if (totals.memory_used_mb < -eps || totals.memory_provisioned_mb < -eps) {
      report(cluster, "gpu-memory",
             gpu_tag(gpu) + " negative memory accounting");
    }
    if (options_.provision_ceiling_ratio > 0 &&
        totals.memory_provisioned_mb >
            options_.provision_ceiling_ratio * spec.memory_mb + eps) {
      report(cluster, "gpu-provision",
             gpu_tag(gpu) + " provisioned " +
                 fmt_double(totals.memory_provisioned_mb) +
                 " MB exceeds ceiling " +
                 fmt_double(options_.provision_ceiling_ratio *
                            spec.memory_mb) +
                 " MB");
    }

    // Time-shared SMs: delivered utilization is demand clamped to [0, 1].
    if (totals.sm_util < 0.0 || totals.sm_util > 1.0) {
      report(cluster, "gpu-utilization",
             gpu_tag(gpu) + " sm_util " + fmt_double(totals.sm_util) +
                 " outside [0, 1]");
    }
    if (totals.sm_util > totals.sm_demand + 1e-12) {
      report(cluster, "gpu-utilization",
             gpu_tag(gpu) + " delivered utilization " +
                 fmt_double(totals.sm_util) + " exceeds demand " +
                 fmt_double(totals.sm_demand));
    }

    // P100 p-state envelope: deep sleep (P12) through TDP.
    const double watts = dev.power_watts();
    if (watts < spec.power.deep_sleep_watts - 1e-9 ||
        watts > spec.power.max_watts + 1e-9) {
      report(cluster, "gpu-power",
             gpu_tag(gpu) + " power " + fmt_double(watts) +
                 " W outside envelope [" +
                 fmt_double(spec.power.deep_sleep_watts) + ", " +
                 fmt_double(spec.power.max_watts) + "]");
    }

    // Internal accounting: totals must agree with per-pod records.
    const auto& residents = dev.residents();
    if (static_cast<std::size_t>(totals.residents) != residents.size()) {
      report(cluster, "gpu-accounting",
             gpu_tag(gpu) + " resident count " +
                 std::to_string(totals.residents) + " != tracked pods " +
                 std::to_string(residents.size()));
    }
    double provisioned_sum = 0;
    for (PodId pod : residents) {
      provisioned_sum += dev.provisioned_mb(pod).value_or(0.0);
    }
    if (std::abs(provisioned_sum - totals.memory_provisioned_mb) > eps) {
      report(cluster, "gpu-accounting",
             gpu_tag(gpu) + " provisioned total " +
                 fmt_double(totals.memory_provisioned_mb) +
                 " != per-pod sum " + fmt_double(provisioned_sum));
    }
    if (dev.parked() && totals.residents != 0) {
      report(cluster, "gpu-parking",
             gpu_tag(gpu) + " parked with " +
                 std::to_string(totals.residents) + " residents");
    }

    // A dead node hosts nothing: the eviction path must have drained it
    // before the tick's rest state.
    if (cluster.node_health(cluster.node_of_gpu(gpu)) ==
            cluster::NodeHealth::kDown &&
        totals.residents != 0) {
      report(cluster, "node-health",
             gpu_tag(gpu) + " on a down node with " +
                 std::to_string(totals.residents) + " residents");
    }
  }
}

void InvariantChecker::audit_pod(const cluster::Cluster& cluster,
                                 std::size_t index,
                                 std::uint8_t packed_state) {
  using S = cluster::PodState;
  const PodId id{static_cast<std::int32_t>(index)};
  const auto& pod = cluster.pod(id);
  const S state = pod.state();
  if (static_cast<std::uint8_t>(state) != packed_state) {
    report(cluster, "pod-state-table",
           pod_tag(id) + " packed state " + std::to_string(packed_state) +
               " disagrees with pod state " +
               std::string(to_string(state)));
  }

  const double progress = pod.progress();
  if (progress < 0.0 || progress > 1.0) {
    report(cluster, "pod-progress",
           pod_tag(id) + " progress " + fmt_double(progress) +
               " outside [0, 1]");
  }
  // Service replicas (PodClass::kService) are long-running servers whose
  // lifetime is a control-plane decision: the serve autoscaler retires them
  // mid-profile by design, so early completion is only a violation for
  // profile-driven pods.
  if (state == S::kCompleted && !pod.finished_profile() &&
      pod.spec().klass != workload::PodClass::kService) {
    report(cluster, "pod-progress",
           pod_tag(id) + " completed without finishing its profile");
  }

  // A placed pod must be resident on its GPU with a matching allocation,
  // and that GPU's node must be alive.
  if (state == S::kStarting || state == S::kRunning) {
    const double eps = options_.memory_epsilon_mb;
    if (cluster.node_health(cluster.node_of_gpu(pod.gpu())) ==
        cluster::NodeHealth::kDown) {
      report(cluster, "node-health",
             pod_tag(id) + " in state " + std::string(to_string(state)) +
                 " on down node " +
                 std::to_string(cluster.node_of_gpu(pod.gpu()).value));
    }
    const auto& dev = cluster.device(pod.gpu());
    const auto recorded = dev.provisioned_mb(id);
    if (!recorded.has_value()) {
      report(cluster, "pod-residency",
             pod_tag(id) + " in state " + std::string(to_string(state)) +
                 " but not resident on " + gpu_tag(pod.gpu()));
    } else if (std::abs(*recorded - pod.provisioned_mb()) > eps) {
      report(cluster, "pod-residency",
             pod_tag(id) + " allocation " + fmt_double(pod.provisioned_mb()) +
                 " MB disagrees with device record " +
                 fmt_double(*recorded) + " MB");
    }
  }
}

void InvariantChecker::check_pods(const cluster::Cluster& cluster) {
  using S = cluster::PodState;
  const std::size_t n = cluster.pod_count();
  // Pods are all loaded before run(); the first audit baselines them at
  // their construction state (Pending).
  if (last_states_.size() < n) {
    last_states_.resize(n, static_cast<std::uint8_t>(S::kPending));
  }

  auto& in_pending = in_pending_scratch_;
  in_pending.assign(n, false);
  for (PodId id : cluster.pending()) {
    const auto idx = static_cast<std::size_t>(id.value);
    if (!id.valid() || idx >= n) {
      report(cluster, "pod-queue", "pending queue holds invalid " + pod_tag(id));
      continue;
    }
    if (in_pending[idx]) {
      report(cluster, "pod-queue",
             pod_tag(id) + " appears twice in the pending queue");
    }
    in_pending[idx] = true;
    if (cluster.pod(id).state() != S::kPending) {
      report(cluster, "pod-queue",
             pod_tag(id) + " queued while in state " +
                 std::string(to_string(cluster.pod(id).state())));
    }
  }

  // Delta audit over the cluster's packed state table: one byte per pod
  // decides everything cheap (conservation histogram, transition legality —
  // same state to same state is always legal), and only pods that changed
  // state or sit in a live state (Starting/Running: progress and residency
  // move without a state edge) pay the full per-pod dereference. The
  // packed byte is cross-checked against pod.state() for every audited
  // pod, so a stale table is itself a detected violation. Trade-off versus
  // the old exhaustive sweep: corruption of a *frozen* pod's fields with
  // no state change (impossible through the public API) is no longer
  // caught every tick — only at its next transition.
  const auto& table = cluster.pod_state_table();
  if (table.size() != n) {
    report(cluster, "pod-state-table",
           "state table size " + std::to_string(table.size()) +
               " != pod count " + std::to_string(n));
    return;
  }
  std::array<std::size_t, 6> by_state{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t cur = table[i];
    if (cur >= by_state.size()) {
      report(cluster, "pod-state-table",
             pod_tag(PodId{static_cast<std::int32_t>(i)}) +
                 " packed state " + std::to_string(cur) + " out of range");
      continue;
    }
    by_state[cur] += 1;
    const std::uint8_t prev = last_states_[i];
    const bool changed = cur != prev;
    if (changed && !observable_transition(static_cast<S>(prev),
                                          static_cast<S>(cur))) {
      report(cluster, "pod-transition",
             pod_tag(PodId{static_cast<std::int32_t>(i)}) +
                 " illegal transition " +
                 std::string(to_string(static_cast<S>(prev))) + " -> " +
                 std::string(to_string(static_cast<S>(cur))));
    }
    const bool live = cur == static_cast<std::uint8_t>(S::kStarting) ||
                      cur == static_cast<std::uint8_t>(S::kRunning);
    if (changed || live) audit_pod(cluster, i, cur);
  }
  last_states_.assign(table.begin(), table.end());

  // Conservation: every submitted pod is in exactly one lifecycle state,
  // and the cluster's completion counter matches the terminal population.
  std::size_t total = 0;
  for (std::size_t c : by_state) total += c;
  if (total != n) {
    report(cluster, "pod-conservation",
           "state counts sum to " + std::to_string(total) + " but " +
               std::to_string(n) + " pods were submitted");
  }
  if (by_state[static_cast<std::size_t>(S::kCompleted)] !=
      cluster.completed_count()) {
    report(cluster, "pod-conservation",
           "completed counter " + std::to_string(cluster.completed_count()) +
               " != terminal pods " +
               std::to_string(
                   by_state[static_cast<std::size_t>(S::kCompleted)]));
  }
}

void InvariantChecker::check_power_cap(const cluster::Cluster& cluster) {
  const double cap = cluster.config().power_cap_watts;
  if (cap <= 0) return;
  const double watts = cluster.total_power_watts();
  if (watts > cap + 1e-6) {
    report(cluster, "power-cap",
           "cluster draw " + fmt_double(watts) + " W exceeds cap " +
               fmt_double(cap) + " W");
  }
}

void InvariantChecker::check_tenants(const cluster::Cluster& cluster) {
  const auto& ledger = cluster.tenant_ledger();
  if (ledger.empty()) return;
  const double eps = options_.memory_epsilon_mb;

  // Ground truth: per-tenant provisioned memory recomputed from device
  // residents (ordered map so any reporting below is deterministic).
  std::map<int, double> observed;
  for (GpuId gpu : cluster.all_gpus()) {
    const auto& dev = cluster.device(gpu);
    for (PodId pod : dev.residents()) {
      observed[cluster.pod(pod).spec().tenant] +=
          dev.provisioned_mb(pod).value_or(0.0);
    }
  }
  for (const auto& row : ledger.rows()) {
    const auto it = observed.find(row.tenant);
    const double truth = it == observed.end() ? 0.0 : it->second;
    if (it != observed.end()) observed.erase(it);
    if (std::abs(truth - row.provisioned_mb) > eps) {
      report(cluster, "tenant-accounting",
             "tenant " + std::to_string(row.tenant) + " ledger charge " +
                 fmt_double(row.provisioned_mb) + " MB != resident sum " +
                 fmt_double(truth) + " MB");
    }
    if (row.quota.provision_cap_mb > 0 &&
        row.provisioned_mb > row.quota.provision_cap_mb + eps) {
      report(cluster, "tenant-quota",
             "tenant " + std::to_string(row.tenant) + " provisioned " +
                 fmt_double(row.provisioned_mb) + " MB exceeds quota " +
                 fmt_double(row.quota.provision_cap_mb) + " MB");
    }
  }
  // Residents charged to a tenant the ledger should track but has no row
  // for mean a charge was dropped.
  for (const auto& [tenant, mb] : observed) {
    if (ledger.tracks(tenant) && mb > eps) {
      report(cluster, "tenant-accounting",
             "tenant " + std::to_string(tenant) + " holds " + fmt_double(mb) +
                 " MB of residents but has no ledger row");
    }
  }
}

void InvariantChecker::on_tick_end(const cluster::Cluster& cluster) {
  ++checks_;
  check_time(cluster);
  check_devices(cluster);
  check_pods(cluster);
  check_power_cap(cluster);
  check_tenants(cluster);
}

}  // namespace knots::verify
