// Physical-consistency auditor for the simulated cluster.
//
// Invoked by the Cluster at the end of every scheduling tick (observer
// hook), it asserts the invariants the paper's real testbed gets for free
// from hardware:
//
//   * per-GPU memory usage never exceeds physical capacity, and provisioned
//     claims stay under the configured overcommit ceiling (capacity for the
//     utilization-aware CBP/PP/Uniform policies; unchecked for the blindly
//     overcommitting Res-Ag baseline);
//   * delivered SM utilization lies in [0, 1] and device power stays inside
//     the P100 p-state envelope [deep-sleep, TDP];
//   * pods only take the transitions documented in pod.hpp
//     (Pending → Starting → Running → Completed, with the
//     Crashed → Pending and Evicted → Pending relaunch cycles);
//   * simulated time is strictly monotone across ticks;
//   * pods are conserved: pending + starting + running + completed + crashed
//     + evicted always equals the number submitted, and the cluster's
//     completion counter matches the number of terminal pods;
//   * no pod is resident on a node the fault layer reports as down — a dead
//     kubelet hosts nothing (the eviction path must have drained it);
//   * on power-capped configurations, instantaneous cluster draw stays under
//     the cap at every rest state;
//   * on multi-tenant runs, the tenant ledger matches per-tenant provisioned
//     memory recomputed from device residents, and no tenant exceeds its
//     provision quota.
//
// Violations are collected into a structured report; with `fatal` set (the
// default in debug builds) the first violation aborts via KNOTS_CHECK so the
// offending tick is caught in a debugger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/observer.hpp"
#include "cluster/pod.hpp"
#include "core/types.hpp"

namespace knots::verify {

#ifdef NDEBUG
inline constexpr bool kFatalByDefault = false;
#else
inline constexpr bool kFatalByDefault = true;
#endif

struct InvariantOptions {
  /// Provisioned-memory ceiling as a multiple of device capacity; values
  /// <= 0 disable the check (schedulers that overcommit by design).
  double provision_ceiling_ratio = 0.0;
  /// Absolute slack for floating-point memory accounting comparisons.
  double memory_epsilon_mb = 1e-6;
  /// Abort via KNOTS_CHECK on the first violation instead of collecting.
  bool fatal = kFatalByDefault;
  /// Cap on stored violation records (the count keeps incrementing).
  std::size_t max_recorded = 64;
};

/// One detected invariant breach.
struct Violation {
  std::string category;  ///< Stable machine-readable kind, e.g. "gpu-memory".
  std::string message;   ///< Human-readable description with operands.
  SimTime time = 0;      ///< Simulated time of the offending tick.
};

class InvariantChecker final : public cluster::ClusterObserver {
 public:
  explicit InvariantChecker(InvariantOptions options = {});

  void on_tick_end(const cluster::Cluster& cluster) override;

  /// Number of tick-level audits performed.
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }
  /// Total violations detected (may exceed violations().size()).
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return violation_count_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool ok() const noexcept { return violation_count_ == 0; }
  [[nodiscard]] const InvariantOptions& options() const noexcept {
    return options_;
  }

 private:
  void check_time(const cluster::Cluster& cluster);
  void check_devices(const cluster::Cluster& cluster);
  void check_pods(const cluster::Cluster& cluster);
  /// Cluster draw stays under the configured rack cap (skipped when 0).
  void check_power_cap(const cluster::Cluster& cluster);
  /// Tenant ledger agrees with ground truth: per-tenant provisioned MB
  /// recomputed from device residents matches the ledger, and no tenant
  /// sits above its provision quota (skipped on single-tenant runs).
  void check_tenants(const cluster::Cluster& cluster);
  void report(const cluster::Cluster& cluster, std::string category,
              std::string message);

  void audit_pod(const cluster::Cluster& cluster, std::size_t index,
                 std::uint8_t packed_state);

  InvariantOptions options_;
  SimTime last_tick_ = -1;
  /// Previous audit's packed states (mirror of Cluster::pod_state_table()).
  /// Byte-diffing against the cluster's table finds the pods worth a full
  /// dereference; unchanged frozen-state pods skip the audit entirely.
  std::vector<std::uint8_t> last_states_;
  std::vector<bool> in_pending_scratch_;  ///< Reused across per-tick audits.
  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;
  std::uint64_t violation_count_ = 0;
};

}  // namespace knots::verify
