// Order-sensitive digest of one simulation run.
//
// Every scheduling decision (placement, resize, park), crash, requeue and
// completion is folded — with its simulated timestamp and operands — into a
// single FNV-1a 64-bit hash. Two runs with identical configuration and seed
// must produce identical digests; any divergence (thread-pool ordering,
// unordered-map iteration, a behaviour change) shows up as a one-line test
// failure instead of a silently shifted figure.
#pragma once

#include <cstdint>
#include <string_view>

#include "cluster/observer.hpp"
#include "core/types.hpp"

namespace knots::verify {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over an arbitrary byte range (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size,
                                    std::uint64_t seed = kFnvOffsetBasis)
    noexcept;

class RunDigest final : public cluster::ClusterObserver {
 public:
  /// The digest accumulated so far. Stable across platforms for identical
  /// event sequences (doubles are folded by bit pattern, -0.0 normalized).
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  // -- Manual mixing (tests, non-cluster digests) --
  void mix_u64(std::uint64_t v) noexcept;
  void mix_double(double v) noexcept;
  void mix_string(std::string_view s) noexcept;

  // Record-type tags keep distinct event kinds with equal operands from
  // colliding (a crash of pod 3 never hashes like a completion of pod 3).
  // Values are shared across substrates: the DL engine folds the same tags
  // through begin_record(tag, now) so its traces replay with the same
  // recipe as cluster runs.
  //
  // Tag ranges are allocated per layer and never overlap (DESIGN.md §13):
  // 0x01–0x09 cluster lifecycle, 0xA1–0xA8 knots::serve (its own serve
  // digest), 0xB1–0xB5 knots::net fabric events, 0xC1 tenant accounting.
  enum class Tag : std::uint64_t {
    kPlace = 0x01,
    kResize = 0x02,
    kCrash = 0x03,
    kRequeue = 0x04,
    kComplete = 0x05,
    kPark = 0x06,
    kEvict = 0x07,
    kNodeDown = 0x08,
    kNodeUp = 0x09,
    // -- knots::net --
    kFlowStart = 0xB1,
    kFlowFinish = 0xB2,
    kFlowContend = 0xB3,
    kLinkDown = 0xB4,
    kLinkUp = 0xB5,
    // -- knots::cluster multi-tenant accounting (end-of-run ledger rows,
    //    mixed in ascending tenant order; absent on single-tenant runs so
    //    historical digests are untouched) --
    kTenantAccount = 0xC1,
  };

  /// Opens a record for a non-cluster substrate: mixes the tag and the
  /// simulated timestamp and counts one event. Callers append operands
  /// with mix_u64 / mix_double.
  void begin_record(Tag tag, SimTime now);

  // -- ClusterObserver --
  void on_place(const cluster::Cluster& cluster, PodId pod, GpuId gpu,
                double provisioned_mb) override;
  void on_resize(const cluster::Cluster& cluster, PodId pod,
                 double provisioned_mb) override;
  void on_crash(const cluster::Cluster& cluster, PodId pod) override;
  void on_requeue(const cluster::Cluster& cluster, PodId pod) override;
  void on_complete(const cluster::Cluster& cluster, PodId pod) override;
  void on_park(const cluster::Cluster& cluster, GpuId gpu) override;
  void on_evict(const cluster::Cluster& cluster, PodId pod,
                NodeId node) override;
  void on_node_down(const cluster::Cluster& cluster, NodeId node) override;
  void on_node_up(const cluster::Cluster& cluster, NodeId node) override;
  void on_flow_start(const cluster::Cluster& cluster, std::uint64_t flow,
                     int kind, int src_node, int dst_node,
                     double mb) override;
  void on_flow_finish(const cluster::Cluster& cluster, std::uint64_t flow,
                      bool contended) override;
  void on_link_down(const cluster::Cluster& cluster,
                    std::size_t link) override;
  void on_link_up(const cluster::Cluster& cluster, std::size_t link) override;

 private:
  void begin_record(Tag tag, const cluster::Cluster& cluster);

  std::uint64_t hash_ = kFnvOffsetBasis;
  std::uint64_t events_ = 0;
};

}  // namespace knots::verify
