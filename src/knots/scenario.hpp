// Declarative scenario specs (ROADMAP item 5's front door).
//
// A scenario file stands up a whole experiment — heterogeneous node classes
// drawn from the device-model registry, spot/preemptible capacity with an
// eviction notice, per-tenant quotas, the workload mix, a fault schedule and
// an optional power cap — in a dozen lines of plain text:
//
//   name mixed-fleet
//   scheduler CBP
//   seed 7
//   duration 120s
//   lanes 4
//   mix 1
//   nodeclass ondemand p100-16g 6
//   nodeclass spot v100-32g 4 preemptible notice=10s
//   tenant 1 quota_mb=40000
//   tenant 2 quota_mb=30000 quota_gpu_s=500
//   workload_tenants 1,2
//   fabric auto
//   power_cap_watts 4000
//   fault spot_reclaim node=7 at=60s duration=30s
//
// `#` starts a comment; tokens are whitespace-separated. Parsing is strict:
// unknown directives, unknown device models, quotas no cluster could grant,
// spot classes without an eviction notice, or faults aimed at nodes that
// don't exist (or aren't preemptible, for spot_reclaim) all fail with a
// one-line "line N: why" diagnostic instead of aborting mid-run — knots_ctl
// turns that into exit 2. A parsed scenario is an ordinary ExperimentConfig;
// identical files produce bit-identical runs at any lane count.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "knots/experiment.hpp"

namespace knots {

struct ScenarioSpec {
  std::string name = "scenario";
  ExperimentConfig config;  ///< Fully built, ready for run_experiment().
};

/// Parses a scenario from `in`. On malformed or semantically invalid input
/// returns nullopt and sets `error` to a "line N: why" diagnostic.
std::optional<ScenarioSpec> parse_scenario(std::istream& in,
                                           std::string& error);

/// parse_scenario over a file; an unreadable path is an error.
std::optional<ScenarioSpec> load_scenario(const std::string& path,
                                          std::string& error);

}  // namespace knots
