// KubeKnots — the top-level public facade.
//
// Wires a GPU cluster, the Knots telemetry layer and a scheduling policy
// together, and exposes a small API for submitting work and running the
// orchestrated simulation. Example applications and the quickstart use this
// instead of assembling the layers by hand.
//
//   knots::KubeKnots k8s(knots::default_experiment(
//       /*mix_id=*/1, knots::sched::SchedulerKind::kPeakPrediction));
//   k8s.submit_mix_workload();              // Table I app mix …
//   k8s.submit(my_pod_spec);                // … or hand-built pods
//   knots::ExperimentReport report = k8s.run();
#pragma once

#include <memory>
#include <vector>

#include "knots/config.hpp"
#include "knots/experiment.hpp"

namespace knots::verify {
class InvariantChecker;
class RunDigest;
}  // namespace knots::verify
namespace knots::obs {
class TraceSink;
class MetricsRegistry;
}  // namespace knots::obs

namespace knots {

class KubeKnots {
 public:
  explicit KubeKnots(ExperimentConfig config);
  ~KubeKnots();

  KubeKnots(const KubeKnots&) = delete;
  KubeKnots& operator=(const KubeKnots&) = delete;

  /// Queues hand-built pod specs (ids are reassigned densely at run()).
  /// Throws std::logic_error once run() has been called.
  void submit(workload::PodSpec spec);

  /// Queues the configured Table I app-mix workload.
  /// Throws std::logic_error once run() has been called.
  void submit_mix_workload();

  /// Runs the cluster to completion and returns the distilled report.
  /// Single-shot: a second call throws std::logic_error.
  ExperimentReport run();

  /// The live cluster (valid after run() for post-mortem inspection).
  [[nodiscard]] const cluster::Cluster& cluster() const;
  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// The attached invariant auditor / run digest (post-mortem inspection;
  /// their distilled results also land on the ExperimentReport).
  [[nodiscard]] const verify::InvariantChecker& verifier() const;
  [[nodiscard]] const verify::RunDigest& digest() const;

  /// Attaches an event tracer (not owned, must outlive run()). Tracing is
  /// purely observational: the traced run's digest is bit-identical to the
  /// untraced run. Throws std::logic_error once run() has been called.
  void attach_tracer(obs::TraceSink* sink);
  /// Attaches a metrics registry (not owned, must outlive run()).
  /// Throws std::logic_error once run() has been called.
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  ExperimentConfig config_;
  std::unique_ptr<cluster::Scheduler> scheduler_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<verify::InvariantChecker> verifier_;
  std::unique_ptr<verify::RunDigest> digest_;
  std::vector<workload::PodSpec> submitted_;
  bool ran_ = false;
};

}  // namespace knots
