#include "knots/scenario.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "gpu/device_model.hpp"
#include "workload/app_mix.hpp"

namespace knots {

namespace {

/// One whitespace-tokenized, comment-stripped scenario line.
struct Line {
  int number = 0;
  std::vector<std::string> tokens;
};

std::vector<Line> tokenize(std::istream& in) {
  std::vector<Line> lines;
  std::string raw;
  int number = 0;
  while (std::getline(in, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream words(raw);
    Line line;
    line.number = number;
    std::string word;
    while (words >> word) line.tokens.push_back(word);
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

std::optional<long long> to_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

std::optional<double> to_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

/// Seconds with an optional "s" suffix ("30", "30s") -> SimTime.
std::optional<SimTime> to_time(std::string s) {
  if (!s.empty() && s.back() == 's') s.pop_back();
  const auto v = to_int(s);
  if (!v.has_value() || *v < 0) return std::nullopt;
  return *v * kSec;
}

/// Splits "key=value"; returns false when `token` has no '='.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

/// Collects the state of a parse in progress; finalize() builds the config.
struct ScenarioBuilder {
  ScenarioSpec spec;
  ExperimentConfig::Builder builder;
  std::vector<cluster::NodeClass> classes;
  std::vector<cluster::TenantQuotaSpec> quotas;
  fault::FaultPlan faults;
  int gpus_per_node = 1;
  bool want_auto_fabric = false;
  bool have_fault = false;
};

std::string err(int line, const std::string& why) {
  return "line " + std::to_string(line) + ": " + why;
}

bool handle_nodeclass(ScenarioBuilder& b, const Line& line,
                      std::string& error) {
  // nodeclass <name> <device-model> <count> [gpus=N] [preemptible
  // notice=TIME]
  if (line.tokens.size() < 4) {
    error = err(line.number,
                "nodeclass expects: nodeclass <name> <device-model> <count> "
                "[gpus=N] [preemptible notice=TIME]");
    return false;
  }
  cluster::NodeClass nc;
  nc.device_model = line.tokens[2];
  if (!gpu::find_device_model(nc.device_model).has_value()) {
    error = err(line.number,
                "unknown device model '" + nc.device_model + "'");
    return false;
  }
  const auto count = to_int(line.tokens[3]);
  if (!count.has_value() || *count < 1) {
    error = err(line.number, "nodeclass count must be a positive integer");
    return false;
  }
  nc.count = static_cast<int>(*count);
  bool preemptible = false;
  SimTime notice = -1;
  for (std::size_t i = 4; i < line.tokens.size(); ++i) {
    const std::string& tok = line.tokens[i];
    if (tok == "preemptible") {
      preemptible = true;
      continue;
    }
    std::string key;
    std::string value;
    if (split_kv(tok, key, value)) {
      if (key == "notice") {
        const auto t = to_time(value);
        if (!t.has_value()) {
          error = err(line.number, "bad notice time '" + value + "'");
          return false;
        }
        notice = *t;
        continue;
      }
      if (key == "gpus") {
        const auto g = to_int(value);
        if (!g.has_value() || *g < 1) {
          error = err(line.number, "nodeclass gpus must be >= 1");
          return false;
        }
        nc.gpus_per_node = static_cast<int>(*g);
        continue;
      }
    }
    error = err(line.number, "unknown nodeclass token '" + tok + "'");
    return false;
  }
  if (preemptible && notice <= 0) {
    error = err(line.number,
                "preemptible node class requires notice=TIME > 0 (spot "
                "capacity without an eviction notice is undefined)");
    return false;
  }
  if (!preemptible && notice >= 0) {
    error = err(line.number, "notice= only applies to preemptible classes");
    return false;
  }
  nc.preemptible = preemptible;
  nc.spot_notice = preemptible ? notice : 0;
  b.classes.push_back(std::move(nc));
  return true;
}

bool handle_tenant(ScenarioBuilder& b, const Line& line, std::string& error) {
  // tenant <id> [quota_mb=X] [quota_gpu_s=Y]  (at least one cap)
  if (line.tokens.size() < 3) {
    error = err(line.number,
                "tenant expects: tenant <id> [quota_mb=X] [quota_gpu_s=Y]");
    return false;
  }
  const auto id = to_int(line.tokens[1]);
  if (!id.has_value() || *id < 1) {
    error = err(line.number, "tenant id must be a positive integer");
    return false;
  }
  cluster::TenantQuotaSpec quota;
  quota.tenant = static_cast<int>(*id);
  for (const auto& q : b.quotas) {
    if (q.tenant == quota.tenant) {
      error = err(line.number,
                  "tenant " + std::to_string(quota.tenant) +
                      " declared twice");
      return false;
    }
  }
  for (std::size_t i = 2; i < line.tokens.size(); ++i) {
    std::string key;
    std::string value;
    if (split_kv(line.tokens[i], key, value)) {
      const auto v = to_double(value);
      if (v.has_value() && *v > 0 && key == "quota_mb") {
        quota.provision_cap_mb = *v;
        continue;
      }
      if (v.has_value() && *v > 0 && key == "quota_gpu_s") {
        quota.gpu_seconds_cap = *v;
        continue;
      }
    }
    error = err(line.number,
                "bad tenant token '" + line.tokens[i] +
                    "' (want quota_mb=X or quota_gpu_s=Y, positive)");
    return false;
  }
  b.quotas.push_back(quota);
  return true;
}

bool handle_fault(ScenarioBuilder& b, const Line& line, std::string& error) {
  // fault spot_reclaim|node_crash node=N at=T [duration=D]
  if (line.tokens.size() < 4) {
    error = err(line.number,
                "fault expects: fault spot_reclaim|node_crash node=N at=T "
                "[duration=D]");
    return false;
  }
  const std::string& kind = line.tokens[1];
  if (kind != "spot_reclaim" && kind != "node_crash") {
    error = err(line.number, "unknown fault kind '" + kind + "'");
    return false;
  }
  long long node = -1;
  SimTime at = -1;
  SimTime duration = 0;
  for (std::size_t i = 2; i < line.tokens.size(); ++i) {
    std::string key;
    std::string value;
    if (!split_kv(line.tokens[i], key, value)) {
      error = err(line.number, "bad fault token '" + line.tokens[i] + "'");
      return false;
    }
    if (key == "node") {
      const auto n = to_int(value);
      if (!n.has_value() || *n < 0) {
        error = err(line.number, "fault node must be >= 0");
        return false;
      }
      node = *n;
    } else if (key == "at" || key == "duration") {
      const auto t = to_time(value);
      if (!t.has_value()) {
        error = err(line.number, "bad fault time '" + value + "'");
        return false;
      }
      (key == "at" ? at : duration) = *t;
    } else {
      error = err(line.number, "unknown fault key '" + key + "'");
      return false;
    }
  }
  if (node < 0 || at < 0) {
    error = err(line.number, "fault needs node= and at=");
    return false;
  }
  const NodeId target{static_cast<std::int32_t>(node)};
  if (kind == "spot_reclaim") {
    b.faults.spot_reclaim(target, at, duration);
  } else {
    b.faults.node_crash(target, at, duration);
  }
  b.have_fault = true;
  return true;
}

/// Semantic validation that must not abort: everything FaultPlan::validate /
/// the Cluster constructor would KNOTS_CHECK is pre-checked here so the CLI
/// can exit 2 with a message instead.
bool finalize(ScenarioBuilder& b, std::string& error) {
  if (b.classes.empty()) {
    error = "scenario declares no node classes (need at least one nodeclass)";
    return false;
  }
  int total_nodes = 0;
  double total_memory_mb = 0;
  std::vector<bool> preemptible_nodes;
  for (const auto& nc : b.classes) {
    total_nodes += nc.count;
    const auto model = gpu::find_device_model(nc.device_model);
    const int gpus = nc.gpus_per_node > 0 ? nc.gpus_per_node : b.gpus_per_node;
    total_memory_mb += static_cast<double>(nc.count * gpus) *
                       model->gpu.memory_mb;
    preemptible_nodes.insert(preemptible_nodes.end(),
                             static_cast<std::size_t>(nc.count),
                             nc.preemptible);
  }
  for (const auto& quota : b.quotas) {
    if (quota.provision_cap_mb > total_memory_mb) {
      error = "tenant " + std::to_string(quota.tenant) + " quota_mb " +
              std::to_string(static_cast<long long>(quota.provision_cap_mb)) +
              " exceeds total cluster memory " +
              std::to_string(static_cast<long long>(total_memory_mb)) + " MB";
      return false;
    }
  }
  for (const auto& ev : b.faults.events) {
    if (ev.node.value >= 0 && ev.node.value >= total_nodes) {
      error = "fault targets node " + std::to_string(ev.node.value) +
              " but the scenario has only " + std::to_string(total_nodes) +
              " nodes";
      return false;
    }
    if (ev.kind == fault::FaultKind::kSpotReclaim &&
        !preemptible_nodes[static_cast<std::size_t>(ev.node.value)]) {
      error = "spot_reclaim targets node " + std::to_string(ev.node.value) +
              " which is not in a preemptible node class";
      return false;
    }
  }

  b.builder.gpus_per_node(b.gpus_per_node);
  for (auto& nc : b.classes) b.builder.node_class(std::move(nc));
  for (const auto& quota : b.quotas) b.builder.tenant_quota(quota);
  if (b.want_auto_fabric) b.builder.auto_fabric();
  if (b.have_fault) b.builder.faults(std::move(b.faults));
  b.spec.config = b.builder.build();
  return true;
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario(std::istream& in,
                                           std::string& error) {
  ScenarioBuilder b;
  std::vector<int> workload_tenants;
  for (const Line& line : tokenize(in)) {
    const std::string& directive = line.tokens.front();
    const bool unary = line.tokens.size() == 2;
    if (directive == "name" && unary) {
      b.spec.name = line.tokens[1];
    } else if (directive == "scheduler" && unary) {
      bool known = false;
      for (auto kind : sched::kAllSchedulers) {
        if (sched::to_string(kind) == line.tokens[1]) known = true;
      }
      if (!known) {
        error = err(line.number,
                    "unknown scheduler '" + line.tokens[1] + "'");
        return std::nullopt;
      }
      b.builder.scheduler(sched::scheduler_from_name(line.tokens[1]));
    } else if (directive == "seed" && unary) {
      const auto seed = to_int(line.tokens[1]);
      if (!seed.has_value() || *seed < 0) {
        error = err(line.number, "seed must be a non-negative integer");
        return std::nullopt;
      }
      b.builder.seed(static_cast<std::uint64_t>(*seed));
    } else if (directive == "duration" && unary) {
      const auto t = to_time(line.tokens[1]);
      if (!t.has_value() || *t <= 0) {
        error = err(line.number, "duration must be a positive time");
        return std::nullopt;
      }
      b.builder.duration(*t);
    } else if (directive == "lanes" && unary) {
      const auto lanes = to_int(line.tokens[1]);
      if (!lanes.has_value() || *lanes < 1) {
        error = err(line.number, "lanes must be >= 1");
        return std::nullopt;
      }
      b.builder.lanes(static_cast<int>(*lanes));
    } else if (directive == "mix" && unary) {
      const auto mix = to_int(line.tokens[1]);
      bool known = false;
      if (mix.has_value()) {
        for (const auto& m : workload::all_app_mixes()) {
          if (m.id == *mix) known = true;
        }
      }
      if (!known) {
        error = err(line.number, "unknown app mix '" + line.tokens[1] + "'");
        return std::nullopt;
      }
      b.builder.mix(static_cast<int>(*mix));
    } else if (directive == "load_scale" && unary) {
      const auto scale = to_double(line.tokens[1]);
      if (!scale.has_value() || *scale <= 0) {
        error = err(line.number, "load_scale must be positive");
        return std::nullopt;
      }
      b.builder.load_scale(*scale);
    } else if (directive == "gpus_per_node" && unary) {
      const auto gpus = to_int(line.tokens[1]);
      if (!gpus.has_value() || *gpus < 1) {
        error = err(line.number, "gpus_per_node must be >= 1");
        return std::nullopt;
      }
      b.gpus_per_node = static_cast<int>(*gpus);
    } else if (directive == "nodeclass") {
      if (!handle_nodeclass(b, line, error)) return std::nullopt;
    } else if (directive == "tenant") {
      if (!handle_tenant(b, line, error)) return std::nullopt;
    } else if (directive == "workload_tenants" && unary) {
      std::istringstream ids(line.tokens[1]);
      std::string id;
      workload_tenants.clear();
      bool ok = true;
      while (std::getline(ids, id, ',')) {
        const auto v = to_int(id);
        if (!v.has_value() || *v < 1) {
          ok = false;
          break;
        }
        workload_tenants.push_back(static_cast<int>(*v));
      }
      if (!ok || workload_tenants.empty()) {
        error = err(line.number,
                    "workload_tenants expects a comma-separated list of "
                    "positive tenant ids");
        return std::nullopt;
      }
    } else if (directive == "fabric" && unary) {
      if (line.tokens[1] == "auto") {
        b.want_auto_fabric = true;
      } else if (line.tokens[1] != "none") {
        error = err(line.number, "fabric expects auto|none");
        return std::nullopt;
      }
    } else if (directive == "power_cap_watts" && unary) {
      const auto watts = to_double(line.tokens[1]);
      if (!watts.has_value() || *watts <= 0) {
        error = err(line.number, "power_cap_watts must be positive");
        return std::nullopt;
      }
      b.builder.power_cap_watts(*watts);
    } else if (directive == "image_mb" && unary) {
      const auto mb = to_double(line.tokens[1]);
      if (!mb.has_value() || *mb < 0) {
        error = err(line.number, "image_mb must be >= 0");
        return std::nullopt;
      }
      b.builder.image_mb(*mb);
    } else if (directive == "fault") {
      if (!handle_fault(b, line, error)) return std::nullopt;
    } else {
      error = err(line.number,
                  "unknown or malformed directive '" + directive + "'");
      return std::nullopt;
    }
  }
  if (!workload_tenants.empty()) {
    b.builder.workload_tenants(std::move(workload_tenants));
  }
  if (!finalize(b, error)) return std::nullopt;
  return std::move(b.spec);
}

std::optional<ScenarioSpec> load_scenario(const std::string& path,
                                          std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot read scenario file '" + path + "'";
    return std::nullopt;
  }
  return parse_scenario(in, error);
}

}  // namespace knots
