// Experiment configuration and the paper's testbed constants
// (Tables II & III).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "gpu/device_model.hpp"
#include "sched/params.hpp"
#include "sched/registry.hpp"
#include "workload/load_generator.hpp"

namespace knots {

/// Table II — per-node hardware of the testbed. The GPU identity and
/// capacity are sourced from the device-model registry (single source of
/// truth for per-model constants), not restated here.
struct HardwareConfig {
  std::string cpu = "Xeon E5-2670";
  int cores = 12;
  int threads_per_core = 2;
  double clock_ghz = 2.3;
  int dram_gb = 192;
  std::string gpu = gpu::default_device_model().display;
  double gpu_memory_mb = gpu::default_device_model().gpu.memory_mb;
};

/// Table III — software stack of the testbed (documented for fidelity; the
/// simulation reproduces the behaviours, not the binaries).
struct SoftwareConfig {
  std::string kubernetes = "1.9.3";
  std::string nvidia_docker = "2.0";
  std::string pynvml = "7.352.0";
  std::string influxdb = "1.4.2";
  std::string cuda = "8.0.61";
  std::string tensorflow = "1.8";
};

HardwareConfig hardware_config();
SoftwareConfig software_config();

/// One full cluster experiment: mix × scheduler × cluster/workload knobs.
struct ExperimentConfig {
  int mix_id = 1;
  sched::SchedulerKind scheduler = sched::SchedulerKind::kPeakPrediction;
  cluster::ClusterConfig cluster{};
  workload::LoadGenConfig workload{};
  sched::SchedParams sched_params{};
  std::uint64_t seed = 42;
  /// Deterministic fault schedule replayed on the simulation engine; empty
  /// (the default) reproduces the fault-free runs bit-identically.
  fault::FaultPlan faults{};

  class Builder;
};

/// Fluent construction of the common experiment knobs on top of the paper
/// defaults:
///
///   auto cfg = ExperimentConfig::Builder{}
///                  .scheduler(sched::SchedulerKind::kCbp)
///                  .nodes(4).duration(30 * kSec).seed(7)
///                  .faults(fault::FaultPlan{}.node_crash(NodeId{1}, 5 * kSec))
///                  .build();
class ExperimentConfig::Builder {
 public:
  /// Starts from the paper defaults (default_experiment(1, PP)).
  Builder();

  Builder& mix(int mix_id);
  Builder& scheduler(sched::SchedulerKind kind);
  Builder& nodes(int nodes);
  Builder& gpus_per_node(int gpus);
  /// Swaps every node's GPU for the named device model (registry name,
  /// e.g. "v100-32g"). Aborts on an unknown model. The default keeps the
  /// paper's P100 substrate bit-identically.
  Builder& device_model(std::string_view name);
  /// Appends one heterogeneous node class (device model × count). The
  /// first call switches the cluster from homogeneous to class-driven
  /// sizing; counts add up to the final node count.
  Builder& node_class(cluster::NodeClass node_class);
  /// Registers a per-tenant quota (activates ledger enforcement).
  Builder& tenant_quota(cluster::TenantQuotaSpec quota);
  /// Round-robin tenant labels applied to the generated workload.
  Builder& workload_tenants(std::vector<int> tenants);
  /// Cluster-wide power-cap assertion checked by the invariant layer
  /// (<= 0 disables; never feeds back into scheduling).
  Builder& power_cap_watts(double watts);
  /// Event lanes sharding the tick hot path (1 = sequential). Any lane
  /// count reproduces the single-lane run bit-for-bit.
  Builder& lanes(int lanes);
  /// Arrival-window length of the generated workload.
  Builder& duration(SimTime duration);
  Builder& seed(std::uint64_t seed);
  /// Multiplies both the batch and latency-critical arrival rates.
  Builder& load_scale(double scale);
  Builder& sched_params(const sched::SchedParams& params);
  Builder& faults(fault::FaultPlan plan);
  /// Attaches an explicit fabric plan (knots::net). An empty plan (the
  /// default) keeps the cluster fabric-free.
  Builder& fabric(net::FabricPlan plan);
  /// Derives the default two-tier fabric from the final node count at
  /// build() time — safe to call before or after nodes().
  Builder& auto_fabric();
  /// Container image size charged as a registry pull on first placement per
  /// node when a fabric is active (<= 0 disables the charge).
  Builder& image_mb(double mb);

  [[nodiscard]] ExperimentConfig build() const;

 private:
  ExperimentConfig cfg_;
  bool auto_fabric_ = false;
};

/// Paper-default experiment: ten single-P100 worker nodes, 600 s arrival
/// window (a compressed slice of the 12 h trace replay).
ExperimentConfig default_experiment(int mix_id, sched::SchedulerKind kind);

}  // namespace knots
