#include "knots/experiment.hpp"

#include <memory>

#include "core/thread_pool.hpp"
#include "knots/kube_knots.hpp"
#include "workload/app_mix.hpp"

namespace knots {

ExperimentReport build_report(const cluster::Cluster& cl,
                              std::string scheduler_name, int mix_id) {
  const auto& m = cl.metrics();
  ExperimentReport r;
  r.scheduler = std::move(scheduler_name);
  r.mix_id = mix_id;
  for (std::size_t g = 0; g < m.gpu_count(); ++g) {
    UtilPercentiles u;
    u.p50 = m.gpu_util_percentile(g, 50);
    u.p90 = m.gpu_util_percentile(g, 90);
    u.p99 = m.gpu_util_percentile(g, 99);
    u.max = m.gpu_util_percentile(g, 100);
    r.per_gpu.push_back(u);
    r.per_gpu_cov.push_back(m.gpu_util_cov(g));
  }
  r.cluster_wide.p50 = m.cluster_util_percentile(50);
  r.cluster_wide.p90 = m.cluster_util_percentile(90);
  r.cluster_wide.p99 = m.cluster_util_percentile(99);
  r.cluster_wide.max = m.cluster_util_percentile(100);

  r.pairwise_load_cov.assign(m.gpu_count(),
                             std::vector<double>(m.gpu_count(), 0.0));
  for (std::size_t i = 0; i < m.gpu_count(); ++i) {
    for (std::size_t j = i + 1; j < m.gpu_count(); ++j) {
      const double c = m.pairwise_load_cov(i, j);
      r.pairwise_load_cov[i][j] = c;
      r.pairwise_load_cov[j][i] = c;
    }
  }

  r.queries = m.query_count();
  r.qos_violations = m.violation_count();
  r.violations_per_kilo = m.qos_violations_per_kilo();
  r.mean_power_watts = m.mean_power_watts();
  r.energy_joules = m.energy_joules();
  r.crashes = m.crash_count();
  r.mean_jct_s = m.mean_batch_jct_seconds();
  r.median_jct_s = m.batch_jct_percentile(50);
  r.p99_jct_s = m.batch_jct_percentile(99);
  r.lc_p50_ms = m.query_latency_percentile(50);
  r.lc_p99_ms = m.query_latency_percentile(99);
  r.pods_total = cl.pod_count();
  r.pods_completed = cl.completed_count();
  return r;
}

ExperimentReport run_experiment(const ExperimentConfig& config) {
  KubeKnots knots(config);
  knots.submit_mix_workload();
  return knots.run();
}

std::vector<ExperimentReport> run_scheduler_sweep(
    const ExperimentConfig& base,
    const std::vector<sched::SchedulerKind>& kinds) {
  std::vector<ExperimentReport> reports(kinds.size());
  ThreadPool pool(kinds.size());
  pool.parallel_for(kinds.size(), [&](std::size_t i) {
    ExperimentConfig cfg = base;
    cfg.scheduler = kinds[i];
    reports[i] = run_experiment(cfg);
  });
  return reports;
}

}  // namespace knots
