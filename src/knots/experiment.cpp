#include "knots/experiment.hpp"

#include <memory>

#include "core/thread_pool.hpp"
#include "knots/kube_knots.hpp"
#include "workload/app_mix.hpp"

namespace knots {

ExperimentReport build_report(const cluster::Cluster& cl,
                              std::string scheduler_name, int mix_id) {
  const auto& m = cl.metrics();
  ExperimentReport r;
  r.scheduler = std::move(scheduler_name);
  r.mix_id = mix_id;
  // One shared sort per sample set instead of one copy+sort per percentile.
  constexpr double kUtilPs[] = {50, 90, 99, 100};
  for (std::size_t g = 0; g < m.gpu_count(); ++g) {
    const auto ps = m.gpu_util_percentiles(g, kUtilPs);
    r.per_gpu.push_back(UtilPercentiles{ps[0], ps[1], ps[2], ps[3]});
    r.per_gpu_cov.push_back(m.gpu_util_cov(g));
  }
  const auto cps = m.cluster_util_percentiles(kUtilPs);
  r.cluster_wide = UtilPercentiles{cps[0], cps[1], cps[2], cps[3]};

  r.pairwise_load_cov.assign(m.gpu_count(),
                             std::vector<double>(m.gpu_count(), 0.0));
  for (std::size_t i = 0; i < m.gpu_count(); ++i) {
    for (std::size_t j = i + 1; j < m.gpu_count(); ++j) {
      const double c = m.pairwise_load_cov(i, j);
      r.pairwise_load_cov[i][j] = c;
      r.pairwise_load_cov[j][i] = c;
    }
  }

  r.queries = m.query_count();
  r.qos_violations = m.violation_count();
  r.violations_per_kilo = m.qos_violations_per_kilo();
  r.mean_power_watts = m.mean_power_watts();
  r.energy_joules = m.energy_joules();
  r.crashes = m.crash_count();
  const auto& fs = cl.fault_stats();
  r.pods_evicted = fs.pods_evicted;
  r.node_crashes = fs.node_crashes;
  r.node_recoveries = fs.node_recoveries;
  r.ecc_degrades = fs.ecc_degrades;
  r.heartbeat_gaps = fs.heartbeat_gaps;
  r.pcie_stalls = fs.pcie_stalls;
  r.stale_transitions = fs.stale_transitions;
  if (const auto* fabric = cl.fabric()) {
    const auto& ns = fabric->stats();
    r.flows_started = ns.flows_started;
    r.flows_finished = ns.flows_finished;
    r.flows_contended = ns.flows_contended;
    r.link_events = ns.link_events;
    r.mb_transferred = ns.mb_transferred;
  }
  r.mean_jct_s = m.mean_batch_jct_seconds();
  constexpr double kTailPs[] = {50, 99};
  const auto jct = m.batch_jct_percentiles(kTailPs);
  r.median_jct_s = jct[0];
  r.p99_jct_s = jct[1];
  const auto lc = m.query_latency_percentiles(kTailPs);
  r.lc_p50_ms = lc[0];
  r.lc_p99_ms = lc[1];
  r.tenants = cl.tenant_ledger().rows();
  r.pods_total = cl.pod_count();
  r.pods_completed = cl.completed_count();
  r.ticks = cl.tick_count();
  r.events = cl.events_processed();
  return r;
}

ExperimentReport run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, RunObservability{});
}

ExperimentReport run_experiment(const ExperimentConfig& config,
                                const RunObservability& observability) {
  KubeKnots knots(config);
  if (observability.trace != nullptr) {
    knots.attach_tracer(observability.trace);
  }
  if (observability.metrics != nullptr) {
    knots.attach_metrics(observability.metrics);
  }
  knots.submit_mix_workload();
  return knots.run();
}

std::vector<SweepResult> run_sweep(const ExperimentConfig& base,
                                   const SweepGrid& grid,
                                   std::size_t threads) {
  // Enumerate the grid up front so slot i is a fixed coordinate: workers
  // fill disjoint slots and the output order never depends on timing.
  const std::vector<std::uint64_t> seeds =
      grid.seeds.empty() ? std::vector<std::uint64_t>{base.seed} : grid.seeds;
  std::vector<SweepResult> results;
  results.reserve(grid.size());
  for (const auto kind : grid.schedulers) {
    for (const auto seed : seeds) {
      for (const double load : grid.load_scales) {
        SweepResult r;
        r.scheduler = kind;
        r.seed = seed;
        r.load_scale = load;
        results.push_back(std::move(r));
      }
    }
  }
  ThreadPool pool(threads);
  pool.parallel_for(results.size(), [&](std::size_t i) {
    SweepResult& slot = results[i];
    ExperimentConfig cfg = base;
    cfg.scheduler = slot.scheduler;
    cfg.seed = slot.seed;
    cfg.workload.batch_rate_scale *= slot.load_scale;
    cfg.workload.lc_rate_scale *= slot.load_scale;
    slot.report = run_experiment(cfg);
  });
  return results;
}

}  // namespace knots
