#include "knots/kube_knots.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/check.hpp"
#include "gpu/device_model.hpp"
#include "verify/invariant_checker.hpp"
#include "verify/run_digest.hpp"
#include "workload/app_mix.hpp"

namespace knots {

namespace {

verify::InvariantOptions invariant_options_for(sched::SchedulerKind kind) {
  verify::InvariantOptions opts;
  // Res-Ag is the blind baseline whose whole point is overcommitting
  // declared requests past capacity (§II fragmentation story), so its
  // provisioned-claim ceiling is left unchecked; the utilization-aware
  // policies and the exclusive-access stock scheduler must stay within the
  // physical device.
  opts.provision_ceiling_ratio =
      kind == sched::SchedulerKind::kResourceAgnostic ? 0.0 : 1.0;
  return opts;
}

}  // namespace

KubeKnots::KubeKnots(ExperimentConfig config) : config_(std::move(config)) {
  scheduler_ = sched::make_scheduler(config_.scheduler, config_.sched_params);
  cluster::ClusterConfig cluster_cfg = config_.cluster;
  cluster_cfg.seed = config_.seed;
  cluster_ = std::make_unique<cluster::Cluster>(cluster_cfg, *scheduler_);
  cluster_->set_fault_plan(config_.faults);
  verifier_ = std::make_unique<verify::InvariantChecker>(
      invariant_options_for(config_.scheduler));
  digest_ = std::make_unique<verify::RunDigest>();
  cluster_->add_observer(verifier_.get());
  cluster_->add_observer(digest_.get());
}

KubeKnots::~KubeKnots() = default;

void KubeKnots::submit(workload::PodSpec spec) {
  if (ran_) {
    throw std::logic_error(
        "KubeKnots::submit() called after run(); the simulation is "
        "single-shot — build a new KubeKnots for another run");
  }
  submitted_.push_back(std::move(spec));
}

void KubeKnots::submit_mix_workload() {
  if (ran_) {
    throw std::logic_error(
        "KubeKnots::submit_mix_workload() called after run(); the "
        "simulation is single-shot — build a new KubeKnots for another run");
  }
  workload::LoadGenConfig wl = config_.workload;
  wl.device_memory_mb = config_.cluster.node_spec.gpu.memory_mb;
  if (!config_.cluster.node_classes.empty()) {
    // Heterogeneous fleet: cap generated requests at the *smallest* device
    // class so every pod can be placed anywhere (mirrors the homogeneous
    // whole-device semantics).
    double min_mb = 0.0;
    for (const auto& nc : config_.cluster.node_classes) {
      const auto model = gpu::find_device_model(nc.device_model);
      KNOTS_CHECK_MSG(model.has_value(), "unknown device model");
      min_mb = min_mb == 0.0 ? model->gpu.memory_mb
                             : std::min(min_mb, model->gpu.memory_mb);
    }
    wl.device_memory_mb = min_mb;
  }
  auto pods = workload::generate_workload(workload::app_mix(config_.mix_id),
                                          wl, Rng(config_.seed));
  for (auto& p : pods) submitted_.push_back(std::move(p));
}

void KubeKnots::attach_tracer(obs::TraceSink* sink) {
  if (ran_) {
    throw std::logic_error(
        "KubeKnots::attach_tracer() called after run(); attach the tracer "
        "before running");
  }
  cluster_->set_trace_sink(sink);
}

void KubeKnots::attach_metrics(obs::MetricsRegistry* registry) {
  if (ran_) {
    throw std::logic_error(
        "KubeKnots::attach_metrics() called after run(); attach the "
        "registry before running");
  }
  cluster_->set_metrics_registry(registry);
}

ExperimentReport KubeKnots::run() {
  if (ran_) {
    throw std::logic_error(
        "KubeKnots::run() called twice; the simulation is single-shot — "
        "build a new KubeKnots (same config) to replay it");
  }
  ran_ = true;
  std::stable_sort(submitted_.begin(), submitted_.end(),
                   [](const auto& a, const auto& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < submitted_.size(); ++i) {
    submitted_[i].id = PodId{static_cast<std::int32_t>(i)};
  }
  cluster_->load(std::move(submitted_));
  submitted_.clear();
  cluster_->run();
  // Commit the final tenant ledger to the digest (ascending tenant order —
  // deterministic) so multi-tenant accounting is replay-checked like every
  // other decision. Single-tenant quota-free runs have an empty ledger and
  // mix nothing: historical digests are untouched.
  const auto& ledger = cluster_->tenant_ledger();
  if (!ledger.empty()) {
    for (const auto& row : ledger.rows()) {
      digest_->begin_record(verify::RunDigest::Tag::kTenantAccount,
                            cluster_->now());
      digest_->mix_u64(static_cast<std::uint64_t>(row.tenant));
      digest_->mix_double(row.provisioned_mb);
      digest_->mix_double(row.peak_provisioned_mb);
      digest_->mix_double(row.gpu_seconds);
      digest_->mix_u64(static_cast<std::uint64_t>(row.placements));
      digest_->mix_u64(static_cast<std::uint64_t>(row.rejections));
    }
  }
  ExperimentReport report =
      build_report(*cluster_, scheduler_->name(), config_.mix_id);
  report.run_digest = digest_->value();
  report.invariant_checks = verifier_->checks_run();
  report.invariant_violations = verifier_->violation_count();
  for (const auto& v : verifier_->violations()) {
    report.invariant_messages.push_back(v.category + ": " + v.message);
  }
  return report;
}

const cluster::Cluster& KubeKnots::cluster() const { return *cluster_; }

const verify::InvariantChecker& KubeKnots::verifier() const {
  return *verifier_;
}

const verify::RunDigest& KubeKnots::digest() const { return *digest_; }

}  // namespace knots
