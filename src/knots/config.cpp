#include "knots/config.hpp"

#include <utility>

namespace knots {

HardwareConfig hardware_config() { return HardwareConfig{}; }
SoftwareConfig software_config() { return SoftwareConfig{}; }

ExperimentConfig default_experiment(int mix_id, sched::SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.mix_id = mix_id;
  cfg.scheduler = kind;
  cfg.cluster.nodes = 10;
  cfg.cluster.gpus_per_node = 1;
  cfg.cluster.seed = cfg.seed;
  cfg.workload.duration = 600 * kSec;
  cfg.workload.device_memory_mb = cfg.cluster.node_spec.gpu.memory_mb;
  return cfg;
}

ExperimentConfig::Builder::Builder()
    : cfg_(default_experiment(1, sched::SchedulerKind::kPeakPrediction)) {}

ExperimentConfig::Builder& ExperimentConfig::Builder::mix(int mix_id) {
  cfg_.mix_id = mix_id;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::scheduler(
    sched::SchedulerKind kind) {
  cfg_.scheduler = kind;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::nodes(int nodes) {
  cfg_.cluster.nodes = nodes;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::gpus_per_node(int gpus) {
  cfg_.cluster.gpus_per_node = gpus;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::lanes(int lanes) {
  cfg_.cluster.lanes = lanes;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::duration(
    SimTime duration) {
  cfg_.workload.duration = duration;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::seed(std::uint64_t seed) {
  cfg_.seed = seed;
  cfg_.cluster.seed = seed;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::load_scale(double scale) {
  cfg_.workload.batch_rate_scale *= scale;
  cfg_.workload.lc_rate_scale *= scale;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::sched_params(
    const sched::SchedParams& params) {
  cfg_.sched_params = params;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::faults(
    fault::FaultPlan plan) {
  cfg_.faults = std::move(plan);
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::fabric(
    net::FabricPlan plan) {
  cfg_.cluster.fabric = std::move(plan);
  auto_fabric_ = false;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::auto_fabric() {
  auto_fabric_ = true;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::image_mb(double mb) {
  cfg_.cluster.image_mb = mb;
  return *this;
}

ExperimentConfig ExperimentConfig::Builder::build() const {
  ExperimentConfig cfg = cfg_;
  if (auto_fabric_) {
    cfg.cluster.fabric = net::FabricPlan::auto_derive(cfg.cluster.nodes);
  }
  return cfg;
}

}  // namespace knots
