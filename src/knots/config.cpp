#include "knots/config.hpp"

namespace knots {

HardwareConfig hardware_config() { return HardwareConfig{}; }
SoftwareConfig software_config() { return SoftwareConfig{}; }

ExperimentConfig default_experiment(int mix_id, sched::SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.mix_id = mix_id;
  cfg.scheduler = kind;
  cfg.cluster.nodes = 10;
  cfg.cluster.gpus_per_node = 1;
  cfg.cluster.seed = cfg.seed;
  cfg.workload.duration = 600 * kSec;
  cfg.workload.device_memory_mb = cfg.cluster.node_spec.gpu.memory_mb;
  return cfg;
}

}  // namespace knots
