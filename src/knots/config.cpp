#include "knots/config.hpp"

#include <utility>

#include "core/check.hpp"
#include "gpu/device_model.hpp"

namespace knots {

HardwareConfig hardware_config() { return HardwareConfig{}; }
SoftwareConfig software_config() { return SoftwareConfig{}; }

ExperimentConfig default_experiment(int mix_id, sched::SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.mix_id = mix_id;
  cfg.scheduler = kind;
  cfg.cluster.nodes = 10;
  cfg.cluster.gpus_per_node = 1;
  cfg.cluster.seed = cfg.seed;
  cfg.workload.duration = 600 * kSec;
  cfg.workload.device_memory_mb = cfg.cluster.node_spec.gpu.memory_mb;
  return cfg;
}

ExperimentConfig::Builder::Builder()
    : cfg_(default_experiment(1, sched::SchedulerKind::kPeakPrediction)) {}

ExperimentConfig::Builder& ExperimentConfig::Builder::mix(int mix_id) {
  cfg_.mix_id = mix_id;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::scheduler(
    sched::SchedulerKind kind) {
  cfg_.scheduler = kind;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::nodes(int nodes) {
  cfg_.cluster.nodes = nodes;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::gpus_per_node(int gpus) {
  cfg_.cluster.gpus_per_node = gpus;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::device_model(
    std::string_view name) {
  const auto model = gpu::find_device_model(name);
  KNOTS_CHECK_MSG(model.has_value(), "unknown device model");
  cfg_.cluster.node_spec.gpu = model->gpu;
  cfg_.workload.device_memory_mb = model->gpu.memory_mb;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::node_class(
    cluster::NodeClass node_class) {
  cfg_.cluster.node_classes.push_back(std::move(node_class));
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::tenant_quota(
    cluster::TenantQuotaSpec quota) {
  cfg_.cluster.tenant_quotas.push_back(quota);
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::workload_tenants(
    std::vector<int> tenants) {
  cfg_.workload.tenants = std::move(tenants);
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::power_cap_watts(
    double watts) {
  cfg_.cluster.power_cap_watts = watts;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::lanes(int lanes) {
  cfg_.cluster.lanes = lanes;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::duration(
    SimTime duration) {
  cfg_.workload.duration = duration;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::seed(std::uint64_t seed) {
  cfg_.seed = seed;
  cfg_.cluster.seed = seed;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::load_scale(double scale) {
  cfg_.workload.batch_rate_scale *= scale;
  cfg_.workload.lc_rate_scale *= scale;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::sched_params(
    const sched::SchedParams& params) {
  cfg_.sched_params = params;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::faults(
    fault::FaultPlan plan) {
  cfg_.faults = std::move(plan);
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::fabric(
    net::FabricPlan plan) {
  cfg_.cluster.fabric = std::move(plan);
  auto_fabric_ = false;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::auto_fabric() {
  auto_fabric_ = true;
  return *this;
}

ExperimentConfig::Builder& ExperimentConfig::Builder::image_mb(double mb) {
  cfg_.cluster.image_mb = mb;
  return *this;
}

ExperimentConfig ExperimentConfig::Builder::build() const {
  ExperimentConfig cfg = cfg_;
  if (!cfg.cluster.node_classes.empty()) {
    // Node classes drive the roster; keep the scalar count consistent for
    // everything that reads it before the Cluster is constructed.
    int node_count = 0;
    for (const auto& nc : cfg.cluster.node_classes) node_count += nc.count;
    cfg.cluster.nodes = node_count;
  }
  if (auto_fabric_) {
    // Intra-node bandwidth tracks the device model instead of restating the
    // NVLink constant.
    net::AutoFabricOptions options;
    options.intra_node_mb_per_s = cfg.cluster.node_spec.gpu.nvlink_mbps;
    cfg.cluster.fabric = net::FabricPlan::auto_derive(cfg.cluster.nodes,
                                                      options);
  }
  return cfg;
}

}  // namespace knots
