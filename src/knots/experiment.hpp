// Experiment runner: executes one configuration and distils the metrics
// every figure reads into a flat report.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "knots/config.hpp"

namespace knots::obs {
class TraceSink;
class MetricsRegistry;
}  // namespace knots::obs

namespace knots {

/// Utilization percentiles in percent, in Fig 6/8/9 order.
struct UtilPercentiles {
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
};

struct ExperimentReport {
  std::string scheduler;
  int mix_id = 0;

  std::vector<UtilPercentiles> per_gpu;  ///< Fig 6 / Fig 8 bars.
  UtilPercentiles cluster_wide;          ///< Fig 9 bars.
  std::vector<double> per_gpu_cov;       ///< Fig 7 (sorted ascending).
  std::vector<std::vector<double>> pairwise_load_cov;  ///< Fig 11b surface.

  std::size_t queries = 0;
  std::size_t qos_violations = 0;
  double violations_per_kilo = 0;        ///< Fig 10a bars.

  double mean_power_watts = 0;           ///< Fig 11a (normalize externally).
  double energy_joules = 0;
  std::size_t crashes = 0;

  // -- Fault layer (knots::fault) --
  std::uint64_t pods_evicted = 0;     ///< Node-death evictions.
  std::uint64_t node_crashes = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t ecc_degrades = 0;
  std::uint64_t heartbeat_gaps = 0;
  std::uint64_t pcie_stalls = 0;
  std::uint64_t stale_transitions = 0;  ///< Fresh → stale telemetry edges.

  // -- Fabric layer (knots::net); all zero on a fabric-free run --
  std::uint64_t flows_started = 0;    ///< Transfers begun on the fabric.
  std::uint64_t flows_finished = 0;   ///< Transfers fully delivered.
  std::uint64_t flows_contended = 0;  ///< Finished below solo fair share.
  std::uint64_t link_events = 0;      ///< Link down/degrade/restore edges.
  double mb_transferred = 0;          ///< Total delivered payload (MB).

  // -- Multi-tenant accounting (knots::cluster::TenantLedger); empty on
  //    single-tenant, quota-free runs --
  std::vector<cluster::TenantRow> tenants;

  double mean_jct_s = 0, median_jct_s = 0, p99_jct_s = 0;
  double lc_p50_ms = 0, lc_p99_ms = 0;
  std::size_t pods_total = 0, pods_completed = 0;

  std::uint64_t ticks = 0;   ///< Scheduling quanta executed (perf harness).
  std::uint64_t events = 0;  ///< Engine events dispatched (perf harness).

  // -- Verification layer (knots::verify) --
  /// Order-sensitive FNV-1a hash over every scheduling decision, crash and
  /// completion. Identical config + seed must yield identical digests.
  std::uint64_t run_digest = 0;
  std::uint64_t invariant_checks = 0;      ///< Tick-level audits performed.
  std::uint64_t invariant_violations = 0;  ///< Breaches detected (want 0).
  /// First few violations as "category: message" (capped; for diagnostics).
  std::vector<std::string> invariant_messages;
};

/// Distils a finished cluster's metrics into a report.
ExperimentReport build_report(const cluster::Cluster& cl,
                              std::string scheduler_name, int mix_id);

/// Runs the configuration to completion (single-threaded, deterministic).
ExperimentReport run_experiment(const ExperimentConfig& config);

/// Optional observability attachments for a run. Both pointers are borrowed
/// (must outlive the call) and may independently be null. Attaching either
/// never changes the run's decisions or digest.
struct RunObservability {
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// run_experiment with tracing/metrics attached for the run's duration.
ExperimentReport run_experiment(const ExperimentConfig& config,
                                const RunObservability& observability);

/// Cartesian sweep grid: every (scheduler, seed, load_scale) combination
/// becomes one independent experiment. `load_scales` multiply the base
/// config's batch and LC arrival-rate scales. An empty `seeds` list means
/// "the base config's seed" — the common one-run-per-scheduler sweep.
struct SweepGrid {
  std::vector<sched::SchedulerKind> schedulers;
  std::vector<std::uint64_t> seeds;
  std::vector<double> load_scales = {1.0};

  [[nodiscard]] std::size_t size() const noexcept {
    return schedulers.size() * std::max<std::size_t>(1, seeds.size()) *
           load_scales.size();
  }
};

/// One grid coordinate and its finished report.
struct SweepResult {
  sched::SchedulerKind scheduler{};
  std::uint64_t seed = 0;
  double load_scale = 1.0;
  ExperimentReport report;
};

/// Runs the whole grid on a core::ThreadPool (`threads` = 0 → hardware
/// concurrency) with dynamic work distribution — each simulation is
/// single-threaded and deterministic, so results are independent of thread
/// schedule. Results are returned in deterministic scheduler-major order
/// (scheduler, then seed, then load_scale, each in grid order).
std::vector<SweepResult> run_sweep(const ExperimentConfig& base,
                                   const SweepGrid& grid,
                                   std::size_t threads = 0);

}  // namespace knots
