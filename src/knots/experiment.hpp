// Experiment runner: executes one configuration and distils the metrics
// every figure reads into a flat report.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "knots/config.hpp"

namespace knots {

/// Utilization percentiles in percent, in Fig 6/8/9 order.
struct UtilPercentiles {
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
};

struct ExperimentReport {
  std::string scheduler;
  int mix_id = 0;

  std::vector<UtilPercentiles> per_gpu;  ///< Fig 6 / Fig 8 bars.
  UtilPercentiles cluster_wide;          ///< Fig 9 bars.
  std::vector<double> per_gpu_cov;       ///< Fig 7 (sorted ascending).
  std::vector<std::vector<double>> pairwise_load_cov;  ///< Fig 11b surface.

  std::size_t queries = 0;
  std::size_t qos_violations = 0;
  double violations_per_kilo = 0;        ///< Fig 10a bars.

  double mean_power_watts = 0;           ///< Fig 11a (normalize externally).
  double energy_joules = 0;
  std::size_t crashes = 0;

  double mean_jct_s = 0, median_jct_s = 0, p99_jct_s = 0;
  double lc_p50_ms = 0, lc_p99_ms = 0;
  std::size_t pods_total = 0, pods_completed = 0;

  // -- Verification layer (knots::verify) --
  /// Order-sensitive FNV-1a hash over every scheduling decision, crash and
  /// completion. Identical config + seed must yield identical digests.
  std::uint64_t run_digest = 0;
  std::uint64_t invariant_checks = 0;      ///< Tick-level audits performed.
  std::uint64_t invariant_violations = 0;  ///< Breaches detected (want 0).
  /// First few violations as "category: message" (capped; for diagnostics).
  std::vector<std::string> invariant_messages;
};

/// Distils a finished cluster's metrics into a report.
ExperimentReport build_report(const cluster::Cluster& cl,
                              std::string scheduler_name, int mix_id);

/// Runs the configuration to completion (single-threaded, deterministic).
ExperimentReport run_experiment(const ExperimentConfig& config);

/// Runs one configuration per scheduler kind concurrently (one thread
/// each); reports are returned in `kinds` order.
std::vector<ExperimentReport> run_scheduler_sweep(
    const ExperimentConfig& base, const std::vector<sched::SchedulerKind>& kinds);

}  // namespace knots
