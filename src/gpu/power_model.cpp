#include "gpu/power_model.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace knots::gpu {

CpuPowerSpec sandy_bridge_spec() {
  return CpuPowerSpec{"Intel-Sandybridge", /*idle_fraction=*/0.30,
                      /*saturation_util=*/0.70, /*saturation_gain=*/0.45};
}

CpuPowerSpec westmere_spec() {
  return CpuPowerSpec{"Intel-Westmere", /*idle_fraction=*/0.55,
                      /*saturation_util=*/0.80, /*saturation_gain=*/0.60};
}

double gpu_power_watts(const GpuPowerSpec& spec, double util, bool active,
                       bool deep_sleep) {
  if (deep_sleep) return spec.deep_sleep_watts;
  if (!active) return spec.idle_watts;
  const double u = std::clamp(util, 0.0, 1.0);
  return spec.active_floor_watts +
         (spec.max_watts - spec.active_floor_watts) * u;
}

double gpu_energy_efficiency(const GpuPowerSpec& spec, double util) {
  const double u = std::clamp(util, 0.0, 1.0);
  // Throughput is linear in utilization for GPUs (SIMT occupancy), while an
  // active board pays its clock/memory floor — so PPW keeps improving all
  // the way to 100 % utilization (Fig 1's high energy-proportionality zone).
  const double ppw_at_full = 1.0 / spec.max_watts;
  if (u <= 0.0) return 0.0;
  const double ppw = u / gpu_power_watts(spec, u, /*active=*/true);
  return ppw / ppw_at_full;
}

namespace {
/// CPU throughput: linear until the saturation knee, diminishing after.
double cpu_throughput(const CpuPowerSpec& spec, double u) {
  if (u <= spec.saturation_util) return u;
  return spec.saturation_util + (u - spec.saturation_util) * spec.saturation_gain;
}
}  // namespace

double cpu_energy_efficiency(const CpuPowerSpec& spec, double util) {
  const double u = std::clamp(util, 0.0, 1.0);
  if (u <= 0.0) return 0.0;
  KNOTS_CHECK(spec.idle_fraction > 0.0 && spec.idle_fraction < 1.0);
  const double power = spec.idle_fraction + (1.0 - spec.idle_fraction) * u;
  const double power_full = 1.0;
  const double ppw = cpu_throughput(spec, u) / power;
  const double ppw_full = cpu_throughput(spec, 1.0) / power_full;
  return ppw / ppw_full;
}

}  // namespace knots::gpu
