#include "gpu/device_model.hpp"

namespace knots::gpu {

namespace {

std::vector<DeviceModel> build_registry() {
  std::vector<DeviceModel> models;

  // The paper's testbed device. Field-for-field identical to GpuSpec{} (a
  // registry test pins this), so configs built from the registry reproduce
  // the historical goldens bit-for-bit.
  DeviceModel p100;
  p100.name = "p100-16g";
  p100.display = "P100 (16GB)";
  p100.gpu = GpuSpec{};
  models.push_back(p100);

  // Volta: twice the memory, twice the mixed-precision training throughput
  // (compute_factor 2.0 — a power of two, so compute-factor-scaled runs are
  // IEEE-exact against the P100 baseline), NVLink2 doubling the intra-node
  // fabric. Context-switch behaviour is kept at the P100 calibration: the
  // co-location tax comes from non-preemptive kernels and VIVT caches,
  // which Volta shares.
  DeviceModel v100;
  v100.name = "v100-32g";
  v100.display = "V100 (32GB)";
  v100.gpu = GpuSpec{};
  v100.gpu.memory_mb = 32768.0;
  v100.gpu.nvlink_mbps = 80000.0;
  v100.gpu.compute_factor = 2.0;
  v100.gpu.power = GpuPowerSpec{300.0, 110.0, 30.0, 10.0};
  models.push_back(v100);

  // Ampere: 40 GB HBM2e, PCIe gen4, third-gen NVLink, and ~4× the P100's
  // training throughput (again a power of two, see above).
  DeviceModel a100;
  a100.name = "a100-40g";
  a100.display = "A100 (40GB)";
  a100.gpu = GpuSpec{};
  a100.gpu.memory_mb = 40960.0;
  a100.gpu.pcie_mbps = 24000.0;
  a100.gpu.nvlink_mbps = 200000.0;
  a100.gpu.compute_factor = 4.0;
  a100.gpu.power = GpuPowerSpec{400.0, 150.0, 40.0, 12.0};
  models.push_back(a100);

  return models;
}

}  // namespace

const std::vector<DeviceModel>& device_models() {
  static const std::vector<DeviceModel> registry = build_registry();
  return registry;
}

std::optional<DeviceModel> find_device_model(std::string_view name) {
  for (const DeviceModel& model : device_models()) {
    if (model.name == name) return model;
  }
  return std::nullopt;
}

const DeviceModel& default_device_model() { return device_models().front(); }

}  // namespace knots::gpu
