// GPU device model: time-shared SMs, space-shared memory, PCIe channels.
//
// Mirrors the sharing semantics Kube-Knots enables through the modified
// Nvidia k8s-device-plugin (§IV-B): multiple pods may reside on one GPU; SM
// cycles are time-shared (aggregate demand above 100 % slows every resident
// proportionally), memory is space-shared (aggregate *usage* above physical
// capacity is a capacity violation that crashes the most-recently-grown pod).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "gpu/power_model.hpp"

namespace knots::gpu {

/// Instantaneous resource demand of one resident pod.
struct Usage {
  double sm = 0.0;         ///< SM demand in [0, 1] of the whole device.
  double memory_mb = 0.0;  ///< Resident device memory.
  double tx_mbps = 0.0;    ///< Host-to-device PCIe traffic.
  double rx_mbps = 0.0;    ///< Device-to-host PCIe traffic.
};

struct GpuSpec {
  double memory_mb = 16384.0;     ///< P100 16 GB.
  double pcie_mbps = 12000.0;     ///< Effective PCIe gen3 x16 per direction.
  double nvlink_mbps = 40000.0;   ///< P100 NVLink aggregate; the default
                                  ///< intra-node link bandwidth when a
                                  ///< net::FabricPlan is auto-derived.
  /// Multiplicative progress tax per extra *compute-active* co-resident
  /// context. GPUs are non-preemptive and VIVT (§I): time-multiplexing k
  /// contexts flushes caches and serializes long kernels, so co-location is
  /// far costlier than the raw SM-demand sum suggests.
  double context_switch_tax = 0.08;
  /// SM demand above which a resident counts as compute-active.
  double active_sm_threshold = 0.05;
  /// Relative compute throughput vs the P100 baseline: how much profile
  /// runtime (or DL step work) this device retires per simulated second.
  /// 1.0 is the P100; the DeviceModel registry calibrates newer generations
  /// with power-of-two factors so factor-scaled runs stay IEEE-exact.
  double compute_factor = 1.0;
  GpuPowerSpec power{};
};

/// Aggregated instantaneous state of the device.
struct GpuTotals {
  double sm_demand = 0.0;      ///< Sum of resident SM demands (can be > 1).
  double sm_util = 0.0;        ///< Delivered utilization, clamped to [0,1].
  int active_contexts = 0;     ///< Residents above the compute threshold.
  double memory_used_mb = 0.0; ///< Sum of resident usage.
  double memory_provisioned_mb = 0.0;  ///< Sum of container allocations.
  double tx_mbps = 0.0;
  double rx_mbps = 0.0;
  int residents = 0;
};

class GpuDevice {
 public:
  explicit GpuDevice(GpuId id, GpuSpec spec = {});

  [[nodiscard]] GpuId id() const noexcept { return id_; }
  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }

  /// Admits a pod with a container allocation of `provisioned_mb`.
  /// Allocations are *claims*, not physical reservations: a GPU-agnostic
  /// scheduler may overcommit them past capacity (that is the fragmentation
  /// story of §II); only duplicate attaches fail. Utilization-aware
  /// schedulers check `provision_fits` themselves before placing.
  [[nodiscard]] bool attach(PodId pod, double provisioned_mb);

  /// True when an extra allocation of `mb` keeps total claims within the
  /// usable device (what CBP/PP check before placement).
  [[nodiscard]] bool provision_fits(double mb) const noexcept {
    return totals_.memory_provisioned_mb + mb <= effective_memory_mb();
  }

  /// Removes a pod; its usage and allocation are released.
  void detach(PodId pod);

  /// Changes a pod's container allocation (docker resize); fails only when
  /// shrinking below the pod's current usage (a crash, not a resize).
  [[nodiscard]] bool resize(PodId pod, double provisioned_mb);

  /// Updates the pod's instantaneous usage. Returns false when this update
  /// pushes aggregate memory usage past physical capacity (capacity
  /// violation — the caller crashes the offending pod).
  [[nodiscard]] bool set_usage(PodId pod, const Usage& usage);

  [[nodiscard]] bool resident(PodId pod) const {
    return usages_.contains(pod);
  }
  [[nodiscard]] std::optional<double> provisioned_mb(PodId pod) const;
  [[nodiscard]] std::vector<PodId> resident_pods() const;
  /// Resident pods in ascending id order, without the copy resident_pods()
  /// makes — maintained incrementally on attach/detach for the per-tick
  /// harvest and audit loops.
  [[nodiscard]] const std::vector<PodId>& residents() const noexcept {
    return residents_sorted_;
  }

  [[nodiscard]] GpuTotals totals() const noexcept { return totals_; }
  [[nodiscard]] double free_provision_mb() const noexcept {
    return effective_memory_mb() - totals_.memory_provisioned_mb;
  }

  // -- ECC error state (knots::fault GpuEccDegrade) --
  /// Usable capacity: physical memory minus pages retired by sticky ECC
  /// errors. Capacity violations and provisioning both bound against this.
  [[nodiscard]] double effective_memory_mb() const noexcept {
    return spec_.memory_mb - ecc_retired_mb_;
  }
  [[nodiscard]] double ecc_retired_mb() const noexcept {
    return ecc_retired_mb_;
  }
  [[nodiscard]] bool ecc_degraded() const noexcept {
    return ecc_retired_mb_ > 0;
  }
  /// Retires `mb` of device memory (sticky double-bit errors; cumulative,
  /// never restored). Capped so at least 1 MB stays usable.
  void retire_memory_mb(double mb);

  /// Progress slowdown from SM time-sharing: max(1, aggregate demand) plus a
  /// context-switch tax that grows with the number of co-residents. Pure in
  /// the current totals, so the value is cached until the next usage change
  /// (the tick hot path asks several times per device per tick).
  [[nodiscard]] double slowdown() const noexcept {
    if (derived_dirty_) refresh_derived();
    return cached_slowdown_;
  }

  /// True when the orchestrator parked this device (deep sleep p-state).
  [[nodiscard]] bool parked() const noexcept { return parked_; }
  /// Parking requires an empty device.
  void set_parked(bool parked);

  /// Instantaneous draw; cached like slowdown() (pure in totals + parked).
  [[nodiscard]] double power_watts() const {
    if (derived_dirty_) refresh_derived();
    return cached_power_;
  }

 private:
  void recompute_totals() noexcept;
  void refresh_derived() const;

  GpuId id_;
  GpuSpec spec_;
  std::unordered_map<PodId, Usage> usages_;
  std::unordered_map<PodId, double> provisioned_;
  std::vector<PodId> residents_sorted_;
  GpuTotals totals_{};
  bool parked_ = false;
  double ecc_retired_mb_ = 0.0;
  mutable bool derived_dirty_ = true;
  mutable double cached_slowdown_ = 1.0;
  mutable double cached_power_ = 0.0;
};

}  // namespace knots::gpu
