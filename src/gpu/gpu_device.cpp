#include "gpu/gpu_device.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace knots::gpu {

GpuDevice::GpuDevice(GpuId id, GpuSpec spec) : id_(id), spec_(spec) {
  KNOTS_CHECK(spec_.memory_mb > 0);
}

bool GpuDevice::attach(PodId pod, double provisioned_mb) {
  KNOTS_CHECK(pod.valid());
  KNOTS_CHECK(provisioned_mb >= 0);
  if (usages_.contains(pod)) return false;
  parked_ = false;
  usages_.emplace(pod, Usage{});
  provisioned_.emplace(pod, provisioned_mb);
  residents_sorted_.insert(std::lower_bound(residents_sorted_.begin(),
                                            residents_sorted_.end(), pod),
                           pod);
  recompute_totals();
  return true;
}

void GpuDevice::detach(PodId pod) {
  usages_.erase(pod);
  provisioned_.erase(pod);
  const auto it = std::lower_bound(residents_sorted_.begin(),
                                   residents_sorted_.end(), pod);
  if (it != residents_sorted_.end() && *it == pod) {
    residents_sorted_.erase(it);
  }
  recompute_totals();
}

bool GpuDevice::resize(PodId pod, double provisioned_mb) {
  auto it = provisioned_.find(pod);
  if (it == provisioned_.end()) return false;
  if (provisioned_mb < usages_.at(pod).memory_mb) return false;
  it->second = provisioned_mb;
  recompute_totals();
  return true;
}

bool GpuDevice::set_usage(PodId pod, const Usage& usage) {
  auto it = usages_.find(pod);
  KNOTS_CHECK_MSG(it != usages_.end(), "set_usage on non-resident pod");
  it->second = usage;
  recompute_totals();
  // Space-shared memory: violation when *usage* exceeds the usable device
  // (physical capacity minus ECC-retired pages), regardless of what
  // allocations promised (overcommitting schedulers).
  return totals_.memory_used_mb <= effective_memory_mb();
}

void GpuDevice::retire_memory_mb(double mb) {
  KNOTS_CHECK(mb >= 0);
  ecc_retired_mb_ = std::min(ecc_retired_mb_ + mb, spec_.memory_mb - 1.0);
}

std::optional<double> GpuDevice::provisioned_mb(PodId pod) const {
  auto it = provisioned_.find(pod);
  if (it == provisioned_.end()) return std::nullopt;
  return it->second;
}

std::vector<PodId> GpuDevice::resident_pods() const {
  return residents_sorted_;
}

void GpuDevice::refresh_derived() const {
  double factor = std::max(1.0, totals_.sm_demand);
  if (totals_.active_contexts > 1) {
    // Context-switch tax: non-preemptive kernels + VIVT cache flushes make
    // time-multiplexing k compute-active contexts superlinearly expensive.
    factor *= 1.0 + spec_.context_switch_tax *
                        static_cast<double>(totals_.active_contexts - 1);
  }
  cached_slowdown_ = factor;
  cached_power_ = gpu_power_watts(spec_.power, totals_.sm_util,
                                  totals_.residents > 0, parked_);
  derived_dirty_ = false;
}

void GpuDevice::set_parked(bool parked) {
  if (parked) {
    KNOTS_CHECK_MSG(usages_.empty(), "cannot park an occupied GPU");
  }
  parked_ = parked;
  derived_dirty_ = true;
}

void GpuDevice::recompute_totals() noexcept {
  GpuTotals t;
  for (const auto& [pod, u] : usages_) {
    t.sm_demand += u.sm;
    t.memory_used_mb += u.memory_mb;
    t.tx_mbps += u.tx_mbps;
    t.rx_mbps += u.rx_mbps;
    ++t.residents;
    if (u.sm > spec_.active_sm_threshold) ++t.active_contexts;
  }
  for (const auto& [pod, mb] : provisioned_) t.memory_provisioned_mb += mb;
  t.sm_util = std::min(1.0, t.sm_demand);
  t.tx_mbps = std::min(t.tx_mbps, spec_.pcie_mbps);
  t.rx_mbps = std::min(t.rx_mbps, spec_.pcie_mbps);
  totals_ = t;
  derived_dirty_ = true;
}

}  // namespace knots::gpu
