// A worker node: host CPU + one or more GPU devices (Dell R730 + P100 in the
// paper's testbed; the DL simulator instantiates 8 GPUs per node).
#pragma once

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "gpu/gpu_device.hpp"

namespace knots::gpu {

struct NodeSpec {
  int gpus_per_node = 1;
  /// Host CPU floor. Defaults to 0 so cluster power matches the paper's
  /// NVML-measured *GPU* power; set to ~120 W to model the Xeon host too.
  double host_idle_watts = 0.0;
  /// Spot/preemptible capacity: the provider may reclaim this node at any
  /// time via a fault::kSpotReclaim event. Schedulers see the flag through
  /// GpuView.preemptible and trade its capacity for eviction risk.
  bool preemptible = false;
  /// Advance warning between the reclaim notice (a FaultNotice on the feed)
  /// and the node actually going down (cloud spot instances give ~30–120 s).
  SimTime spot_notice = 0;
  GpuSpec gpu{};
};

class GpuNode {
 public:
  GpuNode(NodeId id, const NodeSpec& spec, std::int32_t first_gpu_id);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::size_t gpu_count() const noexcept { return gpus_.size(); }
  [[nodiscard]] GpuDevice& gpu(std::size_t i) { return *gpus_[i]; }
  [[nodiscard]] const GpuDevice& gpu(std::size_t i) const { return *gpus_[i]; }

  /// Node power = host floor + sum of GPU draws; 0 while offline.
  [[nodiscard]] double power_watts() const;

  /// False while the node is crashed (knots::fault NodeCrash): it draws no
  /// power, reports no telemetry, and hosts no pods until recovery.
  [[nodiscard]] bool online() const noexcept { return online_; }
  void set_online(bool online) noexcept { online_ = online; }

  /// Mean SM utilization across this node's GPUs, in [0,1].
  [[nodiscard]] double mean_sm_util() const;

  /// Total free (unprovisioned) device memory across GPUs.
  [[nodiscard]] double free_provision_mb() const;

 private:
  NodeId id_;
  NodeSpec spec_;
  std::vector<std::unique_ptr<GpuDevice>> gpus_;
  bool online_ = true;
};

}  // namespace knots::gpu
