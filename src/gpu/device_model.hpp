// The device-model registry: named GPU calibrations a cluster is built from.
//
// Before the scenario engine the P100 was hard-coded in three places
// (GpuSpec defaults, GpuPowerSpec wattages, knots::HardwareConfig literals).
// This registry is now the single definition: `p100-16g` reproduces those
// defaults bit-for-bit, and `v100-32g` / `a100-40g` add newer generations so
// a cluster can mix node classes (cluster::ClusterConfig::node_classes).
//
// Each model carries its memory size, PCIe/NVLink bandwidths, the p-state
// power envelope, and a *relative compute factor*: how much profile runtime
// (and DL step time) the device retires per unit of simulated time compared
// to the P100 baseline. Factors are deliberately powers of two — combined
// with AppProfile::time_scaled/memory_scaled (exact for power-of-two factors
// in IEEE arithmetic) that makes the heterogeneity metamorphic law exact: an
// all-v100 cluster running ×2-scaled profiles replays the P100 golden
// placement sequence bit-for-bit.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gpu/gpu_device.hpp"

namespace knots::gpu {

/// One named, calibrated GPU generation.
struct DeviceModel {
  std::string name;     ///< Registry key, e.g. "p100-16g".
  std::string display;  ///< Human-readable label, e.g. "P100 (16GB)".
  GpuSpec gpu;          ///< Full device spec (memory, links, power, compute).
};

/// All registered models, in a stable order (P100 first).
[[nodiscard]] const std::vector<DeviceModel>& device_models();

/// Looks a model up by registry name; std::nullopt for unknown names.
[[nodiscard]] std::optional<DeviceModel> find_device_model(
    std::string_view name);

/// The baseline calibration every default config uses: `p100-16g`, equal to
/// GpuSpec{} field for field.
[[nodiscard]] const DeviceModel& default_device_model();

}  // namespace knots::gpu
