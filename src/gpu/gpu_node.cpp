#include "gpu/gpu_node.hpp"

#include "core/check.hpp"

namespace knots::gpu {

GpuNode::GpuNode(NodeId id, const NodeSpec& spec, std::int32_t first_gpu_id)
    : id_(id), spec_(spec) {
  KNOTS_CHECK(spec.gpus_per_node > 0);
  gpus_.reserve(static_cast<std::size_t>(spec.gpus_per_node));
  for (int i = 0; i < spec.gpus_per_node; ++i) {
    gpus_.push_back(
        std::make_unique<GpuDevice>(GpuId{first_gpu_id + i}, spec.gpu));
  }
}

double GpuNode::power_watts() const {
  if (!online_) return 0.0;
  double watts = spec_.host_idle_watts;
  for (const auto& g : gpus_) watts += g->power_watts();
  return watts;
}

double GpuNode::mean_sm_util() const {
  double sum = 0;
  for (const auto& g : gpus_) sum += g->totals().sm_util;
  return sum / static_cast<double>(gpus_.size());
}

double GpuNode::free_provision_mb() const {
  double sum = 0;
  for (const auto& g : gpus_) sum += g->free_provision_mb();
  return sum;
}

}  // namespace knots::gpu
