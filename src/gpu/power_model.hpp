// Device power / energy-efficiency models (Fig 1 and the Fig 11a energy
// accounting).
//
// GPUs: performance scales linearly with utilization and dynamic power is
// linear in utilization, so performance-per-watt keeps rising all the way to
// 100 % — the "high energy proportionality zone" of Fig 1. CPUs: higher idle
// floors and post-70 % throughput saturation (hyper-threading) put their peak
// efficiency at 60–80 % utilization.
#pragma once

#include <string>

namespace knots::gpu {

/// P100-calibrated defaults; wattages from NVIDIA's published board specs.
/// An *active* GPU (resident contexts, clocks up) draws a substantial floor
/// even at low SM occupancy — memory and clock domains do not gate per-SM —
/// which is exactly why consolidating work onto fewer GPUs and deep-sleeping
/// the rest saves cluster energy (§VI-C).
struct GpuPowerSpec {
  double max_watts = 250.0;         ///< TDP at 100 % utilization.
  double active_floor_watts = 95.0; ///< Context resident, ~0 % SM load.
  double idle_watts = 25.0;         ///< No contexts, powered (p-state P8).
  double deep_sleep_watts = 9.0;    ///< Parked, p-state P12 (§VI-C).
};

/// Piecewise-linear CPU throughput saturation + idle floor.
struct CpuPowerSpec {
  std::string name;
  double idle_fraction;    ///< Idle power as a fraction of peak power.
  double saturation_util;  ///< Utilization where throughput starts saturating.
  double saturation_gain;  ///< Marginal throughput per util beyond saturation.
};

/// Intel Sandy Bridge: newer, more proportional, peak EE ~70 % utilization.
CpuPowerSpec sandy_bridge_spec();
/// Intel Westmere: older, high idle floor, weak proportionality.
CpuPowerSpec westmere_spec();

/// Instantaneous GPU power draw at `util` in [0,1]. `active` = at least one
/// resident context (clocks up: linear between the active floor and max);
/// otherwise the idle wattage. `deep_sleep` overrides everything (GPU parked
/// by the orchestrator).
double gpu_power_watts(const GpuPowerSpec& spec, double util,
                       bool active = true, bool deep_sleep = false);

/// GPU performance-per-watt at `util`, normalized to PPW at util = 1.
double gpu_energy_efficiency(const GpuPowerSpec& spec, double util);

/// CPU performance-per-watt at `util`, normalized to PPW at util = 1.
/// Exceeds 1.0 near the 60–80 % sweet spot for proportional parts.
double cpu_energy_efficiency(const CpuPowerSpec& spec, double util);

}  // namespace knots::gpu
