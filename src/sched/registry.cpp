#include "sched/registry.hpp"

#include "core/check.hpp"
#include "sched/peak_prediction.hpp"
#include "sched/resource_agnostic.hpp"
#include "sched/uniform.hpp"

namespace knots::sched {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kUniform: return "Uniform";
    case SchedulerKind::kResourceAgnostic: return "Res-Ag";
    case SchedulerKind::kCbp: return "CBP";
    case SchedulerKind::kPeakPrediction: return "PP";
  }
  return "unknown";
}

SchedulerKind scheduler_from_name(const std::string& name) {
  for (SchedulerKind kind : kAllSchedulers) {
    if (to_string(kind) == name) return kind;
  }
  KNOTS_CHECK_MSG(false, "unknown scheduler name");
  return SchedulerKind::kUniform;
}

std::unique_ptr<cluster::Scheduler> make_scheduler(SchedulerKind kind,
                                                   SchedParams params) {
  switch (kind) {
    case SchedulerKind::kUniform:
      return std::make_unique<UniformScheduler>(params);
    case SchedulerKind::kResourceAgnostic:
      return std::make_unique<ResourceAgnosticScheduler>(params);
    case SchedulerKind::kCbp:
      return std::make_unique<CbpScheduler>(params);
    case SchedulerKind::kPeakPrediction:
      return std::make_unique<PeakPredictionScheduler>(params);
  }
  return nullptr;
}

}  // namespace knots::sched
