#include "sched/registry.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "core/check.hpp"
#include "sched/peak_prediction.hpp"
#include "sched/resource_agnostic.hpp"
#include "sched/uniform.hpp"

namespace knots::sched {
namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Name → factory. Guarded by registry_mutex(); factories are copied out
// before invocation so user factories never run under the lock.
std::map<std::string, SchedulerFactory>& factories() {
  static std::map<std::string, SchedulerFactory> map;
  return map;
}

// Seeds the four pod schedulers under their display names. Runs once,
// lazily, under the registry mutex (callers below hold it already).
void ensure_builtins_locked() {
  static bool seeded = false;
  if (seeded) return;
  seeded = true;
  for (SchedulerKind kind : kAllSchedulers) {
    factories()[to_string(kind)] = [kind](const SchedParams& params) {
      return make_scheduler(kind, params);
    };
  }
}

}  // namespace

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kUniform: return "Uniform";
    case SchedulerKind::kResourceAgnostic: return "Res-Ag";
    case SchedulerKind::kCbp: return "CBP";
    case SchedulerKind::kPeakPrediction: return "PP";
  }
  return "unknown";
}

SchedulerKind scheduler_from_name(const std::string& name) {
  for (SchedulerKind kind : kAllSchedulers) {
    if (to_string(kind) == name) return kind;
  }
  KNOTS_CHECK_MSG(false, "unknown scheduler name");
  return SchedulerKind::kUniform;
}

std::unique_ptr<cluster::Scheduler> make_scheduler(SchedulerKind kind,
                                                   SchedParams params) {
  switch (kind) {
    case SchedulerKind::kUniform:
      return std::make_unique<UniformScheduler>(params);
    case SchedulerKind::kResourceAgnostic:
      return std::make_unique<ResourceAgnosticScheduler>(params);
    case SchedulerKind::kCbp:
      return std::make_unique<CbpScheduler>(params);
    case SchedulerKind::kPeakPrediction:
      return std::make_unique<PeakPredictionScheduler>(params);
  }
  return nullptr;
}

void register_scheduler(const std::string& name, SchedulerFactory factory) {
  KNOTS_CHECK_MSG(factory != nullptr, "null scheduler factory");
  const std::lock_guard<std::mutex> lock(registry_mutex());
  ensure_builtins_locked();
  factories()[name] = std::move(factory);
}

bool scheduler_registered(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  ensure_builtins_locked();
  return factories().contains(name);
}

std::unique_ptr<cluster::Scheduler> make_scheduler(const std::string& name,
                                                   SchedParams params) {
  SchedulerFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    ensure_builtins_locked();
    auto it = factories().find(name);
    KNOTS_CHECK_MSG(it != factories().end(), "unknown scheduler name");
    factory = it->second;
  }
  return factory(params);
}

std::vector<std::string> registered_scheduler_names() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  ensure_builtins_locked();
  std::vector<std::string> names;
  names.reserve(factories().size());
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;
}

}  // namespace knots::sched
