#include "sched/uniform.hpp"

#include <vector>

#include "cluster/cluster.hpp"

namespace knots::sched {

void UniformScheduler::on_tick(cluster::Cluster& cl) {
  // Strict FIFO over the pending queue; stop at the first pod that cannot
  // be placed (head-of-line blocking, exactly the stock behaviour). Free
  // GPUs are picked round-robin, matching the stock spreading score.
  while (!cl.pending().empty()) {
    const PodId head = cl.pending().front();
    const auto& pod = cl.pod(head);
    bool placed = false;
    const auto gpus = cl.all_gpus();
    for (std::size_t k = 0; k < gpus.size(); ++k) {
      const GpuId gpu = gpus[(rr_cursor_ + k) % gpus.size()];
      auto& dev = cl.device(gpu);
      if (dev.totals().residents != 0) continue;
      // Exclusive access: the pod gets the whole device; its declared
      // request is honoured up to capacity.
      const double provision =
          std::min(pod.spec().requested_mb, dev.spec().memory_mb);
      placed = cl.place(head, gpu, provision);
      if (placed) {
        rr_cursor_ = (rr_cursor_ + k + 1) % gpus.size();
        break;
      }
    }
    if (!placed) break;
  }
}

}  // namespace knots::sched
