#include "sched/uniform.hpp"

#include <vector>

#include "cluster/cluster.hpp"
#include "obs/trace.hpp"

namespace knots::sched {

void UniformScheduler::on_schedule(cluster::SchedulingContext& ctx) {
  auto& cl = *ctx.cluster;
  // Strict FIFO over the pending queue; stop at the first pod that cannot
  // be placed (head-of-line blocking, exactly the stock behaviour). Free
  // GPUs are picked round-robin, matching the stock spreading score.
  while (!ctx.pending->empty()) {
    const PodId head = ctx.pending->front();
    const auto& pod = cl.pod(head);
    bool placed = false;
    // Dense GPU ids: compute the round-robin id directly instead of
    // materializing all_gpus() every pod.
    const std::size_t n_gpus = cl.gpu_count();
    for (std::size_t k = 0; k < n_gpus; ++k) {
      const GpuId gpu{static_cast<std::int32_t>((rr_cursor_ + k) % n_gpus)};
      if (cl.node_health(cl.node_of_gpu(gpu)) == cluster::NodeHealth::kDown) {
        continue;
      }
      auto& dev = cl.device(gpu);
      if (dev.totals().residents != 0) continue;
      // Exclusive access: the pod gets the whole device; its declared
      // request is honoured up to capacity.
      const double provision =
          std::min(pod.spec().requested_mb, dev.spec().memory_mb);
      placed = cl.place(head, gpu, provision);
      if (placed) {
        rr_cursor_ = (rr_cursor_ + k + 1) % n_gpus;
        if (ctx.trace != nullptr) {
          ctx.trace->record(ctx.now, obs::EventKind::kDecision, head.value,
                            gpu.value, provision, "uniform:round-robin");
        }
        break;
      }
    }
    if (!placed) {
      if (ctx.trace != nullptr) {
        ctx.trace->record(ctx.now, obs::EventKind::kDecision, head.value, -1,
                          0.0, "uniform:head-of-line-blocked");
      }
      break;
    }
  }
}

}  // namespace knots::sched
