// Shared tuning parameters of the four scheduling policies.
#pragma once

#include "core/types.hpp"

namespace knots::sched {

struct SchedParams {
  // Res-Ag: packs by declared requests with this overcommit budget and a
  // per-GPU resident cap (the modified device plugin's sharing limit).
  double overcommit = 1.2;
  int max_residents = 3;

  // CBP: pods whose image memory signatures correlate above this Spearman
  // threshold are not co-located (§IV-C / Algorithm 1's Can_Co-locate).
  double correlation_threshold = 0.5;
  // Container resize target: provision for this duration-weighted
  // percentile of the observed footprint (80th per Fig 2b; the ablation
  // bench sweeps it).
  double provision_percentile = 80.0;

  // Utilization-aware admission: projected aggregate SM demand caps.
  double sm_cap_batch = 1.00;
  double sm_cap_lc = 0.90;
  // First run of an unknown image: assume this SM demand.
  double unknown_sm_estimate = 0.50;

  // PP: telemetry window d and forecast horizon (§IV-D: five-second sliding
  // window, one-second ARIMA forecast).
  SimTime window = 5 * kSec;
  SimTime forecast_horizon = 1 * kSec;
  // Minimum positive lag-1 autocorrelation before trusting a forecast.
  double min_autocorrelation = 0.0;
};

}  // namespace knots::sched
