// Kubernetes' stock uniform scheduler (the paper's "Uniform" baseline):
// GPUs are opaque countable devices, one pod per GPU, strict FIFO — so a
// latency-critical query can be head-of-line blocked behind batch jobs.
#pragma once

#include "cluster/scheduler.hpp"
#include "sched/params.hpp"

namespace knots::sched {

class UniformScheduler final : public cluster::Scheduler {
 public:
  explicit UniformScheduler(SchedParams params = {}) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Uniform"; }
  void on_schedule(cluster::SchedulingContext& ctx) override;

 private:
  SchedParams params_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace knots::sched
