#include "sched/peak_prediction.hpp"

#include <algorithm>

#include "cluster/cluster.hpp"
#include "stats/arima.hpp"
#include "stats/autocorrelation.hpp"

namespace knots::sched {

bool PeakPredictionScheduler::forecast_override(
    const cluster::Cluster& cl, const telemetry::GpuView& view,
    double needed_mb) const {
  // A stale series would feed the ARIMA frozen samples: the fit would be
  // confident and wrong. Fall back to CBP's conservative veto.
  if (view.stale) return false;
  cl.aggregator().window_into(view.gpu, telemetry::Metric::kMemUtil, cl.now(),
                              params_.window, window_scratch_);
  const auto& series = window_scratch_;
  if (series.size() < 10) return false;
  ++forecasts_;

  // Eq. 2: no positive autocorrelation → the series carries no
  // forecastable trend; stay conservative.
  const double r1 = stats::autocorrelation(series, 1);
  if (r1 <= params_.min_autocorrelation) return false;

  // Eq. 3: first-order ARIMA forecast of memory utilization, iterated over
  // the forecast horizon (sample spacing = scheduling tick).
  stats::Arima1 model;
  model.fit(series);
  const auto tick = cl.config().tick;
  const auto steps = static_cast<std::size_t>(
      std::max<SimTime>(1, params_.forecast_horizon / std::max<SimTime>(tick, 1)));
  const double pred_util = std::clamp(model.predict_ahead(steps), 0.0, 1.0);
  const double capacity = cl.device(view.gpu).effective_memory_mb();
  const double pred_free = capacity * (1.0 - pred_util);
  const bool ok = pred_free >= needed_mb;
  if (ok) ++granted_;
  return ok;
}

}  // namespace knots::sched
