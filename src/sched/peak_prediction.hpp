// PP — Peak Prediction scheduler (§IV-D, Algorithm 1), layered on CBP.
//
// Where CBP vetoes co-locating positively-correlated pods outright, PP
// probes the node's recent memory series: if the autocorrelation shows a
// forecastable trend (Eq. 2), a first-order ARIMA (Eq. 3) predicts the
// node's utilization one second out; when the predicted free memory covers
// the pod's resized footprint, the co-location is admitted — positively
// correlated pods are safe as long as their peaks interleave.
#pragma once

#include <vector>

#include "sched/cbp.hpp"

namespace knots::sched {

class PeakPredictionScheduler final : public CbpScheduler {
 public:
  explicit PeakPredictionScheduler(SchedParams params = {})
      : CbpScheduler(params, "pp") {}

  [[nodiscard]] std::string name() const override { return "PP"; }

  /// Forecast statistics (observability / tests).
  [[nodiscard]] std::size_t forecasts_made() const noexcept {
    return forecasts_;
  }
  [[nodiscard]] std::size_t overrides_granted() const noexcept {
    return granted_;
  }

 protected:
  [[nodiscard]] bool forecast_override(const cluster::Cluster& cluster,
                                       const telemetry::GpuView& view,
                                       double needed_mb) const override;

 private:
  mutable std::size_t forecasts_ = 0;
  mutable std::size_t granted_ = 0;
  /// Window materialization scratch, reused across candidate GPUs and
  /// ticks — the ARIMA fit needs contiguous doubles, but refilling this
  /// buffer allocates nothing once it has warmed up to the window length.
  mutable std::vector<double> window_scratch_;
};

}  // namespace knots::sched
