// Scheduler factory keyed by policy kind / name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/scheduler.hpp"
#include "sched/params.hpp"

namespace knots::sched {

enum class SchedulerKind { kUniform, kResourceAgnostic, kCbp, kPeakPrediction };

inline constexpr std::array<SchedulerKind, 4> kAllSchedulers = {
    SchedulerKind::kUniform, SchedulerKind::kResourceAgnostic,
    SchedulerKind::kCbp, SchedulerKind::kPeakPrediction};

std::string to_string(SchedulerKind kind);
SchedulerKind scheduler_from_name(const std::string& name);

std::unique_ptr<cluster::Scheduler> make_scheduler(SchedulerKind kind,
                                                   SchedParams params = {});

}  // namespace knots::sched
