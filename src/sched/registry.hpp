// Scheduler factory keyed by policy kind / name.
//
// Two lookup surfaces coexist:
//  - the historical `SchedulerKind` enum for the four pod schedulers, and
//  - a string-keyed factory registry shared by *every* policy family.
// The pod schedulers self-register lazily under their display names
// ("Uniform", "Res-Ag", "CBP", "PP"); other substrates (e.g. the DL
// policies in dlsim/) call register_scheduler() with their own keys and
// become constructible through the same make_scheduler(name) path.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/scheduler.hpp"
#include "sched/params.hpp"

namespace knots::sched {

enum class SchedulerKind { kUniform, kResourceAgnostic, kCbp, kPeakPrediction };

inline constexpr std::array<SchedulerKind, 4> kAllSchedulers = {
    SchedulerKind::kUniform, SchedulerKind::kResourceAgnostic,
    SchedulerKind::kCbp, SchedulerKind::kPeakPrediction};

std::string to_string(SchedulerKind kind);
SchedulerKind scheduler_from_name(const std::string& name);

std::unique_ptr<cluster::Scheduler> make_scheduler(SchedulerKind kind,
                                                   SchedParams params = {});

/// Builds a scheduler instance for `params`.
using SchedulerFactory =
    std::function<std::unique_ptr<cluster::Scheduler>(const SchedParams&)>;

/// Registers (or replaces) a named factory. Thread-safe and idempotent —
/// substrates call this from their entry points rather than relying on
/// static initializers, which static-library linking may drop.
void register_scheduler(const std::string& name, SchedulerFactory factory);

/// True iff `name` resolves to a registered factory (built-ins included).
[[nodiscard]] bool scheduler_registered(const std::string& name);

/// Instantiates the named scheduler; aborts on unknown names (callers that
/// accept external input should check scheduler_registered first).
std::unique_ptr<cluster::Scheduler> make_scheduler(const std::string& name,
                                                   SchedParams params = {});

/// All registered names, sorted; built-in pod schedulers always present.
[[nodiscard]] std::vector<std::string> registered_scheduler_names();

}  // namespace knots::sched
