// Res-Ag: GPU sharing enabled (modified Nvidia k8s-device-plugin) but fully
// agnostic of real-time GPU utilization (§IV-B). Pods are packed first-fit-
// decreasing by their *declared* requests against an overcommitted budget;
// nobody watches actual usage, so coincident peaks cause capacity
// violations, crashes and interference.
#pragma once

#include "cluster/scheduler.hpp"
#include "core/rng.hpp"
#include "sched/params.hpp"

namespace knots::sched {

class ResourceAgnosticScheduler final : public cluster::Scheduler {
 public:
  explicit ResourceAgnosticScheduler(SchedParams params = {},
                                     std::uint64_t seed = 7)
      : params_(params), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "Res-Ag"; }
  void on_schedule(cluster::SchedulingContext& ctx) override;

 private:
  SchedParams params_;
  Rng rng_;
  std::vector<GpuId> feasible_;  ///< Reused per-pod scratch.
};

}  // namespace knots::sched
