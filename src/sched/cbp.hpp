// CBP — Correlation Based Provisioning (§IV-C).
//
// Utilization-aware sharing: batch containers are resized ("harvested") to
// their 80th-percentile footprint using the head node's per-image profiles,
// and pods are only co-located when their memory signatures do NOT
// positively correlate above a threshold — uncorrelated peaks rarely
// coincide, so harvested co-location stays crash-free. Latency-critical
// queries are admitted first, with an SM-headroom guard for QoS.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/pod.hpp"
#include "cluster/profile_store.hpp"
#include "cluster/scheduler.hpp"
#include "gpu/gpu_device.hpp"
#include "sched/params.hpp"
#include "telemetry/aggregator.hpp"

namespace knots::sched {

class CbpScheduler : public cluster::Scheduler {
 public:
  explicit CbpScheduler(SchedParams params = {})
      : CbpScheduler(params, "cbp") {}

  [[nodiscard]] std::string name() const override { return "CBP"; }
  void on_schedule(cluster::SchedulingContext& ctx) override;
  /// CBP/PP consolidate onto active GPUs and let idle ones deep-sleep.
  [[nodiscard]] bool parks_idle_gpus() const override { return true; }

  [[nodiscard]] const SchedParams& params() const noexcept { return params_; }

 protected:
  /// Derived policies (PP) pass their own prefix so traced kDecision
  /// rationales carry the right policy tag.
  CbpScheduler(SchedParams params, const std::string& trace_prefix)
      : params_(params),
        rationale_placed_(trace_prefix + ":best-fit"),
        rationale_woke_(trace_prefix + ":woke-parked"),
        rationale_no_fit_(trace_prefix + ":no-fit"),
        rationale_quota_(trace_prefix + ":tenant-over-quota") {}

  /// PP's hook: may admit a positively-correlated co-location when the
  /// node's forecast says the peaks will not collide. CBP never does.
  [[nodiscard]] virtual bool forecast_override(
      const cluster::Cluster& cluster, const telemetry::GpuView& view,
      double needed_mb) const;

  /// Container size for a pod: percentile of the image's observed footprint
  /// when the image is known, the (conservative) user request otherwise.
  [[nodiscard]] double sizing_mb(const cluster::Cluster& cluster,
                                 const cluster::Pod& pod) const;
  /// Expected SM demand (profiled mean, or the conservative default).
  [[nodiscard]] double sm_estimate(const cluster::Cluster& cluster,
                                   const cluster::Pod& pod) const;
  /// Worst-case SM demand of a resident (profiled peak; 1.0 if unknown).
  [[nodiscard]] double peak_sm_estimate(const cluster::Cluster& cluster,
                                        const cluster::Pod& pod) const;
  /// QoS guard for latency-critical placement: even if every resident hits
  /// its profiled SM peak simultaneously, the query's slowdown must keep it
  /// inside its deadline. This is the utilization-awareness Res-Ag lacks.
  [[nodiscard]] bool lc_peak_safe(const cluster::Cluster& cluster,
                                  const cluster::Pod& pod,
                                  const gpu::GpuDevice& dev) const;
  /// Can_Co-locate: no resident image correlates above the threshold.
  [[nodiscard]] bool correlation_ok(const cluster::Cluster& cluster,
                                    const cluster::Pod& pod,
                                    const gpu::GpuDevice& dev) const;
  /// Harvests over-provisioned running batch containers down to percentile.
  void harvest(cluster::Cluster& cluster);

  /// Memoized ProfileStore::find for a pod's image. A pod's profile key is
  /// immutable and profiles only change when record_run() bumps the store
  /// generation, so the (generation, pointer) pair — misses included — stays
  /// valid until then. Saves a string hash per lookup; CBP asks several
  /// times per pending pod per tick.
  [[nodiscard]] const cluster::ImageProfile* profile_of(
      const cluster::Cluster& cluster, const cluster::Pod& pod) const;

  SchedParams params_;
  std::string rationale_placed_;
  std::string rationale_woke_;
  std::string rationale_no_fit_;
  std::string rationale_quota_;

 private:
  static constexpr std::uint64_t kNeverCached = ~std::uint64_t{0};
  /// Indexed by dense pod id: (store generation at lookup, cached result).
  mutable std::vector<std::pair<std::uint64_t, const cluster::ImageProfile*>>
      profile_cache_;
  /// Scratch for the first-fit-decreasing sort: (sizing_mb, pod).
  std::vector<std::pair<double, PodId>> sized_batch_;
};

}  // namespace knots::sched
