#include "sched/resource_agnostic.hpp"

#include <algorithm>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/trace.hpp"

namespace knots::sched {

void ResourceAgnosticScheduler::on_schedule(cluster::SchedulingContext& ctx) {
  auto& cl = *ctx.cluster;
  // First-fit-decreasing by declared request size.
  std::vector<PodId> order(ctx.pending->begin(), ctx.pending->end());
  std::stable_sort(order.begin(), order.end(), [&](PodId a, PodId b) {
    return cl.pod(a).spec().requested_mb > cl.pod(b).spec().requested_mb;
  });
  for (PodId id : order) {
    const auto& pod = cl.pod(id);
    const double request = pod.spec().requested_mb;
    // The modified device plugin advertises `max_residents` opaque shares
    // per GPU; kube-scheduler sees only share counts. GPU memory is not a
    // Kubernetes resource, so admission is share-count feasibility plus a
    // random pick — fully blind to live utilization and real footprints.
    feasible_.clear();
    // Dense GPU ids: index directly, skipping all_gpus()'s per-call
    // allocation (this loop runs once per pending pod per tick).
    for (std::int32_t g = 0; g < static_cast<std::int32_t>(cl.gpu_count());
         ++g) {
      const GpuId gpu{g};
      if (cl.node_health(cl.node_of_gpu(gpu)) == cluster::NodeHealth::kDown) {
        continue;  // kubelet stopped reporting; the node holds no shares.
      }
      if (cl.device(gpu).totals().residents >= params_.max_residents) continue;
      feasible_.push_back(gpu);
    }
    const auto& feasible = feasible_;
    if (!feasible.empty()) {
      const auto pick = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(feasible.size()) - 1));
      if (cl.place(id, feasible[pick], request) && ctx.trace != nullptr) {
        ctx.trace->record(ctx.now, obs::EventKind::kDecision, id.value,
                          feasible[pick].value, request,
                          "resag:random-feasible");
      }
    } else if (ctx.trace != nullptr) {
      ctx.trace->record(ctx.now, obs::EventKind::kDecision, id.value, -1,
                        request, "resag:no-shares");
    }
  }
}

}  // namespace knots::sched
