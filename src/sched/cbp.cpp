#include "sched/cbp.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/percentile.hpp"
#include "obs/trace.hpp"

namespace knots::sched {

namespace {
constexpr double kMinProvisionMb = 64.0;
constexpr double kResizeHeadroom = 1.05;
}  // namespace

bool CbpScheduler::forecast_override(const cluster::Cluster&,
                                     const telemetry::GpuView&,
                                     double) const {
  return false;
}

const cluster::ImageProfile* CbpScheduler::profile_of(
    const cluster::Cluster& cl, const cluster::Pod& pod) const {
  const auto idx = static_cast<std::size_t>(pod.id().value);
  if (profile_cache_.size() <= idx) {
    profile_cache_.resize(idx + 1, {kNeverCached, nullptr});
  }
  auto& [gen, prof] = profile_cache_[idx];
  const std::uint64_t current = cl.profiles().generation();
  if (gen != current) {
    prof = cl.profiles().find(pod.profile_key());
    gen = current;
  }
  return prof;
}

double CbpScheduler::sizing_mb(const cluster::Cluster& cl,
                               const cluster::Pod& pod) const {
  const auto* prof = profile_of(cl, pod);
  if (prof == nullptr || prof->memory_signature.empty()) {
    // First run of this image: trust the (overstated) user request — for
    // inference pods that is TensorFlow's whole-device earmark, so the
    // first query of a service effectively gets a private GPU.
    return pod.spec().requested_mb;
  }
  // Knots resize: provision for the observed footprint percentile, not the
  // declared claim. Latency-critical pods get their peak (their footprint
  // is flat and small; under-provisioning them buys nothing).
  const double p = pod.latency_critical() ? 100.0 : params_.provision_percentile;
  const double target = percentile_sorted(prof->memory_signature_sorted, p);
  return std::max(kMinProvisionMb, target * kResizeHeadroom);
}

double CbpScheduler::sm_estimate(const cluster::Cluster& cl,
                                 const cluster::Pod& pod) const {
  const auto* prof = profile_of(cl, pod);
  if (prof == nullptr) return params_.unknown_sm_estimate;
  return prof->mean_sm;
}

double CbpScheduler::peak_sm_estimate(const cluster::Cluster& cl,
                                      const cluster::Pod& pod) const {
  const auto* prof = profile_of(cl, pod);
  if (prof == nullptr) return 1.0;
  return prof->peak_sm;
}

bool CbpScheduler::lc_peak_safe(const cluster::Cluster& cl,
                                const cluster::Pod& pod,
                                const gpu::GpuDevice& dev) const {
  double peak_sum = sm_estimate(cl, pod);
  double batch_peak_sum = 0;
  int contexts = 1;
  for (PodId resident : dev.residents()) {
    const auto& res = cl.pod(resident);
    const double peak = peak_sm_estimate(cl, res);
    peak_sum += peak;
    if (!res.latency_critical()) batch_peak_sum += peak;
    ++contexts;
  }
  const double tax =
      1.0 + dev.spec().context_switch_tax * static_cast<double>(contexts - 1);
  // Worst case: every resident at its profiled peak, plus non-preemptive
  // blocking behind the co-resident batch kernels.
  const double worst_slowdown =
      std::max(1.0, peak_sum) * tax *
      (1.0 + cl.config().lc_blocking_tax * batch_peak_sum);
  // Required: queue-free compute time under the worst slowdown fits the
  // deadline with start latency and safety margin.
  const auto& spec = pod.spec();
  const double compute_s = to_seconds(spec.profile.total_duration());
  const double budget_s =
      to_seconds(spec.qos_latency) - to_seconds(cl.config().warm_start);
  return compute_s * worst_slowdown * 1.15 <= budget_s;
}

bool CbpScheduler::correlation_ok(const cluster::Cluster& cl,
                                  const cluster::Pod& pod,
                                  const gpu::GpuDevice& dev) const {
  const std::string& key = pod.profile_key();
  for (PodId resident : dev.residents()) {
    const auto corr = cl.profiles().memory_correlation(
        key, cl.pod(resident).profile_key());
    if (corr.has_value() && *corr > params_.correlation_threshold) {
      return false;
    }
  }
  return true;
}

void CbpScheduler::harvest(cluster::Cluster& cl) {
  // Only occupied devices can host a resize candidate: walk the cluster's
  // occupancy bitmap (set bits ascending — the same device order as the
  // historical dense scan, which visited empty devices for nothing).
  const auto& occupied = cl.occupied_gpu_bits();
  for (std::size_t w = 0; w < occupied.size(); ++w) {
    std::uint64_t bits = occupied[w];
    while (bits != 0) {
      const auto g = static_cast<std::int32_t>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      auto& dev = cl.device(GpuId{g});
      for (PodId id : dev.residents()) {
        const auto& pod = cl.pod(id);
        if (pod.latency_critical()) continue;
        if (pod.state() != cluster::PodState::kRunning) continue;
        const auto* prof = profile_of(cl, pod);
        if (prof == nullptr || prof->memory_signature.empty()) continue;
        const double target =
            std::max(kMinProvisionMb,
                     percentile_sorted(prof->memory_signature_sorted,
                                       params_.provision_percentile) *
                         kResizeHeadroom);
        if (pod.provisioned_mb() > target * kResizeHeadroom) {
          // May fail when current usage sits above the target; retried on a
          // later tick once the pod's demand recedes.
          (void)cl.resize_pod(id, target);
        }
      }
    }
  }
}

void CbpScheduler::on_schedule(cluster::SchedulingContext& ctx) {
  auto& cl = *ctx.cluster;
  harvest(cl);
  if (ctx.pending->empty()) return;

  // Schedule order: latency-critical first (SLO-awareness), then batch pods
  // first-fit-decreasing by their resized footprint (Algorithm 1). Sizes
  // are computed once up front — the comparator would otherwise re-derive
  // them O(n log n) times.
  std::vector<PodId> lc_pods;
  sized_batch_.clear();
  for (PodId id : *ctx.pending) {
    const auto& pod = cl.pod(id);
    if (pod.latency_critical()) {
      lc_pods.push_back(id);
    } else {
      sized_batch_.emplace_back(sizing_mb(cl, pod), id);
    }
  }
  std::stable_sort(sized_batch_.begin(), sized_batch_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<PodId> order = std::move(lc_pods);
  order.reserve(order.size() + sized_batch_.size());
  for (const auto& [size, id] : sized_batch_) order.push_back(id);

  // Spot preference only matters on clusters that actually have spot nodes;
  // elsewhere the single unfiltered walk below is byte-for-byte the
  // historical behaviour.
  const bool spot = cl.has_preemptible_nodes();

  for (PodId id : order) {
    const auto& pod = cl.pod(id);
    const double size = sizing_mb(cl, pod);
    const double sm = sm_estimate(cl, pod);
    const double sm_cap =
        pod.latency_critical() ? params_.sm_cap_lc : params_.sm_cap_batch;

    // Per-tenant quota pre-check: skip pods whose tenant is over budget
    // rather than burning a full node walk on a placement the cluster will
    // refuse anyway (place() re-checks; this is only an efficiency hint).
    if (ctx.tenants != nullptr && !ctx.tenants->admits(pod.spec().tenant, size)) {
      cl.note_quota_rejection(pod.spec().tenant);
      if (ctx.trace != nullptr) {
        ctx.trace->record(ctx.now, obs::EventKind::kDecision, id.value, -1,
                          size, rationale_quota_);
      }
      continue;
    }

    // Algorithm 1's node list: active GPUs ordered by free memory. We walk
    // it best-fit (least free first) so work consolidates onto already-busy
    // GPUs and idle ones can deep-sleep. The list is served from the
    // aggregator's cache (re-sorted only when a view changed); iterate the
    // descending order in reverse instead of copying it. `accept` filters
    // the walk by node class for the spot-preference passes.
    const auto try_views = [&](auto&& accept) -> bool {
      const auto& views = ctx.aggregator->active_sorted_by_free_memory();
      for (auto it = views.rbegin(); it != views.rend(); ++it) {
        const auto& view = *it;
        // Degradation path: a stale view is last-known-good, not current —
        // never place on what might be a ghost; dead nodes host nothing.
        if (view.stale) continue;
        if (!accept(view)) continue;
        if (cl.node_health(view.node) == cluster::NodeHealth::kDown) continue;
        auto& dev = cl.device(view.gpu);
        if (!dev.provision_fits(size)) continue;
        if (dev.totals().sm_demand + sm > sm_cap) continue;
        if (pod.latency_critical()) {
          // QoS guard: deadline must survive even coincident resident peaks.
          if (!lc_peak_safe(cl, pod, dev)) continue;
        } else {
          // Protect resident queries from a batch context moving in.
          bool hosts_lc = false;
          for (PodId resident : dev.residents()) {
            if (cl.pod(resident).latency_critical()) {
              hosts_lc = true;
              break;
            }
          }
          if (hosts_lc) continue;
        }
        if (!correlation_ok(cl, pod, dev) &&
            !forecast_override(cl, view, size)) {
          continue;
        }
        if (cl.place(id, view.gpu, size)) {
          if (ctx.trace != nullptr) {
            ctx.trace->record(ctx.now, obs::EventKind::kDecision, id.value,
                              view.gpu.value, size, rationale_placed_);
          }
          return true;
        }
      }
      return false;
    };

    bool placed = false;
    const bool avoid = pod.spec().avoid_preemptible;
    if (!spot) {
      placed = try_views([](const telemetry::GpuView&) { return true; });
    } else if (avoid) {
      // Hard constraint: SLO-bearing pods never land on spot capacity.
      placed =
          try_views([](const telemetry::GpuView& v) { return !v.preemptible; });
    } else if (!pod.latency_critical() &&
               pod.spec().klass == workload::PodClass::kBatch) {
      // Harvested best-effort work soaks up spot capacity first, keeping
      // on-demand nodes free for SLO-bearing pods; spills over when full.
      placed =
          try_views([](const telemetry::GpuView& v) { return v.preemptible; }) ||
          try_views([](const telemetry::GpuView& v) { return !v.preemptible; });
    } else {
      // Queries and serving replicas prefer stable capacity but may use
      // spot as overflow (unless avoid_preemptible pinned them off it).
      placed =
          try_views([](const telemetry::GpuView& v) { return !v.preemptible; }) ||
          try_views([](const telemetry::GpuView& v) { return v.preemptible; });
    }
    if (placed) continue;

    // No active GPU admits the pod: wake a parked one (leaves deep sleep).
    // The parked bitmap's set bits ascend, matching the historical dense
    // scan's first-parked-fit choice. place() clears the bit it wakes, but
    // the word copy below is already snapshotted and we break on success.
    const auto& parked = cl.parked_gpu_bits();
    for (std::size_t w = 0; w < parked.size() && !placed; ++w) {
      std::uint64_t bits = parked[w];
      while (bits != 0) {
        const GpuId gpu{static_cast<std::int32_t>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)))};
        bits &= bits - 1;
        const NodeId node = cl.node_of_gpu(gpu);
        if (cl.node_health(node) == cluster::NodeHealth::kDown) {
          continue;
        }
        if (spot && avoid && cl.node_spec(node).preemptible) continue;
        if (!cl.device(gpu).provision_fits(size)) continue;
        if (cl.place(id, gpu, size)) {
          placed = true;
          if (ctx.trace != nullptr) {
            ctx.trace->record(ctx.now, obs::EventKind::kDecision, id.value,
                              gpu.value, size, rationale_woke_);
          }
          break;
        }
      }
    }
    if (!placed && ctx.trace != nullptr) {
      ctx.trace->record(ctx.now, obs::EventKind::kDecision, id.value, -1,
                        size, rationale_no_fit_);
    }
  }
}

}  // namespace knots::sched
