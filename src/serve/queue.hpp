// Per-service request queue with dynamic batching.
//
// A batch leaves the queue when it is full (max_batch requests) or when the
// oldest queued request has waited batch_timeout — the standard
// size-or-timeout rule (TF-Serving style). The queue is pure bookkeeping:
// the serving engine decides *when* to poll it (arrival, timeout and
// replica-free events) and where the batch runs.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/types.hpp"

namespace knots::serve {

class ServiceQueue {
 public:
  ServiceQueue(int max_batch, SimTime batch_timeout);

  void push(std::uint32_t request, SimTime arrival);
  /// Re-queues one interrupted request at the front (callers walk a dead
  /// batch in reverse to preserve order). `arrival` is the request's
  /// original arrival, so its timeout ripeness carries over.
  void push_front(std::uint32_t request, SimTime arrival);

  [[nodiscard]] std::size_t depth() const noexcept { return q_.size(); }
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }

  /// True when a batch may dispatch now: full, or the front request has
  /// waited out the batch timeout.
  [[nodiscard]] bool ripe(SimTime now) const noexcept;

  /// When the front request's timeout fires (undefined when empty).
  [[nodiscard]] SimTime front_ready_at() const noexcept;

  /// Pops up to max_batch requests. Call only when ripe().
  [[nodiscard]] std::vector<std::uint32_t> form_batch();

  [[nodiscard]] int max_batch() const noexcept { return max_batch_; }
  [[nodiscard]] SimTime batch_timeout() const noexcept { return timeout_; }

 private:
  struct Entry {
    std::uint32_t request;
    SimTime arrival;
  };
  std::deque<Entry> q_;
  int max_batch_;
  SimTime timeout_;
};

}  // namespace knots::serve
