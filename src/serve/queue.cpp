#include "serve/queue.hpp"

#include "core/check.hpp"

namespace knots::serve {

ServiceQueue::ServiceQueue(int max_batch, SimTime batch_timeout)
    : max_batch_(max_batch), timeout_(batch_timeout) {
  KNOTS_CHECK(max_batch >= 1);
  KNOTS_CHECK(batch_timeout >= 0);
}

void ServiceQueue::push(std::uint32_t request, SimTime arrival) {
  q_.push_back(Entry{request, arrival});
}

void ServiceQueue::push_front(std::uint32_t request, SimTime arrival) {
  q_.push_front(Entry{request, arrival});
}

bool ServiceQueue::ripe(SimTime now) const noexcept {
  if (q_.empty()) return false;
  if (q_.size() >= static_cast<std::size_t>(max_batch_)) return true;
  return now >= front_ready_at();
}

SimTime ServiceQueue::front_ready_at() const noexcept {
  return q_.front().arrival + timeout_;
}

std::vector<std::uint32_t> ServiceQueue::form_batch() {
  KNOTS_CHECK(!q_.empty());
  std::vector<std::uint32_t> batch;
  const auto n = std::min<std::size_t>(q_.size(),
                                       static_cast<std::size_t>(max_batch_));
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(q_.front().request);
    q_.pop_front();
  }
  return batch;
}

}  // namespace knots::serve
