// SLO-aware admission control.
//
// At arrival time the controller predicts when the request would complete,
// given the queue depth ahead of it, the usable replica count and the
// batch service time, and compares the prediction against the request's
// deadline. Three policies:
//   kQueue   — admit everything (open-loop stress; deadline misses land as
//              SLO violations instead of sheds).
//   kShed    — reject when the prediction misses the deadline (fail fast:
//              the client re-resolves to another region).
//   kDegrade — when the full-quality prediction misses, re-predict with the
//              degraded model's service time; admit degraded if that fits,
//              shed only if even the degraded path cannot make it.
//
// The admission invariant — every admitted request's predicted completion
// is at or before its deadline (kShed/kDegrade) — is enforced here by
// construction and property-tested in tests/serve/test_admission.cpp.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "core/types.hpp"

namespace knots::serve {

enum class AdmissionPolicy : std::uint8_t { kQueue, kShed, kDegrade };

[[nodiscard]] constexpr std::string_view to_string(
    AdmissionPolicy p) noexcept {
  switch (p) {
    case AdmissionPolicy::kQueue: return "queue";
    case AdmissionPolicy::kShed: return "shed";
    case AdmissionPolicy::kDegrade: return "degrade";
  }
  return "unknown";
}

struct AdmissionDecision {
  bool admit = true;
  bool degrade = false;
  /// Predicted completion time (kMaxPrediction when no replica is usable).
  SimTime predicted_completion = 0;
};

inline constexpr SimTime kMaxPrediction =
    std::numeric_limits<SimTime>::max() / 2;

class AdmissionController {
 public:
  AdmissionController(AdmissionPolicy policy, double degrade_latency_scale);

  /// Predicts completion for a request joining a queue of `queue_depth`
  /// with `replicas` usable servers, each serving batches of up to
  /// `max_batch` in `batch_latency`. The request waits at most
  /// `batch_timeout` for its batch to form, then `rounds` full service
  /// times, where rounds counts the batches ahead of it round-robined
  /// across replicas.
  [[nodiscard]] static SimTime predict(SimTime now, std::size_t queue_depth,
                                       int replicas, int max_batch,
                                       SimTime batch_timeout,
                                       SimTime batch_latency);

  /// Applies the policy. `deadline` is absolute (arrival + SLO).
  [[nodiscard]] AdmissionDecision assess(SimTime now, SimTime deadline,
                                         std::size_t queue_depth,
                                         int replicas, int max_batch,
                                         SimTime batch_timeout,
                                         SimTime batch_latency) const;

  [[nodiscard]] AdmissionPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] double degrade_latency_scale() const noexcept {
    return degrade_scale_;
  }

 private:
  AdmissionPolicy policy_;
  double degrade_scale_;
};

}  // namespace knots::serve
