// knots::serve — open-loop, request-driven inference serving on the
// simulated GPU cluster (ROADMAP item 3).
//
// A ServingConfig describes per-service traffic (an ArrivalProcess shape +
// mean QPS), dynamic-batching knobs, an SLO with an admission policy, and
// autoscaling bounds, layered over an ordinary ExperimentConfig whose batch
// workload keeps the cluster busy underneath (the harvest substrate).
// run_serving() wires the serving engine onto the cluster's event loop and
// returns a ServingReport: per-service and aggregate tail latency
// (p50/p99/p999 over the *full* request population), admission and
// autoscaler activity, plus the usual cluster-side ExperimentReport and an
// order-sensitive serve digest — identical (config, seed) runs are
// bit-identical at any lane count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "knots/experiment.hpp"
#include "serve/admission.hpp"
#include "serve/request.hpp"
#include "workload/arrival.hpp"
#include "workload/djinn_tonic.hpp"

namespace knots::serve {

/// Which ArrivalProcess shape drives a serving run.
enum class ArrivalShape : std::uint8_t {
  kPoisson,
  kDiurnal,
  kFlashCrowd,
  kTrace,
};

[[nodiscard]] std::string_view to_string(ArrivalShape s) noexcept;

/// Shape parameters shared by every service in the run (each service still
/// draws its own independent arrival stream off Rng::fork_at).
struct ArrivalShapeConfig {
  ArrivalShape shape = ArrivalShape::kPoisson;
  double diurnal_amplitude = 0.4;  ///< kDiurnal: rate swing fraction.
  int diurnal_peaks = 2;           ///< kDiurnal: peaks in the window.
  double spike_multiplier = 5.0;   ///< kFlashCrowd: rate multiple in spike.
  double spike_start_frac = 0.5;   ///< kFlashCrowd: spike start / window.
  double spike_length_frac = 0.1;  ///< kFlashCrowd: spike length / window.
  std::vector<SimTime> trace;      ///< kTrace: replayed verbatim.
};

/// One deployed inference service.
struct ServiceConfig {
  workload::Service service = workload::Service::kImc;
  double qps = 100.0;                  ///< Mean offered rate.
  int max_batch = 16;                  ///< Dynamic-batching ceiling.
  SimTime batch_timeout = 10 * kMsec;  ///< Size-or-timeout window.
  SimTime slo = 150 * kMsec;           ///< Relative deadline per request.
  int min_replicas = 1;
  int max_replicas = 8;
  /// Replica container request = warm-model footprint × this headroom
  /// (Knots right-sizing; replicas never use stock-TF greedy earmarks).
  double replica_memory_headroom = 1.1;
  /// Degraded-model service time as a fraction of the full model's.
  double degrade_latency_scale = 0.35;
  /// Owning tenant: replicas are charged to this tenant's quota (0 = the
  /// default tenant; the ledger stays inactive without quotas).
  int tenant = 0;
};

struct ServingConfig {
  /// Cluster topology, scheduler, seed, fault plan and the *batch* side of
  /// the mix workload (its latency-critical query pods are replaced by the
  /// request stream below).
  ExperimentConfig experiment;
  std::vector<ServiceConfig> services;
  ArrivalShapeConfig arrivals;
  SimTime window = 60 * kSec;  ///< Request-arrival window.
  AdmissionPolicy admission = AdmissionPolicy::kShed;
  bool autoscale = true;
  SimTime autoscale_period = 2 * kSec;
  double autoscale_target_utilization = 0.7;
  double autoscale_ewma_alpha = 0.3;
  /// Run the experiment mix's batch pods underneath the serving traffic
  /// (the capacity being harvested). Off = serving-only cluster.
  bool background_batch = true;
};

/// Default three-service deployment (face / imc / key) at the given
/// aggregate QPS, split 50/30/20.
ServingConfig default_serving(double total_qps, ArrivalShape shape,
                              sched::SchedulerKind scheduler =
                                  sched::SchedulerKind::kPeakPrediction);

/// Latency percentiles over the full served population, milliseconds.
struct LatencyStats {
  double p50_ms = 0, p99_ms = 0, p999_ms = 0, max_ms = 0, mean_ms = 0;
};

struct ServiceStats {
  std::string service;
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;
  std::size_t completed = 0;  ///< Served at full quality.
  std::size_t degraded = 0;   ///< Served by the degraded path.
  std::size_t slo_violations = 0;  ///< Served past the deadline.
  LatencyStats latency;
  double achieved_qps = 0;  ///< Served requests / window.
  int peak_replicas = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
};

struct ServingReport {
  ExperimentReport experiment;  ///< Cluster-side report (digest et al.).
  std::vector<ServiceStats> services;

  // Aggregates over all services.
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;
  std::size_t completed = 0;
  std::size_t degraded = 0;
  std::size_t slo_violations = 0;
  LatencyStats latency;
  double offered_qps = 0;
  double achieved_qps = 0;

  std::size_t batches = 0;
  double mean_batch_fill = 0;  ///< Mean batch size / max_batch.
  std::size_t replicas_launched = 0;
  std::size_t replicas_retired = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;

  /// Order-sensitive FNV-1a digest over every request-level event and
  /// scale decision. Identical (config, seed) serving runs — at any lane
  /// count — produce identical values.
  std::uint64_t serve_digest = 0;
};

/// Runs the serving scenario to completion (single-threaded,
/// deterministic).
ServingReport run_serving(const ServingConfig& config);

/// run_serving with tracing/metrics attached for the run's duration.
/// Attachments are purely observational: digests are bit-identical to the
/// unobserved run.
ServingReport run_serving(const ServingConfig& config,
                          const RunObservability& observability);

}  // namespace knots::serve
