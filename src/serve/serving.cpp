#include "serve/serving.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/check.hpp"
#include "serve/engine.hpp"
#include "verify/invariant_checker.hpp"
#include "verify/run_digest.hpp"
#include "workload/app_mix.hpp"

namespace knots::serve {

std::string_view to_string(ArrivalShape s) noexcept {
  switch (s) {
    case ArrivalShape::kPoisson:
      return "poisson";
    case ArrivalShape::kDiurnal:
      return "diurnal";
    case ArrivalShape::kFlashCrowd:
      return "flash-crowd";
    case ArrivalShape::kTrace:
      return "trace";
  }
  return "unknown";
}

ServingConfig default_serving(double total_qps, ArrivalShape shape,
                              sched::SchedulerKind scheduler) {
  ServingConfig cfg;
  cfg.experiment = ExperimentConfig::Builder{}.scheduler(scheduler).build();
  cfg.arrivals.shape = shape;
  // Three representative DjiNN&Tonic services at a 50/30/20 traffic split:
  // imc (vision CNN), face (DNN frontend), key (speech keyword spotting).
  ServiceConfig imc;
  imc.service = workload::Service::kImc;
  imc.qps = total_qps * 0.5;
  ServiceConfig face;
  face.service = workload::Service::kFace;
  face.qps = total_qps * 0.3;
  ServiceConfig key;
  key.service = workload::Service::kKey;
  key.qps = total_qps * 0.2;
  cfg.services = {imc, face, key};
  return cfg;
}

namespace {

ServingReport run_serving_impl(const ServingConfig& config,
                               const RunObservability* observability) {
  const ExperimentConfig& exp = config.experiment;
  auto scheduler = sched::make_scheduler(exp.scheduler, exp.sched_params);

  cluster::ClusterConfig cluster_cfg = exp.cluster;
  cluster_cfg.seed = exp.seed;
  cluster::Cluster cluster(cluster_cfg, *scheduler);
  cluster.set_fault_plan(exp.faults);

  // Same invariant posture as KubeKnots: only the blind Res-Ag baseline may
  // overcommit declared requests past device capacity.
  verify::InvariantOptions inv_opts;
  inv_opts.provision_ceiling_ratio =
      exp.scheduler == sched::SchedulerKind::kResourceAgnostic ? 0.0 : 1.0;
  verify::InvariantChecker verifier(inv_opts);
  verify::RunDigest cluster_digest;
  cluster.add_observer(&verifier);
  cluster.add_observer(&cluster_digest);

  if (observability != nullptr) {
    cluster.set_trace_sink(observability->trace);
    cluster.set_metrics_registry(observability->metrics);
  }

  // Background batch pods: the harvestable substrate. The mix's own
  // latency-critical query pods are dropped — the request stream below *is*
  // the latency-critical load.
  std::vector<workload::PodSpec> pods;
  if (config.background_batch) {
    workload::LoadGenConfig wl = exp.workload;
    wl.duration = config.window;
    wl.device_memory_mb = exp.cluster.node_spec.gpu.memory_mb;
    auto mixed = workload::generate_workload(workload::app_mix(exp.mix_id),
                                             wl, Rng(exp.seed));
    for (auto& p : mixed) {
      if (p.klass == workload::PodClass::kBatch) pods.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < pods.size(); ++i) {
      pods[i].id = PodId{static_cast<std::int32_t>(i)};
    }
  }
  cluster.load(std::move(pods));

  ServingEngine engine(cluster, config, Rng(exp.seed).fork(0x53525645));
  if (observability != nullptr) {
    engine.set_trace_sink(observability->trace);
    if (observability->metrics != nullptr) {
      engine.set_metrics_registry(observability->metrics);
    }
  }
  engine.prime();
  cluster.run();

  ServingReport report;
  report.experiment =
      build_report(cluster, scheduler->name(), exp.mix_id);
  report.experiment.run_digest = cluster_digest.value();
  report.experiment.invariant_checks = verifier.checks_run();
  report.experiment.invariant_violations = verifier.violation_count();
  for (const auto& v : verifier.violations()) {
    report.experiment.invariant_messages.push_back(v.category + ": " +
                                                   v.message);
  }
  engine.fill_report(report);
  return report;
}

}  // namespace

ServingReport run_serving(const ServingConfig& config) {
  return run_serving_impl(config, nullptr);
}

ServingReport run_serving(const ServingConfig& config,
                          const RunObservability& observability) {
  return run_serving_impl(config, &observability);
}

}  // namespace knots::serve
