// Harvest-aware replica autoscaler (decision model).
//
// KIS-S-style simulator/autoscaler split: this class is the pure decision
// half — an EWMA arrival-rate tracker and a capacity model mapping rate to
// a target replica count — while the serving engine applies the decision
// through the cluster control plane (submit_pod / finish_pod), where the
// *existing* scheduler places replicas into harvested batch capacity.
//
//   per-replica throughput = max_batch / batch_latency
//   target = ceil(ewma_qps / (throughput * target_utilization))
//   clamped to [min_replicas, max_replicas]
//
// Running replicas below target_utilization of their batch capacity are
// headroom for bursts; the clamp keeps flash crowds from unbounded
// scale-out.
#pragma once

#include <cstddef>

#include "core/types.hpp"

namespace knots::serve {

class AutoscalerModel {
 public:
  AutoscalerModel(double target_utilization, double ewma_alpha,
                  int min_replicas, int max_replicas, int max_batch,
                  SimTime batch_latency);

  /// Feeds one period's arrival count; returns the new target replica
  /// count. The first period seeds the EWMA directly. When the caller has
  /// a live estimate of what one replica actually sustains (observed fill /
  /// observed contended batch time), it passes it as
  /// `observed_throughput_qps`; non-positive falls back to the nominal
  /// replica_throughput_qps().
  int update(std::size_t arrivals_in_period, SimTime period,
             double observed_throughput_qps = -1.0);

  /// Current smoothed arrival-rate estimate, requests/sec.
  [[nodiscard]] double rate_qps() const noexcept {
    return ewma_qps_ < 0 ? 0.0 : ewma_qps_;
  }
  [[nodiscard]] int min_replicas() const noexcept { return min_replicas_; }
  [[nodiscard]] int max_replicas() const noexcept { return max_replicas_; }
  /// Requests/sec one replica sustains at full batches.
  [[nodiscard]] double replica_throughput_qps() const noexcept;

 private:
  double target_util_;
  double alpha_;
  int min_replicas_;
  int max_replicas_;
  int max_batch_;
  SimTime batch_latency_;
  double ewma_qps_ = -1.0;  ///< <0 = unseeded.
};

}  // namespace knots::serve
