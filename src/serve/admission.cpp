#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots::serve {

AdmissionController::AdmissionController(AdmissionPolicy policy,
                                         double degrade_latency_scale)
    : policy_(policy), degrade_scale_(degrade_latency_scale) {
  KNOTS_CHECK(degrade_latency_scale > 0.0 && degrade_latency_scale <= 1.0);
}

SimTime AdmissionController::predict(SimTime now, std::size_t queue_depth,
                                     int replicas, int max_batch,
                                     SimTime batch_timeout,
                                     SimTime batch_latency) {
  if (replicas <= 0) return kMaxPrediction;
  KNOTS_CHECK(max_batch >= 1);
  // The request joins the (queue_depth / max_batch + 1)-th batch; batches
  // round-robin across replicas.
  const auto batches_ahead =
      static_cast<std::int64_t>(queue_depth / static_cast<std::size_t>(max_batch)) + 1;
  const auto rounds =
      (batches_ahead + replicas - 1) / static_cast<std::int64_t>(replicas);
  return now + batch_timeout + rounds * batch_latency;
}

AdmissionDecision AdmissionController::assess(SimTime now, SimTime deadline,
                                              std::size_t queue_depth,
                                              int replicas, int max_batch,
                                              SimTime batch_timeout,
                                              SimTime batch_latency) const {
  AdmissionDecision d;
  d.predicted_completion = predict(now, queue_depth, replicas, max_batch,
                                   batch_timeout, batch_latency);
  if (policy_ == AdmissionPolicy::kQueue) return d;  // always admit
  if (d.predicted_completion <= deadline) return d;

  if (policy_ == AdmissionPolicy::kDegrade) {
    const auto degraded_latency = static_cast<SimTime>(
        std::max(1.0, static_cast<double>(batch_latency) * degrade_scale_));
    const SimTime degraded_prediction = predict(
        now, queue_depth, replicas, max_batch, batch_timeout, degraded_latency);
    if (degraded_prediction <= deadline) {
      d.degrade = true;
      d.predicted_completion = degraded_prediction;
      return d;
    }
  }
  d.admit = false;
  return d;
}

}  // namespace knots::serve
