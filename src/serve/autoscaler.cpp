#include "serve/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots::serve {

AutoscalerModel::AutoscalerModel(double target_utilization, double ewma_alpha,
                                 int min_replicas, int max_replicas,
                                 int max_batch, SimTime batch_latency)
    : target_util_(target_utilization),
      alpha_(ewma_alpha),
      min_replicas_(min_replicas),
      max_replicas_(max_replicas),
      max_batch_(max_batch),
      batch_latency_(batch_latency) {
  KNOTS_CHECK(target_utilization > 0.0 && target_utilization <= 1.0);
  KNOTS_CHECK(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
  KNOTS_CHECK(min_replicas >= 0);
  KNOTS_CHECK(max_replicas >= min_replicas);
  KNOTS_CHECK(max_batch >= 1);
  KNOTS_CHECK(batch_latency > 0);
}

double AutoscalerModel::replica_throughput_qps() const noexcept {
  return static_cast<double>(max_batch_) * 1e6 /
         static_cast<double>(batch_latency_);
}

int AutoscalerModel::update(std::size_t arrivals_in_period, SimTime period,
                            double observed_throughput_qps) {
  KNOTS_CHECK(period > 0);
  const double observed = static_cast<double>(arrivals_in_period) * 1e6 /
                          static_cast<double>(period);
  ewma_qps_ = ewma_qps_ < 0 ? observed
                            : alpha_ * observed + (1.0 - alpha_) * ewma_qps_;
  const double throughput = observed_throughput_qps > 0.0
                                ? observed_throughput_qps
                                : replica_throughput_qps();
  const double capacity_per_replica = throughput * target_util_;
  const int demanded = static_cast<int>(
      std::ceil(ewma_qps_ / std::max(capacity_per_replica, 1e-9)));
  return std::clamp(demanded, min_replicas_, max_replicas_);
}

}  // namespace knots::serve
