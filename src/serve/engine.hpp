// The serving engine: open-loop request processing on the cluster's event
// loop.
//
// One engine drives every configured service: it pre-generates each
// service's arrival stream (seeded off Rng::fork_at, so streams are
// independent of each other and of lane count), runs admission control at
// every arrival, forms dynamic batches (size-or-timeout), dispatches them
// to warm serving replicas — cluster pods of PodClass::kService placed by
// the *existing* scheduler into harvested capacity — and applies the
// autoscaler's decisions through the cluster control plane
// (submit_pod / finish_pod).
//
// Batch service time is physical: the service's uncontended AppProfile
// latency at the formed batch size, scaled by the replica GPU's live
// slowdown and the non-preemptive blocking tax of co-resident batch SM
// demand (the same contention model the cluster applies to
// latency-critical pods). Crash-storm fault plans therefore hit serving
// tails exactly the way they hit query pods; a replica that dies mid-batch
// re-queues its requests at the front.
//
// Everything the engine does happens in serial event context — request
// events never run inside the lane-parallel tick — so serving runs are
// bit-identical across lane counts. Every request-level event and scale
// decision folds into an order-sensitive serve digest.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "serve/admission.hpp"
#include "serve/autoscaler.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/serving.hpp"
#include "verify/run_digest.hpp"

namespace knots::serve {

class ServingEngine {
 public:
  /// `cluster` must be loaded (Cluster::load) but not yet run.
  ServingEngine(cluster::Cluster& cluster, const ServingConfig& config,
                Rng rng);

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Attach tracing/metrics (borrowed, optional, pre-prime). Purely
  /// observational.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_ = sink; }
  void set_metrics_registry(obs::MetricsRegistry* registry);

  /// Generates arrival streams, launches the initial replica sets and
  /// schedules every serving event. Call after Cluster::load and before
  /// Cluster::run.
  void prime();

  // ---- Post-run inspection ----
  [[nodiscard]] const std::vector<Request>& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] std::uint64_t serve_digest() const noexcept {
    return digest_.value();
  }

  /// Distils per-service and aggregate serving stats into the report
  /// (everything except the cluster-side ExperimentReport).
  void fill_report(ServingReport& report) const;

 private:
  struct Replica {
    PodId pod{};
    bool busy = false;
    bool retiring = false;  ///< finish_pod() already succeeded.
  };

  struct ServiceState {
    ServiceConfig cfg;
    ServiceQueue full_queue;
    ServiceQueue degraded_queue;
    AutoscalerModel autoscaler;
    SimTime batch_latency = 0;  ///< Uncontended, at max_batch.
    /// Effective deadline: max(cfg.slo, §V-B floor) — same rule query pods
    /// get from ServiceSpec::qos_target.
    SimTime effective_slo = 0;
    /// Observed (contended) full-quality batch service time, EWMA-smoothed;
    /// seeded with the uncontended latency. Feeds admission prediction.
    double ewma_batch_us = 0;
    /// Observed formed-batch size, EWMA-smoothed; seeded with max_batch.
    /// Together with ewma_batch_us this is the *effective* per-replica
    /// throughput the autoscaler provisions against.
    double ewma_fill = 0;
    std::vector<Replica> replicas;
    std::size_t arrivals_since_scale = 0;

    // Tallies (requests_ holds per-request ground truth; these avoid a
    // rescan for counters that are not derivable from it).
    std::size_t launched = 0;
    std::size_t retired = 0;
    std::size_t scale_ups = 0;
    std::size_t scale_downs = 0;
    int peak_replicas = 0;
    std::size_t batches = 0;
    std::size_t batched_requests = 0;
  };

  void on_arrival(std::uint32_t request_index);
  /// Dispatches every ripe batch the service's idle replicas can absorb.
  void try_dispatch(std::size_t service);
  void on_batch_done(std::size_t service, std::size_t replica_index,
                     std::vector<std::uint32_t> batch, bool degraded_batch,
                     SimTime dispatched_at);
  void autoscale_round(SimTime now);
  /// Per-tick pump: re-polls queues (replicas may have relaunched after a
  /// crash with no other wake-up event) and, past the window end, tears
  /// the deployment down once queues drain. Returns false to stop.
  bool pump(SimTime now);

  PodId launch_replica(std::size_t service);
  /// Container request of one replica of this service (what a scale-up
  /// would charge to the tenant's quota).
  [[nodiscard]] double replica_request_mb(std::size_t service) const;
  /// Retires up to `count` idle running replicas, newest first. Returns
  /// how many were actually retired.
  int retire_replicas(std::size_t service, int count, bool scale_down_event);
  [[nodiscard]] int usable_replicas(const ServiceState& s) const;
  [[nodiscard]] int alive_replicas(const ServiceState& s) const;
  /// Live co-location slowdown of the replica's GPU (1.0 when not running).
  [[nodiscard]] double contention_factor(PodId pod) const;
  void record_served(Request& r, SimTime now, bool degraded);
  void update_gauges();

  cluster::Cluster& cluster_;
  sim::Simulation& sim_;
  ServingConfig config_;
  Rng rng_;
  std::vector<ServiceState> services_;
  std::vector<Request> requests_;
  verify::RunDigest digest_;
  SimTime window_ = 0;
  SimTime replica_lifetime_ = 0;
  SimTime teardown_deadline_ = 0;
  bool primed_ = false;

  // Observability (optional; never feeds back into decisions).
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* offered_counter_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;
  obs::Counter* served_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Gauge* replicas_gauge_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace knots::serve
