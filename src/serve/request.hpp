// One user-facing inference request in the open-loop serving engine.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/types.hpp"

namespace knots::serve {

/// Terminal fate of a request.
enum class RequestOutcome : std::uint8_t {
  kPending = 0,  ///< Still queued or in flight.
  kCompleted,    ///< Served at full quality.
  kDegraded,     ///< Served by the degraded (distilled) model path.
  kShed,         ///< Rejected at admission (predicted deadline miss).
  kExpired,      ///< Dropped at dispatch: its deadline had already passed.
};

[[nodiscard]] constexpr std::string_view to_string(
    RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kPending: return "pending";
    case RequestOutcome::kCompleted: return "completed";
    case RequestOutcome::kDegraded: return "degraded";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kExpired: return "expired";
  }
  return "unknown";
}

struct Request {
  std::uint32_t id = 0;
  std::uint16_t service = 0;  ///< Index into ServingConfig::services.
  SimTime arrival = 0;
  SimTime deadline = 0;       ///< arrival + SLO.
  SimTime completion = -1;    ///< Set when served.
  RequestOutcome outcome = RequestOutcome::kPending;
  std::uint8_t retries = 0;   ///< Re-dispatches after a replica died mid-batch.

  [[nodiscard]] bool served() const noexcept {
    return outcome == RequestOutcome::kCompleted ||
           outcome == RequestOutcome::kDegraded;
  }
  [[nodiscard]] SimTime latency() const noexcept {
    return completion - arrival;
  }
};

}  // namespace knots::serve
