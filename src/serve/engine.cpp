#include "serve/engine.hpp"

#include <algorithm>
#include <string>

#include "core/check.hpp"
#include "core/percentile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"
#include "workload/workload_spec.hpp"

namespace knots::serve {

namespace {

// Serve-digest record tags (disjoint from verify::RunDigest::Tag, which
// covers cluster lifecycle records 0x01–0x09).
constexpr std::uint64_t kDigestArrive = 0xA1;
constexpr std::uint64_t kDigestShed = 0xA2;
constexpr std::uint64_t kDigestExpire = 0xA3;
constexpr std::uint64_t kDigestDispatch = 0xA4;
constexpr std::uint64_t kDigestDone = 0xA5;
constexpr std::uint64_t kDigestRetry = 0xA6;
constexpr std::uint64_t kDigestScaleUp = 0xA7;
constexpr std::uint64_t kDigestScaleDown = 0xA8;

/// Arrival-stream fork family: service s draws stream kArrivalStream + s.
constexpr std::uint64_t kArrivalStreamBase = 0x5E00;

std::unique_ptr<workload::ArrivalProcess> make_process(
    const ServingConfig& config, const ServiceConfig& svc) {
  const auto& a = config.arrivals;
  switch (a.shape) {
    case ArrivalShape::kPoisson:
      return std::make_unique<workload::PoissonArrivals>(svc.qps);
    case ArrivalShape::kDiurnal:
      return std::make_unique<workload::DiurnalArrivals>(
          svc.qps, a.diurnal_amplitude, a.diurnal_peaks);
    case ArrivalShape::kFlashCrowd: {
      const auto spike_at = static_cast<SimTime>(
          static_cast<double>(config.window) * a.spike_start_frac);
      const auto spike_len = static_cast<SimTime>(
          static_cast<double>(config.window) * a.spike_length_frac);
      return std::make_unique<workload::FlashCrowdArrivals>(
          svc.qps, a.spike_multiplier, spike_at, spike_len);
    }
    case ArrivalShape::kTrace:
      return std::make_unique<workload::TraceArrivals>(a.trace);
  }
  return std::make_unique<workload::PoissonArrivals>(svc.qps);
}

}  // namespace

ServingEngine::ServingEngine(cluster::Cluster& cluster,
                             const ServingConfig& config, Rng rng)
    : cluster_(cluster),
      sim_(cluster.engine()),
      config_(config),
      rng_(rng),
      window_(config.window) {
  KNOTS_CHECK_MSG(!config_.services.empty(),
                  "serving config needs at least one service");
  KNOTS_CHECK(window_ > 0);
  // Replicas outlive the window by the full drain grace; teardown retires
  // them long before the profile runs out.
  replica_lifetime_ = window_ + cluster_.config().drain_grace;
  teardown_deadline_ = window_ + cluster_.config().drain_grace;
  services_.reserve(config_.services.size());
  for (const ServiceConfig& svc : config_.services) {
    KNOTS_CHECK(svc.qps >= 0.0);
    KNOTS_CHECK(svc.slo > 0);
    const SimTime batch_latency =
        workload::inference_latency(svc.service, svc.max_batch);
    ServiceState state{
        svc,
        ServiceQueue(svc.max_batch, svc.batch_timeout),
        ServiceQueue(svc.max_batch, svc.batch_timeout),
        AutoscalerModel(config_.autoscale_target_utilization,
                        config_.autoscale_ewma_alpha, svc.min_replicas,
                        svc.max_replicas, svc.max_batch, batch_latency)};
    state.batch_latency = batch_latency;
    // §V-B floor: heavyweight services get a proportional SLO rather than
    // an unmeetable one (identical to ServiceSpec::qos_target for queries).
    state.effective_slo =
        std::max(svc.slo, 3 * batch_latency / 2 + 30 * kMsec);
    state.ewma_batch_us = static_cast<double>(batch_latency);
    state.ewma_fill = static_cast<double>(svc.max_batch);
    services_.push_back(std::move(state));
  }
}

void ServingEngine::set_metrics_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) return;
  offered_counter_ = &registry->counter("serve.requests_offered");
  admitted_counter_ = &registry->counter("serve.requests_admitted");
  shed_counter_ = &registry->counter("serve.requests_shed");
  expired_counter_ = &registry->counter("serve.requests_expired");
  served_counter_ = &registry->counter("serve.requests_served");
  degraded_counter_ = &registry->counter("serve.requests_degraded");
  batches_counter_ = &registry->counter("serve.batches_dispatched");
  replicas_gauge_ = &registry->gauge("serve.replicas");
  queue_gauge_ = &registry->gauge("serve.queue_depth");
  latency_hist_ = &registry->histogram("serve.latency_ms");
}

void ServingEngine::prime() {
  KNOTS_CHECK_MSG(!primed_, "ServingEngine::prime() is single-shot");
  primed_ = true;

  // Arrival streams: one independent fork per service, pre-generated so the
  // stream depends only on (config, seed).
  for (std::size_t s = 0; s < services_.size(); ++s) {
    const auto process = make_process(config_, services_[s].cfg);
    const auto arrivals =
        process->generate(window_, rng_.fork_at(kArrivalStreamBase, s));
    for (const SimTime t : arrivals) {
      const auto idx = static_cast<std::uint32_t>(requests_.size());
      Request r;
      r.id = idx;
      r.service = static_cast<std::uint16_t>(s);
      r.arrival = t;
      r.deadline = t + services_[s].effective_slo;
      requests_.push_back(r);
      sim_.schedule_at(t, [this, idx] { on_arrival(idx); });
    }
  }

  // Initial replica sets (arrival 0; the scheduler places them at the
  // first tick like any other pending pod).
  for (std::size_t s = 0; s < services_.size(); ++s) {
    for (int i = 0; i < services_[s].cfg.min_replicas; ++i) {
      launch_replica(s);
    }
    services_[s].peak_replicas = alive_replicas(services_[s]);
  }

  // Autoscaler cadence (stops at the window end; teardown owns the tail).
  if (config_.autoscale) {
    sim::schedule_periodic(sim_, config_.autoscale_period,
                           config_.autoscale_period, [this](SimTime now) {
                             autoscale_round(now);
                             return now < window_;
                           });
  }

  // Pump cadence: one serial poll per cluster tick.
  const SimTime tick = cluster_.config().tick;
  sim::schedule_periodic(sim_, tick, tick,
                         [this](SimTime now) { return pump(now); });
}

int ServingEngine::usable_replicas(const ServiceState& s) const {
  int n = 0;
  for (const Replica& r : s.replicas) {
    if (r.retiring) continue;
    const auto state = cluster_.pod(r.pod).state();
    if (state == cluster::PodState::kStarting ||
        state == cluster::PodState::kRunning) {
      ++n;
    }
  }
  return n;
}

int ServingEngine::alive_replicas(const ServiceState& s) const {
  int n = 0;
  for (const Replica& r : s.replicas) {
    if (r.retiring) continue;
    if (cluster_.pod(r.pod).state() != cluster::PodState::kCompleted) ++n;
  }
  return n;
}

double ServingEngine::contention_factor(PodId pod) const {
  const cluster::Pod& p = cluster_.pod(pod);
  if (p.state() != cluster::PodState::kRunning) return 1.0;
  const auto& dev = cluster_.device(p.gpu());
  const auto totals = dev.totals();
  const double own_sm = p.current_usage().sm;
  const double co_sm = std::max(0.0, totals.sm_util - own_sm);
  // Same non-preemptive blocking model the cluster applies to LC pods.
  return dev.slowdown() *
         (1.0 + cluster_.config().lc_blocking_tax * co_sm);
}

void ServingEngine::on_arrival(std::uint32_t request_index) {
  Request& r = requests_[request_index];
  const auto s_idx = static_cast<std::size_t>(r.service);
  ServiceState& s = services_[s_idx];
  const SimTime now = sim_.now();

  digest_.mix_u64(kDigestArrive);
  digest_.mix_u64(static_cast<std::uint64_t>(now));
  digest_.mix_u64(r.id);
  digest_.mix_u64(r.service);
  if (trace_ != nullptr) {
    trace_->record(now, obs::EventKind::kRequestArrive,
                   static_cast<std::int32_t>(r.id),
                   static_cast<std::int32_t>(s_idx));
  }
  if (offered_counter_ != nullptr) offered_counter_->inc();
  ++s.arrivals_since_scale;

  const AdmissionController admission(config_.admission,
                                      s.cfg.degrade_latency_scale);
  const std::size_t depth = s.full_queue.depth() + s.degraded_queue.depth();
  // Predict with the *observed* (contention-inclusive) batch time, not the
  // datasheet latency — under harvest pressure they differ severalfold.
  const AdmissionDecision decision = admission.assess(
      now, r.deadline, depth, usable_replicas(s), s.cfg.max_batch,
      s.cfg.batch_timeout, static_cast<SimTime>(s.ewma_batch_us));
  if (!decision.admit) {
    r.outcome = RequestOutcome::kShed;
    digest_.mix_u64(kDigestShed);
    digest_.mix_u64(r.id);
    if (trace_ != nullptr) {
      trace_->record(now, obs::EventKind::kRequestShed,
                     static_cast<std::int32_t>(r.id),
                     static_cast<std::int32_t>(s_idx));
    }
    if (shed_counter_ != nullptr) shed_counter_->inc();
    return;
  }
  if (admitted_counter_ != nullptr) admitted_counter_->inc();
  if (decision.degrade) {
    s.degraded_queue.push(r.id, now);
  } else {
    s.full_queue.push(r.id, now);
  }
  // The batch this request joins dispatches on size — checked right away —
  // or on this timeout.
  sim_.schedule_at(now + s.cfg.batch_timeout,
                   [this, s_idx] { try_dispatch(s_idx); });
  try_dispatch(s_idx);
  update_gauges();
}

void ServingEngine::try_dispatch(std::size_t service) {
  ServiceState& s = services_[service];
  const SimTime now = sim_.now();
  while (true) {
    ServiceQueue* queue = nullptr;
    bool degraded_batch = false;
    if (s.full_queue.ripe(now)) {
      queue = &s.full_queue;
    } else if (s.degraded_queue.ripe(now)) {
      queue = &s.degraded_queue;
      degraded_batch = true;
    }
    if (queue == nullptr) return;

    // Least-contended idle running replica (the front-end balancer routes
    // to the quietest backend); launch order breaks ties deterministically.
    std::size_t replica_index = s.replicas.size();
    double best_contention = 0.0;
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      const Replica& rep = s.replicas[i];
      if (rep.busy || rep.retiring) continue;
      if (cluster_.pod(rep.pod).state() != cluster::PodState::kRunning) {
        continue;
      }
      const double c = contention_factor(rep.pod);
      if (replica_index == s.replicas.size() || c < best_contention) {
        replica_index = i;
        best_contention = c;
      }
    }
    if (replica_index == s.replicas.size()) return;  // nobody free yet

    std::vector<std::uint32_t> batch = queue->form_batch();
    // Deadline-passed requests are dropped at the door of the GPU (the
    // client has long since timed out), and — unless the policy is pure
    // kQueue — so are *doomed* ones, whose estimated completion already
    // misses the deadline. The doom check uses the EWMA estimate, not the
    // exact service time: decisions see estimates, physics sees actuals.
    const double est_scale =
        degraded_batch ? std::min(s.cfg.degrade_latency_scale, 1.0) : 1.0;
    const auto estimated_done =
        now + static_cast<SimTime>(s.ewma_batch_us * est_scale);
    const bool drop_doomed = config_.admission != AdmissionPolicy::kQueue;
    std::size_t w = 0;
    for (const std::uint32_t id : batch) {
      Request& r = requests_[id];
      if (now >= r.deadline || (drop_doomed && estimated_done > r.deadline)) {
        r.outcome = RequestOutcome::kExpired;
        r.completion = now;
        digest_.mix_u64(kDigestExpire);
        digest_.mix_u64(r.id);
        if (trace_ != nullptr) {
          trace_->record(now, obs::EventKind::kRequestExpire,
                         static_cast<std::int32_t>(r.id),
                         static_cast<std::int32_t>(service));
        }
        if (expired_counter_ != nullptr) expired_counter_->inc();
        continue;
      }
      batch[w++] = id;
    }
    batch.resize(w);
    if (batch.empty()) continue;  // everything expired; poll again

    Replica& rep = s.replicas[replica_index];
    const double contention = contention_factor(rep.pod);
    const double scale =
        degraded_batch ? s.cfg.degrade_latency_scale : 1.0;
    const auto uncontended = static_cast<double>(workload::inference_latency(
        s.cfg.service, static_cast<int>(batch.size())));
    const auto service_time = std::max<SimTime>(
        1, static_cast<SimTime>(uncontended * scale * contention));

    rep.busy = true;
    ++s.batches;
    s.batched_requests += batch.size();
    // Full-quality batches feed the observed service-time and fill
    // estimators (degraded batches run a different model).
    if (!degraded_batch) {
      const double alpha = config_.autoscale_ewma_alpha;
      s.ewma_batch_us = alpha * static_cast<double>(service_time) +
                        (1.0 - alpha) * s.ewma_batch_us;
      s.ewma_fill = alpha * static_cast<double>(batch.size()) +
                    (1.0 - alpha) * s.ewma_fill;
    }
    digest_.mix_u64(kDigestDispatch);
    digest_.mix_u64(static_cast<std::uint64_t>(now));
    digest_.mix_u64(static_cast<std::uint64_t>(service));
    digest_.mix_u64(static_cast<std::uint64_t>(rep.pod.value));
    digest_.mix_u64(batch.size());
    digest_.mix_u64(degraded_batch ? 1 : 0);
    digest_.mix_u64(static_cast<std::uint64_t>(service_time));
    if (trace_ != nullptr) {
      trace_->record(now, obs::EventKind::kBatchDispatch, rep.pod.value,
                     static_cast<std::int32_t>(service),
                     static_cast<double>(batch.size()));
    }
    if (batches_counter_ != nullptr) batches_counter_->inc();

    sim_.schedule_after(
        service_time,
        [this, service, replica_index, moved = std::move(batch),
         degraded_batch, now]() mutable {
          on_batch_done(service, replica_index, std::move(moved),
                        degraded_batch, now);
        });
  }
}

void ServingEngine::record_served(Request& r, SimTime now, bool degraded) {
  r.completion = now;
  r.outcome = degraded ? RequestOutcome::kDegraded : RequestOutcome::kCompleted;
  digest_.mix_u64(kDigestDone);
  digest_.mix_u64(r.id);
  digest_.mix_u64(static_cast<std::uint64_t>(r.latency()));
  if (trace_ != nullptr) {
    trace_->record(now, obs::EventKind::kRequestDone,
                   static_cast<std::int32_t>(r.id),
                   static_cast<std::int32_t>(r.service),
                   static_cast<double>(r.latency()) / 1000.0);
  }
  if (served_counter_ != nullptr) served_counter_->inc();
  if (degraded && degraded_counter_ != nullptr) degraded_counter_->inc();
  if (latency_hist_ != nullptr) {
    latency_hist_->record(static_cast<double>(r.latency()) / 1000.0);
  }
}

void ServingEngine::on_batch_done(std::size_t service,
                                  std::size_t replica_index,
                                  std::vector<std::uint32_t> batch,
                                  bool degraded_batch, SimTime dispatched_at) {
  ServiceState& s = services_[service];
  Replica& rep = s.replicas[replica_index];
  rep.busy = false;
  const SimTime now = sim_.now();

  const bool replica_alive =
      cluster_.pod(rep.pod).state() == cluster::PodState::kRunning;
  if (replica_alive) {
    for (const std::uint32_t id : batch) {
      record_served(requests_[id], now, degraded_batch);
    }
  } else {
    // The replica died mid-batch (crash, eviction, node death). The batch
    // never produced responses: re-queue at the front in original order.
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      Request& r = requests_[*it];
      ++r.retries;
      digest_.mix_u64(kDigestRetry);
      digest_.mix_u64(r.id);
      ServiceQueue& queue =
          degraded_batch ? s.degraded_queue : s.full_queue;
      queue.push_front(r.id, r.arrival);
    }
  }
  (void)dispatched_at;
  try_dispatch(service);
  update_gauges();
}

PodId ServingEngine::launch_replica(std::size_t service) {
  ServiceState& s = services_[service];
  // SLO-core replicas (up to the min_replicas floor) refuse spot capacity —
  // a reclaim would drop the service below its floor mid-notice. Scale-ups
  // beyond the floor are harvest-style and may ride spot nodes.
  const bool slo_core = alive_replicas(s) < s.cfg.min_replicas;
  workload::PodSpec spec =
      workload::ServiceSpec(s.cfg.service)
          .batch(s.cfg.max_batch)
          .memory_headroom(s.cfg.replica_memory_headroom)
          .qos(s.cfg.slo)
          .tenant(s.cfg.tenant)
          .avoid_preemptible(slo_core)
          .replica(replica_lifetime_);
  const PodId id = cluster_.submit_pod(std::move(spec));
  s.replicas.push_back(Replica{id, false, false});
  ++s.launched;
  return id;
}

double ServingEngine::replica_request_mb(std::size_t service) const {
  const ServiceState& s = services_[service];
  return workload::ServiceSpec(s.cfg.service)
      .batch(s.cfg.max_batch)
      .memory_headroom(s.cfg.replica_memory_headroom)
      .qos(s.cfg.slo)
      .replica(replica_lifetime_)
      .requested_mb;
}

int ServingEngine::retire_replicas(std::size_t service, int count,
                                   bool scale_down_event) {
  ServiceState& s = services_[service];
  int retired = 0;
  for (auto it = s.replicas.rbegin();
       it != s.replicas.rend() && retired < count; ++it) {
    if (it->busy || it->retiring) continue;
    if (!cluster_.finish_pod(it->pod)) continue;  // pending/starting: later
    it->retiring = true;
    ++retired;
    ++s.retired;
    const SimTime now = sim_.now();
    if (scale_down_event) {
      ++s.scale_downs;
      digest_.mix_u64(kDigestScaleDown);
      digest_.mix_u64(static_cast<std::uint64_t>(now));
      digest_.mix_u64(static_cast<std::uint64_t>(service));
      digest_.mix_u64(static_cast<std::uint64_t>(it->pod.value));
      if (trace_ != nullptr) {
        trace_->record(now, obs::EventKind::kScaleDown, it->pod.value,
                       static_cast<std::int32_t>(service));
      }
    }
  }
  return retired;
}

void ServingEngine::autoscale_round(SimTime now) {
  if (now > window_) return;
  for (std::size_t s_idx = 0; s_idx < services_.size(); ++s_idx) {
    ServiceState& s = services_[s_idx];
    // Effective per-replica throughput: observed fill over observed
    // (contended) batch time. This is what a replica actually sustains on
    // this cluster right now, not the datasheet figure.
    const double observed_throughput =
        s.ewma_fill * 1e6 / std::max(s.ewma_batch_us, 1.0);
    const int target = s.autoscaler.update(
        s.arrivals_since_scale, config_.autoscale_period, observed_throughput);
    s.arrivals_since_scale = 0;
    const int current = alive_replicas(s);
    if (target > current) {
      // Quota-aware scale-up: when the cluster enforces tenant quotas and
      // this service's tenant cannot pay for another replica, hold the
      // scale-up (the next round re-evaluates after quota frees).
      const auto& ledger = cluster_.tenant_ledger();
      if (ledger.enforcing() &&
          !ledger.admits(s.cfg.tenant, replica_request_mb(s_idx))) {
        s.peak_replicas = std::max(s.peak_replicas, current);
        continue;
      }
      for (int i = 0; i < target - current; ++i) {
        const PodId id = launch_replica(s_idx);
        ++s.scale_ups;
        digest_.mix_u64(kDigestScaleUp);
        digest_.mix_u64(static_cast<std::uint64_t>(now));
        digest_.mix_u64(s_idx);
        digest_.mix_u64(static_cast<std::uint64_t>(id.value));
        if (trace_ != nullptr) {
          trace_->record(now, obs::EventKind::kScaleUp, id.value,
                         static_cast<std::int32_t>(s_idx));
        }
      }
    } else if (target < current) {
      retire_replicas(s_idx, current - target, /*scale_down_event=*/true);
    }
    s.peak_replicas = std::max(s.peak_replicas, alive_replicas(s));
  }
  update_gauges();
}

bool ServingEngine::pump(SimTime now) {
  for (std::size_t s_idx = 0; s_idx < services_.size(); ++s_idx) {
    try_dispatch(s_idx);
  }
  if (now <= window_) return true;

  // Teardown: once a service's queues drain, retire every remaining
  // replica (scale-to-zero; the serving window is over).
  bool done = true;
  for (std::size_t s_idx = 0; s_idx < services_.size(); ++s_idx) {
    ServiceState& s = services_[s_idx];
    const bool drained =
        s.full_queue.empty() && s.degraded_queue.empty();
    if (drained) {
      retire_replicas(s_idx, alive_replicas(s), /*scale_down_event=*/false);
    }
    if (!drained || alive_replicas(s) > 0) done = false;
    for (const Replica& r : s.replicas) {
      if (r.busy) done = false;
    }
  }
  update_gauges();
  if (done) return false;
  return now < teardown_deadline_;
}

void ServingEngine::update_gauges() {
  if (registry_ == nullptr) return;
  double replicas = 0;
  double depth = 0;
  for (const ServiceState& s : services_) {
    replicas += alive_replicas(s);
    depth += static_cast<double>(s.full_queue.depth() +
                                 s.degraded_queue.depth());
  }
  replicas_gauge_->set(replicas);
  queue_gauge_->set(depth);
}

void ServingEngine::fill_report(ServingReport& report) const {
  // Per-service latency samples (ms), plus one aggregate pool.
  std::vector<std::vector<double>> samples(services_.size());
  std::vector<double> all;
  for (const Request& r : requests_) {
    const auto s_idx = static_cast<std::size_t>(r.service);
    ServiceStats* stats;
    while (report.services.size() <= s_idx) report.services.emplace_back();
    stats = &report.services[s_idx];
    ++stats->offered;
    switch (r.outcome) {
      case RequestOutcome::kShed:
        ++stats->shed;
        break;
      case RequestOutcome::kExpired:
        ++stats->admitted;
        ++stats->expired;
        break;
      case RequestOutcome::kCompleted:
      case RequestOutcome::kDegraded: {
        ++stats->admitted;
        if (r.outcome == RequestOutcome::kDegraded) {
          ++stats->degraded;
        } else {
          ++stats->completed;
        }
        if (r.completion > r.deadline) ++stats->slo_violations;
        const double ms = static_cast<double>(r.latency()) / 1000.0;
        samples[s_idx].push_back(ms);
        all.push_back(ms);
        break;
      }
      case RequestOutcome::kPending:
        // Unresolved at drain deadline (counted admitted, nothing else).
        ++stats->admitted;
        break;
    }
  }

  const double window_sec = static_cast<double>(window_) / 1e6;
  const auto fill_latency = [](LatencyStats& out,
                               std::vector<double>& vals) {
    if (vals.empty()) return;
    constexpr double kPs[] = {50, 99, 99.9, 100};
    const auto ps = percentiles(vals, kPs);
    out.p50_ms = ps[0];
    out.p99_ms = ps[1];
    out.p999_ms = ps[2];
    out.max_ms = ps[3];
    double sum = 0;
    for (const double v : vals) sum += v;
    out.mean_ms = sum / static_cast<double>(vals.size());
  };

  for (std::size_t s_idx = 0; s_idx < services_.size(); ++s_idx) {
    while (report.services.size() <= s_idx) report.services.emplace_back();
    ServiceStats& stats = report.services[s_idx];
    const ServiceState& s = services_[s_idx];
    stats.service = std::string(workload::service_name(s.cfg.service));
    fill_latency(stats.latency, samples[s_idx]);
    stats.achieved_qps =
        static_cast<double>(stats.completed + stats.degraded) / window_sec;
    stats.peak_replicas = s.peak_replicas;
    stats.scale_ups = s.scale_ups;
    stats.scale_downs = s.scale_downs;

    report.offered += stats.offered;
    report.admitted += stats.admitted;
    report.shed += stats.shed;
    report.expired += stats.expired;
    report.completed += stats.completed;
    report.degraded += stats.degraded;
    report.slo_violations += stats.slo_violations;
    report.batches += s.batches;
    report.replicas_launched += s.launched;
    report.replicas_retired += s.retired;
    report.scale_ups += s.scale_ups;
    report.scale_downs += s.scale_downs;
    report.offered_qps += s.cfg.qps;
  }
  fill_latency(report.latency, all);
  report.achieved_qps =
      static_cast<double>(report.completed + report.degraded) / window_sec;
  std::size_t batched = 0;
  double fill_sum = 0;
  for (const ServiceState& s : services_) {
    batched += s.batches;
    if (s.batches > 0) {
      fill_sum += static_cast<double>(s.batched_requests) /
                  (static_cast<double>(s.batches) *
                   static_cast<double>(s.cfg.max_batch));
    }
  }
  report.mean_batch_fill =
      services_.empty() ? 0.0
                        : fill_sum / static_cast<double>(services_.size());
  (void)batched;
  report.serve_digest = digest_.value();
}

}  // namespace knots::serve
