// Fault-injection state machine.
//
// Tracks which fault effects are live on each node (down, heartbeat-muted,
// PCIe-stalled) and tallies every transition. The Cluster owns one injector
// per run: it schedules the plan's events on the simulation engine, applies
// the physical consequences (eviction, power-off, muted samplers, slowed
// progress) and records each transition here; schedulers observe the result
// through Cluster::node_health() and the SchedulingContext fault feed.
//
// The injector itself never touches cluster state — it is a pure record of
// what is currently broken, so it stays deterministic and trivially
// testable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "fault/fault_plan.hpp"

namespace knots::fault {

/// Counters distilled onto the ExperimentReport.
struct FaultStats {
  std::uint64_t node_crashes = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t pods_evicted = 0;
  std::uint64_t ecc_degrades = 0;
  std::uint64_t heartbeat_gaps = 0;
  std::uint64_t pcie_stalls = 0;
  /// Fresh → stale telemetry edges observed by the aggregator rule.
  std::uint64_t stale_transitions = 0;

  [[nodiscard]] std::uint64_t faults_applied() const noexcept {
    return node_crashes + ecc_degrades + heartbeat_gaps + pcie_stalls;
  }

  bool operator==(const FaultStats&) const = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::size_t node_count) : nodes_(node_count) {}

  // -- Transitions (applied by the Cluster at event time) --
  void note_node_down(NodeId node);
  void note_node_up(NodeId node);
  void note_heartbeat_gap(NodeId node, SimTime until);
  /// `now` disambiguates overlap: concurrent stalls compound to the worst
  /// factor, a stall starting after the previous one expired replaces it.
  void note_pcie_stall(NodeId node, SimTime now, SimTime until,
                       double slowdown);
  void note_ecc_degrade(NodeId node);
  void note_evictions(std::uint64_t pods) { stats_.pods_evicted += pods; }
  void note_stale_transition() { ++stats_.stale_transitions; }

  // -- Queries --
  [[nodiscard]] bool node_down(NodeId node) const;
  /// True while the node's telemetry heartbeats are suppressed (explicit
  /// gap, or the node is down — dead nodes do not report).
  [[nodiscard]] bool heartbeat_muted(NodeId node, SimTime now) const;
  /// Progress slowdown factor from an active PCIe stall (1.0 when none).
  [[nodiscard]] double pcie_slowdown(NodeId node, SimTime now) const;
  /// True when any transient effect could still be live (fast-path gate for
  /// the per-tick scans; never true for an untouched cluster).
  [[nodiscard]] bool any_effects() const noexcept { return touched_; }

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

 private:
  struct NodeState {
    bool down = false;
    SimTime mute_until = -1;
    SimTime stall_until = -1;
    double stall_factor = 1.0;
  };
  [[nodiscard]] const NodeState& state(NodeId node) const;
  [[nodiscard]] NodeState& state(NodeId node);

  std::vector<NodeState> nodes_;
  FaultStats stats_{};
  bool touched_ = false;
};

}  // namespace knots::fault
