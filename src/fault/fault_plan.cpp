#include "fault/fault_plan.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "core/rng.hpp"

namespace knots::fault {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kGpuEccDegrade: return "gpu-ecc-degrade";
    case FaultKind::kHeartbeatLoss: return "heartbeat-loss";
    case FaultKind::kPcieStall: return "pcie-stall";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kSpotReclaim: return "spot-reclaim";
  }
  return "unknown";
}

FaultPlan& FaultPlan::node_crash(NodeId node, SimTime at, SimTime down_for) {
  events.push_back({FaultKind::kNodeCrash, node, at, down_for, 0.0});
  return *this;
}

FaultPlan& FaultPlan::gpu_ecc_degrade(NodeId node, SimTime at,
                                      double retired_mb) {
  events.push_back({FaultKind::kGpuEccDegrade, node, at, 0, retired_mb});
  return *this;
}

FaultPlan& FaultPlan::heartbeat_loss(NodeId node, SimTime at, SimTime gap) {
  events.push_back({FaultKind::kHeartbeatLoss, node, at, gap, 0.0});
  return *this;
}

FaultPlan& FaultPlan::pcie_stall(NodeId node, SimTime at, SimTime stall_for,
                                 double slowdown) {
  events.push_back({FaultKind::kPcieStall, node, at, stall_for, slowdown});
  return *this;
}

FaultPlan& FaultPlan::link_down(std::string link, SimTime at,
                                SimTime down_for) {
  events.push_back(
      {FaultKind::kLinkDown, NodeId{}, at, down_for, 0.0, std::move(link)});
  return *this;
}

FaultPlan& FaultPlan::link_degrade(std::string link, SimTime at,
                                   SimTime degrade_for, double slowdown) {
  events.push_back({FaultKind::kLinkDegrade, NodeId{}, at, degrade_for,
                    slowdown, std::move(link)});
  return *this;
}

FaultPlan& FaultPlan::spot_reclaim(NodeId node, SimTime at, SimTime down_for) {
  events.push_back({FaultKind::kSpotReclaim, node, at, down_for, 0.0});
  return *this;
}

void FaultPlan::validate(int node_count, const std::vector<std::string>& links,
                         const std::vector<bool>& preemptible_nodes) const {
  const auto known_link = [&](const std::string& name) {
    return std::find(links.begin(), links.end(), name) != links.end();
  };
  for (const FaultEvent& ev : events) {
    const bool link_fault = ev.kind == FaultKind::kLinkDegrade ||
                            ev.kind == FaultKind::kLinkDown;
    if (link_fault) {
      KNOTS_CHECK_MSG(known_link(ev.link),
                      "link fault names a link the fabric does not have");
    } else {
      KNOTS_CHECK_MSG(ev.node.valid() && ev.node.value < node_count,
                      "fault event targets a node outside the cluster");
      KNOTS_CHECK_MSG(ev.link.empty(),
                      "node fault must not name a fabric link");
    }
    KNOTS_CHECK_MSG(ev.at >= 0, "fault event scheduled before t=0");
    KNOTS_CHECK_MSG(ev.duration >= 0, "negative fault duration");
    switch (ev.kind) {
      case FaultKind::kGpuEccDegrade:
        KNOTS_CHECK_MSG(ev.severity > 0, "ECC degrade must retire memory");
        break;
      case FaultKind::kPcieStall:
        KNOTS_CHECK_MSG(ev.severity >= 1.0,
                        "PCIe stall slowdown must be >= 1");
        KNOTS_CHECK_MSG(ev.duration > 0, "PCIe stall needs a duration");
        break;
      case FaultKind::kLinkDegrade:
        KNOTS_CHECK_MSG(ev.severity >= 1.0,
                        "link degrade slowdown must be >= 1");
        KNOTS_CHECK_MSG(ev.duration > 0, "link degrade needs a duration");
        break;
      case FaultKind::kHeartbeatLoss:
        KNOTS_CHECK_MSG(ev.duration > 0, "heartbeat gap needs a duration");
        break;
      case FaultKind::kSpotReclaim:
        KNOTS_CHECK_MSG(
            static_cast<std::size_t>(ev.node.value) <
                    preemptible_nodes.size() &&
                preemptible_nodes[static_cast<std::size_t>(ev.node.value)],
            "spot reclaim targets a node that is not preemptible");
        break;
      case FaultKind::kNodeCrash:
      case FaultKind::kLinkDown:
        break;
    }
  }
}

namespace {

/// Appends Poisson arrivals of one fault class over [0, horizon).
template <typename Append>
void sample_arrivals(Rng& rng, double rate_per_min, SimTime horizon,
                     Append&& append) {
  if (rate_per_min <= 0) return;
  const double mean_gap_s = 60.0 / rate_per_min;
  SimTime t = from_seconds(rng.exponential(mean_gap_s));
  while (t < horizon) {
    append(t);
    t += std::max<SimTime>(1, from_seconds(rng.exponential(mean_gap_s)));
  }
}

}  // namespace

FaultPlan random_plan(const RandomFaultSpec& spec, int nodes, SimTime horizon,
                      std::uint64_t seed) {
  KNOTS_CHECK(nodes > 0 && horizon > 0);
  FaultPlan plan;
  Rng rng(seed);
  // One independent stream per fault class so tuning one rate never
  // perturbs the arrivals of another.
  Rng crash_rng = rng.fork(1);
  sample_arrivals(crash_rng, spec.node_crash_rate_per_min, horizon,
                  [&](SimTime t) {
                    const NodeId node{static_cast<std::int32_t>(
                        crash_rng.uniform_int(0, nodes - 1))};
                    const auto down = std::max<SimTime>(
                        kSec, from_seconds(crash_rng.exponential(
                                  to_seconds(spec.mean_downtime))));
                    plan.node_crash(node, t, down);
                  });
  Rng gap_rng = rng.fork(2);
  sample_arrivals(gap_rng, spec.heartbeat_loss_rate_per_min, horizon,
                  [&](SimTime t) {
                    const NodeId node{static_cast<std::int32_t>(
                        gap_rng.uniform_int(0, nodes - 1))};
                    const auto gap = std::max<SimTime>(
                        100 * kMsec, from_seconds(gap_rng.exponential(
                                         to_seconds(spec.mean_gap))));
                    plan.heartbeat_loss(node, t, gap);
                  });
  Rng stall_rng = rng.fork(3);
  sample_arrivals(stall_rng, spec.pcie_stall_rate_per_min, horizon,
                  [&](SimTime t) {
                    const NodeId node{static_cast<std::int32_t>(
                        stall_rng.uniform_int(0, nodes - 1))};
                    const auto stall = std::max<SimTime>(
                        100 * kMsec, from_seconds(stall_rng.exponential(
                                         to_seconds(spec.mean_stall))));
                    plan.pcie_stall(node, t, stall, spec.stall_slowdown);
                  });
  // Deterministic event order regardless of which class sampled first.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace knots::fault
