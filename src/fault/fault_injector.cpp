#include "fault/fault_injector.hpp"

#include "core/check.hpp"

namespace knots::fault {

const FaultInjector::NodeState& FaultInjector::state(NodeId node) const {
  KNOTS_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value) < nodes_.size());
  return nodes_[static_cast<std::size_t>(node.value)];
}

FaultInjector::NodeState& FaultInjector::state(NodeId node) {
  KNOTS_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value) < nodes_.size());
  return nodes_[static_cast<std::size_t>(node.value)];
}

void FaultInjector::note_node_down(NodeId node) {
  NodeState& s = state(node);
  KNOTS_CHECK_MSG(!s.down, "node crashed while already down");
  s.down = true;
  ++stats_.node_crashes;
  touched_ = true;
}

void FaultInjector::note_node_up(NodeId node) {
  NodeState& s = state(node);
  KNOTS_CHECK_MSG(s.down, "node recovered while already up");
  s.down = false;
  ++stats_.node_recoveries;
}

void FaultInjector::note_heartbeat_gap(NodeId node, SimTime until) {
  NodeState& s = state(node);
  s.mute_until = std::max(s.mute_until, until);
  ++stats_.heartbeat_gaps;
  touched_ = true;
}

void FaultInjector::note_pcie_stall(NodeId node, SimTime now, SimTime until,
                                    double slowdown) {
  KNOTS_CHECK(slowdown >= 1.0);
  NodeState& s = state(node);
  s.stall_factor =
      now < s.stall_until ? std::max(s.stall_factor, slowdown) : slowdown;
  s.stall_until = std::max(s.stall_until, until);
  ++stats_.pcie_stalls;
  touched_ = true;
}

void FaultInjector::note_ecc_degrade(NodeId node) {
  state(node);  // Bounds check only; the retired pages live on the device.
  ++stats_.ecc_degrades;
  touched_ = true;
}

bool FaultInjector::node_down(NodeId node) const { return state(node).down; }

bool FaultInjector::heartbeat_muted(NodeId node, SimTime now) const {
  const NodeState& s = state(node);
  return s.down || now < s.mute_until;
}

double FaultInjector::pcie_slowdown(NodeId node, SimTime now) const {
  const NodeState& s = state(node);
  if (now >= s.stall_until) return 1.0;
  return s.stall_factor;
}

}  // namespace knots::fault
