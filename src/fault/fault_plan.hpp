// Deterministic fault-injection plans.
//
// A FaultPlan is a seed-free, fully explicit list of fault events against
// simulated time: which node fails, when, for how long, and how badly. The
// cluster schedules every event on its discrete-event engine, so two runs
// with identical (config, seed, plan) replay identically — faults are part
// of the experiment, not noise on top of it.
//
// Event taxonomy (DESIGN.md §7):
//   kNodeCrash      — the worker node dies: every resident pod is evicted
//                     back to pending (relaunch penalty), telemetry stops,
//                     power drops to zero; recovers after `duration`
//                     (0 = never).
//   kGpuEccDegrade  — sticky double-bit ECC errors retire `severity` MB of
//                     device memory on every GPU of the node, permanently
//                     shrinking usable capacity.
//   kHeartbeatLoss  — the node keeps running but its telemetry heartbeats
//                     are dropped for `duration`; after K missed beats the
//                     aggregator marks the series stale.
//   kPcieStall      — transient PCIe degradation: progress of the node's
//                     residents is slowed by factor `severity` for
//                     `duration`.
//   kLinkDegrade    — a named fabric link runs at 1/`severity` of its
//                     bandwidth for `duration` (flaky optic, congested
//                     uplink). Requires a fabric (knots::net).
//   kLinkDown       — a named fabric link carries nothing for `duration`
//                     (0 = never restored). Flows over it stall until it
//                     recovers or they are rerouted by a new placement.
//   kSpotReclaim    — the cloud provider reclaims a *preemptible* node: a
//                     warning notice lands on the fault feed at `at`, then
//                     after the node's NodeSpec::spot_notice grace the node
//                     goes down exactly like a crash (pods evicted back to
//                     pending via the kEvicted requeue path); capacity
//                     returns after `duration` (0 = never).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace knots::fault {

enum class FaultKind {
  kNodeCrash,
  kGpuEccDegrade,
  kHeartbeatLoss,
  kPcieStall,
  kLinkDegrade,
  kLinkDown,
  kSpotReclaim,
};

std::string_view to_string(FaultKind kind) noexcept;

/// One planned fault against a node or a fabric link.
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node{};         ///< Target node; unused (invalid) for link faults.
  SimTime at = 0;        ///< Injection time.
  SimTime duration = 0;  ///< Crash/gap/stall length; 0 = permanent.
  double severity = 0.0; ///< ECC: retired MB per GPU; PCIe/link: slowdown >= 1.
  std::string link{};    ///< Fabric link name; only link faults set it.

  bool operator==(const FaultEvent&) const = default;
};

/// An applied fault transition, as surfaced to schedulers through the
/// SchedulingContext fault feed. `cleared` marks the recovery edge of a
/// transient fault (node back up, heartbeats resumed, stall over).
struct FaultNotice {
  SimTime time = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node{};
  bool cleared = false;

  bool operator==(const FaultNotice&) const = default;
};

/// Explicit fault schedule. Fluent builders append events; the cluster
/// validates targets against its topology when the plan is installed.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

  FaultPlan& node_crash(NodeId node, SimTime at, SimTime down_for = 0);
  FaultPlan& gpu_ecc_degrade(NodeId node, SimTime at, double retired_mb);
  FaultPlan& heartbeat_loss(NodeId node, SimTime at, SimTime gap);
  FaultPlan& pcie_stall(NodeId node, SimTime at, SimTime stall_for,
                        double slowdown);
  FaultPlan& link_down(std::string link, SimTime at, SimTime down_for = 0);
  FaultPlan& link_degrade(std::string link, SimTime at, SimTime degrade_for,
                          double slowdown);
  FaultPlan& spot_reclaim(NodeId node, SimTime at, SimTime down_for = 0);

  /// Aborts (KNOTS_CHECK) when an event targets a node outside
  /// [0, node_count), names a fabric link not in `links` (with no fabric,
  /// every link fault is rejected), has a negative time, carries a
  /// nonsense severity, or reclaims a node `preemptible_nodes` does not
  /// mark as spot (an empty mask rejects every reclaim — only clusters
  /// with spot capacity accept them).
  void validate(int node_count, const std::vector<std::string>& links,
                const std::vector<bool>& preemptible_nodes = {}) const;
  /// Topology-only validation: same checks against an empty link set, so
  /// plans with link faults are rejected unless the fabric overload is used.
  void validate(int node_count) const { validate(node_count, {}); }

  bool operator==(const FaultPlan&) const = default;
};

/// Knobs for seed-driven random plan generation (chaos-monkey harness).
struct RandomFaultSpec {
  double node_crash_rate_per_min = 0.0;
  double heartbeat_loss_rate_per_min = 0.0;
  double pcie_stall_rate_per_min = 0.0;
  SimTime mean_downtime = 20 * kSec;
  SimTime mean_gap = 5 * kSec;
  SimTime mean_stall = 2 * kSec;
  double stall_slowdown = 4.0;
};

/// Samples a plan over [0, horizon): Poisson arrivals per fault class,
/// uniform node targets, exponential durations. Deterministic in `seed`.
[[nodiscard]] FaultPlan random_plan(const RandomFaultSpec& spec, int nodes,
                                    SimTime horizon, std::uint64_t seed);

}  // namespace knots::fault
