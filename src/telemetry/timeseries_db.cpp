#include "telemetry/timeseries_db.hpp"

namespace knots::telemetry {

void TimeSeriesDb::write(GpuId gpu, Metric metric, Sample sample) {
  const Key key{gpu.value, static_cast<int>(metric)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, RingBuffer<Sample>(retention_)).first;
  }
  it->second.push(sample);
  ++total_samples_;
}

std::vector<double> TimeSeriesDb::query_window(GpuId gpu, Metric metric,
                                               SimTime since) const {
  std::vector<double> out;
  const Key key{gpu.value, static_cast<int>(metric)};
  auto it = series_.find(key);
  if (it == series_.end()) return out;
  const auto& buf = it->second;
  // Samples are time-ordered; binary-search the window start.
  std::size_t lo = 0, hi = buf.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (buf.at(mid).time < since) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  out.reserve(buf.size() - lo);
  for (std::size_t i = lo; i < buf.size(); ++i) out.push_back(buf.at(i).value);
  return out;
}

std::vector<Sample> TimeSeriesDb::query_all(GpuId gpu, Metric metric) const {
  std::vector<Sample> out;
  const Key key{gpu.value, static_cast<int>(metric)};
  auto it = series_.find(key);
  if (it == series_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i = 0; i < it->second.size(); ++i)
    out.push_back(it->second.at(i));
  return out;
}

double TimeSeriesDb::latest(GpuId gpu, Metric metric, double fallback) const {
  const Key key{gpu.value, static_cast<int>(metric)};
  auto it = series_.find(key);
  if (it == series_.end() || it->second.empty()) return fallback;
  return it->second.back().value;
}

}  // namespace knots::telemetry
