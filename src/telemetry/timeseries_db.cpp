#include "telemetry/timeseries_db.hpp"

#include <algorithm>

#include "core/percentile.hpp"

namespace knots::telemetry {

void TimeSeriesDb::write(GpuId gpu, Metric metric, Sample sample) {
  const Key key{gpu.value, static_cast<int>(metric)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Series(retention_, stats_window_, arena_)).first;
  }
  Series& s = it->second;
  s.buf.push(sample);
  if (s.live) s.live->push(sample.value);
  ++s.generation;
  ++total_samples_;
}

TimeSeriesDb::SeriesHandle TimeSeriesDb::open_series(GpuId gpu,
                                                     Metric metric) {
  const Key key{gpu.value, static_cast<int>(metric)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Series(retention_, stats_window_, arena_)).first;
  }
  return SeriesHandle{&it->second};
}

const TimeSeriesDb::Series* TimeSeriesDb::find(GpuId gpu,
                                               Metric metric) const {
  const Key key{gpu.value, static_cast<int>(metric)};
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::size_t TimeSeriesDb::lower_bound_time(const SampleRing& buf,
                                           SimTime since) {
  // Samples are time-ordered; binary-search the window start.
  std::size_t lo = 0, hi = buf.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (buf.at(mid).time < since) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

WindowView TimeSeriesDb::window_view(GpuId gpu, Metric metric,
                                     SimTime since) const {
  const Series* s = find(gpu, metric);
  if (s == nullptr) return {};
  const auto [first, second] =
      s->buf.segments(lower_bound_time(s->buf, since));
  return WindowView{first, second};
}

std::vector<double> TimeSeriesDb::query_window(GpuId gpu, Metric metric,
                                               SimTime since) const {
  std::vector<double> out;
  window_view(gpu, metric, since).append_values_to(out);
  return out;
}

const WindowAggregate& TimeSeriesDb::window_stats(GpuId gpu, Metric metric,
                                                  SimTime since) const {
  static const WindowAggregate kEmpty{};
  const Series* s = find(gpu, metric);
  if (s == nullptr) return kEmpty;
  if (s->agg_generation == s->generation && s->agg_since == since) {
    return s->agg_cache;  // No write since the last identical query.
  }
  const WindowView view = window_view(gpu, metric, since);
  WindowAggregate agg;
  agg.count = view.size();
  if (agg.count > 0) {
    auto& scratch = s->sort_scratch;
    scratch.clear();
    view.append_values_to(scratch);
    std::sort(scratch.begin(), scratch.end());
    double sum = 0.0;
    for (double v : scratch) sum += v;
    agg.mean = sum / static_cast<double>(agg.count);
    agg.min = scratch.front();
    agg.max = scratch.back();
    agg.p50 = percentile_sorted(scratch, 50.0);
    agg.p95 = percentile_sorted(scratch, 95.0);
    agg.p99 = percentile_sorted(scratch, 99.0);
  }
  s->agg_cache = agg;
  s->agg_generation = s->generation;
  s->agg_since = since;
  return s->agg_cache;
}

const stats::RollingStats* TimeSeriesDb::live_stats(GpuId gpu,
                                                    Metric metric) const {
  const Series* s = find(gpu, metric);
  return s == nullptr ? nullptr : s->live.get();
}

std::vector<Sample> TimeSeriesDb::query_all(GpuId gpu, Metric metric) const {
  std::vector<Sample> out;
  const Series* s = find(gpu, metric);
  if (s == nullptr) return out;
  const auto [first, second] = s->buf.segments();
  out.reserve(first.size() + second.size());
  out.insert(out.end(), first.begin(), first.end());
  out.insert(out.end(), second.begin(), second.end());
  return out;
}

double TimeSeriesDb::latest(GpuId gpu, Metric metric, double fallback) const {
  const Series* s = find(gpu, metric);
  if (s == nullptr || s->buf.empty()) return fallback;
  return s->buf.back().value;
}

SimTime TimeSeriesDb::latest_time(GpuId gpu, Metric metric) const {
  const Series* s = find(gpu, metric);
  if (s == nullptr || s->buf.empty()) return -1;
  return s->buf.back().time;
}

std::uint64_t TimeSeriesDb::generation(GpuId gpu, Metric metric) const {
  const Series* s = find(gpu, metric);
  return s == nullptr ? 0 : s->generation;
}

}  // namespace knots::telemetry
