#include "telemetry/aggregator.hpp"

#include <algorithm>

namespace knots::telemetry {

void UtilizationAggregator::register_node(const gpu::GpuNode& node,
                                          const TimeSeriesDb& db) {
  nodes_.push_back(Entry{&node, &db});
}

std::vector<GpuView> UtilizationAggregator::snapshot() const {
  std::vector<GpuView> out;
  for (const auto& entry : nodes_) {
    for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
      const auto& dev = entry.node->gpu(i);
      const double cap = dev.spec().memory_mb;
      GpuView v;
      v.node = entry.node->id();
      v.gpu = dev.id();
      v.sm_util = entry.db->latest(dev.id(), Metric::kSmUtil);
      v.mem_util = entry.db->latest(dev.id(), Metric::kMemUtil);
      v.mem_used_mb = v.mem_util * cap;
      v.free_mem_mb = cap - v.mem_used_mb;
      v.power_watts = entry.db->latest(dev.id(), Metric::kPowerWatts);
      v.parked = dev.parked();
      v.residents = dev.totals().residents;
      out.push_back(v);
    }
  }
  return out;
}

std::vector<GpuView> UtilizationAggregator::active_sorted_by_free_memory()
    const {
  auto views = snapshot();
  std::erase_if(views, [](const GpuView& v) { return v.parked; });
  std::stable_sort(views.begin(), views.end(),
                   [](const GpuView& a, const GpuView& b) {
                     return a.free_mem_mb > b.free_mem_mb;
                   });
  return views;
}

std::vector<double> UtilizationAggregator::window(GpuId gpu, Metric metric,
                                                  SimTime now,
                                                  SimTime window_len) const {
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return {};
  return entry->db->query_window(gpu, metric, now - window_len);
}

const UtilizationAggregator::Entry* UtilizationAggregator::find_gpu(
    GpuId gpu) const {
  for (const auto& entry : nodes_) {
    for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
      if (entry.node->gpu(i).id() == gpu) return &entry;
    }
  }
  return nullptr;
}

}  // namespace knots::telemetry
