#include "telemetry/aggregator.hpp"

#include <algorithm>

#include "obs/profile.hpp"

namespace knots::telemetry {

void UtilizationAggregator::register_node(const gpu::GpuNode& node,
                                          const TimeSeriesDb& db) {
  const std::size_t entry = nodes_.size();
  nodes_.push_back(Entry{&node, &db, series_cache_.size()});
  for (std::size_t i = 0; i < node.gpu_count(); ++i) {
    gpu_to_entry_.emplace(node.gpu(i).id().value, entry);
    series_cache_.emplace_back();
  }
  // ~0 can never equal a real sample count, so the first snapshot always
  // reads through.
  entry_seen_.push_back(~std::uint64_t{0});
  active_cache_valid_ = false;
}

void UtilizationAggregator::refresh_entry(std::size_t entry_idx) const {
  const Entry& entry = nodes_[entry_idx];
  const std::uint64_t stamp = entry.db->total_samples();
  if (entry_seen_[entry_idx] == stamp) return;
  entry_seen_[entry_idx] = stamp;
  for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
    const GpuId id = entry.node->gpu(i).id();
    CachedSeries& c = series_cache_[entry.first_slot + i];
    if (!c.h_sm) {
      c.h_sm = entry.db->find_series(id, Metric::kSmUtil);
      c.h_mem = entry.db->find_series(id, Metric::kMemUtil);
      c.h_power = entry.db->find_series(id, Metric::kPowerWatts);
    }
    if (c.h_sm) {
      c.sm_util = entry.db->latest(c.h_sm, 0.0);
      c.mem_util = entry.db->latest(c.h_mem, 0.0);
      c.power_watts = entry.db->latest(c.h_power, 0.0);
      c.last_heartbeat = entry.db->latest_time(c.h_sm);
    } else {
      c.sm_util = entry.db->latest(id, Metric::kSmUtil);
      c.mem_util = entry.db->latest(id, Metric::kMemUtil);
      c.power_watts = entry.db->latest(id, Metric::kPowerWatts);
      c.last_heartbeat = entry.db->latest_time(id, Metric::kSmUtil);
    }
  }
}

void UtilizationAggregator::snapshot_into(std::vector<GpuView>& out) const {
  out.clear();
  for (std::size_t e = 0; e < nodes_.size(); ++e) {
    // Series values change only when samples land; everything else (parked,
    // residents, ECC-retired capacity) is read live from the device.
    refresh_entry(e);
    const Entry& entry = nodes_[e];
    for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
      const auto& dev = entry.node->gpu(i);
      const CachedSeries& c = series_cache_[entry.first_slot + i];
      // NVML reports used/physical; free is bounded by *usable* capacity
      // (physical minus ECC-retired pages).
      const double cap = dev.spec().memory_mb;
      GpuView v;
      v.node = entry.node->id();
      v.gpu = dev.id();
      v.sm_util = c.sm_util;
      v.mem_util = c.mem_util;
      v.mem_used_mb = c.mem_util * cap;
      v.free_mem_mb = dev.effective_memory_mb() - v.mem_used_mb;
      v.power_watts = c.power_watts;
      v.parked = dev.parked();
      v.residents = dev.totals().residents;
      v.last_heartbeat = c.last_heartbeat;
      v.stale = horizon_ > 0 && now_ - c.last_heartbeat > horizon_;
      out.push_back(v);
    }
  }
}

std::vector<GpuView> UtilizationAggregator::snapshot() const {
  std::vector<GpuView> out;
  snapshot_into(out);
  return out;
}

const std::vector<GpuView>&
UtilizationAggregator::active_sorted_by_free_memory() const {
  KNOTS_PROF_SCOPE(sort_profile_);
  snapshot_scratch_.clear();
  snapshot_into(snapshot_scratch_);
  std::erase_if(snapshot_scratch_,
                [](const GpuView& v) { return v.parked; });
  // Views change only when telemetry lands (once per tick) or a placement
  // flips parked/residents; between those, serve the previous sort.
  if (active_cache_valid_ && snapshot_scratch_ == active_input_) {
    return active_sorted_;
  }
  std::swap(active_input_, snapshot_scratch_);
  // Sort 16-byte {key, index} pairs instead of whole views, then gather.
  // stable_sort on the keys preserves input order on ties exactly like the
  // historical stable_sort over the views did.
  sort_keys_.clear();
  sort_keys_.reserve(active_input_.size());
  for (std::size_t i = 0; i < active_input_.size(); ++i) {
    sort_keys_.push_back(
        SortKey{active_input_[i].free_mem_mb, static_cast<std::uint32_t>(i)});
  }
  std::stable_sort(sort_keys_.begin(), sort_keys_.end(),
                   [](const SortKey& a, const SortKey& b) {
                     return a.free_mem_mb > b.free_mem_mb;
                   });
  active_sorted_.clear();
  active_sorted_.reserve(active_input_.size());
  for (const SortKey& key : sort_keys_) {
    active_sorted_.push_back(active_input_[key.idx]);
  }
  active_cache_valid_ = true;
  return active_sorted_;
}

std::vector<double> UtilizationAggregator::window(GpuId gpu, Metric metric,
                                                  SimTime now,
                                                  SimTime window_len) const {
  std::vector<double> out;
  window_into(gpu, metric, now, window_len, out);
  return out;
}

void UtilizationAggregator::window_into(GpuId gpu, Metric metric, SimTime now,
                                        SimTime window_len,
                                        std::vector<double>& out) const {
  out.clear();
  window_view(gpu, metric, now, window_len).append_values_to(out);
}

WindowView UtilizationAggregator::window_view(GpuId gpu, Metric metric,
                                              SimTime now,
                                              SimTime window_len) const {
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return {};
  return entry->db->window_view(gpu, metric, now - window_len);
}

const WindowAggregate& UtilizationAggregator::window_stats(
    GpuId gpu, Metric metric, SimTime now, SimTime window_len) const {
  static const WindowAggregate kEmpty{};
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return kEmpty;
  return entry->db->window_stats(gpu, metric, now - window_len);
}

bool UtilizationAggregator::stale(GpuId gpu) const {
  if (horizon_ <= 0) return false;
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return false;
  return now_ - entry->db->latest_time(gpu, Metric::kSmUtil) > horizon_;
}

const UtilizationAggregator::Entry* UtilizationAggregator::find_gpu(
    GpuId gpu) const {
  const auto it = gpu_to_entry_.find(gpu.value);
  return it == gpu_to_entry_.end() ? nullptr : &nodes_[it->second];
}

}  // namespace knots::telemetry
