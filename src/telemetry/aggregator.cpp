#include "telemetry/aggregator.hpp"

#include <algorithm>

#include "obs/profile.hpp"

namespace knots::telemetry {

void UtilizationAggregator::register_node(const gpu::GpuNode& node,
                                          const TimeSeriesDb& db) {
  const std::size_t entry = nodes_.size();
  nodes_.push_back(Entry{&node, &db});
  for (std::size_t i = 0; i < node.gpu_count(); ++i) {
    gpu_to_entry_.emplace(node.gpu(i).id().value, entry);
  }
  active_cache_valid_ = false;
}

void UtilizationAggregator::snapshot_into(std::vector<GpuView>& out) const {
  out.clear();
  for (const auto& entry : nodes_) {
    for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
      const auto& dev = entry.node->gpu(i);
      // NVML reports used/physical; free is bounded by *usable* capacity
      // (physical minus ECC-retired pages).
      const double cap = dev.spec().memory_mb;
      GpuView v;
      v.node = entry.node->id();
      v.gpu = dev.id();
      v.sm_util = entry.db->latest(dev.id(), Metric::kSmUtil);
      v.mem_util = entry.db->latest(dev.id(), Metric::kMemUtil);
      v.mem_used_mb = v.mem_util * cap;
      v.free_mem_mb = dev.effective_memory_mb() - v.mem_used_mb;
      v.power_watts = entry.db->latest(dev.id(), Metric::kPowerWatts);
      v.parked = dev.parked();
      v.residents = dev.totals().residents;
      v.last_heartbeat = entry.db->latest_time(dev.id(), Metric::kSmUtil);
      v.stale = horizon_ > 0 && now_ - v.last_heartbeat > horizon_;
      out.push_back(v);
    }
  }
}

std::vector<GpuView> UtilizationAggregator::snapshot() const {
  std::vector<GpuView> out;
  snapshot_into(out);
  return out;
}

const std::vector<GpuView>&
UtilizationAggregator::active_sorted_by_free_memory() const {
  KNOTS_PROF_SCOPE(sort_profile_);
  snapshot_scratch_.clear();
  snapshot_into(snapshot_scratch_);
  std::erase_if(snapshot_scratch_,
                [](const GpuView& v) { return v.parked; });
  // Views change only when telemetry lands (once per tick) or a placement
  // flips parked/residents; between those, serve the previous sort.
  if (active_cache_valid_ && snapshot_scratch_ == active_input_) {
    return active_sorted_;
  }
  std::swap(active_input_, snapshot_scratch_);
  active_sorted_ = active_input_;
  std::stable_sort(active_sorted_.begin(), active_sorted_.end(),
                   [](const GpuView& a, const GpuView& b) {
                     return a.free_mem_mb > b.free_mem_mb;
                   });
  active_cache_valid_ = true;
  return active_sorted_;
}

std::vector<double> UtilizationAggregator::window(GpuId gpu, Metric metric,
                                                  SimTime now,
                                                  SimTime window_len) const {
  std::vector<double> out;
  window_into(gpu, metric, now, window_len, out);
  return out;
}

void UtilizationAggregator::window_into(GpuId gpu, Metric metric, SimTime now,
                                        SimTime window_len,
                                        std::vector<double>& out) const {
  out.clear();
  window_view(gpu, metric, now, window_len).append_values_to(out);
}

WindowView UtilizationAggregator::window_view(GpuId gpu, Metric metric,
                                              SimTime now,
                                              SimTime window_len) const {
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return {};
  return entry->db->window_view(gpu, metric, now - window_len);
}

const WindowAggregate& UtilizationAggregator::window_stats(
    GpuId gpu, Metric metric, SimTime now, SimTime window_len) const {
  static const WindowAggregate kEmpty{};
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return kEmpty;
  return entry->db->window_stats(gpu, metric, now - window_len);
}

bool UtilizationAggregator::stale(GpuId gpu) const {
  if (horizon_ <= 0) return false;
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return false;
  return now_ - entry->db->latest_time(gpu, Metric::kSmUtil) > horizon_;
}

const UtilizationAggregator::Entry* UtilizationAggregator::find_gpu(
    GpuId gpu) const {
  const auto it = gpu_to_entry_.find(gpu.value);
  return it == gpu_to_entry_.end() ? nullptr : &nodes_[it->second];
}

}  // namespace knots::telemetry
