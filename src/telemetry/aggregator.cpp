#include "telemetry/aggregator.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "obs/profile.hpp"

namespace knots::telemetry {

namespace {

/// Total order for the hierarchical sort: free memory descending, then
/// registration slot ascending. Because the secondary key is unique, runs
/// sorted with this comparator merge into exactly the sequence the
/// historical global stable_sort produced.
inline bool key_before(double free_a, std::uint32_t slot_a, double free_b,
                       std::uint32_t slot_b) noexcept {
  if (free_a != free_b) return free_a > free_b;
  return slot_a < slot_b;
}

}  // namespace

void UtilizationAggregator::register_node(const gpu::GpuNode& node,
                                          const TimeSeriesDb& db) {
  const std::size_t entry = nodes_.size();
  nodes_.push_back(Entry{&node, &db, series_cache_.size()});
  for (std::size_t i = 0; i < node.gpu_count(); ++i) {
    gpu_to_entry_.emplace(node.gpu(i).id().value, entry);
    slot_entry_.push_back(static_cast<std::uint32_t>(entry));
    slot_static_.push_back(SlotStatic{
        node.gpu(i).id(), node.id(),
        static_cast<double>(node.gpu(i).spec().memory_mb),
        node.spec().preemptible});
    series_cache_.emplace_back();
    live_bits_.emplace_back();
  }
  // ~0 can never equal a real sample count, so the first snapshot always
  // reads through.
  entry_seen_.push_back(~std::uint64_t{0});
  // Invalidate any existing partition; it no longer covers this entry.
  lane_entries_.clear();
  lane_runs_.clear();
  lane_fresh_.clear();
  merged_valid_ = false;
  // The new slots' live bits are sentinels; force the next query to diff
  // even if the registered epoch has not moved.
  live_epoch_seen_ = ~std::uint64_t{0};
}

void UtilizationAggregator::set_lane_partition(
    std::vector<std::uint32_t> entry_lanes, std::size_t lanes) {
  KNOTS_CHECK(entry_lanes.size() == nodes_.size());
  KNOTS_CHECK(lanes > 0);
  entry_lane_ = std::move(entry_lanes);
  lane_entries_.assign(lanes, {});
  for (std::size_t e = 0; e < entry_lane_.size(); ++e) {
    KNOTS_CHECK(entry_lane_[e] < lanes);
    lane_entries_[entry_lane_[e]].push_back(static_cast<std::uint32_t>(e));
  }
  lane_runs_.assign(lanes, {});
  lane_fresh_.assign(lanes, SimTime{-1});
  merged_valid_ = false;
}

void UtilizationAggregator::ensure_partition() const {
  if (!lane_runs_.empty()) return;
  // No explicit partition: one implicit lane owning every entry. The merge
  // then degenerates to serving that lane's run directly.
  entry_lane_.assign(nodes_.size(), 0);
  lane_entries_.assign(1, {});
  for (std::size_t e = 0; e < nodes_.size(); ++e) {
    lane_entries_[0].push_back(static_cast<std::uint32_t>(e));
  }
  lane_runs_.assign(1, {});
  lane_fresh_.assign(1, SimTime{-1});
}

bool UtilizationAggregator::refresh_entry(std::size_t entry_idx) const {
  const Entry& entry = nodes_[entry_idx];
  const std::uint64_t stamp = entry.db->total_samples();
  if (entry_seen_[entry_idx] == stamp) return false;
  entry_seen_[entry_idx] = stamp;
  for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
    const GpuId id = entry.node->gpu(i).id();
    CachedSeries& c = series_cache_[entry.first_slot + i];
    if (!c.h_sm) {
      c.h_sm = entry.db->find_series(id, Metric::kSmUtil);
      c.h_mem = entry.db->find_series(id, Metric::kMemUtil);
      c.h_power = entry.db->find_series(id, Metric::kPowerWatts);
    }
    if (c.h_sm) {
      c.sm_util = entry.db->latest(c.h_sm, 0.0);
      c.mem_util = entry.db->latest(c.h_mem, 0.0);
      c.power_watts = entry.db->latest(c.h_power, 0.0);
      c.last_heartbeat = entry.db->latest_time(c.h_sm);
    } else {
      c.sm_util = entry.db->latest(id, Metric::kSmUtil);
      c.mem_util = entry.db->latest(id, Metric::kMemUtil);
      c.power_watts = entry.db->latest(id, Metric::kPowerWatts);
      c.last_heartbeat = entry.db->latest_time(id, Metric::kSmUtil);
    }
  }
  return true;
}

void UtilizationAggregator::refresh_lane(std::size_t lane) const {
  // Until a query creates demand there is nothing worth prefetching, and
  // before ensure_partition()/set_lane_partition() there are no runs.
  if (!refresh_demand_ || lane >= lane_runs_.size()) return;
  bool changed = false;
  for (const std::uint32_t e : lane_entries_[lane]) {
    changed |= refresh_entry(e);
  }
  lane_fresh_[lane] = now_;
  if (!changed) return;
  LaneRun& run = lane_runs_[lane];
  // With one lane there is no parallelism to exploit, so defer the sort to
  // the query: ticks whose scheduler round has no pending pods then never
  // pay it. Multiple lanes sort here, inside the lane-parallel phase.
  if (sort_demand_ && lane_runs_.size() > 1) {
    rebuild_lane_keys(lane);  // bumps run.version, clears run.dirty
  } else {
    run.dirty = true;
  }
}

void UtilizationAggregator::rebuild_lane_keys(std::size_t lane) const {
  LaneRun& run = lane_runs_[lane];
  run.keys.clear();
  for (const std::uint32_t e : lane_entries_[lane]) {
    const Entry& entry = nodes_[e];
    for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
      // Parked GPUs (as of the last live-bits diff — a flip dirties this
      // lane, forcing a rebuild with fresh bits) never appear in the active
      // list, so excluding them here keeps the sort proportional to the
      // active population. Filtering before the merge emits the same
      // sequence as merging everything and filtering after.
      const std::size_t slot = entry.first_slot + i;
      const LiveBits& bits = live_bits_[slot];
      if (bits.parked) continue;
      const CachedSeries& c = series_cache_[slot];
      // NVML reports used/physical; free is bounded by *usable* capacity
      // (physical minus ECC-retired pages). Usable capacity comes from the
      // live-bits diff (an ECC move dirties this lane, so any run the merge
      // consumes was rebuilt after a diff) — no device deref on this path.
      const double free_mb =
          bits.effective_mb - c.mem_util * slot_static_[slot].cap;
      run.keys.push_back(SortKey{free_mb, static_cast<std::uint32_t>(slot)});
    }
  }
  std::sort(run.keys.begin(), run.keys.end(),
            [](const SortKey& a, const SortKey& b) {
              return key_before(a.free_mem_mb, a.slot, b.free_mem_mb, b.slot);
            });
  run.dirty = false;
  ++run.version;
}

GpuView UtilizationAggregator::make_view(std::size_t entry_idx,
                                         std::size_t gpu_idx) const {
  const Entry& entry = nodes_[entry_idx];
  const auto& dev = entry.node->gpu(gpu_idx);
  const CachedSeries& c = series_cache_[entry.first_slot + gpu_idx];
  const double cap = dev.spec().memory_mb;
  GpuView v;
  v.node = entry.node->id();
  v.gpu = dev.id();
  v.sm_util = c.sm_util;
  v.mem_util = c.mem_util;
  v.mem_used_mb = c.mem_util * cap;
  v.free_mem_mb = dev.effective_memory_mb() - v.mem_used_mb;
  v.power_watts = c.power_watts;
  v.parked = dev.parked();
  v.residents = dev.totals().residents;
  v.last_heartbeat = c.last_heartbeat;
  v.stale = horizon_ > 0 && now_ - c.last_heartbeat > horizon_;
  v.preemptible = entry.node->spec().preemptible;
  return v;
}

GpuView UtilizationAggregator::make_view_cached(std::uint32_t slot) const {
  // The merge visits slots in free-sorted (effectively random) order, so a
  // per-view device deref is a scattered cache miss ×5 — at 10k nodes that
  // is the dominant query cost. Everything a view needs is already resident
  // in three dense, slot-indexed arrays: registration-time facts
  // (slot_static_), the series cache, and the live-bits diff. The diff ran
  // under this query's epoch check, so the bits equal the live device.
  const SlotStatic& st = slot_static_[slot];
  const CachedSeries& c = series_cache_[slot];
  const LiveBits& bits = live_bits_[slot];
  GpuView v;
  v.node = st.node;
  v.gpu = st.gpu;
  v.sm_util = c.sm_util;
  v.mem_util = c.mem_util;
  v.mem_used_mb = c.mem_util * st.cap;
  v.free_mem_mb = bits.effective_mb - v.mem_used_mb;
  v.power_watts = c.power_watts;
  v.parked = bits.parked;
  v.residents = bits.residents;
  v.last_heartbeat = c.last_heartbeat;
  v.stale = horizon_ > 0 && now_ - c.last_heartbeat > horizon_;
  v.preemptible = st.preemptible;
  return v;
}

void UtilizationAggregator::snapshot_into(std::vector<GpuView>& out) const {
  refresh_demand_ = true;
  out.clear();
  for (std::size_t e = 0; e < nodes_.size(); ++e) {
    // Series values change only when samples land; everything else (parked,
    // residents, ECC-retired capacity) is read live from the device.
    refresh_entry(e);
    const Entry& entry = nodes_[e];
    for (std::size_t i = 0; i < entry.node->gpu_count(); ++i) {
      out.push_back(make_view(e, i));
    }
  }
}

std::vector<GpuView> UtilizationAggregator::snapshot() const {
  std::vector<GpuView> out;
  snapshot_into(out);
  return out;
}

bool UtilizationAggregator::live_bits_moved() const {
  bool moved = false;
  for (std::size_t slot = 0; slot < live_bits_.size(); ++slot) {
    const std::size_t e = slot_entry_[slot];
    const Entry& entry = nodes_[e];
    const auto& dev = entry.node->gpu(slot - entry.first_slot);
    LiveBits& bits = live_bits_[slot];
    const double effective = dev.effective_memory_mb();
    const std::int32_t residents = dev.totals().residents;
    const bool parked = dev.parked();
    if (effective != bits.effective_mb) {
      // Usable capacity feeds the sort key, so the owning lane's run is
      // stale, not just the merged output.
      lane_runs_[entry_lane_[e]].dirty = true;
      bits.effective_mb = effective;
      moved = true;
    }
    if (parked != bits.parked) {
      // Key membership depends on the parked bit, so the owning lane's run
      // must be rebuilt, not just the merged output.
      lane_runs_[entry_lane_[e]].dirty = true;
      bits.parked = parked;
      moved = true;
    }
    if (residents != bits.residents) {
      bits.residents = residents;
      moved = true;
    }
  }
  return moved;
}

const std::vector<GpuView>&
UtilizationAggregator::active_sorted_by_free_memory() const {
  KNOTS_PROF_SCOPE(sort_profile_);
  refresh_demand_ = true;
  sort_demand_ = true;
  ensure_partition();
  // Lanes the cluster's telemetry phase refreshed at this tick are known
  // fresh (samples land only in that phase); anything else re-checks its
  // entries' db stamps.
  for (std::size_t lane = 0; lane < lane_runs_.size(); ++lane) {
    // Only refresh_lane sets the stamp: a standalone caller that writes
    // between two same-tick queries without a telemetry phase must still
    // see its samples, so queries themselves never claim freshness.
    if (lane_fresh_[lane] == now_) continue;
    bool changed = false;
    for (const std::uint32_t e : lane_entries_[lane]) {
      changed |= refresh_entry(e);
    }
    if (changed) lane_runs_[lane].dirty = true;
  }
  // Capacity moves (ECC retirement) and park/unpark flips surface here and
  // dirty their lane. With a registered epoch the O(slots) diff runs only
  // when a device actually mutated since the last query.
  bool live_moved = false;
  if (live_epoch_ == nullptr || *live_epoch_ != live_epoch_seen_) {
    live_moved = live_bits_moved();
    if (live_epoch_ != nullptr) live_epoch_seen_ = *live_epoch_;
  }
  for (std::size_t lane = 0; lane < lane_runs_.size(); ++lane) {
    if (lane_runs_[lane].dirty) rebuild_lane_keys(lane);
  }
  std::uint64_t version_sum = 0;
  for (const LaneRun& run : lane_runs_) version_sum += run.version;
  if (merged_valid_ && !live_moved && version_sum == merged_version_sum_ &&
      merged_now_ == now_) {
    return active_sorted_;
  }
  merge_runs();
  merged_version_sum_ = version_sum;
  merged_now_ = now_;
  merged_valid_ = true;
  return active_sorted_;
}

void UtilizationAggregator::merge_runs() const {
  active_sorted_.clear();
  const std::size_t lanes = lane_runs_.size();
  if (lanes == 1) {
    // Degenerate merge: emit the single run in order.
    for (const SortKey& key : lane_runs_[0].keys) {
      if (live_bits_[key.slot].parked) continue;
      active_sorted_.push_back(make_view_cached(key.slot));
    }
    return;
  }
  // K-way merge by linear scan of the lane heads; lane counts are small
  // (hardware threads), so a heap would cost more than it saves.
  merge_heads_.assign(lanes, 0);
  for (;;) {
    std::size_t best = lanes;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const LaneRun& run = lane_runs_[lane];
      if (merge_heads_[lane] >= run.keys.size()) continue;
      if (best == lanes) {
        best = lane;
        continue;
      }
      const SortKey& a = run.keys[merge_heads_[lane]];
      const SortKey& b = lane_runs_[best].keys[merge_heads_[best]];
      if (key_before(a.free_mem_mb, a.slot, b.free_mem_mb, b.slot)) {
        best = lane;
      }
    }
    if (best == lanes) break;
    const SortKey& key = lane_runs_[best].keys[merge_heads_[best]++];
    if (live_bits_[key.slot].parked) continue;
    active_sorted_.push_back(make_view_cached(key.slot));
  }
}

std::vector<double> UtilizationAggregator::window(GpuId gpu, Metric metric,
                                                  SimTime now,
                                                  SimTime window_len) const {
  std::vector<double> out;
  window_into(gpu, metric, now, window_len, out);
  return out;
}

void UtilizationAggregator::window_into(GpuId gpu, Metric metric, SimTime now,
                                        SimTime window_len,
                                        std::vector<double>& out) const {
  out.clear();
  window_view(gpu, metric, now, window_len).append_values_to(out);
}

WindowView UtilizationAggregator::window_view(GpuId gpu, Metric metric,
                                              SimTime now,
                                              SimTime window_len) const {
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return {};
  return entry->db->window_view(gpu, metric, now - window_len);
}

const WindowAggregate& UtilizationAggregator::window_stats(
    GpuId gpu, Metric metric, SimTime now, SimTime window_len) const {
  static const WindowAggregate kEmpty{};
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return kEmpty;
  return entry->db->window_stats(gpu, metric, now - window_len);
}

bool UtilizationAggregator::stale(GpuId gpu) const {
  if (horizon_ <= 0) return false;
  const Entry* entry = find_gpu(gpu);
  if (entry == nullptr) return false;
  return now_ - entry->db->latest_time(gpu, Metric::kSmUtil) > horizon_;
}

const UtilizationAggregator::Entry* UtilizationAggregator::find_gpu(
    GpuId gpu) const {
  const auto it = gpu_to_entry_.find(gpu.value);
  return it == gpu_to_entry_.end() ? nullptr : &nodes_[it->second];
}

}  // namespace knots::telemetry
