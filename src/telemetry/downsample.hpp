// Window aggregation over telemetry series — the query shapes an InfluxDB
// deployment answers with GROUP BY time(...) buckets.
//
// The head-node aggregator uses these to build coarse views cheaply (mean
// utilization per second for dashboards, per-bucket maxima for peak
// analysis) without shipping every raw heartbeat sample.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "telemetry/metric.hpp"

namespace knots::telemetry {

enum class AggFn { kMean, kMax, kMin, kLast, kSum, kCount };

struct Bucket {
  SimTime start;   ///< Inclusive bucket start time.
  double value;    ///< Aggregated value (0 for empty buckets, which are
                   ///< omitted from the output).
  std::size_t samples;
};

/// Aggregates time-ordered samples into fixed-width buckets aligned to
/// multiples of `bucket_width` (like Influx's GROUP BY time()). Empty
/// buckets are omitted. Samples must be in non-decreasing time order.
std::vector<Bucket> downsample(const std::vector<Sample>& samples,
                               SimTime bucket_width, AggFn fn);

/// Mean of sample values with time >= since (0 when empty).
double window_mean(const std::vector<Sample>& samples, SimTime since);

/// Maximum of sample values with time >= since (0 when empty).
double window_max(const std::vector<Sample>& samples, SimTime since);

/// Exponentially-weighted moving average over the full series, newest last;
/// `alpha` is the weight of each newer sample. Returns 0 when empty.
double ewma(const std::vector<Sample>& samples, double alpha);

}  // namespace knots::telemetry
