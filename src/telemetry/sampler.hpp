// Heartbeat sampler — the pyNVML surrogate.
//
// At every heartbeat it reads the five metrics off each GPU of its node and
// writes them to the node-local TimeSeriesDb. Real NVML counters quantize and
// jitter; `noise_sigma` models that measurement noise, which is what makes
// sub-millisecond heartbeats *hurt* prediction accuracy (Fig 10b).
#pragma once

#include <array>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "gpu/gpu_node.hpp"
#include "telemetry/timeseries_db.hpp"

namespace knots::telemetry {

class HeartbeatSampler {
 public:
  HeartbeatSampler(const gpu::GpuNode& node, TimeSeriesDb& db,
                   Rng rng, double noise_sigma = 0.01)
      : node_(&node), db_(&db), rng_(rng), noise_sigma_(noise_sigma) {
    // Open every series this sampler will ever write once up front; the
    // per-heartbeat writes then go through stable handles instead of a
    // hash lookup per (GPU, metric) — the dominant cost at 1k+ nodes.
    series_.reserve(node.gpu_count());
    for (std::size_t i = 0; i < node.gpu_count(); ++i) {
      const GpuId id = node.gpu(i).id();
      series_.push_back({db.open_series(id, Metric::kSmUtil),
                         db.open_series(id, Metric::kMemUtil),
                         db.open_series(id, Metric::kPowerWatts),
                         db.open_series(id, Metric::kTxBandwidth),
                         db.open_series(id, Metric::kRxBandwidth)});
    }
  }

  /// Samples all GPUs of the node once at time `now`.
  void sample(SimTime now);

  [[nodiscard]] double noise_sigma() const noexcept { return noise_sigma_; }

 private:
  [[nodiscard]] double jitter(double value, double scale);

  const gpu::GpuNode* node_;
  TimeSeriesDb* db_;
  Rng rng_;
  double noise_sigma_;
  /// Pre-opened handles per GPU, in sample() write order.
  std::vector<std::array<TimeSeriesDb::SeriesHandle, 5>> series_;
};

}  // namespace knots::telemetry
