// Heartbeat sampler — the pyNVML surrogate.
//
// At every heartbeat it reads the five metrics off each GPU of its node and
// writes them to the node-local TimeSeriesDb. Real NVML counters quantize and
// jitter; `noise_sigma` models that measurement noise, which is what makes
// sub-millisecond heartbeats *hurt* prediction accuracy (Fig 10b).
#pragma once

#include "core/rng.hpp"
#include "core/types.hpp"
#include "gpu/gpu_node.hpp"
#include "telemetry/timeseries_db.hpp"

namespace knots::telemetry {

class HeartbeatSampler {
 public:
  HeartbeatSampler(const gpu::GpuNode& node, TimeSeriesDb& db,
                   Rng rng, double noise_sigma = 0.01)
      : node_(&node), db_(&db), rng_(rng), noise_sigma_(noise_sigma) {}

  /// Samples all GPUs of the node once at time `now`.
  void sample(SimTime now);

  [[nodiscard]] double noise_sigma() const noexcept { return noise_sigma_; }

 private:
  [[nodiscard]] double jitter(double value, double scale);

  const gpu::GpuNode* node_;
  TimeSeriesDb* db_;
  Rng rng_;
  double noise_sigma_;
};

}  // namespace knots::telemetry
