#include "telemetry/sampler.hpp"

#include <algorithm>

namespace knots::telemetry {

double HeartbeatSampler::jitter(double value, double scale) {
  if (noise_sigma_ <= 0.0) return value;
  return std::max(0.0, value + rng_.normal(0.0, noise_sigma_ * scale));
}

void HeartbeatSampler::sample(SimTime now) {
  for (std::size_t i = 0; i < node_->gpu_count(); ++i) {
    const auto& dev = node_->gpu(i);
    const auto totals = dev.totals();
    const double cap = dev.spec().memory_mb;
    const auto& s = series_[i];
    // Warm the five write slots first so the ring misses overlap the
    // Box–Muller math below instead of serializing after it.
    for (const auto& h : s) db_->prefetch_write(h);
    const double sm = std::clamp(jitter(totals.sm_util, 1.0), 0.0, 1.0);
    const double mem =
        std::clamp(jitter(totals.memory_used_mb / cap, 1.0), 0.0, 1.0);
    const double watts = jitter(dev.power_watts(), 10.0);
    const double tx = jitter(totals.tx_mbps, 100.0);
    const double rx = jitter(totals.rx_mbps, 100.0);
    db_->write(s[0], {now, sm});
    db_->write(s[1], {now, mem});
    db_->write(s[2], {now, watts});
    db_->write(s[3], {now, tx});
    db_->write(s[4], {now, rx});
  }
}

}  // namespace knots::telemetry
