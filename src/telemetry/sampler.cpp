#include "telemetry/sampler.hpp"

#include <algorithm>

namespace knots::telemetry {

double HeartbeatSampler::jitter(double value, double scale) {
  if (noise_sigma_ <= 0.0) return value;
  return std::max(0.0, value + rng_.normal(0.0, noise_sigma_ * scale));
}

void HeartbeatSampler::sample(SimTime now) {
  for (std::size_t i = 0; i < node_->gpu_count(); ++i) {
    const auto& dev = node_->gpu(i);
    const auto totals = dev.totals();
    const double cap = dev.spec().memory_mb;
    db_->write(dev.id(), Metric::kSmUtil,
               {now, std::clamp(jitter(totals.sm_util, 1.0), 0.0, 1.0)});
    db_->write(dev.id(), Metric::kMemUtil,
               {now, std::clamp(jitter(totals.memory_used_mb / cap, 1.0),
                                0.0, 1.0)});
    db_->write(dev.id(), Metric::kPowerWatts,
               {now, jitter(dev.power_watts(), 10.0)});
    db_->write(dev.id(), Metric::kTxBandwidth,
               {now, jitter(totals.tx_mbps, 100.0)});
    db_->write(dev.id(), Metric::kRxBandwidth,
               {now, jitter(totals.rx_mbps, 100.0)});
  }
}

}  // namespace knots::telemetry
