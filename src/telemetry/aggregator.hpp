// Head-node utilization aggregator (Fig 5).
//
// Queries each worker node's TimeSeriesDb and presents schedulers with a
// cluster-wide view: latest per-GPU utilization, windowed series (the
// time-series window `d` of §IV-C), and nodes sorted by free memory
// (Algorithm 1's Sort_by_Free_Memory).
//
// The read API is tick-loop friendly: GPU lookup is O(1) via an index built
// at registration, windows can be filled into caller-owned scratch buffers
// or read zero-copy, and the sorted-by-free-memory list is cached — the
// stable_sort reruns only when the underlying views actually changed since
// the previous call (telemetry writes land once per tick, but schedulers ask
// once per pending pod). Not thread-safe; each simulated cluster owns one.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "gpu/gpu_node.hpp"
#include "obs/metrics.hpp"
#include "telemetry/timeseries_db.hpp"

namespace knots::telemetry {

/// Latest known state of one GPU, as seen through telemetry.
struct GpuView {
  NodeId node;
  GpuId gpu;
  double sm_util = 0.0;        ///< Latest sampled SM utilization [0,1].
  double mem_util = 0.0;       ///< Latest sampled memory utilization [0,1].
  double mem_used_mb = 0.0;
  double free_mem_mb = 0.0;    ///< usable capacity − used (telemetry view).
  double power_watts = 0.0;
  bool parked = false;
  int residents = 0;
  SimTime last_heartbeat = -1; ///< Time of the newest sample; -1 = never.
  /// True when the series missed enough heartbeats to cross the staleness
  /// horizon — the values above are last-known-good, not current.
  bool stale = false;

  bool operator==(const GpuView&) const = default;
};

class UtilizationAggregator {
 public:
  /// Registers a worker node and its database. Order defines node index.
  void register_node(const gpu::GpuNode& node, const TimeSeriesDb& db);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  // -- Staleness rule (DESIGN.md §7) --
  /// A series is stale when now − last_heartbeat > horizon. Horizon 0
  /// (default) disables the rule; the cluster sets it to
  /// stale_after_heartbeats × tick.
  void set_staleness_horizon(SimTime horizon) noexcept { horizon_ = horizon; }
  /// Advances the aggregator's notion of "now" (called once per cluster
  /// tick, after telemetry lands); snapshots compare heartbeat ages
  /// against it.
  void begin_tick(SimTime now) noexcept { now_ = now; }
  /// Staleness of one GPU's series under the configured horizon.
  [[nodiscard]] bool stale(GpuId gpu) const;

  /// Latest per-GPU snapshot of the whole cluster.
  [[nodiscard]] std::vector<GpuView> snapshot() const;

  /// Fills `out` (cleared first) with the latest per-GPU snapshot without
  /// reallocating once `out` has warmed up to cluster size.
  void snapshot_into(std::vector<GpuView>& out) const;

  /// Snapshot of *active* (non-parked) GPUs sorted by free memory
  /// (descending) — Algorithm 1's node list. The returned reference stays
  /// valid until the next call; the sort is skipped when no view changed.
  [[nodiscard]] const std::vector<GpuView>& active_sorted_by_free_memory()
      const;

  /// Windowed series for a metric of one GPU: samples with
  /// time >= now − window. Allocates; prefer window_into()/window_view()
  /// on the tick path.
  [[nodiscard]] std::vector<double> window(GpuId gpu, Metric metric,
                                           SimTime now, SimTime window) const;

  /// Fills `out` (cleared first) with the windowed series, reusing its
  /// capacity. Leaves `out` empty for unknown GPUs.
  void window_into(GpuId gpu, Metric metric, SimTime now, SimTime window,
                   std::vector<double>& out) const;

  /// Zero-copy windowed series (empty view for unknown GPUs).
  [[nodiscard]] WindowView window_view(GpuId gpu, Metric metric, SimTime now,
                                       SimTime window) const;

  /// Cached window aggregate for one GPU's metric (see
  /// TimeSeriesDb::window_stats). Zero-count aggregate for unknown GPUs.
  [[nodiscard]] const WindowAggregate& window_stats(GpuId gpu, Metric metric,
                                                    SimTime now,
                                                    SimTime window) const;

  /// Profiles each active_sorted_by_free_memory() call (wall time, ns) into
  /// `hist`. Pass nullptr to detach. Observation only.
  void set_sort_profile(obs::Histogram* hist) noexcept {
    sort_profile_ = hist;
  }

 private:
  struct Entry {
    const gpu::GpuNode* node;
    const TimeSeriesDb* db;
    std::size_t first_slot;  ///< Index of this node's first GPU slot.
  };
  /// Latest-value cache for one GPU's series, refreshed only when its
  /// node's database has actually appended samples (total_samples() moved).
  /// Schedulers snapshot once per pending pod but telemetry lands once per
  /// tick — without this, every snapshot pays four hash lookups per GPU.
  struct CachedSeries {
    double sm_util = 0.0;
    double mem_util = 0.0;
    double power_watts = 0.0;
    SimTime last_heartbeat = -1;
    /// Direct series handles, resolved on first refresh (the series appear
    /// once the node's sampler runs); null until then.
    TimeSeriesDb::ConstSeriesHandle h_sm{};
    TimeSeriesDb::ConstSeriesHandle h_mem{};
    TimeSeriesDb::ConstSeriesHandle h_power{};
  };
  /// Sort key for Algorithm 1: struct-of-arrays view of the hot field, so
  /// the stable_sort swaps 16-byte keys instead of whole GpuViews.
  struct SortKey {
    double free_mem_mb;
    std::uint32_t idx;
  };
  [[nodiscard]] const Entry* find_gpu(GpuId gpu) const;
  void refresh_entry(std::size_t entry_idx) const;

  std::vector<Entry> nodes_;
  std::unordered_map<std::int32_t, std::size_t> gpu_to_entry_;
  SimTime horizon_ = 0;
  SimTime now_ = 0;

  mutable std::vector<std::uint64_t> entry_seen_;  ///< db stamp per entry
  mutable std::vector<CachedSeries> series_cache_;  ///< per GPU slot

  // active_sorted_by_free_memory cache: `active_input_` is the unsorted
  // active list of the previous call, `active_sorted_` its sorted result.
  mutable std::vector<GpuView> snapshot_scratch_;
  mutable std::vector<GpuView> active_input_;
  mutable std::vector<GpuView> active_sorted_;
  mutable std::vector<SortKey> sort_keys_;
  mutable bool active_cache_valid_ = false;
  obs::Histogram* sort_profile_ = nullptr;
};

}  // namespace knots::telemetry
