// Head-node utilization aggregator (Fig 5).
//
// Queries each worker node's TimeSeriesDb and presents schedulers with a
// cluster-wide view: latest per-GPU utilization, windowed series (the
// time-series window `d` of §IV-C), and nodes sorted by free memory
// (Algorithm 1's Sort_by_Free_Memory).
#pragma once

#include <vector>

#include "core/types.hpp"
#include "gpu/gpu_node.hpp"
#include "telemetry/timeseries_db.hpp"

namespace knots::telemetry {

/// Latest known state of one GPU, as seen through telemetry.
struct GpuView {
  NodeId node;
  GpuId gpu;
  double sm_util = 0.0;        ///< Latest sampled SM utilization [0,1].
  double mem_util = 0.0;       ///< Latest sampled memory utilization [0,1].
  double mem_used_mb = 0.0;
  double free_mem_mb = 0.0;    ///< capacity − used (telemetry view).
  double power_watts = 0.0;
  bool parked = false;
  int residents = 0;
};

class UtilizationAggregator {
 public:
  /// Registers a worker node and its database. Order defines node index.
  void register_node(const gpu::GpuNode& node, const TimeSeriesDb& db);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Latest per-GPU snapshot of the whole cluster.
  [[nodiscard]] std::vector<GpuView> snapshot() const;

  /// Snapshot of *active* (non-parked) GPUs sorted by free memory
  /// (descending) — Algorithm 1's node list.
  [[nodiscard]] std::vector<GpuView> active_sorted_by_free_memory() const;

  /// Windowed series for a metric of one GPU: samples with
  /// time >= now − window.
  [[nodiscard]] std::vector<double> window(GpuId gpu, Metric metric,
                                           SimTime now, SimTime window) const;

 private:
  struct Entry {
    const gpu::GpuNode* node;
    const TimeSeriesDb* db;
  };
  [[nodiscard]] const Entry* find_gpu(GpuId gpu) const;

  std::vector<Entry> nodes_;
};

}  // namespace knots::telemetry
