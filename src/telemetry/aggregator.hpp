// Head-node utilization aggregator (Fig 5).
//
// Queries each worker node's TimeSeriesDb and presents schedulers with a
// cluster-wide view: latest per-GPU utilization, windowed series (the
// time-series window `d` of §IV-C), and nodes sorted by free memory
// (Algorithm 1's Sort_by_Free_Memory).
//
// The read API is tick-loop friendly: GPU lookup is O(1) via an index built
// at registration, windows can be filled into caller-owned scratch buffers
// or read zero-copy, and the sorted-by-free-memory list is hierarchical —
// entries are partitioned into lanes (the cluster's node shards), each lane
// maintains its own sorted run of {free-memory, slot} keys, and a query
// k-way merges the runs instead of re-sorting the whole cluster. Runs are
// dirty-tracked: a lane re-sorts only when its databases actually appended
// samples or a device's usable capacity moved (ECC retirement). The cluster
// refreshes each lane's run from its lane-parallel telemetry phase
// (refresh_lane), so by the time a scheduler asks, the merge is all that is
// left. Both the series refresh and the run maintenance are demand-driven:
// policies that never query (Res-Ag, Uniform) never pay for either.
//
// Query methods are not thread-safe; refresh_lane is safe to call from
// concurrent lanes because every mutable structure it touches is partitioned
// by lane. Each simulated cluster owns one aggregator.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "gpu/gpu_node.hpp"
#include "obs/metrics.hpp"
#include "telemetry/timeseries_db.hpp"

namespace knots::telemetry {

/// Latest known state of one GPU, as seen through telemetry.
struct GpuView {
  NodeId node;
  GpuId gpu;
  double sm_util = 0.0;        ///< Latest sampled SM utilization [0,1].
  double mem_util = 0.0;       ///< Latest sampled memory utilization [0,1].
  double mem_used_mb = 0.0;
  double free_mem_mb = 0.0;    ///< usable capacity − used (telemetry view).
  double power_watts = 0.0;
  bool parked = false;
  int residents = 0;
  SimTime last_heartbeat = -1; ///< Time of the newest sample; -1 = never.
  /// True when the series missed enough heartbeats to cross the staleness
  /// horizon — the values above are last-known-good, not current.
  bool stale = false;
  /// Spot capacity: the hosting node may be reclaimed by the provider.
  /// Static per node (from NodeSpec), surfaced here so schedulers can trade
  /// spot capacity for eviction risk per placement.
  bool preemptible = false;

  bool operator==(const GpuView&) const = default;
};

class UtilizationAggregator {
 public:
  /// Registers a worker node and its database. Order defines node index.
  void register_node(const gpu::GpuNode& node, const TimeSeriesDb& db);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Partitions registered entries into `lanes` shards for the hierarchical
  /// sort; `entry_lanes[e]` is the lane owning entry (node) `e`. Values must
  /// be < `lanes`. Without a partition every entry lives in one implicit
  /// lane, which degenerates to the classic full sort.
  void set_lane_partition(std::vector<std::uint32_t> entry_lanes,
                          std::size_t lanes);

  /// Refreshes one lane's series caches and (when a sorted query has ever
  /// been made) rebuilds its sorted run if anything changed. Intended to be
  /// called from the cluster's lane-parallel telemetry phase: all state it
  /// writes is owned by `lane`, so concurrent calls for distinct lanes are
  /// race-free. No-op until the first query creates demand.
  void refresh_lane(std::size_t lane) const;

  // -- Staleness rule (DESIGN.md §7) --
  /// A series is stale when now − last_heartbeat > horizon. Horizon 0
  /// (default) disables the rule; the cluster sets it to
  /// stale_after_heartbeats × tick.
  void set_staleness_horizon(SimTime horizon) noexcept { horizon_ = horizon; }
  /// Advances the aggregator's notion of "now" (called once per cluster
  /// tick, after telemetry lands); snapshots compare heartbeat ages
  /// against it.
  void begin_tick(SimTime now) noexcept { now_ = now; }
  /// Staleness of one GPU's series under the configured horizon.
  [[nodiscard]] bool stale(GpuId gpu) const;

  /// Latest per-GPU snapshot of the whole cluster.
  [[nodiscard]] std::vector<GpuView> snapshot() const;

  /// Fills `out` (cleared first) with the latest per-GPU snapshot without
  /// reallocating once `out` has warmed up to cluster size.
  void snapshot_into(std::vector<GpuView>& out) const;

  /// Snapshot of *active* (non-parked) GPUs sorted by free memory
  /// (descending) — Algorithm 1's node list. The returned reference stays
  /// valid until the next call. Served from cache unless a lane run or a
  /// live device field (parked/residents/capacity) moved since the last
  /// merge; ties resolve by registration slot, exactly like the historical
  /// stable_sort.
  [[nodiscard]] const std::vector<GpuView>& active_sorted_by_free_memory()
      const;

  /// Windowed series for a metric of one GPU: samples with
  /// time >= now − window. Allocates; prefer window_into()/window_view()
  /// on the tick path.
  [[nodiscard]] std::vector<double> window(GpuId gpu, Metric metric,
                                           SimTime now, SimTime window) const;

  /// Fills `out` (cleared first) with the windowed series, reusing its
  /// capacity. Leaves `out` empty for unknown GPUs.
  void window_into(GpuId gpu, Metric metric, SimTime now, SimTime window,
                   std::vector<double>& out) const;

  /// Zero-copy windowed series (empty view for unknown GPUs).
  [[nodiscard]] WindowView window_view(GpuId gpu, Metric metric, SimTime now,
                                       SimTime window) const;

  /// Cached window aggregate for one GPU's metric (see
  /// TimeSeriesDb::window_stats). Zero-count aggregate for unknown GPUs.
  [[nodiscard]] const WindowAggregate& window_stats(GpuId gpu, Metric metric,
                                                    SimTime now,
                                                    SimTime window) const;

  /// Profiles each active_sorted_by_free_memory() call (wall time, ns) into
  /// `hist`. Pass nullptr to detach. Observation only.
  void set_sort_profile(obs::Histogram* hist) noexcept {
    sort_profile_ = hist;
  }

  /// Registers a device-mutation epoch: the owner bumps `*epoch` whenever
  /// any registered device's parked/residents/usable-capacity state changes
  /// (placement, completion, park, ECC retirement). While the epoch is
  /// unchanged, queries skip the O(slots) live-bits diff entirely — at
  /// datacenter scale that scan dominates the query cost. Without an epoch
  /// (standalone use) every query diffs, which is always correct.
  void set_live_epoch(const std::uint64_t* epoch) noexcept {
    live_epoch_ = epoch;
  }

 private:
  struct Entry {
    const gpu::GpuNode* node;
    const TimeSeriesDb* db;
    std::size_t first_slot;  ///< Index of this node's first GPU slot.
  };
  /// Latest-value cache for one GPU's series, refreshed only when its
  /// node's database has actually appended samples (total_samples() moved).
  /// Schedulers snapshot once per pending pod but telemetry lands once per
  /// tick — without this, every snapshot pays four hash lookups per GPU.
  struct CachedSeries {
    double sm_util = 0.0;
    double mem_util = 0.0;
    double power_watts = 0.0;
    SimTime last_heartbeat = -1;
    /// Direct series handles, resolved on first refresh (the series appear
    /// once the node's sampler runs); null until then.
    TimeSeriesDb::ConstSeriesHandle h_sm{};
    TimeSeriesDb::ConstSeriesHandle h_mem{};
    TimeSeriesDb::ConstSeriesHandle h_power{};
  };
  /// Sort key for Algorithm 1. Keyed (free_mem desc, slot asc): slot order
  /// is registration order, so merged output ties resolve exactly like the
  /// historical stable_sort over the unsorted snapshot did.
  struct SortKey {
    double free_mem_mb;
    std::uint32_t slot;
  };
  /// One lane's sorted run over its *unparked* GPU slots (as of the last
  /// live-bits diff — a park/unpark flip dirties the owning lane, so at
  /// datacenter scale the per-tick sort covers only the active population,
  /// not the parked long tail).
  struct LaneRun {
    std::vector<SortKey> keys;
    /// Keys are out of date (registration, capacity change, or samples
    /// landed while sort demand was off).
    bool dirty = true;
    /// Bumped on every key rebuild; the merge caches the sum across lanes
    /// to detect staleness without a flag lanes would race on.
    std::uint64_t version = 0;
  };
  /// Live per-slot device fields the views depend on but no database stamp
  /// tracks. A cheap pre-merge scan diffs them against the device.
  struct LiveBits {
    double effective_mb = -1.0;
    std::int32_t residents = -1;
    bool parked = false;
  };

  /// Immutable per-slot facts captured at registration, so the merge's
  /// random-order (free-sorted) emission never chases node/device pointers.
  struct SlotStatic {
    GpuId gpu;
    NodeId node;
    double cap = 0.0;  ///< physical memory_mb (spec; ECC-independent)
    bool preemptible = false;  ///< hosting node is spot capacity (spec)
  };

  [[nodiscard]] const Entry* find_gpu(GpuId gpu) const;
  bool refresh_entry(std::size_t entry_idx) const;  ///< true if stamp moved
  void ensure_partition() const;
  void rebuild_lane_keys(std::size_t lane) const;
  [[nodiscard]] GpuView make_view(std::size_t entry_idx,
                                  std::size_t gpu_idx) const;
  /// make_view served entirely from slot_static_/series_cache_/live_bits_.
  /// Valid only after the live-bits diff of the current query (the merge
  /// path) — snapshot paths, which never diff, keep reading devices live.
  [[nodiscard]] GpuView make_view_cached(std::uint32_t slot) const;
  /// Diffs parked/residents/capacity against the last merge; marks lanes
  /// whose sort keys went stale (capacity moved) dirty. Returns true if any
  /// field moved.
  bool live_bits_moved() const;
  void merge_runs() const;

  std::vector<Entry> nodes_;
  std::unordered_map<std::int32_t, std::size_t> gpu_to_entry_;
  /// Owning entry index per GPU slot (inverse of Entry::first_slot spans).
  std::vector<std::uint32_t> slot_entry_;
  std::vector<SlotStatic> slot_static_;  ///< per GPU slot
  SimTime horizon_ = 0;
  SimTime now_ = 0;

  mutable std::vector<std::uint64_t> entry_seen_;  ///< db stamp per entry
  mutable std::vector<CachedSeries> series_cache_;  ///< per GPU slot

  // -- Hierarchical sort state --
  // The partition is mutable because ensure_partition() lazily builds the
  // implicit single-lane layout on first query when no explicit partition
  // was configured.
  mutable std::vector<std::uint32_t> entry_lane_;   ///< lane per entry
  mutable std::vector<std::vector<std::uint32_t>> lane_entries_;
  mutable std::vector<LaneRun> lane_runs_;
  /// Tick at which refresh_lane last refreshed each lane's entries. Samples
  /// land only in the cluster's telemetry phase, so a query at the same
  /// tick can skip re-checking every entry's db stamp.
  mutable std::vector<SimTime> lane_fresh_;
  mutable std::vector<LiveBits> live_bits_;         ///< per GPU slot
  /// Sticky demand flags: set by the first query of each kind, read by
  /// refresh_lane so non-querying policies never pay refresh/sort costs.
  mutable bool refresh_demand_ = false;
  mutable bool sort_demand_ = false;
  // Merged-result cache: valid while lane-run versions, live device bits,
  // and the tick's `now` (staleness flags) are all unchanged.
  mutable std::vector<GpuView> active_sorted_;
  mutable std::uint64_t merged_version_sum_ = ~std::uint64_t{0};
  mutable SimTime merged_now_ = -1;
  mutable bool merged_valid_ = false;
  mutable std::vector<std::size_t> merge_heads_;    ///< scratch
  /// Device-mutation epoch (see set_live_epoch); null = diff every query.
  const std::uint64_t* live_epoch_ = nullptr;
  mutable std::uint64_t live_epoch_seen_ = ~std::uint64_t{0};
  obs::Histogram* sort_profile_ = nullptr;
};

}  // namespace knots::telemetry
