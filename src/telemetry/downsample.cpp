#include "telemetry/downsample.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace knots::telemetry {

std::vector<Bucket> downsample(const std::vector<Sample>& samples,
                               SimTime bucket_width, AggFn fn) {
  KNOTS_CHECK(bucket_width > 0);
  std::vector<Bucket> out;
  std::size_t i = 0;
  while (i < samples.size()) {
    const SimTime start = (samples[i].time / bucket_width) * bucket_width;
    const SimTime end = start + bucket_width;
    double acc = 0;
    double best = samples[i].value;
    std::size_t count = 0;
    double last = 0;
    for (; i < samples.size() && samples[i].time < end; ++i) {
      const double v = samples[i].value;
      acc += v;
      last = v;
      switch (fn) {
        case AggFn::kMax: best = std::max(best, v); break;
        case AggFn::kMin: best = std::min(best, v); break;
        default: break;
      }
      ++count;
    }
    double value = 0;
    switch (fn) {
      case AggFn::kMean: value = acc / static_cast<double>(count); break;
      case AggFn::kMax:
      case AggFn::kMin: value = best; break;
      case AggFn::kLast: value = last; break;
      case AggFn::kSum: value = acc; break;
      case AggFn::kCount: value = static_cast<double>(count); break;
    }
    out.push_back(Bucket{start, value, count});
  }
  return out;
}

double window_mean(const std::vector<Sample>& samples, SimTime since) {
  double acc = 0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (s.time >= since) {
      acc += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double window_max(const std::vector<Sample>& samples, SimTime since) {
  double best = 0;
  bool any = false;
  for (const auto& s : samples) {
    if (s.time >= since) {
      best = any ? std::max(best, s.value) : s.value;
      any = true;
    }
  }
  return any ? best : 0.0;
}

double ewma(const std::vector<Sample>& samples, double alpha) {
  KNOTS_CHECK(alpha > 0.0 && alpha <= 1.0);
  if (samples.empty()) return 0.0;
  double acc = samples.front().value;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    acc = (1.0 - alpha) * acc + alpha * samples[i].value;
  }
  return acc;
}

}  // namespace knots::telemetry
