// Node-local time-series database — the InfluxDB surrogate.
//
// One instance lives on each worker node; the head-node aggregator queries it
// per heartbeat (Fig 5). Series are bounded ring buffers: Influx retention
// policies map to a fixed per-series sample capacity.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/ring_buffer.hpp"
#include "core/types.hpp"
#include "telemetry/metric.hpp"

namespace knots::telemetry {

class TimeSeriesDb {
 public:
  /// `retention` = max samples kept per (gpu, metric) series.
  explicit TimeSeriesDb(std::size_t retention = 65536)
      : retention_(retention) {}

  /// Appends one observation.
  void write(GpuId gpu, Metric metric, Sample sample);

  /// Values (oldest-first) with time >= since. Empty when none.
  [[nodiscard]] std::vector<double> query_window(GpuId gpu, Metric metric,
                                                 SimTime since) const;

  /// Full retained samples (oldest-first) for a series.
  [[nodiscard]] std::vector<Sample> query_all(GpuId gpu, Metric metric) const;

  /// Most recent value, or fallback when the series is empty.
  [[nodiscard]] double latest(GpuId gpu, Metric metric,
                              double fallback = 0.0) const;

  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }
  [[nodiscard]] std::size_t total_samples() const noexcept {
    return total_samples_;
  }

 private:
  struct Key {
    std::int32_t gpu;
    int metric;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::int64_t>{}(
          (static_cast<std::int64_t>(k.gpu) << 8) | k.metric);
    }
  };

  std::size_t retention_;
  std::unordered_map<Key, RingBuffer<Sample>, KeyHash> series_;
  std::size_t total_samples_ = 0;
};

}  // namespace knots::telemetry
