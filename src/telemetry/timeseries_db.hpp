// Node-local time-series database — the InfluxDB surrogate.
//
// One instance lives on each worker node; the head-node aggregator queries it
// per heartbeat (Fig 5). Series are bounded ring buffers: Influx retention
// policies map to a fixed per-series sample capacity.
//
// Since PR 2 the query side is built for the scheduler tick loop:
//  * window_view() hands out a zero-copy WindowView (at most two spans over
//    the ring) instead of materializing a vector per (GPU, metric, tick);
//  * every write feeds a per-series RollingStats, so window means/extrema of
//    the live window are O(1) reads;
//  * window_stats() percentile aggregates are cached per write generation —
//    repeated queries within one tick sort the window once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/page_arena.hpp"
#include "core/ring_buffer.hpp"
#include "core/types.hpp"
#include "stats/rolling.hpp"
#include "telemetry/metric.hpp"

namespace knots::telemetry {

/// Zero-copy view of one series window: the retained samples with
/// time >= since, as at most two contiguous spans (the ring may wrap).
/// Invalidated by the next write() to the same series.
struct WindowView {
  std::span<const Sample> first;
  std::span<const Sample> second;

  [[nodiscard]] std::size_t size() const noexcept {
    return first.size() + second.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return first.empty() && second.empty();
  }
  /// Sample `i` counted oldest-first.
  [[nodiscard]] const Sample& operator[](std::size_t i) const noexcept {
    return i < first.size() ? first[i] : second[i - first.size()];
  }
  /// Appends the window's values (oldest-first) to `out` without clearing.
  void append_values_to(std::vector<double>& out) const {
    out.reserve(out.size() + size());
    for (const Sample& s : first) out.push_back(s.value);
    for (const Sample& s : second) out.push_back(s.value);
  }
};

/// Per-window aggregate served from the per-tick cache.
struct WindowAggregate {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class TimeSeriesDb {
 private:
  struct Series;

 public:
  /// `retention` = max samples kept per (gpu, metric) series.
  /// `stats_window` = span (in samples) of the per-series RollingStats
  /// maintained on write; 0 disables them.
  /// `arena` (optional, not owned, must outlive the db) backs the ring
  /// buffers — the cluster shares one huge-page arena across all node dbs
  /// so a datacenter's rings pack contiguously instead of thrashing the
  /// TLB; null keeps the global heap.
  explicit TimeSeriesDb(std::size_t retention = 65536,
                        std::size_t stats_window = 0,
                        core::PageArena* arena = nullptr)
      : retention_(retention),
        stats_window_(stats_window),
        arena_(arena),
        series_(SeriesAlloc(arena)) {}

  /// Appends one observation.
  void write(GpuId gpu, Metric metric, Sample sample);

  /// Stable handle to one series for repeated writes. The map is
  /// node-based, so the handle survives rehashes and stays valid for the
  /// db's lifetime (series are never erased). Opening creates the (empty)
  /// series if it does not exist yet.
  class SeriesHandle {
   public:
    SeriesHandle() = default;

   private:
    friend class TimeSeriesDb;
    explicit SeriesHandle(Series* s) : series_(s) {}
    Series* series_ = nullptr;
  };
  [[nodiscard]] SeriesHandle open_series(GpuId gpu, Metric metric);

  /// write() without the per-call hash lookup — the heartbeat hot path
  /// (every sampler writes five series per GPU per tick).
  void write(SeriesHandle handle, Sample sample);

  /// Warms the handle's next write slot (the rings of a datacenter-scale
  /// run exceed cache; issuing the prefetch before the jitter math hides
  /// the miss behind the FP work).
  void prefetch_write(SeriesHandle handle) const noexcept;

  /// latest()/latest_time() through a pre-opened handle (aggregator
  /// refresh path).
  [[nodiscard]] double latest(SeriesHandle handle,
                              double fallback = 0.0) const noexcept;
  [[nodiscard]] SimTime latest_time(SeriesHandle handle) const noexcept;

  /// Read-only handle for consumers holding a const db (the aggregator):
  /// same stability guarantee as SeriesHandle, null when the series does
  /// not exist yet.
  class ConstSeriesHandle {
   public:
    ConstSeriesHandle() = default;
    [[nodiscard]] explicit operator bool() const noexcept {
      return series_ != nullptr;
    }

   private:
    friend class TimeSeriesDb;
    explicit ConstSeriesHandle(const Series* s) : series_(s) {}
    const Series* series_ = nullptr;
  };
  [[nodiscard]] ConstSeriesHandle find_series(GpuId gpu,
                                              Metric metric) const noexcept {
    return ConstSeriesHandle{find(gpu, metric)};
  }
  [[nodiscard]] double latest(ConstSeriesHandle handle,
                              double fallback = 0.0) const noexcept;
  [[nodiscard]] SimTime latest_time(ConstSeriesHandle handle) const noexcept;

  /// Zero-copy window: samples (oldest-first) with time >= since.
  [[nodiscard]] WindowView window_view(GpuId gpu, Metric metric,
                                       SimTime since) const;

  /// Values (oldest-first) with time >= since. Empty when none.
  /// Allocates; prefer window_view() on the tick path.
  [[nodiscard]] std::vector<double> query_window(GpuId gpu, Metric metric,
                                                 SimTime since) const;

  /// Aggregate over the window with time >= since. Cached: repeated calls
  /// between writes to the series reuse one sorted pass. Zero-count
  /// aggregate when the window is empty.
  [[nodiscard]] const WindowAggregate& window_stats(GpuId gpu, Metric metric,
                                                    SimTime since) const;

  /// O(1) stats over the newest `stats_window` samples, maintained on
  /// write. Null when stats are disabled or the series is unknown.
  [[nodiscard]] const stats::RollingStats* live_stats(GpuId gpu,
                                                      Metric metric) const;

  /// Full retained samples (oldest-first) for a series.
  [[nodiscard]] std::vector<Sample> query_all(GpuId gpu, Metric metric) const;

  /// Most recent value, or fallback when the series is empty.
  [[nodiscard]] double latest(GpuId gpu, Metric metric,
                              double fallback = 0.0) const;

  /// Timestamp of the most recent sample, or -1 when the series is empty
  /// (what the aggregator's staleness rule compares against `now`).
  [[nodiscard]] SimTime latest_time(GpuId gpu, Metric metric) const;

  /// Monotonic per-series write counter (0 for unknown series); bumping it
  /// is what invalidates the window_stats cache.
  [[nodiscard]] std::uint64_t generation(GpuId gpu, Metric metric) const;

  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }
  [[nodiscard]] std::size_t total_samples() const noexcept {
    return total_samples_;
  }

  struct Key {
    std::int32_t gpu;
    int metric;
    bool operator==(const Key&) const = default;
  };
  /// splitmix64 over the packed key: full 64-bit avalanche, no collisions
  /// for metric ids >= 256 (the old `(gpu << 8) | metric` packing aliased
  /// those onto neighbouring GPUs).
  struct KeyHash {
    static constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    }
    std::size_t operator()(const Key& k) const noexcept {
      const auto packed =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.gpu))
           << 32) |
          static_cast<std::uint32_t>(k.metric);
      return static_cast<std::size_t>(splitmix64(packed));
    }
  };

 private:
  friend class SeriesHandle;

  struct Series {
    explicit Series(std::size_t retention, std::size_t stats_window,
                    core::PageArena* arena)
        : buf(retention, core::ArenaAllocator<Sample>(arena)),
          live(stats_window == 0 ? nullptr
                                 : std::make_unique<stats::RollingStats>(
                                       stats_window)) {}
    RingBuffer<Sample, core::ArenaAllocator<Sample>> buf;
    std::unique_ptr<stats::RollingStats> live;
    std::uint64_t generation = 0;
    // window_stats cache: valid while (generation, since) match.
    mutable WindowAggregate agg_cache;
    mutable std::uint64_t agg_generation = 0;  ///< 0 = never computed.
    mutable SimTime agg_since = 0;
    mutable std::vector<double> sort_scratch;
  };

  using SampleRing = RingBuffer<Sample, core::ArenaAllocator<Sample>>;

  [[nodiscard]] const Series* find(GpuId gpu, Metric metric) const;
  /// Logical index of the first sample with time >= since.
  static std::size_t lower_bound_time(const SampleRing& buf, SimTime since);

  std::size_t retention_;
  std::size_t stats_window_;
  core::PageArena* arena_ = nullptr;  ///< not owned; null = global heap
  /// Map nodes come from the same arena as the rings: the scrape touches
  /// every series' head metadata each tick, and packing the nodes beats
  /// scattering them across the heap. Series are never erased, so the
  /// bump-only arena fits; a rehash strands only the old bucket array.
  using SeriesAlloc = core::ArenaAllocator<std::pair<const Key, Series>>;
  std::unordered_map<Key, Series, KeyHash, std::equal_to<Key>, SeriesAlloc>
      series_;
  std::size_t total_samples_ = 0;
};

inline void TimeSeriesDb::write(SeriesHandle handle, Sample sample) {
  Series& s = *handle.series_;
  s.buf.push(sample);
  if (s.live) s.live->push(sample.value);
  ++s.generation;
  ++total_samples_;
}

inline void TimeSeriesDb::prefetch_write(SeriesHandle handle) const noexcept {
  handle.series_->buf.prefetch_write_slot();
}

inline double TimeSeriesDb::latest(SeriesHandle handle,
                                   double fallback) const noexcept {
  const Series& s = *handle.series_;
  return s.buf.empty() ? fallback : s.buf.back().value;
}

inline SimTime TimeSeriesDb::latest_time(SeriesHandle handle) const noexcept {
  const Series& s = *handle.series_;
  return s.buf.empty() ? SimTime{-1} : s.buf.back().time;
}

inline double TimeSeriesDb::latest(ConstSeriesHandle handle,
                                   double fallback) const noexcept {
  const Series& s = *handle.series_;
  return s.buf.empty() ? fallback : s.buf.back().value;
}

inline SimTime TimeSeriesDb::latest_time(
    ConstSeriesHandle handle) const noexcept {
  const Series& s = *handle.series_;
  return s.buf.empty() ? SimTime{-1} : s.buf.back().time;
}

}  // namespace knots::telemetry
