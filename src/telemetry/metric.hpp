// The five GPU metrics Knots logs in real time (§IV-A): SM utilization,
// memory utilization, power, transfer (tx) and receive (rx) bandwidth.
#pragma once

#include <array>
#include <string_view>

#include "core/types.hpp"

namespace knots::telemetry {

enum class Metric : int {
  kSmUtil = 0,     ///< [0,1] fraction of SM cycles.
  kMemUtil,        ///< [0,1] fraction of device memory in use.
  kPowerWatts,     ///< Instantaneous board power.
  kTxBandwidth,    ///< Host-to-device MB/s.
  kRxBandwidth,    ///< Device-to-host MB/s.
};

inline constexpr std::array<Metric, 5> kAllMetrics = {
    Metric::kSmUtil, Metric::kMemUtil, Metric::kPowerWatts,
    Metric::kTxBandwidth, Metric::kRxBandwidth};

constexpr std::string_view metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kSmUtil: return "sm_util";
    case Metric::kMemUtil: return "mem_util";
    case Metric::kPowerWatts: return "power";
    case Metric::kTxBandwidth: return "tx_bandwidth";
    case Metric::kRxBandwidth: return "rx_bandwidth";
  }
  return "unknown";
}

/// One logged observation.
struct Sample {
  SimTime time;
  double value;
};

}  // namespace knots::telemetry
