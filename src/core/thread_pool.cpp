#include "core/thread_pool.hpp"

#include <atomic>

namespace knots {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([i, &fn] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace knots
