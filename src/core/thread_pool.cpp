#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace knots {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t lanes = std::min(n, workers_.size());
  if (lanes <= 1) {
    // Degenerate pool (or a single item): run inline on the caller — no
    // queue round-trip, no future, no fence.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Self-scheduling: one resident task per worker pulls index *chunks* off
  // a shared atomic counter. Uneven item costs (a CBP run takes ~3x a
  // Uniform run) balance dynamically, and the queue sees thread_count()
  // entries instead of n. The chunk grain adapts to the range: ~8 grabs
  // per lane amortizes the atomic for small ranges (the 10–100-node regime
  // used to pay one fetch_add per slot) while staying fine-grained enough
  // to balance.
  const std::size_t chunk = std::max<std::size_t>(1, n / (lanes * 8));
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([next, n, chunk, &fn] {
      for (std::size_t lo = next->fetch_add(chunk, std::memory_order_relaxed);
           lo < n; lo = next->fetch_add(chunk, std::memory_order_relaxed)) {
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    }));
  }
  // get() rethrows the first exception of each lane (remaining indices of
  // a throwing lane are abandoned, as with the previous per-index tasks).
  for (auto& f : futures) f.get();
}

}  // namespace knots
