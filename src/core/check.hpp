// Lightweight runtime contract checks.
//
// KNOTS_CHECK is always on (simulation correctness beats raw speed here; the
// hot loops are measured with it enabled and remain orders of magnitude
// faster than the real systems being modelled).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace knots::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "KNOTS_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace knots::detail

#define KNOTS_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::knots::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define KNOTS_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::knots::detail::check_failed(#expr, __FILE__, __LINE__, (msg));      \
  } while (0)
