// Deterministic random number generation for reproducible experiments.
//
// Engine: xoshiro256** seeded via splitmix64, per Blackman & Vigna. Every
// experiment component owns its own Rng (derived from a root seed + stream
// id), so adding a component never perturbs the draws of another.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace knots {

/// splitmix64 step; used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine satisfying UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Convenience wrapper bundling an engine with the distributions used in the
/// workload models. All methods are deterministic given (seed, call order).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) noexcept
      : root_seed_(seed), engine_(seed) {}

  /// Derives an independent child stream; `stream` labels the component.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  /// Counter-based fork: the `index`-th stream of a `base` family,
  /// identical to `fork(base + index)`. Because the derivation is a pure
  /// function of (root seed, stream id) — no shared engine state — lane
  /// workers can fork out of order and still reproduce the exact child a
  /// sequential pass would have produced. ForkSequence pins the law.
  [[nodiscard]] Rng fork_at(std::uint64_t base,
                            std::uint64_t index) const noexcept {
    return fork(base + index);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Exponential with given mean (= 1/rate).
  double exponential(double mean) noexcept;
  /// Normal with mean/stddev (Box–Muller, one value per call).
  double normal(double mean, double stddev) noexcept;
  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) noexcept;
  /// Bounded Pareto with shape alpha on [lo, hi].
  double pareto(double alpha, double lo, double hi) noexcept;
  /// Bernoulli trial.
  bool chance(double p) noexcept;
  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  Xoshiro256& engine() noexcept { return engine_; }

 private:
  std::uint64_t root_seed_;
  Xoshiro256 engine_;

  explicit Rng(Xoshiro256 engine, std::uint64_t root) noexcept
      : root_seed_(root), engine_(engine) {}
};

/// Sequential fork dispenser over a stream family: next() hands out the
/// fork for index 0, 1, 2, … in order. The determinism law — pinned by
/// tests/core/test_rng.cpp — is that the i-th next() equals
/// parent.fork_at(base, i), so a serial dispenser loop and a parallel
/// fork_at pre-pass are interchangeable.
class ForkSequence {
 public:
  ForkSequence(const Rng& parent, std::uint64_t base) noexcept
      : parent_(parent), base_(base) {}

  [[nodiscard]] Rng next() noexcept {
    return parent_.fork_at(base_, index_++);
  }
  [[nodiscard]] std::uint64_t issued() const noexcept { return index_; }

 private:
  Rng parent_;
  std::uint64_t base_;
  std::uint64_t index_ = 0;
};

}  // namespace knots
