// Minimal fixed-size thread pool for embarrassingly parallel experiment
// sweeps (per-seed and per-scheduler runs in the bench harness).
//
// The simulation engine itself is single-threaded and deterministic; the pool
// only ever runs *independent* simulations concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace knots {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task; the future resolves with its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is self-scheduled in adaptive chunks (~8 grabs per lane) from a
  /// shared atomic counter, so unevenly sized items balance across threads
  /// without paying per-index synchronization on small ranges. Runs inline
  /// on the caller when the pool has a single worker. fn must be safe to
  /// call concurrently for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace knots
