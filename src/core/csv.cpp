#include "core/csv.hpp"

#include "core/check.hpp"
#include "core/table.hpp"

namespace knots {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  KNOTS_CHECK(!header.empty());
  if (ok()) row(header);
  rows_ = 0;  // header does not count
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  KNOTS_CHECK_MSG(cells.size() == columns_, "csv row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> cells = {label};
  for (double v : values) cells.push_back(fmt(v, precision));
  row(cells);
}

}  // namespace knots
