// Minimal CSV writer for exporting figure data to plotting tools.
//
// Benches print ASCII tables for humans; `--csv <dir>`-style exports (used
// by knots_ctl) write the same series machine-readably.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace knots {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; writes the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void row(const std::vector<std::string>& cells);
  void row(const std::string& label, const std::vector<double>& values,
           int precision = 6);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace knots
