#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/check.hpp"

namespace knots {

TablePrinter& TablePrinter::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

TablePrinter& TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

TablePrinter& TablePrinter::row(const std::string& label,
                                const std::vector<double>& vals,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(vals.size() + 1);
  cells.push_back(label);
  for (double v : vals) cells.push_back(fmt(v, precision));
  rows_.push_back(std::move(cells));
  return *this;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string ascii_bar(double value, double max_value, std::size_t width) {
  if (max_value <= 0) return std::string{};
  double frac = value / max_value;
  frac = std::clamp(frac, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(frac * static_cast<double>(width));
  std::string bar(filled, '#');
  bar.append(width - filled, ' ');
  return bar;
}

void print_series(
    std::ostream& os, const std::string& title, const std::vector<double>& xs,
    const std::vector<std::pair<std::string, std::vector<double>>>& named_ys,
    int precision) {
  os << "\n== " << title << " ==\n";
  os << "x";
  for (const auto& [name, ys] : named_ys) {
    KNOTS_CHECK_MSG(ys.size() == xs.size(), "series length mismatch");
    os << '\t' << name;
  }
  os << '\n';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << fmt(xs[i], precision);
    for (const auto& [name, ys] : named_ys) os << '\t' << fmt(ys[i], precision);
    os << '\n';
  }
}

}  // namespace knots
