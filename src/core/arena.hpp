// Slab arena: chunked object storage with stable addresses.
//
// The cluster creates one Pod per workload spec and never destroys it until
// the run ends. Allocating each pod individually (`make_unique` per spec)
// costs one malloc per pod and scatters the hot lifecycle state across the
// heap; at datacenter scale (10k nodes, ~100k pods) that is both the
// dominant setup cost and a cache liability for the per-tick advance loop.
// The arena batches construction into fixed-size slabs: addresses never move
// (slabs are never reallocated), so raw pointers into the arena stay valid
// for its whole lifetime, and creation order is preserved for index access.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace knots::core {

template <typename T>
class SlabArena {
 public:
  /// `slab_capacity` = objects per slab. Sized so one slab comfortably
  /// holds a small run while large runs amortize to one allocation per
  /// `slab_capacity` objects.
  explicit SlabArena(std::size_t slab_capacity = 256)
      : slab_capacity_(slab_capacity) {
    KNOTS_CHECK(slab_capacity_ > 0);
  }
  ~SlabArena() { clear(); }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Constructs a new T in place; the returned pointer is stable until
  /// clear()/destruction.
  template <typename... Args>
  T* create(Args&&... args) {
    if (slabs_.empty() || used_in_last_ == slab_capacity_) {
      slabs_.push_back(std::make_unique<Slab>(slab_capacity_));
      used_in_last_ = 0;
    }
    T* slot = slabs_.back()->objects() + used_in_last_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++used_in_last_;
    index_.push_back(slot);
    return slot;
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }
  [[nodiscard]] std::size_t slab_count() const noexcept {
    return slabs_.size();
  }

  /// Element `i` in creation order.
  [[nodiscard]] T& operator[](std::size_t i) { return *index_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return *index_[i];
  }

  /// Destroys every object (newest first) and releases all slabs.
  void clear() {
    for (std::size_t i = index_.size(); i > 0; --i) {
      index_[i - 1]->~T();
    }
    index_.clear();
    slabs_.clear();
    used_in_last_ = 0;
  }

 private:
  // Raw aligned storage: objects are constructed lazily by create(), so the
  // slab must not default-construct (or destroy) its slots itself.
  struct Slab {
    explicit Slab(std::size_t capacity)
        : bytes(static_cast<std::byte*>(::operator new(
              sizeof(T) * capacity, std::align_val_t{alignof(T)}))) {}
    ~Slab() { ::operator delete(bytes, std::align_val_t{alignof(T)}); }
    Slab(const Slab&) = delete;
    Slab& operator=(const Slab&) = delete;
    [[nodiscard]] T* objects() noexcept {
      return std::launder(reinterpret_cast<T*>(bytes));
    }
    std::byte* bytes;
  };

  std::size_t slab_capacity_;
  std::size_t used_in_last_ = 0;
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<T*> index_;  ///< Creation-order access.
};

}  // namespace knots::core
