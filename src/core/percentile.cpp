#include "core/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace knots {

double percentile_sorted(std::span<const double> sorted, double p) {
  KNOTS_CHECK(!sorted.empty());
  KNOTS_CHECK(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double percentile(std::span<const double> values, double p) {
  KNOTS_CHECK(!values.empty());
  KNOTS_CHECK(p >= 0.0 && p <= 100.0);
  if (values.size() == 1) return values[0];
  // Single percentile: selection instead of a full sort. nth_element places
  // the lo-th order statistic exactly; the hi-th (its upper neighbour) is
  // the minimum of the partition above it, so the interpolation operates on
  // the same two values a full sort would produce — bit-identical results
  // in O(n) instead of O(n log n).
  static thread_local std::vector<double> scratch;
  scratch.assign(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(scratch.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  const auto lo_it =
      scratch.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), lo_it, scratch.end());
  const double v_lo = *lo_it;
  const double v_hi =
      hi == lo ? v_lo : *std::min_element(lo_it + 1, scratch.end());
  return v_lo + (v_hi - v_lo) * frac;
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(copy, p));
  return out;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points) {
  KNOTS_CHECK(!values.empty());
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  const std::size_t points = std::min(max_points, n);
  std::vector<CdfPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Index of the sample representing this CDF point (last one is the max).
    const std::size_t idx =
        points == 1 ? n - 1 : (i * (n - 1)) / (points - 1);
    out.push_back({copy[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::cov() const noexcept {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / m;
}

}  // namespace knots
