// Percentile, CDF and online-moment helpers used across the experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace knots {

/// Linear-interpolation percentile (type-7, like numpy.percentile default).
/// `p` in [0, 100]. O(n) selection into a thread-local scratch buffer;
/// bit-identical to sorting first. For several percentiles of one dataset
/// use percentiles() (one shared sort) or percentile_sorted().
double percentile(std::span<const double> values, double p);

/// Percentile over data the caller has already sorted ascending. O(1).
double percentile_sorted(std::span<const double> sorted, double p);

/// Set of percentiles computed with a single sort.
std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps);

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double value;
  double fraction;  ///< P(X <= value), in (0, 1].
};

/// Empirical CDF downsampled to at most `max_points` evenly spaced points.
std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points = 100);

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation sigma/mu; 0 when the mean is 0.
  [[nodiscard]] double cov() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace knots
