// ASCII table and series printers for the bench harness.
//
// Every figure/table bench prints its data as (a) a titled ASCII table with
// the same rows/series the paper's figure plots, and (b) optionally a sparse
// inline bar chart so shapes are eyeballable in a terminal.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace knots {

/// Column-aligned ASCII table. Values are formatted by the caller.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  TablePrinter& columns(std::vector<std::string> names);
  TablePrinter& row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  TablePrinter& row(const std::string& label, const std::vector<double>& vals,
                    int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 2);

/// Renders value as a proportional unicode-free ASCII bar of width `width`
/// relative to `max_value` (used for terminal "figures").
std::string ascii_bar(double value, double max_value, std::size_t width = 40);

/// Prints a named series as "x<TAB>y" rows under a title (figure data dump).
void print_series(std::ostream& os, const std::string& title,
                  const std::vector<double>& xs,
                  const std::vector<std::pair<std::string, std::vector<double>>>&
                      named_ys,
                  int precision = 3);

}  // namespace knots
