#include "core/rng.hpp"

#include <cmath>
#include <numbers>

#include "core/check.hpp"

namespace knots {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  std::uint64_t mix = root_seed_ ^ (stream * 0x9e3779b97f4a7c15ull + 0x1234567);
  std::uint64_t derived = splitmix64(mix);
  Rng child(derived);
  child.root_seed_ = derived;
  return child;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa construction: uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  KNOTS_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(engine_());  // full range
  // Rejection-free modulo is fine here: span << 2^64 for all our uses.
  return lo + static_cast<std::int64_t>(engine_() % span);
}

double Rng::exponential(double mean) noexcept {
  KNOTS_CHECK(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box–Muller; we draw two uniforms and discard the second variate to keep
  // per-call determinism independent of interleaving.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double alpha, double lo, double hi) noexcept {
  KNOTS_CHECK(alpha > 0 && lo > 0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return x;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  KNOTS_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace knots
