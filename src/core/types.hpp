// Core value types shared across the Kube-Knots reproduction.
//
// Simulated time is an integer count of microseconds since simulation start.
// All resource quantities carry explicit units in their names (Mb = mebibytes,
// MBps = mebibytes per second, fractions in [0,1]).
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>

namespace knots {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kUsec = 1;
inline constexpr SimTime kMsec = 1000 * kUsec;
inline constexpr SimTime kSec = 1000 * kMsec;
inline constexpr SimTime kMinute = 60 * kSec;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

/// Converts simulated time to floating-point seconds (for reporting only).
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSec);
}

/// Converts floating-point seconds to simulated time (rounds toward zero).
constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSec));
}

/// Strongly-typed integer identifier. Tag distinguishes unrelated id spaces.
template <typename Tag>
struct Id {
  std::int32_t value = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) noexcept : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept { return value >= 0; }
  constexpr auto operator<=>(const Id&) const = default;
};

struct NodeTag {};
struct GpuTag {};
struct PodTag {};
struct JobTag {};

using NodeId = Id<NodeTag>;
using GpuId = Id<GpuTag>;
using PodId = Id<PodTag>;
using JobId = Id<JobTag>;

}  // namespace knots

template <typename Tag>
struct std::hash<knots::Id<Tag>> {
  std::size_t operator()(const knots::Id<Tag>& id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
