// Huge-page bump arena for large, never-freed buffers.
//
// The telemetry tier of a datacenter-scale run holds one ring buffer per
// (GPU, metric) series — 50k rings at 10k nodes. Allocated individually
// through the default allocator they land on scattered 4 KiB pages, and the
// per-tick scrape (which touches every ring head once) thrashes the dTLB.
// This arena carves allocations out of 2 MiB-aligned chunks advised as
// transparent huge pages: rings allocated in registration order become
// contiguous and hugepage-dense, so the scrape's working set costs ~25 TLB
// entries per GiB instead of ~260k.
//
// Bump-only by design: the intended tenants (telemetry rings) are sized at
// construction and live until the owner dies, so there is no deallocate —
// memory is released wholesale when the arena is destroyed. Addresses are
// stable for the arena's lifetime (chunks are never moved or reused).
//
// Off Linux (or when mmap fails) chunks fall back to ::operator new; the
// arena then still batches allocations, just without the hugepage hint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "core/check.hpp"

namespace knots::core {

class PageArena {
 public:
  static constexpr std::size_t kHugePage = std::size_t{1} << 21;  // 2 MiB

  /// `chunk_bytes` = default chunk size; oversized requests get a dedicated
  /// chunk. Rounded up to a whole number of huge pages.
  explicit PageArena(std::size_t chunk_bytes = 4 * kHugePage)
      : chunk_bytes_(round_up(chunk_bytes, kHugePage)) {}

  ~PageArena() {
    for (const Chunk& c : chunks_) release(c);
  }

  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two, at most
  /// kHugePage). Never freed individually; lives until the arena dies.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    KNOTS_CHECK(align > 0 && (align & (align - 1)) == 0 &&
                align <= kHugePage);
    const auto cur = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (cur + (align - 1)) & ~(align - 1);
    const std::size_t pad = static_cast<std::size_t>(aligned - cur);
    if (cursor_ == nullptr || pad + bytes > remaining_) {
      grow(bytes + align);
      return allocate(bytes, align);
    }
    cursor_ += pad + bytes;
    remaining_ -= pad + bytes;
    return reinterpret_cast<void*>(aligned);
  }

  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t size = 0;
    bool mapped = false;  ///< mmap (true) vs ::operator new fallback
  };

  static constexpr std::size_t round_up(std::size_t n,
                                        std::size_t unit) noexcept {
    return (n + unit - 1) / unit * unit;
  }

  void grow(std::size_t min_bytes) {
    const std::size_t size =
        round_up(min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_,
                 kHugePage);
    Chunk c = map_chunk(size);
    chunks_.push_back(c);
    cursor_ = c.base;
    remaining_ = c.size;
  }

  static Chunk map_chunk(std::size_t size) {
#if defined(__linux__)
    // Over-map by one huge page, then trim so the kept region is 2 MiB
    // aligned — mmap only guarantees small-page alignment, and THP (in
    // madvise mode) backs 2 MiB-aligned extents only.
    void* raw = ::mmap(nullptr, size + kHugePage, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw != MAP_FAILED) {
      const auto addr = reinterpret_cast<std::uintptr_t>(raw);
      const std::uintptr_t aligned = round_up(addr, kHugePage);
      const std::size_t head = static_cast<std::size_t>(aligned - addr);
      if (head > 0) ::munmap(raw, head);
      const std::size_t tail = kHugePage - head;
      if (tail > 0) {
        ::munmap(reinterpret_cast<void*>(aligned + size), tail);
      }
      ::madvise(reinterpret_cast<void*>(aligned), size, MADV_HUGEPAGE);
      return Chunk{reinterpret_cast<std::byte*>(aligned), size, true};
    }
#endif
    return Chunk{static_cast<std::byte*>(::operator new(
                     size, std::align_val_t{alignof(std::max_align_t)})),
                 size, false};
  }

  static void release(const Chunk& c) noexcept {
#if defined(__linux__)
    if (c.mapped) {
      ::munmap(c.base, c.size);
      return;
    }
#endif
    ::operator delete(c.base, std::align_val_t{alignof(std::max_align_t)});
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
};

/// Minimal std::allocator-compatible shim over a PageArena. A null arena
/// degrades to the global heap, so arena-aware containers work unchanged in
/// standalone use. deallocate() is a no-op under an arena — only hand this
/// to containers whose buffers live as long as the arena (the telemetry
/// rings: fixed capacity, never resized, never erased).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(PageArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  [[nodiscard]] PageArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  PageArena* arena_ = nullptr;
};

}  // namespace knots::core
