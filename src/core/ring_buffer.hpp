// Fixed-capacity overwriting ring buffer.
//
// Backs the telemetry time-series store: appends are O(1), the newest
// `capacity` samples are retained, and windows are addressed oldest-first.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace knots {

/// `Alloc` customizes the backing storage (e.g. core::ArenaAllocator packs
/// a datacenter's telemetry rings onto huge pages); the buffer allocates
/// exactly once, at construction, and never reallocates.
template <typename T, typename Alloc = std::allocator<T>>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity, const Alloc& alloc = Alloc())
      : data_(capacity, alloc) {
    KNOTS_CHECK(capacity > 0);
  }

  /// Appends a value, overwriting the oldest when full.
  void push(const T& value) {
    data_[head_] = value;
    // Conditional wrap: capacity is runtime-sized, so `% size()` would be a
    // hardware divide on the hottest write path in the simulator.
    if (++head_ == data_.size()) head_ = 0;
    if (size_ < data_.size()) ++size_;
  }

  /// Hints the cache that the next push's slot is about to be written.
  void prefetch_write_slot() const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(data_.data() + head_, 1);
#endif
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == data_.size(); }

  /// Element `i` counted from the oldest retained sample (0 = oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    KNOTS_CHECK(i < size_);
    const std::size_t start = (head_ + data_.size() - size_) % data_.size();
    return data_[(start + i) % data_.size()];
  }

  /// Most recently pushed element.
  [[nodiscard]] const T& back() const {
    KNOTS_CHECK(size_ > 0);
    return data_[head_ == 0 ? data_.size() - 1 : head_ - 1];
  }

  /// Oldest retained element.
  [[nodiscard]] const T& front() const { return at(0); }

  void clear() noexcept {
    size_ = 0;
    head_ = 0;
  }

  /// The retained elements as (at most) two contiguous spans, oldest-first:
  /// `first` covers logical indices [0, first.size()), `second` the rest.
  /// Zero-copy; invalidated by the next push(). `from` skips that many
  /// oldest elements.
  [[nodiscard]] std::pair<std::span<const T>, std::span<const T>> segments(
      std::size_t from = 0) const {
    if (from >= size_) return {};
    const std::size_t count = size_ - from;
    const std::size_t start =
        (head_ + data_.size() - size_ + from) % data_.size();
    const std::size_t tail = data_.size() - start;  // room before wrap
    if (count <= tail) {
      return {std::span<const T>(data_.data() + start, count),
              std::span<const T>()};
    }
    return {std::span<const T>(data_.data() + start, tail),
            std::span<const T>(data_.data(), count - tail)};
  }

  /// Copies the newest `n` elements (or all if fewer), oldest-first.
  [[nodiscard]] std::vector<T> last(std::size_t n) const {
    const std::size_t count = n < size_ ? n : size_;
    std::vector<T> out;
    out.reserve(count);
    for (std::size_t i = size_ - count; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::vector<T, Alloc> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace knots
