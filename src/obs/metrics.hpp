// Metrics registry: named counters, gauges and histograms.
//
// The registry is the run's numeric dashboard: the cluster refreshes its
// gauges once per tick, counters accumulate decision/lifecycle tallies, and
// the profiling hooks (obs/profile.hpp) feed wall-clock timings into
// histograms built on the knots::stats rolling accumulators. Everything is
// dumpable as deterministic (name-sorted) JSON — knots_ctl --metrics-out.
//
// Naming convention (DESIGN.md §8): dotted lower-case "<module>.<what>",
// with the unit as a suffix when it is not obvious — e.g.
// "sched.on_schedule_ns", "cluster.pending_pods", "telemetry.agg_sort_ns".
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (node-based map storage). Not thread-safe; parallel
// sweeps attach one registry per run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "stats/rolling.hpp"

namespace knots::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Running count/sum/extrema over all samples plus exact percentiles over
/// the most recent `window` samples (stats::RollingQuantile shadow).
class Histogram {
 public:
  explicit Histogram(std::size_t window = 1024) : recent_(window) {}

  void record(double x);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0 : max_; }
  /// Type-7 percentile of the recent window, p in [0, 100].
  [[nodiscard]] double quantile(double p) const { return recent_.quantile(p); }
  [[nodiscard]] std::size_t window_count() const noexcept {
    return recent_.count();
  }

 private:
  stats::RollingQuantile recent_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::size_t window = 1024);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Deterministic JSON dump: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}, each name-sorted; histograms expand to
  /// count/mean/min/max/p50/p99 (percentiles over the recent window).
  void to_json(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace knots::obs
