#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>

namespace knots::obs {

namespace {

constexpr char kBinaryMagic[8] = {'K', 'N', 'O', 'B', 'T', 'R', 'C', '1'};

// -- little-endian encode/decode helpers (portable binary form) --

template <typename T>
void put_le(std::ostream& os, T v) {
  static_assert(std::is_integral_v<T>);
  unsigned char buf[sizeof(T)];
  auto u = static_cast<std::make_unsigned_t<T>>(v);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(u >> (8 * i));
  }
  os.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

template <typename T>
T get_le(std::istream& is) {
  static_assert(std::is_integral_v<T>);
  unsigned char buf[sizeof(T)];
  if (!is.read(reinterpret_cast<char*>(buf), sizeof(T))) {
    throw std::runtime_error("trace binary: truncated stream");
  }
  std::make_unsigned_t<T> u = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    u |= static_cast<std::make_unsigned_t<T>>(buf[i]) << (8 * i);
  }
  return static_cast<T>(u);
}

void put_double(std::ostream& os, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_le(os, bits);
}

double get_double(std::istream& is) {
  const std::uint64_t bits = get_le<std::uint64_t>(is);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// JSON string escaping for detail strings and names.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kPlace: return "place";
    case EventKind::kStart: return "start";
    case EventKind::kComplete: return "complete";
    case EventKind::kCrash: return "crash";
    case EventKind::kRequeue: return "requeue";
    case EventKind::kEvict: return "evict";
    case EventKind::kResize: return "resize";
    case EventKind::kPark: return "park";
    case EventKind::kNodeDown: return "node-down";
    case EventKind::kNodeUp: return "node-up";
    case EventKind::kFaultInject: return "fault-inject";
    case EventKind::kFaultRecover: return "fault-recover";
    case EventKind::kScrape: return "telemetry-scrape";
    case EventKind::kDecision: return "decision";
    case EventKind::kRequestArrive: return "serve.arrive";
    case EventKind::kRequestShed: return "serve.shed";
    case EventKind::kRequestExpire: return "serve.expire";
    case EventKind::kBatchDispatch: return "serve.batch";
    case EventKind::kRequestDone: return "serve.done";
    case EventKind::kScaleUp: return "serve.scale-up";
    case EventKind::kScaleDown: return "serve.scale-down";
    case EventKind::kFlowStart: return "net.flow-start";
    case EventKind::kFlowFinish: return "net.flow-finish";
    case EventKind::kLinkDown: return "net.link-down";
    case EventKind::kLinkUp: return "net.link-up";
  }
  return "unknown";
}

TraceSink::TraceSink() { strings_.emplace_back(); }

void TraceSink::record(SimTime ts, EventKind kind, std::int32_t a,
                       std::int32_t b, double value,
                       std::string_view detail) {
  TraceEvent e;
  e.ts = ts;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.value = value;
  e.detail = detail.empty() ? 0u : intern(detail);
  events_.push_back(e);
  ++counts_[static_cast<std::size_t>(kind)];
}

std::uint32_t TraceSink::intern(std::string_view s) {
  if (s.empty()) return 0;
  const auto [it, inserted] = intern_index_.try_emplace(
      std::string(s), static_cast<std::uint32_t>(strings_.size()));
  if (inserted) strings_.emplace_back(it->first);
  return it->second;
}

const std::string& TraceSink::detail(std::uint32_t index) const noexcept {
  if (index >= strings_.size()) return strings_[0];
  return strings_[index];
}

void TraceSink::clear() {
  events_.clear();
  strings_.resize(1);
  intern_index_.clear();
  counts_.fill(0);
}

void TraceSink::export_binary(std::ostream& os) const {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  put_le(os, static_cast<std::uint64_t>(events_.size()));
  for (const auto& e : events_) {
    put_le(os, static_cast<std::int64_t>(e.ts));
    put_le(os, static_cast<std::uint8_t>(e.kind));
    put_le(os, e.a);
    put_le(os, e.b);
    put_double(os, e.value);
    put_le(os, e.detail);
  }
  put_le(os, static_cast<std::uint64_t>(strings_.size()));
  for (const auto& s : strings_) {
    put_le(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
}

TraceSink TraceSink::import_binary(std::istream& is) {
  char magic[sizeof(kBinaryMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("trace binary: bad magic");
  }
  TraceSink sink;
  const auto count = get_le<std::uint64_t>(is);
  sink.events_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    e.ts = get_le<std::int64_t>(is);
    const auto kind = get_le<std::uint8_t>(is);
    if (kind >= kEventKindCount) {
      throw std::runtime_error("trace binary: unknown event kind");
    }
    e.kind = static_cast<EventKind>(kind);
    e.a = get_le<std::int32_t>(is);
    e.b = get_le<std::int32_t>(is);
    e.value = get_double(is);
    e.detail = get_le<std::uint32_t>(is);
    sink.events_.push_back(e);
    ++sink.counts_[kind];
  }
  const auto nstrings = get_le<std::uint64_t>(is);
  if (nstrings == 0) throw std::runtime_error("trace binary: no string table");
  sink.strings_.clear();
  sink.strings_.reserve(nstrings);
  for (std::uint64_t i = 0; i < nstrings; ++i) {
    const auto len = get_le<std::uint32_t>(is);
    std::string s(len, '\0');
    if (len > 0 && !is.read(s.data(), len)) {
      throw std::runtime_error("trace binary: truncated string table");
    }
    sink.strings_.push_back(std::move(s));
  }
  for (const auto& e : sink.events_) {
    if (e.detail >= sink.strings_.size()) {
      throw std::runtime_error("trace binary: detail index out of range");
    }
  }
  for (std::size_t i = 1; i < sink.strings_.size(); ++i) {
    sink.intern_index_.emplace(sink.strings_[i],
                               static_cast<std::uint32_t>(i));
  }
  return sink;
}

void TraceSink::export_chrome_trace(std::ostream& os) const {
  // Track layout: pid 0 = cluster-wide instants (decisions, faults,
  // scrapes), pid 1 = per-pod lifecycle slices (tid = pod id), pid 2 =
  // per-node outage slices (tid = node id).
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit_common = [&](std::string_view name, const char* ph,
                               SimTime ts, int pid, std::int32_t tid) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, name);
    os << ",\"ph\":\"" << ph << "\",\"ts\":" << ts << ",\"pid\":" << pid
       << ",\"tid\":" << tid;
  };

  // Pass 1: every event as an instant on the cluster track, with args.
  for (const auto& e : events_) {
    emit_common(to_string(e.kind), "i", e.ts, 0, 0);
    os << ",\"s\":\"p\",\"args\":{";
    bool first_arg = true;
    const auto arg = [&](const char* key, auto&& write_value) {
      if (!first_arg) os << ",";
      first_arg = false;
      os << "\"" << key << "\":";
      write_value();
    };
    if (e.a >= 0) arg("a", [&] { os << e.a; });
    if (e.b >= 0) arg("b", [&] { os << e.b; });
    if (e.value != 0.0) arg("value", [&] { os << e.value; });
    if (e.detail != 0) {
      arg("detail", [&] { write_json_string(os, detail(e.detail)); });
    }
    os << "}}";
  }

  // Pass 2: derived per-pod lifecycle slices. A pod walks
  // submit → place (pending) → start (starting) → complete/crash/evict
  // (running), and crash/evict → requeue (relaunch-wait) → place again.
  struct PodPhase {
    SimTime since = -1;
    const char* name = nullptr;
  };
  std::unordered_map<std::int32_t, PodPhase> pods;
  const auto close_phase = [&](std::int32_t pod, SimTime ts,
                               const char* next) {
    auto& phase = pods[pod];
    if (phase.name != nullptr && ts >= phase.since) {
      emit_common(phase.name, "X", phase.since, 1, pod);
      os << ",\"dur\":" << (ts - phase.since) << "}";
    }
    phase.since = ts;
    phase.name = next;
  };
  for (const auto& e : events_) {
    switch (e.kind) {
      case EventKind::kSubmit: close_phase(e.a, e.ts, "pending"); break;
      case EventKind::kPlace: close_phase(e.a, e.ts, "starting"); break;
      case EventKind::kStart: close_phase(e.a, e.ts, "running"); break;
      case EventKind::kComplete: close_phase(e.a, e.ts, nullptr); break;
      case EventKind::kCrash:
      case EventKind::kEvict: close_phase(e.a, e.ts, "relaunch-wait"); break;
      case EventKind::kRequeue: close_phase(e.a, e.ts, "pending"); break;
      default: break;
    }
  }

  // Pass 3: per-node outage slices.
  std::unordered_map<std::int32_t, SimTime> down_since;
  for (const auto& e : events_) {
    if (e.kind == EventKind::kNodeDown) {
      down_since[e.a] = e.ts;
    } else if (e.kind == EventKind::kNodeUp) {
      const auto it = down_since.find(e.a);
      if (it != down_since.end()) {
        emit_common("node down", "X", it->second, 2, e.a);
        os << ",\"dur\":" << (e.ts - it->second) << "}";
        down_since.erase(it);
      }
    }
  }

  os << "\n]}\n";
}

}  // namespace knots::obs
