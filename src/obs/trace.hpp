// Structured event tracer for one simulation run.
//
// A TraceSink records typed instants (pod lifecycle edges, scheduler
// decisions with their chosen-GPU rationale, fault transitions, telemetry
// scrapes) as compact POD records plus an interned string table. The sink is
// single-writer by construction — each simulated cluster owns at most one,
// and a run is single-threaded — so recording is a bounds-checked vector
// push, no locks. Parallel sweeps attach one sink per run.
//
// Two exporters ship with it:
//  * export_chrome_trace — Chrome `about:tracing` / Perfetto JSON. Pod
//    lifecycle instants are additionally paired into duration slices
//    (pending → starting → running per pod, outage windows per node), so a
//    CBP placement or an eviction cascade can be read event-by-event on a
//    timeline.
//  * export_binary — a compact little-endian binary form with a round-trip
//    loader (import_binary), for traces too big to keep as JSON.
//
// Recording never feeds back into the simulation: a traced run's decision
// sequence — and therefore its verify::RunDigest — is bit-identical to the
// untraced run.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace knots::obs {

/// Every event kind a run can record. Pod/GPU/node operands ride in the
/// generic `a`/`b` fields; see the per-kind comments for their meaning.
enum class EventKind : std::uint8_t {
  kSubmit = 0,     ///< Pod entered the pending queue.        a = pod.
  kPlace,          ///< Scheduler bound pod to GPU.           a = pod, b = gpu, value = provisioned MB.
  kStart,          ///< Container finished starting, runs.    a = pod, b = gpu.
  kComplete,       ///< Pod executed its full profile.        a = pod, value = progress.
  kCrash,          ///< Capacity violation evicted the pod.   a = pod.
  kRequeue,        ///< Crashed/evicted pod re-entered queue. a = pod.
  kEvict,          ///< Node death evicted the pod.           a = pod, b = node.
  kResize,         ///< Container allocation resized.         a = pod, value = provisioned MB.
  kPark,           ///< Idle GPU parked into deep sleep.      a = gpu.
  kNodeDown,       ///< Worker node crashed.                  a = node.
  kNodeUp,         ///< Worker node recovered.                a = node.
  kFaultInject,    ///< Fault plan event applied.             a = node, value = severity, detail = kind.
  kFaultRecover,   ///< Fault effect ended.                   a = node, detail = kind.
  kScrape,         ///< Telemetry heartbeat round.            value = nodes sampled.
  kDecision,       ///< Scheduler rationale.                  a = pod, b = gpu (-1 = none), detail = rationale.
  // -- knots::serve (open-loop request serving) --
  kRequestArrive,  ///< Request entered the front door.       a = request, b = service.
  kRequestShed,    ///< Admission control rejected it.        a = request, b = service.
  kRequestExpire,  ///< Dropped at dispatch, deadline passed. a = request, b = service.
  kBatchDispatch,  ///< Dynamic batch sent to a replica.      a = replica pod, b = service, value = batch size.
  kRequestDone,    ///< Request served.                       a = request, b = service, value = latency ms.
  kScaleUp,        ///< Autoscaler launched a replica.        a = replica pod, b = service.
  kScaleDown,      ///< Autoscaler retired a replica.         a = replica pod, b = service.
  // -- knots::net (fabric flows and link state) --
  kFlowStart,      ///< Fabric flow began.                    a = flow, b = dst node (-1 = registry src), value = MB.
  kFlowFinish,     ///< Fabric flow delivered its last byte.  a = flow, b = contended (0/1).
  kLinkDown,       ///< Fabric link lost capacity.            a = link.
  kLinkUp,         ///< Fabric link restored.                 a = link.
};
inline constexpr std::size_t kEventKindCount = 26;

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// One recorded event. `detail` indexes the sink's string table (0 = none).
struct TraceEvent {
  SimTime ts = 0;
  EventKind kind{};
  std::int32_t a = -1;
  std::int32_t b = -1;
  double value = 0.0;
  std::uint32_t detail = 0;

  bool operator==(const TraceEvent&) const = default;
};

class TraceSink {
 public:
  TraceSink();

  /// Appends one event. `detail` is interned (empty → index 0).
  void record(SimTime ts, EventKind kind, std::int32_t a = -1,
              std::int32_t b = -1, double value = 0.0,
              std::string_view detail = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  /// Events recorded of one kind (cheap per-kind tally).
  [[nodiscard]] std::uint64_t count(EventKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }

  /// Interns a detail string, returning its stable index.
  std::uint32_t intern(std::string_view s);
  /// The string behind a detail index ("" for 0 / out-of-range).
  [[nodiscard]] const std::string& detail(std::uint32_t index) const noexcept;
  [[nodiscard]] const std::vector<std::string>& strings() const noexcept {
    return strings_;
  }

  void clear();

  /// Chrome about:tracing JSON ({"traceEvents":[...]}) with derived
  /// lifecycle slices. Load via chrome://tracing or ui.perfetto.dev.
  void export_chrome_trace(std::ostream& os) const;

  /// Compact little-endian binary form (magic "KNOBTRC1").
  void export_binary(std::ostream& os) const;
  /// Round-trip loader; throws std::runtime_error on a malformed stream.
  [[nodiscard]] static TraceSink import_binary(std::istream& is);

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> strings_;   ///< strings_[0] is always "".
  /// Owning keys (duplicated storage; detail strings are short): string_view
  /// keys into strings_ would dangle when the vector reallocates SSO strings.
  std::unordered_map<std::string, std::uint32_t> intern_index_;
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

}  // namespace knots::obs
