#include "obs/metrics.hpp"

#include <ostream>

namespace knots::obs {

void Histogram::record(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  recent_.push(x);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t window) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(window)).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::to_json(std::ostream& os) const {
  // Instrument names follow the convention in the header comment — plain
  // identifiers with dots — so they need no JSON escaping.
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c.value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g.value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count() << ", \"mean\": " << h.mean() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"p50\": " << h.quantile(50)
       << ", \"p99\": " << h.quantile(99) << "}";
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace knots::obs
