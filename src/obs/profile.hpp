// RAII profiling hooks for the hot paths.
//
// KNOTS_PROF_SCOPE(hist) times the enclosing scope on the steady clock and
// records the elapsed nanoseconds into an obs::Histogram — a null histogram
// (profiling not attached) costs one branch. Timings feed the metrics
// registry only, never the simulation: wall-clock jitter cannot perturb a
// run's decision sequence.
//
// Building with -DKNOTS_TRACE=OFF defines KNOTS_TRACE_OFF and compiles the
// timer to a true no-op (no clock reads, no stored state), for measuring the
// observability layer's own overhead budget (DESIGN.md §8).
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace knots::obs {

#ifndef KNOTS_TRACE_OFF

class ScopeTimer {
 public:
  explicit ScopeTimer(Histogram* hist) noexcept : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopeTimer() {
    if (hist_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      hist_->record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

#else  // KNOTS_TRACE_OFF: compile the hooks out entirely.

class ScopeTimer {
 public:
  explicit ScopeTimer(Histogram*) noexcept {}
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;
};

#endif

}  // namespace knots::obs

#define KNOTS_PROF_CONCAT_INNER(a, b) a##b
#define KNOTS_PROF_CONCAT(a, b) KNOTS_PROF_CONCAT_INNER(a, b)
/// Times the enclosing scope into `hist` (an obs::Histogram*, may be null).
#define KNOTS_PROF_SCOPE(hist) \
  ::knots::obs::ScopeTimer KNOTS_PROF_CONCAT(knots_prof_scope_, __LINE__)(hist)
