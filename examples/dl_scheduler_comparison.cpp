// Compare DL-cluster schedulers (Res-Ag, Gandiva, Tiresias, CBP+PP) on the
// 32-node × 8-GPU trace-driven simulation of §V-C.
//
//   ./dl_scheduler_comparison [mix_id=1] [dlt=520] [dli=1400]
#include <cstdlib>
#include <iostream>

#include "dlsim/dl_report.hpp"

int main(int argc, char** argv) {
  knots::dlsim::DlWorkloadConfig wl;
  wl.mix_id = argc > 1 ? std::atoi(argv[1]) : 1;
  wl.dlt_jobs = argc > 2 ? std::atoi(argv[2]) : 520;
  wl.dli_queries = argc > 3 ? std::atoi(argv[3]) : 1400;

  knots::dlsim::DlClusterConfig cluster;
  std::cout << "DL workload: " << wl.dlt_jobs << " training jobs, "
            << wl.dli_queries << " inference queries, 12h window, mix "
            << wl.mix_id << "\n";
  const auto results = knots::dlsim::run_all_policies(cluster, wl);
  knots::dlsim::print_dl_report(std::cout, results);
  return 0;
}
