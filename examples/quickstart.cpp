// Quickstart: run one app mix through Kube-Knots under each scheduling
// policy on the paper's ten-node P100 cluster and compare the headline
// numbers (utilization, QoS, power, crashes).
//
//   ./quickstart [mix_id=1] [duration_s=300]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "knots/experiment.hpp"
#include "knots/kube_knots.hpp"
#include "serve/serving.hpp"

int main(int argc, char** argv) {
  const int mix_id = argc > 1 ? std::atoi(argv[1]) : 1;
  const int duration_s = argc > 2 ? std::atoi(argv[2]) : 300;

  const knots::ExperimentConfig base = knots::ExperimentConfig::Builder{}
                                           .mix(mix_id)
                                           .duration(duration_s * knots::kSec)
                                           .build();

  std::cout << "Kube-Knots quickstart: app-mix-" << mix_id << ", "
            << duration_s << "s arrival window, 10x P100 cluster\n";

  const std::vector<knots::sched::SchedulerKind> kinds = {
      knots::sched::SchedulerKind::kUniform,
      knots::sched::SchedulerKind::kResourceAgnostic,
      knots::sched::SchedulerKind::kCbp,
      knots::sched::SchedulerKind::kPeakPrediction,
  };
  knots::SweepGrid grid;
  grid.schedulers = kinds;
  const auto results = knots::run_sweep(base, grid);

  knots::TablePrinter table("Scheduler comparison (app-mix-" +
                            std::to_string(mix_id) + ")");
  table.columns({"scheduler", "util p50%", "util p99%", "QoS viol/kilo",
                 "queries", "crashes", "energy kJ", "mean JCT s",
                 "completed"});
  for (const auto& result : results) {
    const auto& r = result.report;
    table.row({r.scheduler, knots::fmt(r.cluster_wide.p50, 1),
               knots::fmt(r.cluster_wide.p99, 1),
               knots::fmt(r.violations_per_kilo, 1),
               std::to_string(r.queries), std::to_string(r.crashes),
               knots::fmt(r.energy_joules / 1000.0, 0),
               knots::fmt(r.mean_jct_s, 1),
               std::to_string(r.pods_completed) + "/" +
                   std::to_string(r.pods_total)});
  }
  table.print(std::cout);

  // Bonus: the same cluster serving an open-loop inference stream
  // (knots::serve) under the winning PP scheduler.
  knots::serve::ServingConfig serving = knots::serve::default_serving(
      100.0, knots::serve::ArrivalShape::kPoisson);
  serving.window = 30 * knots::kSec;
  const auto sr = knots::serve::run_serving(serving);
  std::cout << "\nServing taster (100 qps Poisson, 30 s): "
            << sr.completed + sr.degraded << "/" << sr.offered
            << " served, p99 " << knots::fmt(sr.latency.p99_ms, 1)
            << " ms, " << sr.shed << " shed, " << sr.scale_ups
            << " scale-ups\n";
  return 0;
}
