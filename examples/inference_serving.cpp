// Inference-serving scenario, twice over:
//
//   1. The closed-form version: latency-critical DNN query pods (the
//      paper's Djinn&Tonic "face" and "key" services) share the cluster
//      with Rodinia batch jobs, assembled through the fluent
//      workload::WorkloadSpec / BatchJobSpec / ServiceSpec builders.
//   2. The open-loop version: knots::serve drives the same cluster with a
//      production-shaped request stream (dynamic batching, SLO-aware
//      admission, harvest-aware autoscaling) and reports tail latency.
//
//   ./inference_serving [queries_per_second=12] [duration_s=120]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "knots/kube_knots.hpp"
#include "serve/serving.hpp"
#include "workload/workload_spec.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  const double qps = argc > 1 ? std::atof(argv[1]) : 12.0;
  const int duration_s = argc > 2 ? std::atoi(argv[2]) : 120;
  const SimTime window = duration_s * kSec;

  ExperimentConfig cfg =
      default_experiment(1, sched::SchedulerKind::kPeakPrediction);
  cfg.cluster.nodes = 6;
  KubeKnots knots(cfg);

  // Long-running batch jobs occupy part of the cluster… The memory
  // overstatement is the builder's named kDefaultMemoryHeadroom knob
  // (Observation 2), not a magic multiplier.
  Rng rng(2024);
  workload::WorkloadSpec spec;
  for (int i = 0; i < 10; ++i) {
    const auto app = i % 2 == 0 ? workload::RodiniaApp::kLeukocyte
                                : workload::RodiniaApp::kMyocyte;
    spec.add(workload::BatchJobSpec(app)
                 .time_scale(30)
                 .cycles(8)
                 .arrival(static_cast<SimTime>(rng.uniform(0, 0.3 * window)))
                 .build());
  }

  // …while a bursty query stream hits the "face" and "key" services.
  int queries = 0;
  spec.stream(
      workload::AlibabaArrivals(static_cast<SimTime>(1e6 / qps),
                                /*burstiness=*/1.5),
      window, rng.fork(1), [&](SimTime) {
        const auto service = queries % 3 == 0 ? workload::Service::kFace
                                              : workload::Service::kKey;
        const int batch_size = (queries % 5 == 0) ? 16 : 1;
        ++queries;
        return workload::ServiceSpec(service)
            .batch(batch_size)
            .tf_greedy(cfg.cluster.node_spec.gpu.memory_mb)
            .qos(150 * kMsec)
            .build();
      });
  for (auto& pod : spec.build()) knots.submit(std::move(pod));

  std::cout << "Serving " << queries << " queries at ~" << qps
            << " qps over " << duration_s << "s alongside 10 batch jobs on "
            << cfg.cluster.nodes << " GPUs (PP scheduler)\n";
  const auto report = knots.run();

  TablePrinter table("Inference serving report (query pods)");
  table.columns({"metric", "value"});
  table.row({"queries served", std::to_string(report.queries)});
  table.row({"p50 latency ms", fmt(report.lc_p50_ms, 1)});
  table.row({"p99 latency ms", fmt(report.lc_p99_ms, 1)});
  table.row({"QoS violations", std::to_string(report.qos_violations)});
  table.row({"capacity crashes", std::to_string(report.crashes)});
  table.row({"batch jobs done", std::to_string(report.pods_total -
                                               report.queries) });
  table.row({"cluster util p50 %", fmt(report.cluster_wide.p50, 1)});
  table.row({"energy kJ", fmt(report.energy_joules / 1000, 1)});
  table.print(std::cout);

  // Part 2: the same traffic level as an open-loop serving deployment —
  // warm replicas, dynamic batching, admission control, autoscaling.
  serve::ServingConfig serving = serve::default_serving(
      qps * 4, serve::ArrivalShape::kDiurnal,
      sched::SchedulerKind::kPeakPrediction);
  serving.window = window;
  const auto sr = serve::run_serving(serving);

  TablePrinter serve_table("Open-loop serving report (knots::serve)");
  serve_table.columns({"metric", "value"});
  serve_table.row({"offered / served",
                   std::to_string(sr.offered) + " / " +
                       std::to_string(sr.completed + sr.degraded)});
  serve_table.row({"shed / expired", std::to_string(sr.shed) + " / " +
                                         std::to_string(sr.expired)});
  serve_table.row({"p50 / p99 / p999 ms",
                   fmt(sr.latency.p50_ms, 1) + " / " +
                       fmt(sr.latency.p99_ms, 1) + " / " +
                       fmt(sr.latency.p999_ms, 1)});
  serve_table.row({"achieved qps", fmt(sr.achieved_qps, 1)});
  serve_table.row({"replicas launched", std::to_string(sr.replicas_launched)});
  serve_table.row({"scale up / down", std::to_string(sr.scale_ups) + " / " +
                                          std::to_string(sr.scale_downs)});
  serve_table.print(std::cout);
  return 0;
}
