// Inference-serving scenario: a latency-critical DNN service (the paper's
// Djinn&Tonic "face" and "key" queries) shares the cluster with Rodinia
// batch jobs. Shows how Kube-Knots harvests batch GPUs' spare capacity to
// absorb query bursts while keeping every query inside its deadline.
//
//   ./inference_serving [queries_per_second=12] [duration_s=120]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "knots/kube_knots.hpp"
#include "workload/djinn_tonic.hpp"
#include "workload/load_generator.hpp"
#include "workload/rodinia.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  const double qps = argc > 1 ? std::atof(argv[1]) : 12.0;
  const int duration_s = argc > 2 ? std::atoi(argv[2]) : 120;
  const SimTime window = duration_s * kSec;

  ExperimentConfig cfg =
      default_experiment(1, sched::SchedulerKind::kPeakPrediction);
  cfg.cluster.nodes = 6;
  KubeKnots knots(cfg);

  // Long-running batch jobs occupy part of the cluster…
  Rng rng(2024);
  for (int i = 0; i < 10; ++i) {
    workload::PodSpec batch;
    batch.app = std::string(workload::rodinia_name(
        i % 2 == 0 ? workload::RodiniaApp::kLeukocyte
                   : workload::RodiniaApp::kMyocyte));
    batch.klass = workload::PodClass::kBatch;
    batch.arrival = static_cast<SimTime>(rng.uniform(0, 0.3 * window));
    batch.profile = workload::rodinia_profile(
                        i % 2 == 0 ? workload::RodiniaApp::kLeukocyte
                                   : workload::RodiniaApp::kMyocyte)
                        .time_scaled(30)
                        .with_cycles(8);
    batch.requested_mb = batch.profile.peak_memory_mb() * 1.8;
    knots.submit(batch);
  }

  // …while a bursty query stream hits the "face" and "key" services.
  workload::AlibabaTrace arrivals{rng.fork(1)};
  int queries = 0;
  for (SimTime t : arrivals.arrivals(
           window, static_cast<SimTime>(1e6 / qps), /*burstiness=*/1.5)) {
    workload::PodSpec query;
    const auto service = queries % 3 == 0 ? workload::Service::kFace
                                          : workload::Service::kKey;
    const int batch_size = (queries % 5 == 0) ? 16 : 1;
    query.app = std::string(workload::service_name(service));
    query.klass = workload::PodClass::kLatencyCritical;
    query.arrival = t;
    query.batch_size = batch_size;
    query.profile = workload::inference_profile(service, batch_size);
    query.requested_mb =
        workload::tf_managed_memory_mb(cfg.cluster.node_spec.gpu.memory_mb);
    query.tf_greedy = true;
    query.qos_latency = 150 * kMsec;
    knots.submit(query);
    ++queries;
  }

  std::cout << "Serving " << queries << " queries at ~" << qps
            << " qps over " << duration_s << "s alongside 10 batch jobs on "
            << cfg.cluster.nodes << " GPUs (PP scheduler)\n";
  const auto report = knots.run();

  TablePrinter table("Inference serving report");
  table.columns({"metric", "value"});
  table.row({"queries served", std::to_string(report.queries)});
  table.row({"p50 latency ms", fmt(report.lc_p50_ms, 1)});
  table.row({"p99 latency ms", fmt(report.lc_p99_ms, 1)});
  table.row({"QoS violations", std::to_string(report.qos_violations)});
  table.row({"capacity crashes", std::to_string(report.crashes)});
  table.row({"batch jobs done", std::to_string(report.pods_total -
                                               report.queries) });
  table.row({"cluster util p50 %", fmt(report.cluster_wide.p50, 1)});
  table.row({"energy kJ", fmt(report.energy_joules / 1000, 1)});
  table.print(std::cout);
  return 0;
}
