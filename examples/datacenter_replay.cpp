// Datacenter replay: runs all three Table I app mixes back to back under a
// chosen scheduler and prints a consolidated operations report — the view a
// cluster operator would use to evaluate adopting Kube-Knots.
//
//   ./datacenter_replay [scheduler=PP] [duration_s=240]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/table.hpp"
#include "knots/experiment.hpp"
#include "serve/serving.hpp"

int main(int argc, char** argv) {
  using namespace knots;
  const std::string name = argc > 1 ? argv[1] : "PP";
  const int duration_s = argc > 2 ? std::atoi(argv[2]) : 240;
  const auto kind = sched::scheduler_from_name(name);

  std::cout << "Replaying app-mixes 1-3 (" << duration_s
            << "s arrival window each) under the " << name
            << " scheduler on the ten-node P100 cluster\n";

  TablePrinter table("Datacenter replay: " + name);
  table.columns({"mix", "pods", "completed", "queries", "QoS viol", "crashes",
                 "util p50%", "util p99%", "mean JCT s", "energy kJ"});
  double total_energy = 0;
  std::size_t total_viol = 0, total_queries = 0;
  for (int mix = 1; mix <= 3; ++mix) {
    ExperimentConfig cfg = default_experiment(mix, kind);
    cfg.workload.duration = duration_s * kSec;
    const auto r = run_experiment(cfg);
    total_energy += r.energy_joules;
    total_viol += r.qos_violations;
    total_queries += r.queries;
    table.row({std::to_string(mix), std::to_string(r.pods_total),
               std::to_string(r.pods_completed), std::to_string(r.queries),
               std::to_string(r.qos_violations), std::to_string(r.crashes),
               fmt(r.cluster_wide.p50, 1), fmt(r.cluster_wide.p99, 1),
               fmt(r.mean_jct_s, 1), fmt(r.energy_joules / 1000, 0)});
  }
  table.print(std::cout);
  std::cout << "\nTotals: " << fmt(total_energy / 1000, 0) << " kJ, "
            << total_viol << "/" << total_queries
            << " queries violated QoS ("
            << fmt(total_queries
                       ? 100.0 * static_cast<double>(total_viol) /
                             static_cast<double>(total_queries)
                       : 0.0,
                   2)
            << "%)\n";

  // Operator view of the serving tier: one open-loop run per arrival
  // shape, same scheduler, on top of the mix-1 batch substrate.
  TablePrinter serve_table("Serving tier: " + name);
  serve_table.columns({"arrivals", "offered", "served", "shed", "p50 ms",
                       "p99 ms", "p999 ms", "scale-ups"});
  for (const auto shape :
       {serve::ArrivalShape::kPoisson, serve::ArrivalShape::kDiurnal,
        serve::ArrivalShape::kFlashCrowd}) {
    serve::ServingConfig scfg = serve::default_serving(120.0, shape, kind);
    scfg.window = 30 * kSec;
    const auto sr = serve::run_serving(scfg);
    serve_table.row({std::string(to_string(shape)),
                     std::to_string(sr.offered),
                     std::to_string(sr.completed + sr.degraded),
                     std::to_string(sr.shed), fmt(sr.latency.p50_ms, 1),
                     fmt(sr.latency.p99_ms, 1), fmt(sr.latency.p999_ms, 1),
                     std::to_string(sr.scale_ups)});
  }
  serve_table.print(std::cout);
  return 0;
}
