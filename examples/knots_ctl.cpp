// knots_ctl — command-line front end to the library: run any experiment
// configuration and print (or CSV-export) the report.
//
//   knots_ctl run --mix 1 --scheduler PP --duration 300 [--nodes 10]
//                 [--gpus 1] [--seed 42] [--csv out.csv]
//                 [--crash-node N@T[:D]]          # fault injection
//                 [--trace out.json]              # Chrome about:tracing
//                 [--trace-bin out.trc]           # compact binary trace
//                 [--metrics-out out.json]        # metrics registry dump
//   knots_ctl sweep --mix 1 --duration 300        # all four schedulers
//   knots_ctl serve --qps 120 [--diurnal AMP | --flash-crowd MULT]
//                   [--slo-ms N] [--autoscale on|off] [--duration SECS]
//                   [--scheduler PP] [--nodes N] [--seed N] ...
//                                                  # open-loop serving run
//   knots_ctl dlsim [--mix 1] [--dlt 520] [--dli 1400]       # 4-way compare
//   knots_ctl dlsim --dl gandiva [--nodes 32] [--gpus 8]     # one DL policy
//                   [--duration SECS] [--seed 42]
//                   [--crash-node N@T[:D]] [--trace out.json]
//                   [--trace-bin out.trc] [--metrics-out out.json]
//   knots_ctl list                                 # schedulers & mixes
//
// Unknown or malformed flags exit 2 with a usage message.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "core/csv.hpp"
#include "core/table.hpp"
#include "dlsim/dl_report.hpp"
#include "gpu/device_model.hpp"
#include "knots/experiment.hpp"
#include "knots/scenario.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/serving.hpp"
#include "workload/app_mix.hpp"

namespace {

using namespace knots;

constexpr const char* kUsage =
    "usage: knots_ctl <command> [--flag value]...\n"
    "  run    --mix N --scheduler NAME --duration SECS [--nodes N] [--gpus N]\n"
    "         [--lanes N] [--seed N] [--device-model NAME] [--csv FILE]\n"
    "         [--crash-node N@T[:D]] [--fabric auto|zero]\n"
    "         [--link-down NAME@T[:D]]\n"
    "         [--trace FILE] [--trace-bin FILE] [--metrics-out FILE]\n"
    "  sweep  --mix N --duration SECS [--nodes N] [--gpus N] [--lanes N]\n"
    "         [--seed N] [--device-model NAME]\n"
    "  scenario FILE [--lanes N] [--csv FILE] [--trace FILE]\n"
    "         [--trace-bin FILE] [--metrics-out FILE]\n"
    "  serve  --qps RATE [--diurnal AMP | --flash-crowd MULT] [--slo-ms N]\n"
    "         [--autoscale on|off] [--duration SECS] [--mix N]\n"
    "         [--scheduler NAME] [--nodes N] [--gpus N] [--lanes N] [--seed N]\n"
    "         [--crash-node N@T[:D]] [--trace FILE] [--trace-bin FILE]\n"
    "         [--metrics-out FILE]\n"
    "  dlsim  [--mix N] [--dlt N] [--dli N]           (compare all policies)\n"
    "  dlsim  --dl NAME [--mix N] [--dlt N] [--dli N] [--nodes N] [--gpus N]\n"
    "         [--lanes N] [--duration SECS] [--seed N] [--device-model NAME]\n"
    "         [--crash-node N@T[:D]]\n"
    "         [--fabric auto|zero] [--link-down NAME@T[:D]] [--allreduce MB]\n"
    "         [--trace FILE] [--trace-bin FILE] [--metrics-out FILE]\n"
    "  list\n";

int usage_error(const std::string& message) {
  std::cerr << "knots_ctl: " << message << "\n" << kUsage;
  return 2;
}

/// Strict flag parser: every token must be a known --flag followed by a
/// value. Returns std::nullopt (after printing the offending token) on any
/// violation so main can exit 2.
std::optional<std::map<std::string, std::string>> parse_flags(
    int argc, char** argv, int first, const std::set<std::string>& allowed) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      std::cerr << "knots_ctl: expected --flag, got '" << arg << "'\n";
      return std::nullopt;
    }
    const std::string key = arg.substr(2);
    if (!allowed.contains(key)) {
      std::cerr << "knots_ctl: unknown flag '--" << key << "'\n";
      return std::nullopt;
    }
    if (i + 1 >= argc) {
      std::cerr << "knots_ctl: flag '--" << key << "' needs a value\n";
      return std::nullopt;
    }
    if (flags.count(key) != 0) {
      std::cerr << "knots_ctl: duplicate flag '--" << key << "'\n";
      return std::nullopt;
    }
    flags[key] = argv[++i];
  }
  return flags;
}

/// Full-consumption integer parse; rejects "12x", "", "--nodes --gpus".
std::optional<long long> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

/// Full-consumption floating-point parse; rejects "1.5x" and "".
std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

/// Validated double lookup: missing flag → fallback, malformed → nullopt.
std::optional<double> double_flag(
    const std::map<std::string, std::string>& flags, const std::string& key,
    double fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = parse_double(it->second);
  if (!v.has_value()) {
    std::cerr << "knots_ctl: flag '--" << key << "' expects a number, got '"
              << it->second << "'\n";
  }
  return v;
}

/// Validated integer lookup: missing flag → fallback, malformed → nullopt.
std::optional<long long> int_flag(
    const std::map<std::string, std::string>& flags, const std::string& key,
    long long fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = parse_int(it->second);
  if (!v.has_value()) {
    std::cerr << "knots_ctl: flag '--" << key << "' expects an integer, got '"
              << it->second << "'\n";
  }
  return v;
}

/// Parses `--crash-node N@T[:D]` (node N dies at T seconds, down D seconds;
/// omitted D = forever) into a one-event fault plan. Missing flag → empty
/// plan; malformed spec → nullopt after a message.
std::optional<fault::FaultPlan> crash_plan_from_flags(
    const std::map<std::string, std::string>& flags) {
  fault::FaultPlan plan;
  const auto it = flags.find("crash-node");
  if (it == flags.end()) return plan;
  const std::string& spec = it->second;
  const auto at_pos = spec.find('@');
  if (at_pos != std::string::npos) {
    const auto node = parse_int(spec.substr(0, at_pos));
    const std::string rest = spec.substr(at_pos + 1);
    const auto colon = rest.find(':');
    const auto at = parse_int(rest.substr(0, colon));
    std::optional<long long> down_for = 0;
    if (colon != std::string::npos) down_for = parse_int(rest.substr(colon + 1));
    if (node && at && down_for && *node >= 0 && *at >= 0 && *down_for >= 0) {
      plan.node_crash(NodeId{static_cast<std::int32_t>(*node)}, *at * kSec,
                      *down_for * kSec);
      return plan;
    }
  }
  std::cerr << "knots_ctl: --crash-node expects N@T[:D], got '" << spec
            << "'\n";
  return std::nullopt;
}

/// Resolves `--device-model NAME` against the registry. Missing flag →
/// nullopt-free default model; unknown name → nullopt after a message.
std::optional<gpu::DeviceModel> device_model_from_flags(
    const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("device-model");
  if (it == flags.end()) return gpu::default_device_model();
  const auto model = gpu::find_device_model(it->second);
  if (!model.has_value()) {
    std::cerr << "knots_ctl: unknown device model '" << it->second
              << "' (one of:";
    for (const auto& m : gpu::device_models()) std::cerr << " " << m.name;
    std::cerr << ")\n";
    return std::nullopt;
  }
  return model;
}

/// Resolves `--fabric auto|zero` against the final node count; the auto
/// topology's intra-node tier tracks the selected device model's NVLink.
/// Missing flag → empty plan (fabric-free run); unknown mode → nullopt
/// after a message.
std::optional<net::FabricPlan> fabric_plan_from_flags(
    const std::map<std::string, std::string>& flags, int nodes,
    double intra_node_mb_per_s = 0.0) {
  const auto it = flags.find("fabric");
  if (it == flags.end()) return net::FabricPlan{};
  if (it->second == "auto") {
    net::AutoFabricOptions options;
    options.intra_node_mb_per_s = intra_node_mb_per_s;
    return net::FabricPlan::auto_derive(nodes, options);
  }
  if (it->second == "zero") return net::FabricPlan::zero_latency(nodes);
  std::cerr << "knots_ctl: flag '--fabric' expects auto|zero, got '"
            << it->second << "'\n";
  return std::nullopt;
}

/// Parses `--link-down NAME@T[:D]` into `plan`. The named link must exist
/// on the (non-empty) fabric — CLI-side pre-check, because FaultPlan's own
/// validation aborts rather than exiting 2. Missing flag → no-op.
bool add_link_down(const std::map<std::string, std::string>& flags,
                   const net::FabricPlan& fabric, fault::FaultPlan& plan) {
  const auto it = flags.find("link-down");
  if (it == flags.end()) return true;
  const std::string& spec = it->second;
  const auto at_pos = spec.find('@');
  if (at_pos != std::string::npos && at_pos > 0) {
    const std::string link = spec.substr(0, at_pos);
    const std::string rest = spec.substr(at_pos + 1);
    const auto colon = rest.find(':');
    const auto at = parse_int(rest.substr(0, colon));
    std::optional<long long> down_for = 0;
    if (colon != std::string::npos) down_for = parse_int(rest.substr(colon + 1));
    if (at && down_for && *at >= 0 && *down_for >= 0) {
      if (fabric.empty()) {
        std::cerr << "knots_ctl: --link-down requires --fabric\n";
        return false;
      }
      if (!fabric.has_link(link)) {
        std::cerr << "knots_ctl: --link-down names unknown link '" << link
                  << "'\n";
        return false;
      }
      plan.link_down(link, *at * kSec, *down_for * kSec);
      return true;
    }
  }
  std::cerr << "knots_ctl: --link-down expects NAME@T[:D], got '" << spec
            << "'\n";
  return false;
}

std::optional<ExperimentConfig> config_from_flags(
    const std::map<std::string, std::string>& flags) {
  ExperimentConfig::Builder builder;
  const auto mix = int_flag(flags, "mix", 1);
  const auto duration = int_flag(flags, "duration", -1);
  const auto nodes = int_flag(flags, "nodes", -1);
  const auto gpus = int_flag(flags, "gpus", -1);
  const auto lanes = int_flag(flags, "lanes", -1);
  const auto seed = int_flag(flags, "seed", -1);
  if (!mix || !duration || !nodes || !gpus || !lanes || !seed) {
    return std::nullopt;
  }
  builder.mix(static_cast<int>(*mix));
  if (*duration >= 0) builder.duration(*duration * kSec);
  if (*nodes >= 0) builder.nodes(static_cast<int>(*nodes));
  if (*gpus >= 0) builder.gpus_per_node(static_cast<int>(*gpus));
  if (flags.count("lanes") != 0) {
    if (*lanes < 1) {
      std::cerr << "knots_ctl: flag '--lanes' expects an integer >= 1, got '"
                << flags.at("lanes") << "'\n";
      return std::nullopt;
    }
    builder.lanes(static_cast<int>(*lanes));
  }
  if (*seed >= 0) builder.seed(static_cast<std::uint64_t>(*seed));

  std::string sched_name = "PP";
  if (flags.count("scheduler")) sched_name = flags.at("scheduler");
  bool known = false;
  for (auto kind : sched::kAllSchedulers) {
    if (sched::to_string(kind) == sched_name) known = true;
  }
  if (!known) {
    std::cerr << "knots_ctl: unknown scheduler '" << sched_name << "'\n";
    return std::nullopt;
  }
  builder.scheduler(sched::scheduler_from_name(sched_name));

  const auto model = device_model_from_flags(flags);
  if (!model) return std::nullopt;
  if (flags.count("device-model") != 0) builder.device_model(model->name);

  const int effective_nodes = *nodes >= 0 ? static_cast<int>(*nodes) : 10;
  const auto fabric =
      fabric_plan_from_flags(flags, effective_nodes, model->gpu.nvlink_mbps);
  if (!fabric) return std::nullopt;
  if (!fabric->empty()) builder.fabric(*fabric);

  auto plan = crash_plan_from_flags(flags);
  if (!plan) return std::nullopt;
  if (!add_link_down(flags, *fabric, *plan)) return std::nullopt;
  if (!plan->events.empty()) builder.faults(*plan);
  return builder.build();
}

void print_report(const ExperimentReport& r) {
  TablePrinter table("Experiment report: " + r.scheduler + ", app-mix-" +
                     std::to_string(r.mix_id));
  table.columns({"metric", "value"});
  table.row({"pods", std::to_string(r.pods_completed) + "/" +
                         std::to_string(r.pods_total)});
  table.row({"queries", std::to_string(r.queries)});
  table.row({"QoS violations/kilo", fmt(r.violations_per_kilo, 1)});
  table.row({"crashes", std::to_string(r.crashes)});
  table.row({"invariant violations", std::to_string(r.invariant_violations)});
  if (r.node_crashes > 0 || r.pods_evicted > 0) {
    table.row({"node crashes", std::to_string(r.node_crashes)});
    table.row({"pods evicted", std::to_string(r.pods_evicted)});
  }
  if (r.flows_started > 0 || r.link_events > 0) {
    table.row({"fabric flows (contended)",
               std::to_string(r.flows_finished) + "/" +
                   std::to_string(r.flows_started) + " (" +
                   std::to_string(r.flows_contended) + ")"});
    table.row({"fabric MB moved", fmt(r.mb_transferred, 0)});
  }
  table.row({"util p50 %", fmt(r.cluster_wide.p50, 1)});
  table.row({"util p99 %", fmt(r.cluster_wide.p99, 1)});
  table.row({"LC p50 / p99 ms",
             fmt(r.lc_p50_ms, 1) + " / " + fmt(r.lc_p99_ms, 1)});
  table.row({"mean / p99 JCT s",
             fmt(r.mean_jct_s, 1) + " / " + fmt(r.p99_jct_s, 1)});
  table.row({"mean power W", fmt(r.mean_power_watts, 0)});
  table.row({"energy kJ", fmt(r.energy_joules / 1000, 1)});
  for (const auto& t : r.tenants) {
    const std::string who = "tenant " + std::to_string(t.tenant);
    table.row({who + " peak MB / quota",
               fmt(t.peak_provisioned_mb, 0) + " / " +
                   (t.quota.provision_cap_mb > 0
                        ? fmt(t.quota.provision_cap_mb, 0)
                        : std::string("unlimited"))});
    table.row({who + " gpu-s / placed / rejected",
               fmt(t.gpu_seconds, 1) + " / " + std::to_string(t.placements) +
                   " / " + std::to_string(t.rejections)});
  }
  std::ostringstream digest;
  digest << "0x" << std::hex << std::setfill('0') << std::setw(16)
         << r.run_digest;
  table.row({"run digest", digest.str()});
  table.print(std::cout);
}

void export_csv(const ExperimentReport& r, const std::string& path) {
  CsvWriter csv(path, {"gpu", "p50", "p90", "p99", "max", "cov"});
  if (!csv.ok()) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  for (std::size_t g = 0; g < r.per_gpu.size(); ++g) {
    csv.row(std::to_string(g),
            {r.per_gpu[g].p50, r.per_gpu[g].p90, r.per_gpu[g].p99,
             r.per_gpu[g].max, r.per_gpu_cov[g]},
            3);
  }
  std::cout << "wrote " << csv.rows_written() << " rows to " << path << "\n";
}

/// Writes via `emit` to `path`; returns false (with a message) on I/O error.
template <typename Emit>
bool write_file(const std::string& path, const char* what, Emit emit) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "knots_ctl: cannot write " << what << " to " << path << "\n";
    return false;
  }
  emit(out);
  std::cout << "wrote " << what << " to " << path << "\n";
  return !out.fail();
}

int cmd_run(const std::map<std::string, std::string>& flags) {
  const auto config = config_from_flags(flags);
  if (!config) {
    std::cerr << kUsage;
    return 2;
  }

  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  const bool want_trace =
      flags.count("trace") != 0 || flags.count("trace-bin") != 0;
  RunObservability observability;
  if (want_trace) observability.trace = &trace;
  if (flags.count("metrics-out")) observability.metrics = &metrics;

  const auto report = run_experiment(*config, observability);
  print_report(report);
  if (flags.count("csv")) export_csv(report, flags.at("csv"));

  bool io_ok = true;
  if (flags.count("trace")) {
    io_ok &= write_file(flags.at("trace"), "chrome trace",
                        [&](std::ostream& os) { trace.export_chrome_trace(os); });
  }
  if (flags.count("trace-bin")) {
    io_ok &= write_file(flags.at("trace-bin"), "binary trace",
                        [&](std::ostream& os) { trace.export_binary(os); });
  }
  if (flags.count("metrics-out")) {
    io_ok &= write_file(flags.at("metrics-out"), "metrics",
                        [&](std::ostream& os) { metrics.to_json(os); });
  }
  return io_ok ? 0 : 1;
}

int cmd_scenario(const std::string& path,
                 const std::map<std::string, std::string>& flags) {
  std::string error;
  auto scenario = load_scenario(path, error);
  if (!scenario) {
    std::cerr << "knots_ctl: " << error << "\n" << kUsage;
    return 2;
  }
  const auto lanes = int_flag(flags, "lanes", -1);
  if (!lanes) {
    std::cerr << kUsage;
    return 2;
  }
  if (flags.count("lanes") != 0) {
    if (*lanes < 1) {
      std::cerr << "knots_ctl: flag '--lanes' expects an integer >= 1, got '"
                << flags.at("lanes") << "'\n"
                << kUsage;
      return 2;
    }
    scenario->config.cluster.lanes = static_cast<int>(*lanes);
  }

  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  RunObservability observability;
  if (flags.count("trace") != 0 || flags.count("trace-bin") != 0) {
    observability.trace = &trace;
  }
  if (flags.count("metrics-out")) observability.metrics = &metrics;

  std::cout << "scenario " << scenario->name << " ("
            << scenario->config.cluster.nodes << " nodes, lanes "
            << scenario->config.cluster.lanes << ")\n";
  const auto report = run_experiment(scenario->config, observability);
  print_report(report);
  if (flags.count("csv")) export_csv(report, flags.at("csv"));

  bool io_ok = true;
  if (flags.count("trace")) {
    io_ok &= write_file(flags.at("trace"), "chrome trace",
                        [&](std::ostream& os) { trace.export_chrome_trace(os); });
  }
  if (flags.count("trace-bin")) {
    io_ok &= write_file(flags.at("trace-bin"), "binary trace",
                        [&](std::ostream& os) { trace.export_binary(os); });
  }
  if (flags.count("metrics-out")) {
    io_ok &= write_file(flags.at("metrics-out"), "metrics",
                        [&](std::ostream& os) { metrics.to_json(os); });
  }
  return io_ok ? 0 : 1;
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  const auto base = config_from_flags(flags);
  if (!base) {
    std::cerr << kUsage;
    return 2;
  }
  const std::vector<sched::SchedulerKind> kinds(sched::kAllSchedulers.begin(),
                                                sched::kAllSchedulers.end());
  SweepGrid grid;
  grid.schedulers = kinds;
  const auto results = run_sweep(*base, grid);
  TablePrinter table("Scheduler sweep, app-mix-" +
                     std::to_string(base->mix_id));
  table.columns({"scheduler", "viol/kilo", "crashes", "evictions",
                 "util p50%", "energy kJ", "mean JCT s"});
  for (const auto& result : results) {
    const auto& r = result.report;
    table.row({r.scheduler, fmt(r.violations_per_kilo, 1),
               std::to_string(r.crashes), std::to_string(r.pods_evicted),
               fmt(r.cluster_wide.p50, 1), fmt(r.energy_joules / 1000, 0),
               fmt(r.mean_jct_s, 1)});
  }
  table.print(std::cout);
  return 0;
}

void print_serving_report(const serve::ServingReport& r,
                          const serve::ServingConfig& cfg) {
  TablePrinter table("Serving report: " + r.experiment.scheduler + ", " +
                     std::string(to_string(cfg.arrivals.shape)) +
                     " arrivals");
  table.columns({"metric", "value"});
  table.row({"offered / admitted", std::to_string(r.offered) + " / " +
                                       std::to_string(r.admitted)});
  table.row({"served (degraded)", std::to_string(r.completed + r.degraded) +
                                      " (" + std::to_string(r.degraded) +
                                      ")"});
  table.row({"shed / expired", std::to_string(r.shed) + " / " +
                                   std::to_string(r.expired)});
  table.row({"SLO violations", std::to_string(r.slo_violations)});
  table.row({"offered / achieved qps",
             fmt(r.offered_qps, 1) + " / " + fmt(r.achieved_qps, 1)});
  table.row({"p50 / p99 / p999 ms", fmt(r.latency.p50_ms, 1) + " / " +
                                        fmt(r.latency.p99_ms, 1) + " / " +
                                        fmt(r.latency.p999_ms, 1)});
  table.row({"batches (mean fill)", std::to_string(r.batches) + " (" +
                                        fmt(r.mean_batch_fill, 2) + ")"});
  table.row({"replicas launched/retired",
             std::to_string(r.replicas_launched) + " / " +
                 std::to_string(r.replicas_retired)});
  table.row({"scale up / down", std::to_string(r.scale_ups) + " / " +
                                    std::to_string(r.scale_downs)});
  for (const auto& s : r.services) {
    table.row({"svc " + s.service + " p99 ms / shed",
               fmt(s.latency.p99_ms, 1) + " / " + std::to_string(s.shed)});
  }
  std::ostringstream serve_digest;
  serve_digest << "0x" << std::hex << std::setfill('0') << std::setw(16)
               << r.serve_digest;
  table.row({"serve digest", serve_digest.str()});
  std::ostringstream run_digest;
  run_digest << "0x" << std::hex << std::setfill('0') << std::setw(16)
             << r.experiment.run_digest;
  table.row({"run digest", run_digest.str()});
  table.print(std::cout);
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const auto config = config_from_flags(flags);
  const auto qps = double_flag(flags, "qps", 120.0);
  const auto slo_ms = int_flag(flags, "slo-ms", -1);
  if (!config || !qps || !slo_ms) {
    std::cerr << kUsage;
    return 2;
  }
  if (*qps < 0.0) {
    std::cerr << "knots_ctl: flag '--qps' expects a rate >= 0, got '"
              << flags.at("qps") << "'\n"
              << kUsage;
    return 2;
  }
  if (flags.count("diurnal") != 0 && flags.count("flash-crowd") != 0) {
    std::cerr << "knots_ctl: --diurnal and --flash-crowd are mutually "
                 "exclusive\n"
              << kUsage;
    return 2;
  }

  serve::ArrivalShape shape = serve::ArrivalShape::kPoisson;
  const auto diurnal = double_flag(flags, "diurnal", -1.0);
  const auto flash = double_flag(flags, "flash-crowd", -1.0);
  if (!diurnal || !flash) {
    std::cerr << kUsage;
    return 2;
  }
  serve::ServingConfig cfg =
      serve::default_serving(*qps, shape, config->scheduler);
  cfg.experiment = *config;
  if (flags.count("diurnal") != 0) {
    if (*diurnal < 0.0 || *diurnal > 1.0) {
      std::cerr << "knots_ctl: flag '--diurnal' expects an amplitude in "
                   "[0, 1], got '"
                << flags.at("diurnal") << "'\n"
                << kUsage;
      return 2;
    }
    cfg.arrivals.shape = serve::ArrivalShape::kDiurnal;
    cfg.arrivals.diurnal_amplitude = *diurnal;
  }
  if (flags.count("flash-crowd") != 0) {
    if (*flash < 1.0) {
      std::cerr << "knots_ctl: flag '--flash-crowd' expects a multiplier "
                   ">= 1, got '"
                << flags.at("flash-crowd") << "'\n"
                << kUsage;
      return 2;
    }
    cfg.arrivals.shape = serve::ArrivalShape::kFlashCrowd;
    cfg.arrivals.spike_multiplier = *flash;
  }
  if (flags.count("slo-ms") != 0) {
    if (*slo_ms < 1) {
      std::cerr << "knots_ctl: flag '--slo-ms' expects an integer >= 1, "
                   "got '"
                << flags.at("slo-ms") << "'\n"
                << kUsage;
      return 2;
    }
    for (auto& svc : cfg.services) svc.slo = *slo_ms * kMsec;
  }
  if (flags.count("autoscale") != 0) {
    const std::string& v = flags.at("autoscale");
    if (v != "on" && v != "off") {
      std::cerr << "knots_ctl: flag '--autoscale' expects on|off, got '" << v
                << "'\n"
                << kUsage;
      return 2;
    }
    cfg.autoscale = v == "on";
  }
  // --duration is the request window for serving runs.
  const auto duration = int_flag(flags, "duration", -1);
  if (duration && *duration >= 0) cfg.window = *duration * kSec;

  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  RunObservability observability;
  if (flags.count("trace") != 0 || flags.count("trace-bin") != 0) {
    observability.trace = &trace;
  }
  if (flags.count("metrics-out")) observability.metrics = &metrics;

  const auto report = serve::run_serving(cfg, observability);
  print_serving_report(report, cfg);

  bool io_ok = true;
  if (flags.count("trace")) {
    io_ok &= write_file(flags.at("trace"), "chrome trace",
                        [&](std::ostream& os) { trace.export_chrome_trace(os); });
  }
  if (flags.count("trace-bin")) {
    io_ok &= write_file(flags.at("trace-bin"), "binary trace",
                        [&](std::ostream& os) { trace.export_binary(os); });
  }
  if (flags.count("metrics-out")) {
    io_ok &= write_file(flags.at("metrics-out"), "metrics",
                        [&](std::ostream& os) { metrics.to_json(os); });
  }
  return io_ok ? 0 : 1;
}

void print_dl_run(const dlsim::DlResult& r) {
  TablePrinter table("DL run: " + r.policy);
  table.columns({"metric", "value"});
  table.row({"jobs", std::to_string(r.dlt_completed) + "/" +
                         std::to_string(r.dlt_total)});
  table.row({"avg / median / p99 JCT h",
             fmt(r.avg_jct_h, 2) + " / " + fmt(r.median_jct_h, 2) + " / " +
                 fmt(r.p99_jct_h, 2)});
  table.row({"queries", std::to_string(r.queries.size())});
  table.row({"DLI violations/hr", fmt(r.violations_per_hour, 1)});
  table.row({"crashes / migr / preempt",
             std::to_string(r.crash_restarts) + " / " +
                 std::to_string(r.migrations) + " / " +
                 std::to_string(r.preemptions)});
  if (r.node_crashes > 0 || r.jobs_evicted > 0) {
    table.row({"node crashes", std::to_string(r.node_crashes)});
    table.row({"jobs evicted", std::to_string(r.jobs_evicted)});
  }
  table.row({"mean power W", fmt(r.mean_power_watts, 0)});
  table.row({"energy kJ", fmt(r.energy_joules / 1000, 1)});
  std::ostringstream digest;
  digest << "0x" << std::hex << std::setfill('0') << std::setw(16)
         << r.run_digest;
  table.row({"run digest", digest.str()});
  table.print(std::cout);
}

int cmd_dlsim(const std::map<std::string, std::string>& flags) {
  dlsim::DlClusterConfig cluster;
  dlsim::DlWorkloadConfig wl;
  const auto mix = int_flag(flags, "mix", wl.mix_id);
  const auto dlt = int_flag(flags, "dlt", wl.dlt_jobs);
  const auto dli = int_flag(flags, "dli", wl.dli_queries);
  const auto nodes = int_flag(flags, "nodes", cluster.nodes);
  const auto gpus = int_flag(flags, "gpus", cluster.gpus_per_node);
  const auto lanes = int_flag(flags, "lanes", cluster.lanes);
  const auto duration = int_flag(flags, "duration", -1);
  const auto seed = int_flag(flags, "seed", 42);
  if (!mix || !dlt || !dli || !nodes || !gpus || !lanes || !duration ||
      !seed) {
    std::cerr << kUsage;
    return 2;
  }
  if (*lanes < 1) {
    std::cerr << "knots_ctl: flag '--lanes' expects an integer >= 1, got '"
              << flags.at("lanes") << "'\n"
              << kUsage;
    return 2;
  }
  wl.mix_id = static_cast<int>(*mix);
  wl.dlt_jobs = static_cast<int>(*dlt);
  wl.dli_queries = static_cast<int>(*dli);
  if (*duration >= 0) wl.window = *duration * kSec;
  cluster.nodes = static_cast<int>(*nodes);
  cluster.gpus_per_node = static_cast<int>(*gpus);
  cluster.lanes = static_cast<int>(*lanes);

  const auto model = device_model_from_flags(flags);
  if (!model) {
    std::cerr << kUsage;
    return 2;
  }
  cluster.gpu = model->gpu;

  const auto fabric =
      fabric_plan_from_flags(flags, cluster.nodes, model->gpu.nvlink_mbps);
  if (!fabric) {
    std::cerr << kUsage;
    return 2;
  }
  cluster.fabric = *fabric;
  const auto allreduce = double_flag(flags, "allreduce", 0.0);
  if (!allreduce || *allreduce < 0.0) {
    if (allreduce) {
      std::cerr << "knots_ctl: flag '--allreduce' expects MB >= 0, got '"
                << flags.at("allreduce") << "'\n";
    }
    std::cerr << kUsage;
    return 2;
  }
  cluster.allreduce_mb_per_step = *allreduce;

  if (flags.count("dl") == 0) {
    // Classic 4-way comparison (Fig 12); observability flags need --dl.
    const auto results = dlsim::run_all_policies(cluster, wl);
    dlsim::print_dl_report(std::cout, results);
    return 0;
  }

  const std::string policy = flags.at("dl");
  const auto known = dlsim::dl_policy_names();
  if (std::find(known.begin(), known.end(), policy) == known.end()) {
    std::cerr << "knots_ctl: unknown DL policy '" << policy << "' (one of:";
    for (const auto& name : known) std::cerr << " " << name;
    std::cerr << ")\n" << kUsage;
    return 2;
  }

  dlsim::DlRunOptions options;
  auto plan = crash_plan_from_flags(flags);
  if (!plan || !add_link_down(flags, *fabric, *plan)) {
    std::cerr << kUsage;
    return 2;
  }
  options.faults = *plan;

  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  if (flags.count("trace") != 0 || flags.count("trace-bin") != 0) {
    options.trace = &trace;
  }
  if (flags.count("metrics-out")) options.metrics = &metrics;

  const auto result = dlsim::run_dl_simulation(
      policy, cluster, wl, static_cast<std::uint64_t>(*seed), options);
  print_dl_run(result);

  bool io_ok = true;
  if (flags.count("trace")) {
    io_ok &= write_file(flags.at("trace"), "chrome trace",
                        [&](std::ostream& os) { trace.export_chrome_trace(os); });
  }
  if (flags.count("trace-bin")) {
    io_ok &= write_file(flags.at("trace-bin"), "binary trace",
                        [&](std::ostream& os) { trace.export_binary(os); });
  }
  if (flags.count("metrics-out")) {
    io_ok &= write_file(flags.at("metrics-out"), "metrics",
                        [&](std::ostream& os) { metrics.to_json(os); });
  }
  return io_ok ? 0 : 1;
}

int cmd_list() {
  std::cout << "schedulers:";
  for (auto kind : sched::kAllSchedulers) {
    std::cout << " " << sched::to_string(kind);
  }
  std::cout << "\ndl policies:";
  for (const auto& name : dlsim::dl_policy_names()) {
    std::cout << " " << name;
  }
  std::cout << "\ndevice models:";
  for (const auto& m : gpu::device_models()) {
    std::cout << " " << m.name;
  }
  std::cout << "\napp mixes:\n";
  for (const auto& mix : workload::all_app_mixes()) {
    std::cout << "  " << mix.id << ": " << mix.name << " (load "
              << to_string(mix.load) << ", COV " << to_string(mix.cov)
              << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string cmd = argv[1];

  static const std::map<std::string, std::set<std::string>> kAllowedFlags = {
      {"run",
       {"mix", "scheduler", "duration", "nodes", "gpus", "lanes", "seed",
        "device-model", "csv", "crash-node", "fabric", "link-down", "trace",
        "trace-bin", "metrics-out"}},
      {"sweep",
       {"mix", "scheduler", "duration", "nodes", "gpus", "lanes", "seed",
        "device-model"}},
      {"scenario", {"lanes", "csv", "trace", "trace-bin", "metrics-out"}},
      {"serve",
       {"mix", "scheduler", "duration", "nodes", "gpus", "lanes", "seed",
        "qps", "diurnal", "flash-crowd", "slo-ms", "autoscale", "crash-node",
        "trace", "trace-bin", "metrics-out"}},
      {"dlsim",
       {"mix", "dlt", "dli", "dl", "nodes", "gpus", "lanes", "duration",
        "seed", "device-model", "crash-node", "fabric", "link-down",
        "allreduce", "trace", "trace-bin", "metrics-out"}},
      {"list", {}},
  };
  const auto allowed = kAllowedFlags.find(cmd);
  if (allowed == kAllowedFlags.end()) {
    return usage_error("unknown command: " + cmd);
  }
  if (cmd == "scenario") {
    // One positional argument (the scenario file) before the flags.
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      return usage_error("scenario needs a file argument");
    }
    const auto flags = parse_flags(argc, argv, 3, allowed->second);
    if (!flags) {
      std::cerr << kUsage;
      return 2;
    }
    return cmd_scenario(argv[2], *flags);
  }
  const auto flags = parse_flags(argc, argv, 2, allowed->second);
  if (!flags) {
    std::cerr << kUsage;
    return 2;
  }
  if (cmd == "run") return cmd_run(*flags);
  if (cmd == "sweep") return cmd_sweep(*flags);
  if (cmd == "serve") return cmd_serve(*flags);
  if (cmd == "dlsim") return cmd_dlsim(*flags);
  return cmd_list();
}
