// knots_ctl — command-line front end to the library: run any experiment
// configuration and print (or CSV-export) the report.
//
//   knots_ctl run --mix 1 --scheduler PP --duration 300 [--nodes 10]
//                 [--gpus 1] [--seed 42] [--csv out.csv]
//                 [--crash-node N@T[:D]]          # fault injection
//   knots_ctl sweep --mix 1 --duration 300        # all four schedulers
//   knots_ctl dlsim [--mix 1] [--dlt 520] [--dli 1400]
//   knots_ctl list                                 # schedulers & mixes
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "core/csv.hpp"
#include "core/table.hpp"
#include "dlsim/dl_report.hpp"
#include "knots/experiment.hpp"
#include "workload/app_mix.hpp"

namespace {

using namespace knots;

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    flags[key] = argv[i + 1];
  }
  return flags;
}

ExperimentConfig config_from_flags(
    const std::map<std::string, std::string>& flags) {
  ExperimentConfig::Builder builder;
  if (flags.count("mix")) builder.mix(std::atoi(flags.at("mix").c_str()));
  builder.scheduler(sched::scheduler_from_name(
      flags.count("scheduler") ? flags.at("scheduler") : "PP"));
  if (flags.count("duration")) {
    builder.duration(std::atoi(flags.at("duration").c_str()) * kSec);
  }
  if (flags.count("nodes")) {
    builder.nodes(std::atoi(flags.at("nodes").c_str()));
  }
  if (flags.count("gpus")) {
    builder.gpus_per_node(std::atoi(flags.at("gpus").c_str()));
  }
  if (flags.count("seed")) {
    builder.seed(static_cast<std::uint64_t>(
        std::atoll(flags.at("seed").c_str())));
  }
  if (flags.count("crash-node")) {
    // --crash-node N@T[:D] — node N dies at T seconds, down D seconds
    // (omitted D = forever). A minimal chaos knob for the CLI.
    const std::string& spec = flags.at("crash-node");
    const auto at_pos = spec.find('@');
    const int node = std::atoi(spec.substr(0, at_pos).c_str());
    SimTime at = 0;
    SimTime down_for = 0;
    if (at_pos != std::string::npos) {
      const std::string rest = spec.substr(at_pos + 1);
      const auto colon = rest.find(':');
      at = std::atoi(rest.substr(0, colon).c_str()) * kSec;
      if (colon != std::string::npos) {
        down_for = std::atoi(rest.substr(colon + 1).c_str()) * kSec;
      }
    }
    builder.faults(fault::FaultPlan{}.node_crash(NodeId{node}, at, down_for));
  }
  return builder.build();
}

void print_report(const ExperimentReport& r) {
  TablePrinter table("Experiment report: " + r.scheduler + ", app-mix-" +
                     std::to_string(r.mix_id));
  table.columns({"metric", "value"});
  table.row({"pods", std::to_string(r.pods_completed) + "/" +
                         std::to_string(r.pods_total)});
  table.row({"queries", std::to_string(r.queries)});
  table.row({"QoS violations/kilo", fmt(r.violations_per_kilo, 1)});
  table.row({"crashes", std::to_string(r.crashes)});
  if (r.node_crashes > 0 || r.pods_evicted > 0) {
    table.row({"node crashes", std::to_string(r.node_crashes)});
    table.row({"pods evicted", std::to_string(r.pods_evicted)});
  }
  table.row({"util p50 %", fmt(r.cluster_wide.p50, 1)});
  table.row({"util p99 %", fmt(r.cluster_wide.p99, 1)});
  table.row({"LC p50 / p99 ms",
             fmt(r.lc_p50_ms, 1) + " / " + fmt(r.lc_p99_ms, 1)});
  table.row({"mean / p99 JCT s",
             fmt(r.mean_jct_s, 1) + " / " + fmt(r.p99_jct_s, 1)});
  table.row({"mean power W", fmt(r.mean_power_watts, 0)});
  table.row({"energy kJ", fmt(r.energy_joules / 1000, 1)});
  table.print(std::cout);
}

void export_csv(const ExperimentReport& r, const std::string& path) {
  CsvWriter csv(path, {"gpu", "p50", "p90", "p99", "max", "cov"});
  if (!csv.ok()) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  for (std::size_t g = 0; g < r.per_gpu.size(); ++g) {
    csv.row(std::to_string(g),
            {r.per_gpu[g].p50, r.per_gpu[g].p90, r.per_gpu[g].p99,
             r.per_gpu[g].max, r.per_gpu_cov[g]},
            3);
  }
  std::cout << "wrote " << csv.rows_written() << " rows to " << path << "\n";
}

int cmd_run(const std::map<std::string, std::string>& flags) {
  const auto report = run_experiment(config_from_flags(flags));
  print_report(report);
  if (flags.count("csv")) export_csv(report, flags.at("csv"));
  return 0;
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  const auto base = config_from_flags(flags);
  const std::vector<sched::SchedulerKind> kinds(sched::kAllSchedulers.begin(),
                                                sched::kAllSchedulers.end());
  SweepGrid grid;
  grid.schedulers = kinds;
  const auto results = run_sweep(base, grid);
  TablePrinter table("Scheduler sweep, app-mix-" +
                     std::to_string(base.mix_id));
  table.columns({"scheduler", "viol/kilo", "crashes", "evictions",
                 "util p50%", "energy kJ", "mean JCT s"});
  for (const auto& result : results) {
    const auto& r = result.report;
    table.row({r.scheduler, fmt(r.violations_per_kilo, 1),
               std::to_string(r.crashes), std::to_string(r.pods_evicted),
               fmt(r.cluster_wide.p50, 1), fmt(r.energy_joules / 1000, 0),
               fmt(r.mean_jct_s, 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_dlsim(const std::map<std::string, std::string>& flags) {
  dlsim::DlClusterConfig cluster;
  dlsim::DlWorkloadConfig wl;
  if (flags.count("mix")) wl.mix_id = std::atoi(flags.at("mix").c_str());
  if (flags.count("dlt")) wl.dlt_jobs = std::atoi(flags.at("dlt").c_str());
  if (flags.count("dli")) wl.dli_queries = std::atoi(flags.at("dli").c_str());
  const auto results = dlsim::run_all_policies(cluster, wl);
  dlsim::print_dl_report(std::cout, results);
  return 0;
}

int cmd_list() {
  std::cout << "schedulers:";
  for (auto kind : sched::kAllSchedulers) {
    std::cout << " " << sched::to_string(kind);
  }
  std::cout << "\napp mixes:\n";
  for (const auto& mix : workload::all_app_mixes()) {
    std::cout << "  " << mix.id << ": " << mix.name << " (load "
              << to_string(mix.load) << ", COV " << to_string(mix.cov)
              << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: knots_ctl <run|sweep|dlsim|list> [--flag value]...\n";
    return 2;
  }
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "sweep") return cmd_sweep(flags);
  if (cmd == "dlsim") return cmd_dlsim(flags);
  if (cmd == "list") return cmd_list();
  std::cerr << "unknown command: " << cmd << "\n";
  return 2;
}
