# Empty compiler generated dependencies file for bench_fig03_rodinia_characterization.
# This may be replaced when dependencies are built.
