file(REMOVE_RECURSE
  "../bench/bench_fig03_rodinia_characterization"
  "../bench/bench_fig03_rodinia_characterization.pdb"
  "CMakeFiles/bench_fig03_rodinia_characterization.dir/bench_fig03_rodinia_characterization.cpp.o"
  "CMakeFiles/bench_fig03_rodinia_characterization.dir/bench_fig03_rodinia_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_rodinia_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
