# Empty dependencies file for bench_ablation_provisioning.
# This may be replaced when dependencies are built.
