file(REMOVE_RECURSE
  "../bench/bench_ablation_provisioning"
  "../bench/bench_ablation_provisioning.pdb"
  "CMakeFiles/bench_ablation_provisioning.dir/bench_ablation_provisioning.cpp.o"
  "CMakeFiles/bench_ablation_provisioning.dir/bench_ablation_provisioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
