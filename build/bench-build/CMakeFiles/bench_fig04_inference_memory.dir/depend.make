# Empty dependencies file for bench_fig04_inference_memory.
# This may be replaced when dependencies are built.
