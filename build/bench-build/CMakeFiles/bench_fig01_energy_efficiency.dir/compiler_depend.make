# Empty compiler generated dependencies file for bench_fig01_energy_efficiency.
# This may be replaced when dependencies are built.
