file(REMOVE_RECURSE
  "../bench/bench_fig01_energy_efficiency"
  "../bench/bench_fig01_energy_efficiency.pdb"
  "CMakeFiles/bench_fig01_energy_efficiency.dir/bench_fig01_energy_efficiency.cpp.o"
  "CMakeFiles/bench_fig01_energy_efficiency.dir/bench_fig01_energy_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
