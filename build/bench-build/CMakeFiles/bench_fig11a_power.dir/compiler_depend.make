# Empty compiler generated dependencies file for bench_fig11a_power.
# This may be replaced when dependencies are built.
