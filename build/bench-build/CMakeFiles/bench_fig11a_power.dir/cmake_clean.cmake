file(REMOVE_RECURSE
  "../bench/bench_fig11a_power"
  "../bench/bench_fig11a_power.pdb"
  "CMakeFiles/bench_fig11a_power.dir/bench_fig11a_power.cpp.o"
  "CMakeFiles/bench_fig11a_power.dir/bench_fig11a_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
