file(REMOVE_RECURSE
  "../bench/bench_fig07_cov"
  "../bench/bench_fig07_cov.pdb"
  "CMakeFiles/bench_fig07_cov.dir/bench_fig07_cov.cpp.o"
  "CMakeFiles/bench_fig07_cov.dir/bench_fig07_cov.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
