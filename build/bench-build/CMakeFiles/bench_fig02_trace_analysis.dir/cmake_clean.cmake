file(REMOVE_RECURSE
  "../bench/bench_fig02_trace_analysis"
  "../bench/bench_fig02_trace_analysis.pdb"
  "CMakeFiles/bench_fig02_trace_analysis.dir/bench_fig02_trace_analysis.cpp.o"
  "CMakeFiles/bench_fig02_trace_analysis.dir/bench_fig02_trace_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
