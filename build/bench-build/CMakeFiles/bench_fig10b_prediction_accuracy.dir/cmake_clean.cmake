file(REMOVE_RECURSE
  "../bench/bench_fig10b_prediction_accuracy"
  "../bench/bench_fig10b_prediction_accuracy.pdb"
  "CMakeFiles/bench_fig10b_prediction_accuracy.dir/bench_fig10b_prediction_accuracy.cpp.o"
  "CMakeFiles/bench_fig10b_prediction_accuracy.dir/bench_fig10b_prediction_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_prediction_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
