# Empty dependencies file for bench_fig10b_prediction_accuracy.
# This may be replaced when dependencies are built.
