file(REMOVE_RECURSE
  "../bench/bench_fig08_pp_utilization"
  "../bench/bench_fig08_pp_utilization.pdb"
  "CMakeFiles/bench_fig08_pp_utilization.dir/bench_fig08_pp_utilization.cpp.o"
  "CMakeFiles/bench_fig08_pp_utilization.dir/bench_fig08_pp_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pp_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
