# Empty dependencies file for bench_fig08_pp_utilization.
# This may be replaced when dependencies are built.
