# Empty dependencies file for bench_fig09_cluster_utilization.
# This may be replaced when dependencies are built.
