file(REMOVE_RECURSE
  "../bench/bench_fig06_resag_utilization"
  "../bench/bench_fig06_resag_utilization.pdb"
  "CMakeFiles/bench_fig06_resag_utilization.dir/bench_fig06_resag_utilization.cpp.o"
  "CMakeFiles/bench_fig06_resag_utilization.dir/bench_fig06_resag_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_resag_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
