# Empty compiler generated dependencies file for bench_fig06_resag_utilization.
# This may be replaced when dependencies are built.
