# Empty compiler generated dependencies file for bench_fig11b_load_balance.
# This may be replaced when dependencies are built.
