file(REMOVE_RECURSE
  "../bench/bench_fig11b_load_balance"
  "../bench/bench_fig11b_load_balance.pdb"
  "CMakeFiles/bench_fig11b_load_balance.dir/bench_fig11b_load_balance.cpp.o"
  "CMakeFiles/bench_fig11b_load_balance.dir/bench_fig11b_load_balance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
