# Empty compiler generated dependencies file for bench_fig12_dl_jct.
# This may be replaced when dependencies are built.
