file(REMOVE_RECURSE
  "../bench/bench_fig12_dl_jct"
  "../bench/bench_fig12_dl_jct.pdb"
  "CMakeFiles/bench_fig12_dl_jct.dir/bench_fig12_dl_jct.cpp.o"
  "CMakeFiles/bench_fig12_dl_jct.dir/bench_fig12_dl_jct.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dl_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
