file(REMOVE_RECURSE
  "../bench/bench_fig10a_qos_violations"
  "../bench/bench_fig10a_qos_violations.pdb"
  "CMakeFiles/bench_fig10a_qos_violations.dir/bench_fig10a_qos_violations.cpp.o"
  "CMakeFiles/bench_fig10a_qos_violations.dir/bench_fig10a_qos_violations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_qos_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
