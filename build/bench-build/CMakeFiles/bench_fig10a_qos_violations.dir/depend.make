# Empty dependencies file for bench_fig10a_qos_violations.
# This may be replaced when dependencies are built.
