
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/arima.cpp" "src/stats/CMakeFiles/knots_stats.dir/arima.cpp.o" "gcc" "src/stats/CMakeFiles/knots_stats.dir/arima.cpp.o.d"
  "/root/repo/src/stats/autocorrelation.cpp" "src/stats/CMakeFiles/knots_stats.dir/autocorrelation.cpp.o" "gcc" "src/stats/CMakeFiles/knots_stats.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/knots_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/knots_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/knots_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/knots_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ewma_forecaster.cpp" "src/stats/CMakeFiles/knots_stats.dir/ewma_forecaster.cpp.o" "gcc" "src/stats/CMakeFiles/knots_stats.dir/ewma_forecaster.cpp.o.d"
  "/root/repo/src/stats/regressors.cpp" "src/stats/CMakeFiles/knots_stats.dir/regressors.cpp.o" "gcc" "src/stats/CMakeFiles/knots_stats.dir/regressors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
