file(REMOVE_RECURSE
  "libknots_stats.a"
)
