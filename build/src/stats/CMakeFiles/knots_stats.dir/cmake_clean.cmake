file(REMOVE_RECURSE
  "CMakeFiles/knots_stats.dir/arima.cpp.o"
  "CMakeFiles/knots_stats.dir/arima.cpp.o.d"
  "CMakeFiles/knots_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/knots_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/knots_stats.dir/correlation.cpp.o"
  "CMakeFiles/knots_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/knots_stats.dir/descriptive.cpp.o"
  "CMakeFiles/knots_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/knots_stats.dir/ewma_forecaster.cpp.o"
  "CMakeFiles/knots_stats.dir/ewma_forecaster.cpp.o.d"
  "CMakeFiles/knots_stats.dir/regressors.cpp.o"
  "CMakeFiles/knots_stats.dir/regressors.cpp.o.d"
  "libknots_stats.a"
  "libknots_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
