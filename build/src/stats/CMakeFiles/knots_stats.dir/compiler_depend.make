# Empty compiler generated dependencies file for knots_stats.
# This may be replaced when dependencies are built.
