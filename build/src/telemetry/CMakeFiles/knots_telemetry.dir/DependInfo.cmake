
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/aggregator.cpp" "src/telemetry/CMakeFiles/knots_telemetry.dir/aggregator.cpp.o" "gcc" "src/telemetry/CMakeFiles/knots_telemetry.dir/aggregator.cpp.o.d"
  "/root/repo/src/telemetry/downsample.cpp" "src/telemetry/CMakeFiles/knots_telemetry.dir/downsample.cpp.o" "gcc" "src/telemetry/CMakeFiles/knots_telemetry.dir/downsample.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/telemetry/CMakeFiles/knots_telemetry.dir/sampler.cpp.o" "gcc" "src/telemetry/CMakeFiles/knots_telemetry.dir/sampler.cpp.o.d"
  "/root/repo/src/telemetry/timeseries_db.cpp" "src/telemetry/CMakeFiles/knots_telemetry.dir/timeseries_db.cpp.o" "gcc" "src/telemetry/CMakeFiles/knots_telemetry.dir/timeseries_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/knots_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
