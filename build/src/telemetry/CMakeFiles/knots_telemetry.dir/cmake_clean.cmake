file(REMOVE_RECURSE
  "CMakeFiles/knots_telemetry.dir/aggregator.cpp.o"
  "CMakeFiles/knots_telemetry.dir/aggregator.cpp.o.d"
  "CMakeFiles/knots_telemetry.dir/downsample.cpp.o"
  "CMakeFiles/knots_telemetry.dir/downsample.cpp.o.d"
  "CMakeFiles/knots_telemetry.dir/sampler.cpp.o"
  "CMakeFiles/knots_telemetry.dir/sampler.cpp.o.d"
  "CMakeFiles/knots_telemetry.dir/timeseries_db.cpp.o"
  "CMakeFiles/knots_telemetry.dir/timeseries_db.cpp.o.d"
  "libknots_telemetry.a"
  "libknots_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
