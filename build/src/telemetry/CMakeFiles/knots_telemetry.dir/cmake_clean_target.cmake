file(REMOVE_RECURSE
  "libknots_telemetry.a"
)
