# Empty dependencies file for knots_telemetry.
# This may be replaced when dependencies are built.
