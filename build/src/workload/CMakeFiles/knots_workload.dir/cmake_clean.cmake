file(REMOVE_RECURSE
  "CMakeFiles/knots_workload.dir/alibaba.cpp.o"
  "CMakeFiles/knots_workload.dir/alibaba.cpp.o.d"
  "CMakeFiles/knots_workload.dir/app_mix.cpp.o"
  "CMakeFiles/knots_workload.dir/app_mix.cpp.o.d"
  "CMakeFiles/knots_workload.dir/app_profile.cpp.o"
  "CMakeFiles/knots_workload.dir/app_profile.cpp.o.d"
  "CMakeFiles/knots_workload.dir/djinn_tonic.cpp.o"
  "CMakeFiles/knots_workload.dir/djinn_tonic.cpp.o.d"
  "CMakeFiles/knots_workload.dir/load_generator.cpp.o"
  "CMakeFiles/knots_workload.dir/load_generator.cpp.o.d"
  "CMakeFiles/knots_workload.dir/rodinia.cpp.o"
  "CMakeFiles/knots_workload.dir/rodinia.cpp.o.d"
  "libknots_workload.a"
  "libknots_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
