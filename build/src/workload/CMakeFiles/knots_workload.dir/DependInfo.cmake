
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/alibaba.cpp" "src/workload/CMakeFiles/knots_workload.dir/alibaba.cpp.o" "gcc" "src/workload/CMakeFiles/knots_workload.dir/alibaba.cpp.o.d"
  "/root/repo/src/workload/app_mix.cpp" "src/workload/CMakeFiles/knots_workload.dir/app_mix.cpp.o" "gcc" "src/workload/CMakeFiles/knots_workload.dir/app_mix.cpp.o.d"
  "/root/repo/src/workload/app_profile.cpp" "src/workload/CMakeFiles/knots_workload.dir/app_profile.cpp.o" "gcc" "src/workload/CMakeFiles/knots_workload.dir/app_profile.cpp.o.d"
  "/root/repo/src/workload/djinn_tonic.cpp" "src/workload/CMakeFiles/knots_workload.dir/djinn_tonic.cpp.o" "gcc" "src/workload/CMakeFiles/knots_workload.dir/djinn_tonic.cpp.o.d"
  "/root/repo/src/workload/load_generator.cpp" "src/workload/CMakeFiles/knots_workload.dir/load_generator.cpp.o" "gcc" "src/workload/CMakeFiles/knots_workload.dir/load_generator.cpp.o.d"
  "/root/repo/src/workload/rodinia.cpp" "src/workload/CMakeFiles/knots_workload.dir/rodinia.cpp.o" "gcc" "src/workload/CMakeFiles/knots_workload.dir/rodinia.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/knots_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
