file(REMOVE_RECURSE
  "libknots_workload.a"
)
