# Empty compiler generated dependencies file for knots_workload.
# This may be replaced when dependencies are built.
