file(REMOVE_RECURSE
  "CMakeFiles/knots_sim.dir/simulation.cpp.o"
  "CMakeFiles/knots_sim.dir/simulation.cpp.o.d"
  "libknots_sim.a"
  "libknots_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
