# Empty dependencies file for knots_sim.
# This may be replaced when dependencies are built.
