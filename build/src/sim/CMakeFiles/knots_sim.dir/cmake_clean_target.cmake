file(REMOVE_RECURSE
  "libknots_sim.a"
)
