file(REMOVE_RECURSE
  "libknots_knots.a"
)
