file(REMOVE_RECURSE
  "CMakeFiles/knots_knots.dir/config.cpp.o"
  "CMakeFiles/knots_knots.dir/config.cpp.o.d"
  "CMakeFiles/knots_knots.dir/experiment.cpp.o"
  "CMakeFiles/knots_knots.dir/experiment.cpp.o.d"
  "CMakeFiles/knots_knots.dir/kube_knots.cpp.o"
  "CMakeFiles/knots_knots.dir/kube_knots.cpp.o.d"
  "libknots_knots.a"
  "libknots_knots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_knots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
