# Empty compiler generated dependencies file for knots_knots.
# This may be replaced when dependencies are built.
