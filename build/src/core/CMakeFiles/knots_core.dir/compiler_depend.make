# Empty compiler generated dependencies file for knots_core.
# This may be replaced when dependencies are built.
