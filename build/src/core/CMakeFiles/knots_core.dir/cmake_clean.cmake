file(REMOVE_RECURSE
  "CMakeFiles/knots_core.dir/csv.cpp.o"
  "CMakeFiles/knots_core.dir/csv.cpp.o.d"
  "CMakeFiles/knots_core.dir/percentile.cpp.o"
  "CMakeFiles/knots_core.dir/percentile.cpp.o.d"
  "CMakeFiles/knots_core.dir/rng.cpp.o"
  "CMakeFiles/knots_core.dir/rng.cpp.o.d"
  "CMakeFiles/knots_core.dir/table.cpp.o"
  "CMakeFiles/knots_core.dir/table.cpp.o.d"
  "CMakeFiles/knots_core.dir/thread_pool.cpp.o"
  "CMakeFiles/knots_core.dir/thread_pool.cpp.o.d"
  "libknots_core.a"
  "libknots_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
