file(REMOVE_RECURSE
  "libknots_core.a"
)
