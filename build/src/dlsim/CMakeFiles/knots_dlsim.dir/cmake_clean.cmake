file(REMOVE_RECURSE
  "CMakeFiles/knots_dlsim.dir/dl_cluster.cpp.o"
  "CMakeFiles/knots_dlsim.dir/dl_cluster.cpp.o.d"
  "CMakeFiles/knots_dlsim.dir/dl_policies.cpp.o"
  "CMakeFiles/knots_dlsim.dir/dl_policies.cpp.o.d"
  "CMakeFiles/knots_dlsim.dir/dl_report.cpp.o"
  "CMakeFiles/knots_dlsim.dir/dl_report.cpp.o.d"
  "CMakeFiles/knots_dlsim.dir/dl_workload.cpp.o"
  "CMakeFiles/knots_dlsim.dir/dl_workload.cpp.o.d"
  "libknots_dlsim.a"
  "libknots_dlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_dlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
