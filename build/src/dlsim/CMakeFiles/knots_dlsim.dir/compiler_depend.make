# Empty compiler generated dependencies file for knots_dlsim.
# This may be replaced when dependencies are built.
