file(REMOVE_RECURSE
  "libknots_dlsim.a"
)
