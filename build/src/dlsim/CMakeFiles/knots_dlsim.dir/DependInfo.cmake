
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlsim/dl_cluster.cpp" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_cluster.cpp.o" "gcc" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_cluster.cpp.o.d"
  "/root/repo/src/dlsim/dl_policies.cpp" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_policies.cpp.o" "gcc" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_policies.cpp.o.d"
  "/root/repo/src/dlsim/dl_report.cpp" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_report.cpp.o" "gcc" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_report.cpp.o.d"
  "/root/repo/src/dlsim/dl_workload.cpp" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_workload.cpp.o" "gcc" "src/dlsim/CMakeFiles/knots_dlsim.dir/dl_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/knots_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/knots_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
