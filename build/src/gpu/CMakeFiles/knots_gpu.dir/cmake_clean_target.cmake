file(REMOVE_RECURSE
  "libknots_gpu.a"
)
