file(REMOVE_RECURSE
  "CMakeFiles/knots_gpu.dir/gpu_device.cpp.o"
  "CMakeFiles/knots_gpu.dir/gpu_device.cpp.o.d"
  "CMakeFiles/knots_gpu.dir/gpu_node.cpp.o"
  "CMakeFiles/knots_gpu.dir/gpu_node.cpp.o.d"
  "CMakeFiles/knots_gpu.dir/power_model.cpp.o"
  "CMakeFiles/knots_gpu.dir/power_model.cpp.o.d"
  "libknots_gpu.a"
  "libknots_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
