# Empty compiler generated dependencies file for knots_gpu.
# This may be replaced when dependencies are built.
