
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_device.cpp" "src/gpu/CMakeFiles/knots_gpu.dir/gpu_device.cpp.o" "gcc" "src/gpu/CMakeFiles/knots_gpu.dir/gpu_device.cpp.o.d"
  "/root/repo/src/gpu/gpu_node.cpp" "src/gpu/CMakeFiles/knots_gpu.dir/gpu_node.cpp.o" "gcc" "src/gpu/CMakeFiles/knots_gpu.dir/gpu_node.cpp.o.d"
  "/root/repo/src/gpu/power_model.cpp" "src/gpu/CMakeFiles/knots_gpu.dir/power_model.cpp.o" "gcc" "src/gpu/CMakeFiles/knots_gpu.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
