# Empty compiler generated dependencies file for knots_sched.
# This may be replaced when dependencies are built.
