file(REMOVE_RECURSE
  "libknots_sched.a"
)
