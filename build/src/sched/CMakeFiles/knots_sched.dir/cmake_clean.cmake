file(REMOVE_RECURSE
  "CMakeFiles/knots_sched.dir/cbp.cpp.o"
  "CMakeFiles/knots_sched.dir/cbp.cpp.o.d"
  "CMakeFiles/knots_sched.dir/peak_prediction.cpp.o"
  "CMakeFiles/knots_sched.dir/peak_prediction.cpp.o.d"
  "CMakeFiles/knots_sched.dir/registry.cpp.o"
  "CMakeFiles/knots_sched.dir/registry.cpp.o.d"
  "CMakeFiles/knots_sched.dir/resource_agnostic.cpp.o"
  "CMakeFiles/knots_sched.dir/resource_agnostic.cpp.o.d"
  "CMakeFiles/knots_sched.dir/uniform.cpp.o"
  "CMakeFiles/knots_sched.dir/uniform.cpp.o.d"
  "libknots_sched.a"
  "libknots_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
