file(REMOVE_RECURSE
  "CMakeFiles/knots_cluster.dir/cluster.cpp.o"
  "CMakeFiles/knots_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/knots_cluster.dir/metrics.cpp.o"
  "CMakeFiles/knots_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/knots_cluster.dir/pod.cpp.o"
  "CMakeFiles/knots_cluster.dir/pod.cpp.o.d"
  "CMakeFiles/knots_cluster.dir/profile_store.cpp.o"
  "CMakeFiles/knots_cluster.dir/profile_store.cpp.o.d"
  "libknots_cluster.a"
  "libknots_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
