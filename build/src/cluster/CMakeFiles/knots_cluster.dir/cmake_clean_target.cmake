file(REMOVE_RECURSE
  "libknots_cluster.a"
)
