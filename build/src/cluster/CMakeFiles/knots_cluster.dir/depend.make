# Empty dependencies file for knots_cluster.
# This may be replaced when dependencies are built.
