
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/knots_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/knots_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/knots_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/knots_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/pod.cpp" "src/cluster/CMakeFiles/knots_cluster.dir/pod.cpp.o" "gcc" "src/cluster/CMakeFiles/knots_cluster.dir/pod.cpp.o.d"
  "/root/repo/src/cluster/profile_store.cpp" "src/cluster/CMakeFiles/knots_cluster.dir/profile_store.cpp.o" "gcc" "src/cluster/CMakeFiles/knots_cluster.dir/profile_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/knots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/knots_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/knots_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/knots_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/knots_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
