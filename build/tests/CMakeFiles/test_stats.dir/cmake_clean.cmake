file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_arima.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_arima.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_autocorrelation.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_autocorrelation.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_ewma_forecaster.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_ewma_forecaster.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_regressors.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_regressors.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
