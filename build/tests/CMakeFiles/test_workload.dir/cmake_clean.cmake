file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_alibaba.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_alibaba.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_app_profile.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_app_profile.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_djinn.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_djinn.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_load_generator.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_load_generator.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_rodinia.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_rodinia.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
