file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/test_cluster.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_cluster.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_cluster_properties.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_cluster_properties.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_failure_injection.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_metrics.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_metrics.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_pod.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_pod.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_profile_store.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_profile_store.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
