file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_schedulers.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_schedulers.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
