file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_csv.cpp.o"
  "CMakeFiles/test_core.dir/core/test_csv.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_percentile.cpp.o"
  "CMakeFiles/test_core.dir/core/test_percentile.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ring_buffer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ring_buffer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rng.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rng.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_table.cpp.o"
  "CMakeFiles/test_core.dir/core/test_table.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_thread_pool.cpp.o"
  "CMakeFiles/test_core.dir/core/test_thread_pool.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
