# Empty dependencies file for test_knots.
# This may be replaced when dependencies are built.
