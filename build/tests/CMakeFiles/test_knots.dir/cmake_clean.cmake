file(REMOVE_RECURSE
  "CMakeFiles/test_knots.dir/knots/test_experiment.cpp.o"
  "CMakeFiles/test_knots.dir/knots/test_experiment.cpp.o.d"
  "test_knots"
  "test_knots.pdb"
  "test_knots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
