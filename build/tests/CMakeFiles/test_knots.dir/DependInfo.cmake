
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/knots/test_experiment.cpp" "tests/CMakeFiles/test_knots.dir/knots/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_knots.dir/knots/test_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dlsim/CMakeFiles/knots_dlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/knots/CMakeFiles/knots_knots.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/knots_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/knots_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/knots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/knots_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/knots_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/knots_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/knots_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/knots_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
