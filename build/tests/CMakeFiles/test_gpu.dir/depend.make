# Empty dependencies file for test_gpu.
# This may be replaced when dependencies are built.
