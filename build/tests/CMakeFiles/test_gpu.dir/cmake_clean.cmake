file(REMOVE_RECURSE
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_device.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_device.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_device_fuzz.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_device_fuzz.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_node.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_node.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_power_model.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_power_model.cpp.o.d"
  "test_gpu"
  "test_gpu.pdb"
  "test_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
