# Empty compiler generated dependencies file for test_dlsim.
# This may be replaced when dependencies are built.
