file(REMOVE_RECURSE
  "CMakeFiles/test_dlsim.dir/dlsim/test_dl_cluster.cpp.o"
  "CMakeFiles/test_dlsim.dir/dlsim/test_dl_cluster.cpp.o.d"
  "CMakeFiles/test_dlsim.dir/dlsim/test_dl_policies.cpp.o"
  "CMakeFiles/test_dlsim.dir/dlsim/test_dl_policies.cpp.o.d"
  "CMakeFiles/test_dlsim.dir/dlsim/test_dl_workload.cpp.o"
  "CMakeFiles/test_dlsim.dir/dlsim/test_dl_workload.cpp.o.d"
  "test_dlsim"
  "test_dlsim.pdb"
  "test_dlsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
