file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry.dir/telemetry/test_aggregator.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/test_aggregator.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/test_downsample.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/test_downsample.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/test_sampler.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/test_sampler.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/test_timeseries_db.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/test_timeseries_db.cpp.o.d"
  "test_telemetry"
  "test_telemetry.pdb"
  "test_telemetry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
