# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_dlsim[1]_include.cmake")
include("/root/repo/build/tests/test_knots[1]_include.cmake")
