# Empty compiler generated dependencies file for datacenter_replay.
# This may be replaced when dependencies are built.
