file(REMOVE_RECURSE
  "CMakeFiles/datacenter_replay.dir/datacenter_replay.cpp.o"
  "CMakeFiles/datacenter_replay.dir/datacenter_replay.cpp.o.d"
  "datacenter_replay"
  "datacenter_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
