file(REMOVE_RECURSE
  "CMakeFiles/inference_serving.dir/inference_serving.cpp.o"
  "CMakeFiles/inference_serving.dir/inference_serving.cpp.o.d"
  "inference_serving"
  "inference_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
