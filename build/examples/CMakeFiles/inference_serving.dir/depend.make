# Empty dependencies file for inference_serving.
# This may be replaced when dependencies are built.
