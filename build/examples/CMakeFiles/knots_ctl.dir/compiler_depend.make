# Empty compiler generated dependencies file for knots_ctl.
# This may be replaced when dependencies are built.
