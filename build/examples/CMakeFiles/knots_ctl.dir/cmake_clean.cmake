file(REMOVE_RECURSE
  "CMakeFiles/knots_ctl.dir/knots_ctl.cpp.o"
  "CMakeFiles/knots_ctl.dir/knots_ctl.cpp.o.d"
  "knots_ctl"
  "knots_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knots_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
