file(REMOVE_RECURSE
  "CMakeFiles/dl_scheduler_comparison.dir/dl_scheduler_comparison.cpp.o"
  "CMakeFiles/dl_scheduler_comparison.dir/dl_scheduler_comparison.cpp.o.d"
  "dl_scheduler_comparison"
  "dl_scheduler_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_scheduler_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
