# Empty compiler generated dependencies file for dl_scheduler_comparison.
# This may be replaced when dependencies are built.
