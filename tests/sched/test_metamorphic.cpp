// Metamorphic properties of the scheduling policies.
//
// Property 1 (scale invariance): memory is a *ratio* game. Scaling every
// pod's footprint, every declared request and every GPU's capacity by the
// same power-of-two factor leaves all free-memory comparisons, correlation
// tests and utilization ratios bit-identical (IEEE multiplication by 2 is
// exact), so every policy must make the same placement sequence — same
// pods, same GPUs, same timestamps — with provisioned sizes exactly
// doubled.
//
// Property 2 (empty-plan inertness): a zero-length FaultPlan must be
// indistinguishable from no plan at all, digest-for-digest.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "knots/experiment.hpp"
#include "knots/kube_knots.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "workload/app_mix.hpp"
#include "workload/load_generator.hpp"

namespace knots::sched {
namespace {

constexpr double kScale = 2.0;  // Power of two: exact in IEEE doubles.

ExperimentConfig small_config(SchedulerKind kind) {
  ExperimentConfig cfg = default_experiment(1, kind);
  cfg.cluster.nodes = 4;
  cfg.workload.duration = 30 * kSec;
  return cfg;
}

/// The (ts, pod, gpu, provisioned_mb) placement sequence of one run.
struct Placement {
  SimTime ts;
  std::int32_t pod;
  std::int32_t gpu;
  double mb;
};

std::vector<Placement> run_and_capture(const ExperimentConfig& cfg,
                                       const std::vector<workload::PodSpec>&
                                           pods) {
  obs::TraceSink trace;
  KubeKnots knots(cfg);
  knots.attach_tracer(&trace);
  for (const auto& spec : pods) knots.submit(spec);
  (void)knots.run();
  std::vector<Placement> placements;
  for (const auto& e : trace.events()) {
    if (e.kind != obs::EventKind::kPlace) continue;
    placements.push_back(Placement{e.ts, e.a, e.b, e.value});
  }
  return placements;
}

TEST(Metamorphic, MemoryScaleInvariance) {
  for (auto kind : kAllSchedulers) {
    SCOPED_TRACE(to_string(kind));
    const ExperimentConfig base_cfg = small_config(kind);

    // One workload, generated once; the scaled run doubles every memory
    // quantity in it and the GPU capacity, nothing else.
    const auto base_pods = workload::generate_workload(
        workload::app_mix(base_cfg.mix_id), base_cfg.workload,
        Rng(base_cfg.seed));
    std::vector<workload::PodSpec> scaled_pods;
    scaled_pods.reserve(base_pods.size());
    for (const auto& spec : base_pods) {
      workload::PodSpec s = spec;
      s.requested_mb *= kScale;
      s.profile = spec.profile.memory_scaled(kScale);
      scaled_pods.push_back(std::move(s));
    }
    ExperimentConfig scaled_cfg = base_cfg;
    scaled_cfg.cluster.node_spec.gpu.memory_mb *= kScale;
    scaled_cfg.workload.device_memory_mb *= kScale;

    const auto base = run_and_capture(base_cfg, base_pods);
    const auto scaled = run_and_capture(scaled_cfg, scaled_pods);

    ASSERT_FALSE(base.empty());
    ASSERT_EQ(base.size(), scaled.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      SCOPED_TRACE("placement #" + std::to_string(i));
      EXPECT_EQ(base[i].ts, scaled[i].ts);
      EXPECT_EQ(base[i].pod, scaled[i].pod);
      EXPECT_EQ(base[i].gpu, scaled[i].gpu);
      EXPECT_EQ(scaled[i].mb, kScale * base[i].mb);
    }
  }
}

TEST(Metamorphic, ZeroLengthFaultPlanMatchesNoPlan) {
  for (auto kind : kAllSchedulers) {
    SCOPED_TRACE(to_string(kind));
    const ExperimentConfig cfg = small_config(kind);

    ExperimentConfig with_empty_plan = cfg;
    with_empty_plan.faults = fault::FaultPlan{};

    const auto bare = run_experiment(cfg);
    const auto planned = run_experiment(with_empty_plan);
    EXPECT_EQ(bare.run_digest, planned.run_digest);
    EXPECT_EQ(bare.pods_completed, planned.pods_completed);
    EXPECT_EQ(bare.energy_joules, planned.energy_joules);
  }
}

}  // namespace
}  // namespace knots::sched
