// Behavioural tests of the four policies through the Cluster API.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sched/cbp.hpp"
#include "sched/peak_prediction.hpp"
#include "sched/registry.hpp"
#include "sched/resource_agnostic.hpp"
#include "workload/load_generator.hpp"

namespace knots::sched {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;

ClusterConfig cfg4() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.seed = 11;
  return cfg;
}

std::vector<workload::PodSpec> mix_pods(int mix, SimTime dur, uint64_t seed) {
  workload::LoadGenConfig wl;
  wl.duration = dur;
  return workload::generate_workload(workload::app_mix(mix), wl, Rng(seed));
}

TEST(Registry, NamesRoundTrip) {
  for (auto kind : kAllSchedulers) {
    EXPECT_EQ(scheduler_from_name(to_string(kind)), kind);
    auto sched = make_scheduler(kind);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), to_string(kind));
  }
}

TEST(Registry, ParkingCapability) {
  EXPECT_FALSE(make_scheduler(SchedulerKind::kUniform)->parks_idle_gpus());
  EXPECT_FALSE(
      make_scheduler(SchedulerKind::kResourceAgnostic)->parks_idle_gpus());
  EXPECT_TRUE(make_scheduler(SchedulerKind::kCbp)->parks_idle_gpus());
  EXPECT_TRUE(
      make_scheduler(SchedulerKind::kPeakPrediction)->parks_idle_gpus());
}

TEST(Uniform, NeverCoLocates) {
  // Exclusive access invariant, observed through per-GPU residents at every
  // scheduling step via a wrapper policy.
  class Probe : public cluster::Scheduler {
   public:
    explicit Probe(std::unique_ptr<cluster::Scheduler> inner)
        : inner_(std::move(inner)) {}
    std::string name() const override { return inner_->name(); }
    void on_schedule(cluster::SchedulingContext& ctx) override {
      inner_->on_schedule(ctx);
      for (GpuId gpu : ctx.cluster->all_gpus()) {
        max_residents_ = std::max(max_residents_,
                                  ctx.cluster->device(gpu).totals().residents);
      }
    }
    int max_residents_ = 0;

   private:
    std::unique_ptr<cluster::Scheduler> inner_;
  };
  Probe probe(make_scheduler(SchedulerKind::kUniform));
  Cluster cl(cfg4(), probe);
  cl.load(mix_pods(1, 20 * kSec, 3));
  cl.run();
  EXPECT_EQ(probe.max_residents_, 1);
}

TEST(ResAg, RespectsResidentCap) {
  SchedParams params;
  params.max_residents = 2;
  class Probe : public cluster::Scheduler {
   public:
    Probe(SchedParams p) : inner_(p, 7) {}
    std::string name() const override { return inner_.name(); }
    void on_schedule(cluster::SchedulingContext& ctx) override {
      inner_.on_schedule(ctx);
      for (GpuId gpu : ctx.cluster->all_gpus()) {
        max_residents_ = std::max(max_residents_,
                                  ctx.cluster->device(gpu).totals().residents);
      }
    }
    ResourceAgnosticScheduler inner_;
    int max_residents_ = 0;
  };
  Probe probe(params);
  Cluster cl(cfg4(), probe);
  cl.load(mix_pods(1, 20 * kSec, 3));
  cl.run();
  EXPECT_LE(probe.max_residents_, 2);
  EXPECT_GT(probe.max_residents_, 1);  // sharing actually happened
}

TEST(Cbp, ProvisionsKnownImagesAtPercentile) {
  // After the store learns an image, CBP must allocate well below the
  // (overstated) request — the harvesting step.
  auto pods = mix_pods(1, 40 * kSec, 9);
  CbpScheduler cbp;
  Cluster cl(cfg4(), cbp);
  cl.load(std::move(pods));
  cl.run();
  // Knots learned profiles and the runs completed crash-free.
  EXPECT_GT(cl.profiles().size(), 0u);
  EXPECT_EQ(cl.metrics().crash_count(), 0u);
}

TEST(Cbp, NeverOvercommitsPhysicalAllocations) {
  class Probe : public CbpScheduler {
   public:
    using CbpScheduler::CbpScheduler;
    void on_schedule(cluster::SchedulingContext& ctx) override {
      CbpScheduler::on_schedule(ctx);
      for (GpuId gpu : ctx.cluster->all_gpus()) {
        const auto& dev = ctx.cluster->device(gpu);
        ok_ = ok_ && dev.totals().memory_provisioned_mb <=
                         dev.spec().memory_mb + 1e-6;
      }
    }
    bool ok_ = true;
  };
  Probe probe;
  Cluster cl(cfg4(), probe);
  cl.load(mix_pods(1, 30 * kSec, 5));
  cl.run();
  EXPECT_TRUE(probe.ok_);
}

TEST(Pp, GrantsForecastOverrides) {
  PeakPredictionScheduler pp;
  Cluster cl(cfg4(), pp);
  cl.load(mix_pods(1, 60 * kSec, 13));
  cl.run();
  // The forecast path actually ran on this workload.
  EXPECT_GT(pp.forecasts_made(), 0u);
}

TEST(Pp, ParksIdleGpusUnderLowLoad) {
  PeakPredictionScheduler pp;
  ClusterConfig cfg = cfg4();
  cfg.nodes = 6;
  Cluster cl(cfg, pp);
  cl.load(mix_pods(3, 40 * kSec, 17));  // LOW load mix
  cl.run();
  // After the drain, idle GPUs must have been parked at some point; at end
  // of run all are empty, so all non-woken devices are parked.
  int parked = 0;
  for (GpuId gpu : cl.all_gpus()) {
    parked += cl.device(gpu).parked() ? 1 : 0;
  }
  EXPECT_GT(parked, 0);
}

TEST(PpVsCbp, ForecastEnablesAtLeastAsMuchConsolidation) {
  // PP must never need *more* energy than CBP on the same workload: the
  // forecast only adds placement options (Fig 11a: PP below CBP).
  auto run = [&](SchedulerKind kind) {
    auto sched = make_scheduler(kind);
    Cluster cl(cfg4(), *sched);
    cl.load(mix_pods(1, 60 * kSec, 21));
    cl.run();
    return cl.metrics().energy_joules();
  };
  EXPECT_LE(run(SchedulerKind::kPeakPrediction),
            run(SchedulerKind::kCbp) * 1.10);
}

TEST(QosOrdering, AwareSchedulersBeatAgnosticOnes) {
  // Fig 10a's qualitative ordering on the high-load mix.
  auto violations = [&](SchedulerKind kind) {
    auto sched = make_scheduler(kind);
    ClusterConfig cfg;
    cfg.nodes = 6;
    cfg.seed = 2;
    Cluster cl(cfg, *sched);
    cl.load(mix_pods(1, 90 * kSec, 31));
    cl.run();
    return cl.metrics().qos_violations_per_kilo();
  };
  const double resag = violations(SchedulerKind::kResourceAgnostic);
  const double cbp = violations(SchedulerKind::kCbp);
  const double pp = violations(SchedulerKind::kPeakPrediction);
  EXPECT_LT(cbp, resag);
  EXPECT_LT(pp, resag);
  EXPECT_LT(pp, 20.0);  // "<1 %" claim, generous bound
}

}  // namespace
}  // namespace knots::sched
