// Fault injection end to end: the injector state machine, and graceful
// degradation of every scheduler under the fault matrix required by the
// CI smoke job — {no-fault, node-crash, heartbeat-loss} × all policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "knots/experiment.hpp"
#include "knots/kube_knots.hpp"
#include "sched/registry.hpp"
#include "workload/load_generator.hpp"

namespace knots::fault {
namespace {

using cluster::Cluster;

// ---- FaultInjector state machine ----

TEST(FaultInjector, UntouchedInjectorHasNoEffects) {
  FaultInjector inj(4);
  EXPECT_FALSE(inj.any_effects());
  EXPECT_FALSE(inj.node_down(NodeId{0}));
  EXPECT_FALSE(inj.heartbeat_muted(NodeId{0}, 10 * kSec));
  EXPECT_DOUBLE_EQ(inj.pcie_slowdown(NodeId{0}, 10 * kSec), 1.0);
  EXPECT_EQ(inj.stats().faults_applied(), 0u);
}

TEST(FaultInjector, NodeDownMutesHeartbeatsUntilRecovery) {
  FaultInjector inj(2);
  inj.note_node_down(NodeId{1});
  EXPECT_TRUE(inj.any_effects());
  EXPECT_TRUE(inj.node_down(NodeId{1}));
  EXPECT_FALSE(inj.node_down(NodeId{0}));
  // Dead nodes do not report, at any time.
  EXPECT_TRUE(inj.heartbeat_muted(NodeId{1}, 0));
  EXPECT_TRUE(inj.heartbeat_muted(NodeId{1}, kHour));
  inj.note_node_up(NodeId{1});
  EXPECT_FALSE(inj.node_down(NodeId{1}));
  EXPECT_FALSE(inj.heartbeat_muted(NodeId{1}, kHour));
  EXPECT_EQ(inj.stats().node_crashes, 1u);
  EXPECT_EQ(inj.stats().node_recoveries, 1u);
}

TEST(FaultInjector, HeartbeatGapExpires) {
  FaultInjector inj(1);
  inj.note_heartbeat_gap(NodeId{0}, 8 * kSec);
  EXPECT_TRUE(inj.heartbeat_muted(NodeId{0}, 5 * kSec));
  EXPECT_FALSE(inj.heartbeat_muted(NodeId{0}, 9 * kSec));
  EXPECT_EQ(inj.stats().heartbeat_gaps, 1u);
}

TEST(FaultInjector, OverlappingStallsCompoundToWorst) {
  FaultInjector inj(1);
  inj.note_pcie_stall(NodeId{0}, /*now=*/0, /*until=*/10 * kSec, 2.0);
  inj.note_pcie_stall(NodeId{0}, /*now=*/5 * kSec, /*until=*/8 * kSec, 4.0);
  EXPECT_DOUBLE_EQ(inj.pcie_slowdown(NodeId{0}, 6 * kSec), 4.0);
  // A stall starting after the previous one expired replaces it.
  inj.note_pcie_stall(NodeId{0}, /*now=*/20 * kSec, /*until=*/22 * kSec, 1.5);
  EXPECT_DOUBLE_EQ(inj.pcie_slowdown(NodeId{0}, 21 * kSec), 1.5);
  EXPECT_DOUBLE_EQ(inj.pcie_slowdown(NodeId{0}, 23 * kSec), 1.0);
  EXPECT_EQ(inj.stats().pcie_stalls, 3u);
}

// ---- Scheduler × fault matrix ----

ExperimentConfig faulted(sched::SchedulerKind kind, FaultPlan plan) {
  return ExperimentConfig::Builder{}
      .mix(1)
      .scheduler(kind)
      .nodes(4)
      .duration(30 * kSec)
      .faults(std::move(plan))
      .build();
}

FaultPlan crash_plan() {
  // Node 1 dies mid-run (15 s: deep enough into the arrival window that
  // every policy has residents there) and stays down 10 s; survivors absorb
  // its evicted pods.
  return FaultPlan{}.node_crash(NodeId{1}, 15 * kSec, 10 * kSec);
}

FaultPlan heartbeat_plan() {
  // Node 2 goes telemetry-dark for 8 s — long past the staleness horizon.
  return FaultPlan{}.heartbeat_loss(NodeId{2}, 5 * kSec, 8 * kSec);
}

TEST(FaultMatrix, EverySchedulerSurvivesEveryPlan) {
  for (auto kind : sched::kAllSchedulers) {
    for (int variant = 0; variant < 3; ++variant) {
      SCOPED_TRACE(std::string(sched::to_string(kind)) + " variant " +
                   std::to_string(variant));
      const FaultPlan plan = variant == 0   ? FaultPlan{}
                             : variant == 1 ? crash_plan()
                                            : heartbeat_plan();
      const auto report = run_experiment(faulted(kind, plan));
      // Graceful degradation: the run drains, accounting stays sound.
      EXPECT_EQ(report.invariant_violations, 0u);
      EXPECT_GT(report.invariant_checks, 0u);
      EXPECT_EQ(report.pods_completed, report.pods_total);
      if (variant == 1) {
        EXPECT_EQ(report.node_crashes, 1u);
        EXPECT_EQ(report.node_recoveries, 1u);
        EXPECT_GT(report.pods_evicted, 0u);
      } else {
        EXPECT_EQ(report.node_crashes, 0u);
        EXPECT_EQ(report.pods_evicted, 0u);
      }
      if (variant == 2) {
        EXPECT_EQ(report.heartbeat_gaps, 1u);
        EXPECT_GT(report.stale_transitions, 0u);
      }
    }
  }
}

TEST(FaultMatrix, PermanentCrashStillDrains) {
  // No recovery: the cluster finishes the workload on three nodes.
  const auto report = run_experiment(
      faulted(sched::SchedulerKind::kPeakPrediction,
              FaultPlan{}.node_crash(NodeId{3}, 15 * kSec)));
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_EQ(report.pods_completed, report.pods_total);
  EXPECT_EQ(report.node_crashes, 1u);
  EXPECT_EQ(report.node_recoveries, 0u);
}

TEST(FaultMatrix, EccDegradeShrinksCapacityWithoutViolations) {
  const auto report = run_experiment(
      faulted(sched::SchedulerKind::kCbp,
              FaultPlan{}.gpu_ecc_degrade(NodeId{0}, 3 * kSec, 4096.0)));
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_EQ(report.ecc_degrades, 1u);
  EXPECT_EQ(report.pods_completed, report.pods_total);
}

TEST(FaultMatrix, PcieStallDelaysButCompletes) {
  const auto base =
      run_experiment(faulted(sched::SchedulerKind::kUniform, FaultPlan{}));
  const auto stalled = run_experiment(
      faulted(sched::SchedulerKind::kUniform,
              FaultPlan{}.pcie_stall(NodeId{0}, 2 * kSec, 20 * kSec, 8.0)));
  EXPECT_EQ(stalled.invariant_violations, 0u);
  EXPECT_EQ(stalled.pods_completed, stalled.pods_total);
  EXPECT_EQ(stalled.pcie_stalls, 1u);
  // An 8x slowdown on a quarter of the cluster must cost wall-clock time.
  EXPECT_GT(stalled.mean_jct_s, base.mean_jct_s);
}

// ---- Eviction conservation ----

TEST(EvictionConservation, EvictedPodsRelaunchAndComplete) {
  // Property: across a crash/recover cycle no pod is lost or duplicated —
  // evictions send pods back to pending, and every one eventually drains to
  // completed. Checked through the facade so the invariant auditor (which
  // includes the 6-state conservation law per tick) rides along.
  for (auto kind : {sched::SchedulerKind::kUniform,
                    sched::SchedulerKind::kPeakPrediction}) {
    SCOPED_TRACE(sched::to_string(kind));
    KubeKnots knots(faulted(kind, crash_plan()));
    knots.submit_mix_workload();
    const auto report = knots.run();
    EXPECT_EQ(report.invariant_violations, 0u);
    EXPECT_EQ(report.pods_completed, report.pods_total);
    EXPECT_GT(report.pods_evicted, 0u);

    // Per-pod evict counters sum to the cluster-wide eviction total.
    const auto& cl = knots.cluster();
    std::uint64_t evicts = 0;
    for (std::size_t i = 0; i < cl.pod_count(); ++i) {
      const auto& pod = cl.pod(PodId{static_cast<std::int32_t>(i)});
      evicts += static_cast<std::uint64_t>(pod.evict_count());
      EXPECT_TRUE(pod.terminal()) << "pod " << i;
    }
    EXPECT_EQ(evicts, report.pods_evicted);
  }
}

TEST(EvictionConservation, DirectEvictNodeRequeuesResidents) {
  // evict_node() is also a public graceful-drain API: a scheduler (or an
  // operator harness) may drain a healthy node mid-run; its pods come back
  // as pending after the relaunch penalty and still complete.
  class DrainOnce final : public cluster::Scheduler {
   public:
    explicit DrainOnce(std::unique_ptr<cluster::Scheduler> inner)
        : inner_(std::move(inner)) {}
    [[nodiscard]] std::string name() const override { return inner_->name(); }
    void on_schedule(cluster::SchedulingContext& ctx) override {
      if (!drained_ && ctx.now >= 5 * kSec) {
        drained_ = true;
        ctx.cluster->evict_node(NodeId{0});
      }
      inner_->on_schedule(ctx);
    }
    bool drained_ = false;

   private:
    std::unique_ptr<cluster::Scheduler> inner_;
  };
  DrainOnce sched(sched::make_scheduler(sched::SchedulerKind::kUniform));
  cluster::ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cl(cfg, sched);
  workload::LoadGenConfig wl;
  wl.duration = 20 * kSec;
  auto pods = workload::generate_workload(workload::app_mix(1), wl, Rng(5));
  const std::size_t total = pods.size();
  cl.load(std::move(pods));
  cl.run();
  EXPECT_TRUE(sched.drained_);
  EXPECT_EQ(cl.completed_count(), total);
  // The drain itself is a healthy-node operation, not a crash.
  EXPECT_EQ(cl.fault_stats().node_crashes, 0u);
}

TEST(RandomChaos, RandomPlansNeverBreakInvariants) {
  // Chaos-monkey sweep: random (but seeded) fault storms across seeds.
  RandomFaultSpec spec;
  spec.node_crash_rate_per_min = 2.0;
  spec.heartbeat_loss_rate_per_min = 2.0;
  spec.pcie_stall_rate_per_min = 2.0;
  spec.mean_downtime = 8 * kSec;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE(seed);
    const auto plan = random_plan(spec, 4, 30 * kSec, seed);
    const auto report =
        run_experiment(faulted(sched::SchedulerKind::kCbp, plan));
    EXPECT_EQ(report.invariant_violations, 0u)
        << (report.invariant_messages.empty()
                ? ""
                : report.invariant_messages.front());
    EXPECT_EQ(report.pods_completed, report.pods_total);
  }
}

}  // namespace
}  // namespace knots::fault
