#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace knots::fault {
namespace {

TEST(FaultPlan, BuildersAppendInOrder) {
  FaultPlan plan;
  plan.node_crash(NodeId{1}, 5 * kSec, 10 * kSec)
      .gpu_ecc_degrade(NodeId{0}, 2 * kSec, 512.0)
      .heartbeat_loss(NodeId{2}, 7 * kSec, 3 * kSec)
      .pcie_stall(NodeId{3}, 9 * kSec, 1 * kSec, 4.0);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_FALSE(plan.empty());

  EXPECT_EQ(plan.events[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events[0].node, NodeId{1});
  EXPECT_EQ(plan.events[0].at, 5 * kSec);
  EXPECT_EQ(plan.events[0].duration, 10 * kSec);

  EXPECT_EQ(plan.events[1].kind, FaultKind::kGpuEccDegrade);
  EXPECT_DOUBLE_EQ(plan.events[1].severity, 512.0);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kHeartbeatLoss);
  EXPECT_EQ(plan.events[2].duration, 3 * kSec);

  EXPECT_EQ(plan.events[3].kind, FaultKind::kPcieStall);
  EXPECT_DOUBLE_EQ(plan.events[3].severity, 4.0);
}

TEST(FaultPlan, PermanentCrashByDefault) {
  FaultPlan plan;
  plan.node_crash(NodeId{0}, 1 * kSec);
  EXPECT_EQ(plan.events[0].duration, 0);  // 0 = never recovers
}

TEST(FaultPlan, KindNamesAreDistinct) {
  EXPECT_NE(to_string(FaultKind::kNodeCrash), to_string(FaultKind::kPcieStall));
  EXPECT_NE(to_string(FaultKind::kGpuEccDegrade),
            to_string(FaultKind::kHeartbeatLoss));
  EXPECT_FALSE(to_string(FaultKind::kNodeCrash).empty());
}

TEST(FaultPlanDeathTest, ValidateRejectsOutOfRangeNode) {
  FaultPlan plan;
  plan.node_crash(NodeId{7}, 1 * kSec);
  plan.validate(8);  // in range — fine
  EXPECT_DEATH(plan.validate(7), "KNOTS_CHECK");
}

TEST(FaultPlanDeathTest, ValidateRejectsNonsenseSeverity) {
  FaultPlan bad_stall;
  bad_stall.pcie_stall(NodeId{0}, 1 * kSec, 1 * kSec, 0.5);  // speedup?!
  EXPECT_DEATH(bad_stall.validate(4), "KNOTS_CHECK");

  FaultPlan bad_ecc;
  bad_ecc.gpu_ecc_degrade(NodeId{0}, 1 * kSec, -64.0);
  EXPECT_DEATH(bad_ecc.validate(4), "KNOTS_CHECK");
}

TEST(RandomPlan, DeterministicInSeed) {
  RandomFaultSpec spec;
  spec.node_crash_rate_per_min = 2.0;
  spec.heartbeat_loss_rate_per_min = 4.0;
  spec.pcie_stall_rate_per_min = 4.0;
  const auto a = random_plan(spec, 8, 120 * kSec, 99);
  const auto b = random_plan(spec, 8, 120 * kSec, 99);
  const auto c = random_plan(spec, 8, 120 * kSec, 100);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.empty());
}

TEST(RandomPlan, ZeroRatesYieldEmptyPlan) {
  const auto plan = random_plan(RandomFaultSpec{}, 8, 300 * kSec, 1);
  EXPECT_TRUE(plan.empty());
}

TEST(RandomPlan, EventsStayInsideTopologyAndHorizon) {
  RandomFaultSpec spec;
  spec.node_crash_rate_per_min = 6.0;
  spec.heartbeat_loss_rate_per_min = 6.0;
  spec.pcie_stall_rate_per_min = 6.0;
  const SimTime horizon = 60 * kSec;
  const int nodes = 5;
  const auto plan = random_plan(spec, nodes, horizon, 7);
  plan.validate(nodes);  // must not abort
  for (const auto& e : plan.events) {
    EXPECT_GE(e.at, 0);
    EXPECT_LT(e.at, horizon);
    EXPECT_GE(e.node.value, 0);
    EXPECT_LT(e.node.value, nodes);
  }
}

}  // namespace
}  // namespace knots::fault
