// Fault determinism: faults are part of the experiment, not noise on top of
// it. Identical (config, seed, FaultPlan) must replay bit-identically, and
// an *empty* plan must leave the fault-free decision sequence untouched —
// the pre-fault golden digests stay pinned.
#include <gtest/gtest.h>

#include "knots/experiment.hpp"
#include "knots/kube_knots.hpp"
#include "sched/registry.hpp"

namespace knots::fault {
namespace {

ExperimentConfig golden_config(sched::SchedulerKind kind) {
  ExperimentConfig cfg = default_experiment(1, kind);
  cfg.cluster.nodes = 4;
  cfg.workload.duration = 30 * kSec;
  return cfg;  // Default seed (42), default mix 1.
}

FaultPlan storm_plan() {
  // One of everything, at staggered times. The crash lands at 15 s so the
  // digest covers eviction events for every policy.
  return FaultPlan{}
      .node_crash(NodeId{1}, 15 * kSec, 10 * kSec)
      .gpu_ecc_degrade(NodeId{0}, 3 * kSec, 1024.0)
      .heartbeat_loss(NodeId{2}, 8 * kSec, 4 * kSec)
      .pcie_stall(NodeId{3}, 12 * kSec, 6 * kSec, 4.0);
}

TEST(FaultDeterminism, EmptyPlanIsInert) {
  // An explicitly installed empty FaultPlan must be indistinguishable from
  // no plan at all: same golden digests as the fault-free verification
  // suite pins (tests/verify/test_run_digest.cpp). This is the load-bearing
  // backward-compatibility guarantee of the whole fault layer.
  struct GoldenDigest {
    sched::SchedulerKind kind;
    std::uint64_t digest;
  };
  const GoldenDigest golden[] = {
      {sched::SchedulerKind::kUniform, 0xd0c2a2db96af286dull},
      {sched::SchedulerKind::kResourceAgnostic, 0x07884542fa949d9eull},
      {sched::SchedulerKind::kCbp, 0x7173dae2bf4b9374ull},
      {sched::SchedulerKind::kPeakPrediction, 0x86e8b45560a1a94cull},
  };
  for (const auto& g : golden) {
    ExperimentConfig cfg = golden_config(g.kind);
    cfg.faults = FaultPlan{};
    const auto report = run_experiment(cfg);
    EXPECT_EQ(report.run_digest, g.digest)
        << "scheduler " << sched::to_string(g.kind)
        << ": an empty fault plan perturbed the run (actual 0x" << std::hex
        << report.run_digest << ")";
  }
}

TEST(FaultDeterminism, IdenticalPlanReplaysIdentically) {
  for (auto kind : sched::kAllSchedulers) {
    SCOPED_TRACE(sched::to_string(kind));
    ExperimentConfig cfg = golden_config(kind);
    cfg.faults = storm_plan();
    const auto a = run_experiment(cfg);
    const auto b = run_experiment(cfg);
    EXPECT_EQ(a.run_digest, b.run_digest);
    EXPECT_EQ(a.pods_evicted, b.pods_evicted);
    EXPECT_EQ(a.stale_transitions, b.stale_transitions);
    EXPECT_EQ(a.energy_joules, b.energy_joules);
  }
}

// Golden digests for the storm plan above, one per scheduler. These pin the
// fault-path decision sequence (eviction order, recovery timing, stale
// fallbacks) exactly as the fault-free goldens pin the happy path. To
// regenerate after an intentional behaviour change: run this test and copy
// the "actual" values from the failure output, then record the change in
// EXPERIMENTS.md.
TEST(FaultDeterminism, GoldenFaultedPerScheduler) {
  struct GoldenDigest {
    sched::SchedulerKind kind;
    std::uint64_t digest;
  };
  const GoldenDigest golden[] = {
      {sched::SchedulerKind::kUniform, 0x53775ed3418ec498ull},
      {sched::SchedulerKind::kResourceAgnostic, 0x3d07b799e7395a27ull},
      {sched::SchedulerKind::kCbp, 0x97ee4c0f999e22b9ull},
      {sched::SchedulerKind::kPeakPrediction, 0x3f80411f928cde87ull},
  };
  for (const auto& g : golden) {
    ExperimentConfig cfg = golden_config(g.kind);
    cfg.faults = storm_plan();
    const auto report = run_experiment(cfg);
    EXPECT_EQ(report.run_digest, g.digest)
        << "scheduler " << sched::to_string(g.kind)
        << " faulted digest drifted (actual 0x" << std::hex
        << report.run_digest << ")";
    EXPECT_EQ(report.invariant_violations, 0u);
  }
}

TEST(FaultDeterminism, PlanPerturbsTheDigest) {
  // Sanity: the golden comparison has teeth — injecting the storm changes
  // the decision sequence, and different plans diverge from each other.
  ExperimentConfig base = golden_config(sched::SchedulerKind::kCbp);
  const auto clean = run_experiment(base);
  base.faults = storm_plan();
  const auto stormed = run_experiment(base);
  EXPECT_NE(clean.run_digest, stormed.run_digest);

  base.faults = FaultPlan{}.node_crash(NodeId{2}, 5 * kSec, 10 * kSec);
  const auto other = run_experiment(base);
  EXPECT_NE(stormed.run_digest, other.run_digest);
}

TEST(FaultDeterminism, SweepWithFaultsMatchesSerialRuns) {
  // The thread-pool sweep must not perturb faulted runs either.
  ExperimentConfig base = golden_config(sched::SchedulerKind::kUniform);
  base.faults = storm_plan();
  SweepGrid grid;
  grid.schedulers.assign(sched::kAllSchedulers.begin(),
                         sched::kAllSchedulers.end());
  const auto sweep = run_sweep(base, grid);
  ASSERT_EQ(sweep.size(), grid.schedulers.size());
  for (const auto& slot : sweep) {
    SCOPED_TRACE(sched::to_string(slot.scheduler));
    ExperimentConfig cfg = base;
    cfg.scheduler = slot.scheduler;
    const auto direct = run_experiment(cfg);
    EXPECT_EQ(slot.report.run_digest, direct.run_digest);
    EXPECT_EQ(slot.report.pods_evicted, direct.pods_evicted);
  }
}

// ---- KubeKnots facade lifecycle (satellite bugfix) ----

TEST(KubeKnotsLifecycle, RunTwiceThrows) {
  KubeKnots knots(golden_config(sched::SchedulerKind::kUniform));
  knots.submit_mix_workload();
  (void)knots.run();
  EXPECT_THROW((void)knots.run(), std::logic_error);
}

TEST(KubeKnotsLifecycle, SubmitAfterRunThrows) {
  KubeKnots knots(golden_config(sched::SchedulerKind::kUniform));
  knots.submit_mix_workload();
  (void)knots.run();
  EXPECT_THROW(knots.submit(workload::PodSpec{}), std::logic_error);
  EXPECT_THROW(knots.submit_mix_workload(), std::logic_error);
}

}  // namespace
}  // namespace knots::fault
