// MetricsRegistry unit tests: instrument semantics, handle stability, the
// JSON dump, and the RAII scope timer.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace knots::obs {
namespace {

TEST(Counter, AccumulatesIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, HoldsLatestValue) {
  Gauge g;
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, TracksCountSumExtremaAndQuantiles) {
  Histogram h(64);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Percentiles come from the recent window (last 64 samples: 37..100).
  EXPECT_EQ(h.window_count(), 64u);
  EXPECT_GE(h.quantile(50), 37.0);
  EXPECT_LE(h.quantile(100), 100.0);
  EXPECT_EQ(h.quantile(100), 100.0);
}

TEST(Histogram, ExtremaOutliveTheWindow) {
  Histogram h(4);
  h.record(1000.0);  // Evicted from the window by the next four samples...
  for (int i = 0; i < 4; ++i) h.record(1.0);
  EXPECT_EQ(h.max(), 1000.0);  // ...but the running max remembers it.
  EXPECT_EQ(h.quantile(100), 1.0);
}

TEST(MetricsRegistry, FindOrCreateAndStableHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("sched.placements");
  c.inc(5);
  // Creating many more instruments must not invalidate the first handle.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
    reg.gauge("gauge." + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("sched.placements"), &c);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.size(), 201u);
}

TEST(MetricsRegistry, FindReturnsNullForUnknown) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("a");
  EXPECT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_gauge("a"), nullptr);  // Namespaces are per-type.
}

TEST(MetricsRegistry, JsonDumpIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("cluster.pending_pods").set(7);
  reg.histogram("sched.on_schedule_ns").record(100.0);
  std::ostringstream os;
  reg.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cluster.pending_pods\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // std::map iteration ⇒ name-sorted: a.count before b.count.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistry, EmptyDumpIsStillValid) {
  MetricsRegistry reg;
  std::ostringstream os;
  reg.to_json(os);
  EXPECT_NE(os.str().find("\"counters\""), std::string::npos);
}

#ifndef KNOTS_TRACE_OFF
TEST(ScopeTimer, RecordsElapsedIntoHistogram) {
  Histogram h;
  {
    KNOTS_PROF_SCOPE(&h);
    // Any work at all; even an empty scope records a sample >= 0.
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
}
#endif

TEST(ScopeTimer, NullHistogramIsSafe) {
  {
    KNOTS_PROF_SCOPE(nullptr);
    KNOTS_PROF_SCOPE(static_cast<Histogram*>(nullptr));
  }
  SUCCEED();
}

}  // namespace
}  // namespace knots::obs
