// TraceSink unit tests: recording, interning, per-kind tallies, the Chrome
// exporter's JSON shape, and the binary round trip.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/trace.hpp"

namespace knots::obs {
namespace {

TEST(TraceSink, StartsEmptyWithEmptyStringInterned) {
  TraceSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.size(), 0u);
  ASSERT_EQ(sink.strings().size(), 1u);
  EXPECT_EQ(sink.strings()[0], "");
  EXPECT_EQ(sink.detail(0), "");
}

TEST(TraceSink, RecordsEventsInOrder) {
  TraceSink sink;
  sink.record(10, EventKind::kSubmit, 0);
  sink.record(20, EventKind::kPlace, 0, 3, 1024.0);
  sink.record(20, EventKind::kDecision, 0, 3, 1024.0, "cbp:best-fit");
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.events()[0].kind, EventKind::kSubmit);
  EXPECT_EQ(sink.events()[1].a, 0);
  EXPECT_EQ(sink.events()[1].b, 3);
  EXPECT_EQ(sink.events()[1].value, 1024.0);
  EXPECT_EQ(sink.detail(sink.events()[2].detail), "cbp:best-fit");
  EXPECT_EQ(sink.count(EventKind::kSubmit), 1u);
  EXPECT_EQ(sink.count(EventKind::kPlace), 1u);
  EXPECT_EQ(sink.count(EventKind::kCrash), 0u);
}

TEST(TraceSink, InterningDeduplicates) {
  TraceSink sink;
  const auto a = sink.intern("cbp:best-fit");
  const auto b = sink.intern("cbp:no-fit");
  const auto c = sink.intern("cbp:best-fit");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.intern(""), 0u);
  // Indices stay stable as the table grows past SSO reallocation points.
  for (int i = 0; i < 100; ++i) sink.intern("rationale-" + std::to_string(i));
  EXPECT_EQ(sink.detail(a), "cbp:best-fit");
  EXPECT_EQ(sink.detail(b), "cbp:no-fit");
}

TEST(TraceSink, PerKindTallyMatchesLinearCount) {
  TraceSink sink;
  for (int i = 0; i < 7; ++i) sink.record(i, EventKind::kScrape);
  for (int i = 0; i < 3; ++i) sink.record(i, EventKind::kPlace, i, i);
  std::size_t scrapes = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == EventKind::kScrape) ++scrapes;
  }
  EXPECT_EQ(sink.count(EventKind::kScrape), scrapes);
  EXPECT_EQ(sink.count(EventKind::kPlace), 3u);
}

TEST(TraceSink, ClearResetsEverything) {
  TraceSink sink;
  sink.record(1, EventKind::kPlace, 0, 1, 2.0, "detail");
  sink.clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.count(EventKind::kPlace), 0u);
  EXPECT_EQ(sink.strings().size(), 1u);
  // Interning after clear() restarts cleanly at index 1.
  EXPECT_EQ(sink.intern("fresh"), 1u);
}

TEST(TraceSink, ChromeExportIsWellFormedJson) {
  TraceSink sink;
  sink.record(0, EventKind::kSubmit, 7);
  sink.record(1000, EventKind::kPlace, 7, 2, 512.0);
  sink.record(1500, EventKind::kStart, 7, 2);
  sink.record(9000, EventKind::kComplete, 7, -1, 1.0);
  sink.record(2000, EventKind::kNodeDown, 1);
  sink.record(5000, EventKind::kNodeUp, 1);
  sink.record(3000, EventKind::kDecision, 8, -1, 0.0, "cbp:no-fit");
  std::ostringstream os;
  sink.export_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // derived slices
  EXPECT_NE(json.find("\"name\":\"place\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node down\""), std::string::npos);
  EXPECT_NE(json.find("cbp:no-fit"), std::string::npos);
  // Balanced braces/brackets — cheap structural well-formedness check.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceSink, BinaryRoundTripIsExact) {
  TraceSink sink;
  sink.record(0, EventKind::kSubmit, 1);
  sink.record(10, EventKind::kPlace, 1, 0, 768.5, "resag:random-feasible");
  sink.record(20, EventKind::kFaultInject, 2, -1, 4.0, "pcie-stall");
  sink.record(30, EventKind::kComplete, 1, -1, 1.0);

  std::stringstream buf;
  sink.export_binary(buf);
  const TraceSink loaded = TraceSink::import_binary(buf);

  ASSERT_EQ(loaded.size(), sink.size());
  EXPECT_EQ(loaded.events(), sink.events());
  EXPECT_EQ(loaded.strings(), sink.strings());
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    EXPECT_EQ(loaded.count(static_cast<EventKind>(k)),
              sink.count(static_cast<EventKind>(k)));
  }
  // The loaded sink's intern table is live, not just a dead copy.
  TraceSink copy = loaded;
  EXPECT_EQ(copy.intern("pcie-stall"),
            sink.events()[2].detail);
}

TEST(TraceSink, ImportRejectsMalformedStreams) {
  std::stringstream bad_magic("NOTATRACE_______________");
  EXPECT_THROW((void)TraceSink::import_binary(bad_magic), std::runtime_error);

  // Truncate a valid stream mid-events.
  TraceSink sink;
  sink.record(1, EventKind::kPlace, 0, 0, 1.0);
  std::stringstream buf;
  sink.export_binary(buf);
  const std::string whole = buf.str();
  std::stringstream truncated(whole.substr(0, whole.size() / 2));
  EXPECT_THROW((void)TraceSink::import_binary(truncated), std::runtime_error);
}

TEST(TraceSink, EventKindNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto name = to_string(static_cast<EventKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kEventKindCount);
}

}  // namespace
}  // namespace knots::obs
