// Trace ↔ digest consistency.
//
// The cluster emits every observer-visible decision into the TraceSink at
// the same simulated timestamp, in the same order, with the same operands
// the RunDigest folds. That makes the trace strong enough to *replay* the
// digest: walking the trace and re-mixing the digest's per-kind recipe must
// reproduce the run digest bit-for-bit, for every scheduler, with and
// without a fault storm. Any divergence means the trace dropped, reordered
// or mislabelled a decision.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "knots/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "verify/run_digest.hpp"

namespace knots::obs {
namespace {

ExperimentConfig golden_config(sched::SchedulerKind kind) {
  // Same recipe as tests/fault/test_fault_determinism.cpp — the digests it
  // pins are the ones replayed here.
  ExperimentConfig cfg = default_experiment(1, kind);
  cfg.cluster.nodes = 4;
  cfg.workload.duration = 30 * kSec;
  return cfg;
}

fault::FaultPlan storm_plan() {
  return fault::FaultPlan{}
      .node_crash(NodeId{1}, 15 * kSec, 10 * kSec)
      .gpu_ecc_degrade(NodeId{0}, 3 * kSec, 1024.0)
      .heartbeat_loss(NodeId{2}, 8 * kSec, 4 * kSec)
      .pcie_stall(NodeId{3}, 12 * kSec, 6 * kSec, 4.0);
}

// Rebuilds the run digest from the trace alone, mirroring RunDigest's
// per-event recipe (tag, timestamp, operands). Kinds the digest does not
// observe (submit, start, faults, scrapes, decisions) are skipped.
std::uint64_t replay_digest(const TraceSink& trace) {
  verify::RunDigest digest;
  const auto record = [&](std::uint64_t tag, const TraceEvent& e) {
    digest.mix_u64(tag);
    digest.mix_u64(static_cast<std::uint64_t>(e.ts));
  };
  for (const TraceEvent& e : trace.events()) {
    const auto a = static_cast<std::uint64_t>(e.a);
    const auto b = static_cast<std::uint64_t>(e.b);
    switch (e.kind) {
      case EventKind::kPlace:
        record(0x01, e);
        digest.mix_u64(a);       // pod
        digest.mix_u64(b);       // gpu
        digest.mix_double(e.value);  // provisioned MB
        break;
      case EventKind::kResize:
        record(0x02, e);
        digest.mix_u64(a);
        digest.mix_double(e.value);
        break;
      case EventKind::kCrash:
        record(0x03, e);
        digest.mix_u64(a);
        break;
      case EventKind::kRequeue:
        record(0x04, e);
        digest.mix_u64(a);
        break;
      case EventKind::kComplete:
        record(0x05, e);
        digest.mix_u64(a);
        digest.mix_double(e.value);  // final progress
        break;
      case EventKind::kPark:
        record(0x06, e);
        digest.mix_u64(a);       // gpu
        break;
      case EventKind::kEvict:
        record(0x07, e);
        digest.mix_u64(a);       // pod
        digest.mix_u64(b);       // node
        break;
      case EventKind::kNodeDown:
        record(0x08, e);
        digest.mix_u64(a);
        break;
      case EventKind::kNodeUp:
        record(0x09, e);
        digest.mix_u64(a);
        break;
      case EventKind::kFlowStart:
        record(0xB1, e);
        digest.mix_u64(a);           // flow
        digest.mix_u64(b);           // dst node
        digest.mix_double(e.value);  // size MB
        break;
      case EventKind::kFlowFinish:
        record(0xB2, e);
        digest.mix_u64(a);           // flow
        if (e.b == 1) {              // contended flows fold an extra record
          record(0xB3, e);
          digest.mix_u64(a);
        }
        break;
      case EventKind::kLinkDown:
        record(0xB4, e);
        digest.mix_u64(a);           // link
        break;
      case EventKind::kLinkUp:
        record(0xB5, e);
        digest.mix_u64(a);           // link
        break;
      case EventKind::kSubmit:
      case EventKind::kStart:
      case EventKind::kFaultInject:
      case EventKind::kFaultRecover:
      case EventKind::kScrape:
      case EventKind::kDecision:
      // Serving-layer kinds feed the serve digest, not the cluster digest.
      case EventKind::kRequestArrive:
      case EventKind::kRequestShed:
      case EventKind::kRequestExpire:
      case EventKind::kBatchDispatch:
      case EventKind::kRequestDone:
      case EventKind::kScaleUp:
      case EventKind::kScaleDown:
        break;
    }
  }
  return digest.value();
}

TEST(TraceReplay, ReplayedDigestMatchesRunDigestAcrossMatrix) {
  for (auto kind : sched::kAllSchedulers) {
    for (const bool faulted : {false, true}) {
      SCOPED_TRACE(std::string(sched::to_string(kind)) +
                   (faulted ? " (storm)" : " (fault-free)"));
      ExperimentConfig cfg = golden_config(kind);
      if (faulted) cfg.faults = storm_plan();
      TraceSink trace;
      const auto report = run_experiment(cfg, RunObservability{&trace});
      EXPECT_FALSE(trace.empty());
      EXPECT_EQ(replay_digest(trace), report.run_digest)
          << "trace replay diverged from the live digest";
    }
  }
}

TEST(TraceReplay, TracingLeavesTheDigestUntouched) {
  // A traced run and an untraced run of the same config must agree, and the
  // fault-free traced run must still hit the pinned golden digests — tracing
  // is strictly an observer, never a participant.
  struct Golden {
    sched::SchedulerKind kind;
    std::uint64_t digest;
  };
  const Golden golden[] = {
      {sched::SchedulerKind::kUniform, 0xd0c2a2db96af286dull},
      {sched::SchedulerKind::kResourceAgnostic, 0x07884542fa949d9eull},
      {sched::SchedulerKind::kCbp, 0x7173dae2bf4b9374ull},
      {sched::SchedulerKind::kPeakPrediction, 0x86e8b45560a1a94cull},
  };
  for (const auto& g : golden) {
    SCOPED_TRACE(sched::to_string(g.kind));
    ExperimentConfig cfg = golden_config(g.kind);
    TraceSink trace;
    MetricsRegistry metrics;
    const auto traced = run_experiment(cfg, RunObservability{&trace, &metrics});
    const auto untraced = run_experiment(cfg);
    EXPECT_EQ(traced.run_digest, untraced.run_digest);
    EXPECT_EQ(traced.run_digest, g.digest)
        << "traced digest drifted (actual 0x" << std::hex << traced.run_digest
        << ")";
  }
}

TEST(TraceReplay, TraceCountsReconcileWithTheReport) {
  // CBP under the storm: the trace's per-kind tallies must agree with the
  // report's aggregate counters event-for-event.
  ExperimentConfig cfg = golden_config(sched::SchedulerKind::kCbp);
  cfg.faults = storm_plan();
  TraceSink trace;
  MetricsRegistry metrics;
  const auto report = run_experiment(cfg, RunObservability{&trace, &metrics});

  EXPECT_EQ(trace.count(EventKind::kSubmit), report.pods_total);
  EXPECT_EQ(trace.count(EventKind::kComplete), report.pods_completed);
  EXPECT_EQ(trace.count(EventKind::kCrash), report.crashes);
  EXPECT_EQ(trace.count(EventKind::kEvict), report.pods_evicted);
  EXPECT_EQ(trace.count(EventKind::kNodeDown), report.node_crashes);
  EXPECT_EQ(trace.count(EventKind::kNodeUp), report.node_recoveries);
  EXPECT_EQ(trace.count(EventKind::kScrape), report.ticks);
  // Requeues are deferred relaunch events, so at most one per crash or
  // eviction (fewer if the run ends inside a restart delay).
  EXPECT_LE(trace.count(EventKind::kRequeue),
            report.crashes + report.pods_evicted);
  // The storm injects four faults.
  EXPECT_EQ(trace.count(EventKind::kFaultInject), 4u);
  // CBP narrates every placement it makes.
  EXPECT_GE(trace.count(EventKind::kDecision),
            trace.count(EventKind::kPlace));

  // The same counters flow through the metrics registry.
  const auto* placements = metrics.find_counter("cluster.placements");
  ASSERT_NE(placements, nullptr);
  EXPECT_EQ(placements->value(), trace.count(EventKind::kPlace));
  const auto* completions = metrics.find_counter("cluster.completions");
  ASSERT_NE(completions, nullptr);
  EXPECT_EQ(completions->value(), report.pods_completed);
  const auto* ticks = metrics.find_counter("cluster.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(ticks->value(), report.ticks);

  // And the chrome export of a real faulted run is non-trivial.
  std::ostringstream os;
  trace.export_chrome_trace(os);
  EXPECT_GT(os.str().size(), 1000u);
  EXPECT_NE(os.str().find("cbp:"), std::string::npos);
}

TEST(TraceReplay, BinaryRoundTripPreservesTheReplay) {
  ExperimentConfig cfg = golden_config(sched::SchedulerKind::kPeakPrediction);
  cfg.faults = storm_plan();
  TraceSink trace;
  const auto report = run_experiment(cfg, RunObservability{&trace});

  std::stringstream buf;
  trace.export_binary(buf);
  const TraceSink loaded = TraceSink::import_binary(buf);
  EXPECT_EQ(replay_digest(loaded), report.run_digest);
}

}  // namespace
}  // namespace knots::obs
