#include "telemetry/sampler.hpp"

#include <gtest/gtest.h>

namespace knots::telemetry {
namespace {

TEST(Sampler, NoiselessSamplesMatchDeviceState) {
  gpu::NodeSpec spec;
  spec.gpus_per_node = 2;
  gpu::GpuNode node(NodeId{0}, spec, 0);
  ASSERT_TRUE(node.gpu(0).attach(PodId{1}, 1000));
  EXPECT_TRUE(node.gpu(0).set_usage(PodId{1}, {0.6, 4096, 1000, 250}));

  TimeSeriesDb db;
  HeartbeatSampler sampler(node, db, Rng(1), /*noise_sigma=*/0.0);
  sampler.sample(500);

  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kSmUtil), 0.6);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kMemUtil),
                   4096.0 / spec.gpu.memory_mb);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kTxBandwidth), 1000);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kRxBandwidth), 250);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kPowerWatts),
                   node.gpu(0).power_watts());
  // Idle second GPU sampled too.
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kSmUtil), 0.0);
}

TEST(Sampler, WritesAllFiveMetricsPerGpu) {
  gpu::NodeSpec spec;
  spec.gpus_per_node = 3;
  gpu::GpuNode node(NodeId{0}, spec, 0);
  TimeSeriesDb db;
  HeartbeatSampler sampler(node, db, Rng(1), 0.0);
  sampler.sample(0);
  EXPECT_EQ(db.series_count(), 15u);
  EXPECT_EQ(db.total_samples(), 15u);
  sampler.sample(1);
  EXPECT_EQ(db.total_samples(), 30u);
}

TEST(Sampler, NoiseStaysBoundedAndNonNegative) {
  gpu::NodeSpec spec;
  gpu::GpuNode node(NodeId{0}, spec, 0);
  ASSERT_TRUE(node.gpu(0).attach(PodId{1}, 100));
  EXPECT_TRUE(node.gpu(0).set_usage(PodId{1}, {0.5, 8192, 0, 0}));
  TimeSeriesDb db;
  HeartbeatSampler sampler(node, db, Rng(7), /*noise_sigma=*/0.05);
  for (SimTime t = 0; t < 200; ++t) sampler.sample(t);
  for (const auto& s : db.query_all(GpuId{0}, Metric::kSmUtil)) {
    EXPECT_GE(s.value, 0.0);
    EXPECT_LE(s.value, 1.0);
    EXPECT_NEAR(s.value, 0.5, 0.4);
  }
}

TEST(Sampler, NoisyMeanTracksTruth) {
  gpu::NodeSpec spec;
  gpu::GpuNode node(NodeId{0}, spec, 0);
  ASSERT_TRUE(node.gpu(0).attach(PodId{1}, 100));
  EXPECT_TRUE(node.gpu(0).set_usage(PodId{1}, {0.4, 1000, 0, 0}));
  TimeSeriesDb db;
  HeartbeatSampler sampler(node, db, Rng(11), 0.02);
  for (SimTime t = 0; t < 2000; ++t) sampler.sample(t);
  double sum = 0;
  const auto all = db.query_all(GpuId{0}, Metric::kSmUtil);
  for (const auto& s : all) sum += s.value;
  EXPECT_NEAR(sum / static_cast<double>(all.size()), 0.4, 0.01);
}

}  // namespace
}  // namespace knots::telemetry
