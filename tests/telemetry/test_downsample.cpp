#include "telemetry/downsample.hpp"

#include <gtest/gtest.h>

namespace knots::telemetry {
namespace {

std::vector<Sample> ramp(SimTime step, int n) {
  std::vector<Sample> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({i * step, static_cast<double>(i)});
  }
  return out;
}

TEST(Downsample, EmptyInputYieldsNoBuckets) {
  EXPECT_TRUE(downsample({}, 10, AggFn::kMean).empty());
}

TEST(Downsample, MeanBuckets) {
  const auto buckets = downsample(ramp(5, 4), 10, AggFn::kMean);
  // samples at t=0,5 (values 0,1) and t=10,15 (values 2,3).
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].start, 0);
  EXPECT_DOUBLE_EQ(buckets[0].value, 0.5);
  EXPECT_EQ(buckets[0].samples, 2u);
  EXPECT_EQ(buckets[1].start, 10);
  EXPECT_DOUBLE_EQ(buckets[1].value, 2.5);
}

TEST(Downsample, MaxMinLastSumCount) {
  const std::vector<Sample> s = {{0, 3}, {1, 7}, {2, 5}};
  EXPECT_DOUBLE_EQ(downsample(s, 10, AggFn::kMax)[0].value, 7);
  EXPECT_DOUBLE_EQ(downsample(s, 10, AggFn::kMin)[0].value, 3);
  EXPECT_DOUBLE_EQ(downsample(s, 10, AggFn::kLast)[0].value, 5);
  EXPECT_DOUBLE_EQ(downsample(s, 10, AggFn::kSum)[0].value, 15);
  EXPECT_DOUBLE_EQ(downsample(s, 10, AggFn::kCount)[0].value, 3);
}

TEST(Downsample, BucketsAlignedToWidthMultiples) {
  const std::vector<Sample> s = {{17, 1.0}, {23, 2.0}, {31, 3.0}};
  const auto buckets = downsample(s, 10, AggFn::kMean);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].start, 10);
  EXPECT_EQ(buckets[1].start, 20);
  EXPECT_EQ(buckets[2].start, 30);
}

TEST(Downsample, GapsAreOmitted) {
  const std::vector<Sample> s = {{0, 1.0}, {100, 2.0}};
  const auto buckets = downsample(s, 10, AggFn::kMean);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].start, 0);
  EXPECT_EQ(buckets[1].start, 100);
}

TEST(WindowStats, MeanAndMaxRespectSince) {
  const auto s = ramp(1, 10);  // values 0..9 at t=0..9
  EXPECT_DOUBLE_EQ(window_mean(s, 0), 4.5);
  EXPECT_DOUBLE_EQ(window_mean(s, 8), 8.5);
  EXPECT_DOUBLE_EQ(window_max(s, 0), 9);
  EXPECT_DOUBLE_EQ(window_max(s, 100), 0.0);
  EXPECT_DOUBLE_EQ(window_mean(s, 100), 0.0);
}

TEST(Ewma, ConvergesToConstant) {
  std::vector<Sample> s;
  for (int i = 0; i < 100; ++i) s.push_back({i, 5.0});
  EXPECT_NEAR(ewma(s, 0.3), 5.0, 1e-9);
}

TEST(Ewma, AlphaOneTracksLastValue) {
  const std::vector<Sample> s = {{0, 1}, {1, 9}, {2, 4}};
  EXPECT_DOUBLE_EQ(ewma(s, 1.0), 4.0);
}

TEST(Ewma, WeighsRecentSamplesMore) {
  std::vector<Sample> low_then_high, high_then_low;
  for (int i = 0; i < 20; ++i) {
    low_then_high.push_back({i, i < 10 ? 0.0 : 1.0});
    high_then_low.push_back({i, i < 10 ? 1.0 : 0.0});
  }
  EXPECT_GT(ewma(low_then_high, 0.3), ewma(high_then_low, 0.3));
}

}  // namespace
}  // namespace knots::telemetry
