#include "telemetry/aggregator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "telemetry/sampler.hpp"

namespace knots::telemetry {
namespace {

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest() {
    gpu::NodeSpec spec;
    spec.gpus_per_node = 1;
    for (int n = 0; n < 3; ++n) {
      nodes_.push_back(std::make_unique<gpu::GpuNode>(NodeId{n}, spec, n));
      dbs_.push_back(std::make_unique<TimeSeriesDb>());
      agg_.register_node(*nodes_[static_cast<std::size_t>(n)],
                         *dbs_[static_cast<std::size_t>(n)]);
    }
  }

  void sample_all(SimTime now) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      HeartbeatSampler s(*nodes_[n], *dbs_[n], Rng(n + 1), 0.0);
      s.sample(now);
    }
  }

  std::vector<std::unique_ptr<gpu::GpuNode>> nodes_;
  std::vector<std::unique_ptr<TimeSeriesDb>> dbs_;
  UtilizationAggregator agg_;
};

TEST_F(AggregatorTest, SnapshotCoversAllGpus) {
  sample_all(0);
  const auto snap = agg_.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(agg_.node_count(), 3u);
  for (const auto& v : snap) {
    EXPECT_DOUBLE_EQ(v.sm_util, 0.0);
    EXPECT_FALSE(v.parked);
  }
}

TEST_F(AggregatorTest, SnapshotReflectsTelemetry) {
  ASSERT_TRUE(nodes_[1]->gpu(0).attach(PodId{1}, 1000));
  EXPECT_TRUE(nodes_[1]->gpu(0).set_usage(PodId{1}, {0.7, 8192, 0, 0}));
  sample_all(5);
  const auto snap = agg_.snapshot();
  EXPECT_DOUBLE_EQ(snap[1].sm_util, 0.7);
  EXPECT_NEAR(snap[1].mem_used_mb, 8192, 1e-6);
  EXPECT_NEAR(snap[1].free_mem_mb,
              nodes_[1]->gpu(0).spec().memory_mb - 8192, 1e-6);
  EXPECT_EQ(snap[1].residents, 1);
}

TEST_F(AggregatorTest, ActiveSortedByFreeMemoryDescending) {
  ASSERT_TRUE(nodes_[0]->gpu(0).attach(PodId{1}, 100));
  EXPECT_TRUE(nodes_[0]->gpu(0).set_usage(PodId{1}, {0.1, 12000, 0, 0}));
  ASSERT_TRUE(nodes_[2]->gpu(0).attach(PodId{2}, 100));
  EXPECT_TRUE(nodes_[2]->gpu(0).set_usage(PodId{2}, {0.1, 4000, 0, 0}));
  sample_all(9);
  const auto sorted = agg_.active_sorted_by_free_memory();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].node.value, 1);  // empty node has most free memory
  EXPECT_EQ(sorted[1].node.value, 2);
  EXPECT_EQ(sorted[2].node.value, 0);
}

TEST_F(AggregatorTest, ParkedGpusExcludedFromActiveList) {
  nodes_[0]->gpu(0).set_parked(true);
  sample_all(1);
  const auto sorted = agg_.active_sorted_by_free_memory();
  EXPECT_EQ(sorted.size(), 2u);
  for (const auto& v : sorted) EXPECT_NE(v.node.value, 0);
  // But the raw snapshot still shows it, flagged.
  EXPECT_TRUE(agg_.snapshot()[0].parked);
}

TEST_F(AggregatorTest, WindowedSeriesQuery) {
  for (SimTime t = 0; t <= 100; t += 10) sample_all(t);
  const auto window =
      agg_.window(GpuId{1}, Metric::kSmUtil, /*now=*/100, /*window=*/35);
  EXPECT_EQ(window.size(), 4u);  // t = 70, 80, 90, 100
  EXPECT_TRUE(agg_.window(GpuId{99}, Metric::kSmUtil, 100, 35).empty());
}

TEST_F(AggregatorTest, WindowIntoAndViewMatchAllocatingWindow) {
  for (SimTime t = 0; t <= 100; t += 10) sample_all(t);
  const auto expect =
      agg_.window(GpuId{1}, Metric::kSmUtil, /*now=*/100, /*window=*/35);

  std::vector<double> scratch = {99.0, 98.0};  // must be cleared, not appended
  agg_.window_into(GpuId{1}, Metric::kSmUtil, 100, 35, scratch);
  EXPECT_EQ(scratch, expect);

  const auto view = agg_.window_view(GpuId{1}, Metric::kSmUtil, 100, 35);
  ASSERT_EQ(view.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_DOUBLE_EQ(view[i].value, expect[i]);
  }

  agg_.window_into(GpuId{99}, Metric::kSmUtil, 100, 35, scratch);
  EXPECT_TRUE(scratch.empty());
  EXPECT_TRUE(agg_.window_view(GpuId{99}, Metric::kSmUtil, 100, 35).empty());
}

TEST_F(AggregatorTest, WindowStatsForUnknownGpuIsZeroCount) {
  sample_all(0);
  EXPECT_EQ(agg_.window_stats(GpuId{99}, Metric::kSmUtil, 100, 35).count, 0u);
  EXPECT_GT(agg_.window_stats(GpuId{1}, Metric::kSmUtil, 0, 35).count, 0u);
}

TEST_F(AggregatorTest, SnapshotIntoReusesBuffer) {
  sample_all(0);
  std::vector<GpuView> out;
  agg_.snapshot_into(out);
  EXPECT_EQ(out, agg_.snapshot());
  const auto* data = out.data();
  agg_.snapshot_into(out);  // warmed buffer: no reallocation
  EXPECT_EQ(out.data(), data);
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(AggregatorTest, ActiveSortedCacheStableAcrossRepeatedCalls) {
  sample_all(0);
  const auto& first = agg_.active_sorted_by_free_memory();
  const auto snapshot_before = first;
  // No telemetry change between calls: the cached list is returned as-is.
  const auto& second = agg_.active_sorted_by_free_memory();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second, snapshot_before);
}

TEST_F(AggregatorTest, ActiveSortedCacheReactsToTelemetryWrites) {
  sample_all(0);
  auto before = agg_.active_sorted_by_free_memory();
  // Node 0's GPU fills up; after the next heartbeat it must sort last.
  ASSERT_TRUE(nodes_[0]->gpu(0).attach(PodId{1}, 100));
  EXPECT_TRUE(nodes_[0]->gpu(0).set_usage(PodId{1}, {0.5, 15000, 0, 0}));
  sample_all(10);
  const auto& after = agg_.active_sorted_by_free_memory();
  EXPECT_NE(after, before);
  EXPECT_EQ(after.back().node.value, 0);
}

TEST_F(AggregatorTest, ActiveSortedCacheReactsToParkFlip) {
  sample_all(0);
  EXPECT_EQ(agg_.active_sorted_by_free_memory().size(), 3u);
  // Parking is visible in the node object immediately — no heartbeat
  // between the two calls, mirroring a scheduler parking mid-tick.
  nodes_[1]->gpu(0).set_parked(true);
  EXPECT_EQ(agg_.active_sorted_by_free_memory().size(), 2u);
  nodes_[1]->gpu(0).set_parked(false);
  EXPECT_EQ(agg_.active_sorted_by_free_memory().size(), 3u);
}

}  // namespace
}  // namespace knots::telemetry
