#include "telemetry/aggregator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "telemetry/sampler.hpp"

namespace knots::telemetry {
namespace {

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest() {
    gpu::NodeSpec spec;
    spec.gpus_per_node = 1;
    for (int n = 0; n < 3; ++n) {
      nodes_.push_back(std::make_unique<gpu::GpuNode>(NodeId{n}, spec, n));
      dbs_.push_back(std::make_unique<TimeSeriesDb>());
      agg_.register_node(*nodes_[static_cast<std::size_t>(n)],
                         *dbs_[static_cast<std::size_t>(n)]);
    }
  }

  void sample_all(SimTime now) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      HeartbeatSampler s(*nodes_[n], *dbs_[n], Rng(n + 1), 0.0);
      s.sample(now);
    }
  }

  std::vector<std::unique_ptr<gpu::GpuNode>> nodes_;
  std::vector<std::unique_ptr<TimeSeriesDb>> dbs_;
  UtilizationAggregator agg_;
};

TEST_F(AggregatorTest, SnapshotCoversAllGpus) {
  sample_all(0);
  const auto snap = agg_.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(agg_.node_count(), 3u);
  for (const auto& v : snap) {
    EXPECT_DOUBLE_EQ(v.sm_util, 0.0);
    EXPECT_FALSE(v.parked);
  }
}

TEST_F(AggregatorTest, SnapshotReflectsTelemetry) {
  ASSERT_TRUE(nodes_[1]->gpu(0).attach(PodId{1}, 1000));
  EXPECT_TRUE(nodes_[1]->gpu(0).set_usage(PodId{1}, {0.7, 8192, 0, 0}));
  sample_all(5);
  const auto snap = agg_.snapshot();
  EXPECT_DOUBLE_EQ(snap[1].sm_util, 0.7);
  EXPECT_NEAR(snap[1].mem_used_mb, 8192, 1e-6);
  EXPECT_NEAR(snap[1].free_mem_mb,
              nodes_[1]->gpu(0).spec().memory_mb - 8192, 1e-6);
  EXPECT_EQ(snap[1].residents, 1);
}

TEST_F(AggregatorTest, ActiveSortedByFreeMemoryDescending) {
  ASSERT_TRUE(nodes_[0]->gpu(0).attach(PodId{1}, 100));
  EXPECT_TRUE(nodes_[0]->gpu(0).set_usage(PodId{1}, {0.1, 12000, 0, 0}));
  ASSERT_TRUE(nodes_[2]->gpu(0).attach(PodId{2}, 100));
  EXPECT_TRUE(nodes_[2]->gpu(0).set_usage(PodId{2}, {0.1, 4000, 0, 0}));
  sample_all(9);
  const auto sorted = agg_.active_sorted_by_free_memory();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].node.value, 1);  // empty node has most free memory
  EXPECT_EQ(sorted[1].node.value, 2);
  EXPECT_EQ(sorted[2].node.value, 0);
}

TEST_F(AggregatorTest, ParkedGpusExcludedFromActiveList) {
  nodes_[0]->gpu(0).set_parked(true);
  sample_all(1);
  const auto sorted = agg_.active_sorted_by_free_memory();
  EXPECT_EQ(sorted.size(), 2u);
  for (const auto& v : sorted) EXPECT_NE(v.node.value, 0);
  // But the raw snapshot still shows it, flagged.
  EXPECT_TRUE(agg_.snapshot()[0].parked);
}

TEST_F(AggregatorTest, WindowedSeriesQuery) {
  for (SimTime t = 0; t <= 100; t += 10) sample_all(t);
  const auto window =
      agg_.window(GpuId{1}, Metric::kSmUtil, /*now=*/100, /*window=*/35);
  EXPECT_EQ(window.size(), 4u);  // t = 70, 80, 90, 100
  EXPECT_TRUE(agg_.window(GpuId{99}, Metric::kSmUtil, 100, 35).empty());
}

}  // namespace
}  // namespace knots::telemetry
