#include "telemetry/timeseries_db.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/percentile.hpp"
#include "core/rng.hpp"

namespace knots::telemetry {
namespace {

TEST(TimeSeriesDb, EmptyQueries) {
  TimeSeriesDb db;
  EXPECT_TRUE(db.query_window(GpuId{0}, Metric::kSmUtil, 0).empty());
  EXPECT_TRUE(db.query_all(GpuId{0}, Metric::kSmUtil).empty());
  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kSmUtil, -3.0), -3.0);
  EXPECT_EQ(db.series_count(), 0u);
}

TEST(TimeSeriesDb, WriteAndLatest) {
  TimeSeriesDb db;
  db.write(GpuId{1}, Metric::kPowerWatts, {10, 100.0});
  db.write(GpuId{1}, Metric::kPowerWatts, {20, 150.0});
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kPowerWatts), 150.0);
  EXPECT_EQ(db.total_samples(), 2u);
}

TEST(TimeSeriesDb, SeriesKeyedByGpuAndMetric) {
  TimeSeriesDb db;
  db.write(GpuId{1}, Metric::kSmUtil, {0, 0.5});
  db.write(GpuId{2}, Metric::kSmUtil, {0, 0.9});
  db.write(GpuId{1}, Metric::kMemUtil, {0, 0.2});
  EXPECT_EQ(db.series_count(), 3u);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kSmUtil), 0.5);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{2}, Metric::kSmUtil), 0.9);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kMemUtil), 0.2);
}

TEST(TimeSeriesDb, WindowQueryInclusiveOfSince) {
  TimeSeriesDb db;
  for (SimTime t = 0; t < 10; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, static_cast<double>(t)});
  }
  const auto window = db.query_window(GpuId{0}, Metric::kSmUtil, 6);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_DOUBLE_EQ(window.front(), 6.0);
  EXPECT_DOUBLE_EQ(window.back(), 9.0);
}

TEST(TimeSeriesDb, WindowBeforeAllReturnsEverything) {
  TimeSeriesDb db;
  for (SimTime t = 100; t < 105; ++t) {
    db.write(GpuId{0}, Metric::kRxBandwidth, {t, 1.0});
  }
  EXPECT_EQ(db.query_window(GpuId{0}, Metric::kRxBandwidth, 0).size(), 5u);
  EXPECT_TRUE(db.query_window(GpuId{0}, Metric::kRxBandwidth, 1000).empty());
}

TEST(TimeSeriesDb, RetentionDropsOldest) {
  TimeSeriesDb db(/*retention=*/8);
  for (SimTime t = 0; t < 20; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, static_cast<double>(t)});
  }
  const auto all = db.query_all(GpuId{0}, Metric::kSmUtil);
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all.front().time, 12);
  EXPECT_EQ(all.back().time, 19);
}

TEST(TimeSeriesDb, WindowViewMatchesQueryWindow) {
  TimeSeriesDb db(/*retention=*/32);  // small retention forces ring wrap
  Rng rng(5);
  for (SimTime t = 0; t < 100; ++t) {
    db.write(GpuId{3}, Metric::kMemUtil, {t, rng.uniform()});
    const SimTime since = t > 10 ? t - 10 : 0;
    const auto vec = db.query_window(GpuId{3}, Metric::kMemUtil, since);
    const auto view = db.window_view(GpuId{3}, Metric::kMemUtil, since);
    ASSERT_EQ(view.size(), vec.size()) << "t=" << t;
    for (std::size_t i = 0; i < vec.size(); ++i) {
      EXPECT_DOUBLE_EQ(view[i].value, vec[i]);
      EXPECT_GE(view[i].time, since);
    }
    std::vector<double> flattened;
    view.append_values_to(flattened);
    EXPECT_EQ(flattened, vec);
  }
}

TEST(TimeSeriesDb, WindowViewEmptyCases) {
  TimeSeriesDb db;
  EXPECT_TRUE(db.window_view(GpuId{0}, Metric::kSmUtil, 0).empty());
  db.write(GpuId{0}, Metric::kSmUtil, {5, 1.0});
  EXPECT_TRUE(db.window_view(GpuId{0}, Metric::kSmUtil, 6).empty());
  EXPECT_EQ(db.window_view(GpuId{0}, Metric::kSmUtil, 5).size(), 1u);
}

TEST(TimeSeriesDb, WindowStatsMatchesNaivePercentiles) {
  TimeSeriesDb db;
  Rng rng(11);
  for (SimTime t = 0; t < 200; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, rng.uniform(0, 100)});
  }
  const SimTime since = 50;
  const auto agg = db.window_stats(GpuId{0}, Metric::kSmUtil, since);
  const auto window = db.query_window(GpuId{0}, Metric::kSmUtil, since);
  ASSERT_EQ(agg.count, window.size());
  double sum = 0, mn = window[0], mx = window[0];
  for (double v : window) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  // Summation order differs (the aggregate sums its sorted scratch), so
  // mean agrees to the 1e-9 equivalence bound, not bit-exactly.
  EXPECT_NEAR(agg.mean, sum / static_cast<double>(window.size()), 1e-9);
  EXPECT_DOUBLE_EQ(agg.min, mn);
  EXPECT_DOUBLE_EQ(agg.max, mx);
  EXPECT_DOUBLE_EQ(agg.p50, percentile(window, 50));
  EXPECT_DOUBLE_EQ(agg.p95, percentile(window, 95));
  EXPECT_DOUBLE_EQ(agg.p99, percentile(window, 99));
}

TEST(TimeSeriesDb, WindowStatsCacheInvalidatedByWrite) {
  TimeSeriesDb db;
  for (SimTime t = 0; t < 10; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, 1.0});
  }
  const auto gen0 = db.generation(GpuId{0}, Metric::kSmUtil);
  const auto& a = db.window_stats(GpuId{0}, Metric::kSmUtil, 0);
  EXPECT_DOUBLE_EQ(a.max, 1.0);
  // Repeat query with no intervening write: same cached aggregate object.
  const auto* cached = &db.window_stats(GpuId{0}, Metric::kSmUtil, 0);
  EXPECT_EQ(cached, &a);
  EXPECT_EQ(db.generation(GpuId{0}, Metric::kSmUtil), gen0);
  // A write must invalidate: the next query sees the new sample.
  db.write(GpuId{0}, Metric::kSmUtil, {10, 9.0});
  EXPECT_GT(db.generation(GpuId{0}, Metric::kSmUtil), gen0);
  EXPECT_DOUBLE_EQ(db.window_stats(GpuId{0}, Metric::kSmUtil, 0).max, 9.0);
  // Changing `since` must also bypass the cache.
  EXPECT_EQ(db.window_stats(GpuId{0}, Metric::kSmUtil, 10).count, 1u);
}

TEST(TimeSeriesDb, LiveStatsTrackWindow) {
  TimeSeriesDb db(/*retention=*/1024, /*stats_window=*/4);
  EXPECT_EQ(db.live_stats(GpuId{0}, Metric::kSmUtil), nullptr);
  for (SimTime t = 0; t < 8; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, static_cast<double>(t)});
  }
  const auto* live = db.live_stats(GpuId{0}, Metric::kSmUtil);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->count(), 4u);  // last four samples: 4,5,6,7
  EXPECT_DOUBLE_EQ(live->mean(), 5.5);
  EXPECT_DOUBLE_EQ(live->min(), 4.0);
  EXPECT_DOUBLE_EQ(live->max(), 7.0);
}

TEST(TimeSeriesDb, LiveStatsDisabledByDefault) {
  TimeSeriesDb db;
  db.write(GpuId{0}, Metric::kSmUtil, {0, 1.0});
  EXPECT_EQ(db.live_stats(GpuId{0}, Metric::kSmUtil), nullptr);
}

// The old KeyHash packed the metric into the low 8 bits of (gpu << 8),
// colliding whole series once metric ids or gpu counts grew. The splitmix64
// mix must keep every (gpu, metric) key distinct and well spread.
TEST(TimeSeriesDbKeyHash, NoCollisionsOverGpuMetricGrid) {
  TimeSeriesDb::KeyHash hash;
  std::unordered_set<std::size_t> seen;
  std::size_t keys = 0;
  for (std::int32_t gpu = 0; gpu < 512; ++gpu) {
    for (int metric = 0; metric < 512; metric += 37) {
      seen.insert(hash(TimeSeriesDb::Key{gpu, metric}));
      ++keys;
    }
  }
  // splitmix64 is a bijection on the packed 64-bit key, so any collision
  // here would have to come from the size_t truncation — none expected.
  EXPECT_EQ(seen.size(), keys);
}

TEST(TimeSeriesDbKeyHash, LargeMetricIdsDoNotAliasAcrossGpus) {
  // Regression for the (gpu << 8) | metric scheme: metric id 256 on gpu g
  // collided with metric id 0 on gpu g+1.
  TimeSeriesDb::KeyHash hash;
  EXPECT_NE(hash(TimeSeriesDb::Key{0, 256}), hash(TimeSeriesDb::Key{1, 0}));
  EXPECT_NE(hash(TimeSeriesDb::Key{0, 257}), hash(TimeSeriesDb::Key{1, 1}));
}

TEST(MetricNames, AllDistinct) {
  for (auto a : kAllMetrics) {
    for (auto b : kAllMetrics) {
      if (a != b) EXPECT_NE(metric_name(a), metric_name(b));
    }
  }
  EXPECT_EQ(metric_name(Metric::kSmUtil), "sm_util");
  EXPECT_EQ(kAllMetrics.size(), 5u);  // the five §IV-A metrics
}

}  // namespace
}  // namespace knots::telemetry
