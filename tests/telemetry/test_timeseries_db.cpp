#include "telemetry/timeseries_db.hpp"

#include <gtest/gtest.h>

namespace knots::telemetry {
namespace {

TEST(TimeSeriesDb, EmptyQueries) {
  TimeSeriesDb db;
  EXPECT_TRUE(db.query_window(GpuId{0}, Metric::kSmUtil, 0).empty());
  EXPECT_TRUE(db.query_all(GpuId{0}, Metric::kSmUtil).empty());
  EXPECT_DOUBLE_EQ(db.latest(GpuId{0}, Metric::kSmUtil, -3.0), -3.0);
  EXPECT_EQ(db.series_count(), 0u);
}

TEST(TimeSeriesDb, WriteAndLatest) {
  TimeSeriesDb db;
  db.write(GpuId{1}, Metric::kPowerWatts, {10, 100.0});
  db.write(GpuId{1}, Metric::kPowerWatts, {20, 150.0});
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kPowerWatts), 150.0);
  EXPECT_EQ(db.total_samples(), 2u);
}

TEST(TimeSeriesDb, SeriesKeyedByGpuAndMetric) {
  TimeSeriesDb db;
  db.write(GpuId{1}, Metric::kSmUtil, {0, 0.5});
  db.write(GpuId{2}, Metric::kSmUtil, {0, 0.9});
  db.write(GpuId{1}, Metric::kMemUtil, {0, 0.2});
  EXPECT_EQ(db.series_count(), 3u);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kSmUtil), 0.5);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{2}, Metric::kSmUtil), 0.9);
  EXPECT_DOUBLE_EQ(db.latest(GpuId{1}, Metric::kMemUtil), 0.2);
}

TEST(TimeSeriesDb, WindowQueryInclusiveOfSince) {
  TimeSeriesDb db;
  for (SimTime t = 0; t < 10; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, static_cast<double>(t)});
  }
  const auto window = db.query_window(GpuId{0}, Metric::kSmUtil, 6);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_DOUBLE_EQ(window.front(), 6.0);
  EXPECT_DOUBLE_EQ(window.back(), 9.0);
}

TEST(TimeSeriesDb, WindowBeforeAllReturnsEverything) {
  TimeSeriesDb db;
  for (SimTime t = 100; t < 105; ++t) {
    db.write(GpuId{0}, Metric::kRxBandwidth, {t, 1.0});
  }
  EXPECT_EQ(db.query_window(GpuId{0}, Metric::kRxBandwidth, 0).size(), 5u);
  EXPECT_TRUE(db.query_window(GpuId{0}, Metric::kRxBandwidth, 1000).empty());
}

TEST(TimeSeriesDb, RetentionDropsOldest) {
  TimeSeriesDb db(/*retention=*/8);
  for (SimTime t = 0; t < 20; ++t) {
    db.write(GpuId{0}, Metric::kSmUtil, {t, static_cast<double>(t)});
  }
  const auto all = db.query_all(GpuId{0}, Metric::kSmUtil);
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all.front().time, 12);
  EXPECT_EQ(all.back().time, 19);
}

TEST(MetricNames, AllDistinct) {
  for (auto a : kAllMetrics) {
    for (auto b : kAllMetrics) {
      if (a != b) EXPECT_NE(metric_name(a), metric_name(b));
    }
  }
  EXPECT_EQ(metric_name(Metric::kSmUtil), "sm_util");
  EXPECT_EQ(kAllMetrics.size(), 5u);  // the five §IV-A metrics
}

}  // namespace
}  // namespace knots::telemetry
