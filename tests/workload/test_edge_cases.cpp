// Degenerate workload shapes the orchestrator must survive: an empty run,
// a single pod, and an arrival burst far beyond cluster capacity.
#include <gtest/gtest.h>

#include <vector>

#include "knots/experiment.hpp"
#include "knots/kube_knots.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "workload/rodinia.hpp"

namespace knots::workload {
namespace {

ExperimentConfig tiny_config(sched::SchedulerKind kind) {
  return ExperimentConfig::Builder{}
      .scheduler(kind)
      .nodes(2)
      .duration(10 * kSec)
      .build();
}

PodSpec batch_pod(SimTime arrival, double requested_mb) {
  PodSpec spec;
  spec.app = "pathfinder";
  spec.klass = PodClass::kBatch;
  spec.arrival = arrival;
  spec.profile = rodinia_profile(RodiniaApp::kPathfinder).time_scaled(20.0);
  spec.requested_mb = requested_mb;
  return spec;
}

TEST(WorkloadEdgeCases, EmptyWorkloadTerminatesWithEmptyTrace) {
  for (auto kind : sched::kAllSchedulers) {
    SCOPED_TRACE(sched::to_string(kind));
    obs::TraceSink trace;
    KubeKnots knots(tiny_config(kind));
    knots.attach_tracer(&trace);
    const auto report = knots.run();  // No submissions at all.
    EXPECT_EQ(report.pods_total, 0u);
    EXPECT_EQ(report.pods_completed, 0u);
    EXPECT_EQ(report.crashes, 0u);
    EXPECT_EQ(report.invariant_violations, 0u);
    EXPECT_EQ(trace.count(obs::EventKind::kSubmit), 0u);
    EXPECT_EQ(trace.count(obs::EventKind::kPlace), 0u);
    // The engine still ticks (telemetry heartbeats), so the trace need not
    // be empty — but it must contain only scrapes and park events.
    for (const auto& e : trace.events()) {
      EXPECT_TRUE(e.kind == obs::EventKind::kScrape ||
                  e.kind == obs::EventKind::kPark)
          << "unexpected event kind in an empty run: "
          << to_string(e.kind);
    }
  }
}

TEST(WorkloadEdgeCases, SinglePodRunsToCompletionReproducibly) {
  const auto run_once = [] {
    obs::TraceSink trace;
    KubeKnots knots(tiny_config(sched::SchedulerKind::kCbp));
    knots.attach_tracer(&trace);
    knots.submit(batch_pod(/*arrival=*/0, /*requested_mb=*/2048.0));
    const auto report = knots.run();
    return std::pair{report, trace.count(obs::EventKind::kComplete)};
  };
  const auto [report, completes] = run_once();
  EXPECT_EQ(report.pods_total, 1u);
  EXPECT_EQ(report.pods_completed, 1u);
  EXPECT_EQ(completes, 1u);
  EXPECT_GT(report.mean_jct_s, 0.0);

  const auto [again, completes_again] = run_once();
  EXPECT_EQ(report.run_digest, again.run_digest);
  EXPECT_EQ(completes_again, 1u);
}

TEST(WorkloadEdgeCases, BurstBeyondCapacityDrainsWithoutViolations) {
  // 24 pods of 2 GB each arrive at t=0 on a two-GPU cluster: far more work
  // than fits at once. Every policy must stay invariant-clean, place pods
  // only as capacity frees up, and finish the backlog within the drain
  // grace window.
  for (auto kind : sched::kAllSchedulers) {
    SCOPED_TRACE(sched::to_string(kind));
    obs::TraceSink trace;
    KubeKnots knots(tiny_config(kind));
    knots.attach_tracer(&trace);
    for (int i = 0; i < 24; ++i) {
      knots.submit(batch_pod(/*arrival=*/0, /*requested_mb=*/2048.0));
    }
    const auto report = knots.run();
    EXPECT_EQ(report.pods_total, 24u);
    EXPECT_EQ(report.invariant_violations, 0u);
    EXPECT_GT(report.pods_completed, 0u);
    // Placements happen over time, not all at the burst instant.
    SimTime last_place = 0;
    for (const auto& e : trace.events()) {
      if (e.kind == obs::EventKind::kPlace) last_place = e.ts;
    }
    EXPECT_GT(last_place, 0);
    // Each placement was preceded by a submit for that pod.
    EXPECT_EQ(trace.count(obs::EventKind::kSubmit), 24u);
    EXPECT_LE(report.pods_completed, 24u);
  }
}

}  // namespace
}  // namespace knots::workload
