#include "workload/app_profile.hpp"

#include <gtest/gtest.h>

namespace knots::workload {
namespace {

AppProfile two_phase() {
  // 30 ms at 100 MB / 0.2 SM, then 10 ms at 400 MB / 0.8 SM.
  return AppProfile("two",
                    {{30 * kMsec, gpu::Usage{0.2, 100, 0, 0}},
                     {10 * kMsec, gpu::Usage{0.8, 400, 50, 0}}});
}

TEST(AppProfile, DurationsAndCycles) {
  const auto p = two_phase();
  EXPECT_EQ(p.cycle_duration(), 40 * kMsec);
  EXPECT_EQ(p.total_duration(), 40 * kMsec);
  EXPECT_EQ(p.with_cycles(3).total_duration(), 120 * kMsec);
}

TEST(AppProfile, UsageLookupByPhase) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.usage_at(0).memory_mb, 100);
  EXPECT_DOUBLE_EQ(p.usage_at(29 * kMsec).memory_mb, 100);
  EXPECT_DOUBLE_EQ(p.usage_at(30 * kMsec).memory_mb, 400);
  EXPECT_DOUBLE_EQ(p.usage_at(39 * kMsec).sm, 0.8);
}

TEST(AppProfile, UsageWrapsAcrossCycles) {
  const auto p = two_phase().with_cycles(5);
  EXPECT_DOUBLE_EQ(p.usage_at(40 * kMsec).memory_mb, 100);   // cycle 2 start
  EXPECT_DOUBLE_EQ(p.usage_at(75 * kMsec).memory_mb, 400);   // cycle 2 peak
}

TEST(AppProfile, NegativeTimeClampsToStart) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.usage_at(-5).memory_mb, 100);
}

TEST(AppProfile, MemoryPercentileIsDurationWeighted) {
  const auto p = two_phase();
  // 75 % of the cycle sits at 100 MB.
  EXPECT_DOUBLE_EQ(p.memory_percentile_mb(50), 100);
  EXPECT_DOUBLE_EQ(p.memory_percentile_mb(75), 100);
  EXPECT_DOUBLE_EQ(p.memory_percentile_mb(80), 400);
  EXPECT_DOUBLE_EQ(p.memory_percentile_mb(100), 400);
}

TEST(AppProfile, PeaksAndMeans) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.peak_memory_mb(), 400);
  EXPECT_DOUBLE_EQ(p.peak_sm(), 0.8);
  EXPECT_NEAR(p.mean_sm(), (0.2 * 30 + 0.8 * 10) / 40, 1e-12);
  EXPECT_NEAR(p.mean_memory_mb(), (100.0 * 30 + 400 * 10) / 40, 1e-12);
}

TEST(AppProfile, TimeScalingPreservesShape) {
  const auto p = two_phase().time_scaled(10.0);
  EXPECT_EQ(p.cycle_duration(), 400 * kMsec);
  EXPECT_DOUBLE_EQ(p.usage_at(0).memory_mb, 100);
  EXPECT_DOUBLE_EQ(p.usage_at(350 * kMsec).memory_mb, 400);
  EXPECT_DOUBLE_EQ(p.peak_memory_mb(), 400);
  EXPECT_NEAR(p.mean_sm(), two_phase().mean_sm(), 1e-12);
}

TEST(AppProfile, SignaturesSampleOneCycle) {
  const auto p = two_phase();
  const auto mem = p.memory_signature(8);
  ASSERT_EQ(mem.size(), 8u);
  EXPECT_DOUBLE_EQ(mem.front(), 100);
  EXPECT_DOUBLE_EQ(mem.back(), 400);
  const auto sm = p.sm_signature(8);
  EXPECT_DOUBLE_EQ(sm.front(), 0.2);
  EXPECT_DOUBLE_EQ(sm.back(), 0.8);
}

class CycleSweep : public ::testing::TestWithParam<int> {};

TEST_P(CycleSweep, TotalDurationScalesLinearly) {
  const int cycles = GetParam();
  const auto p = two_phase().with_cycles(cycles);
  EXPECT_EQ(p.total_duration(), cycles * 40 * kMsec);
  // Percentiles are cycle-invariant.
  EXPECT_DOUBLE_EQ(p.memory_percentile_mb(50), 100);
}

INSTANTIATE_TEST_SUITE_P(Cycles, CycleSweep, ::testing::Values(1, 2, 5, 17));

}  // namespace
}  // namespace knots::workload
