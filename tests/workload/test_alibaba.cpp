#include "workload/alibaba.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/percentile.hpp"
#include "stats/correlation.hpp"

namespace knots::workload {
namespace {

TEST(Alibaba, MetricLabelCounts) {
  EXPECT_EQ(lc_metric_labels().size(), 8u);     // Fig 2a heat map
  EXPECT_EQ(batch_metric_labels().size(), 6u);  // Fig 2c heat map
}

TEST(Alibaba, ContainerMeansMatchObservation2) {
  // Fig 2b: average CPU ≈ 47 %, average memory ≈ 76 % of request.
  AlibabaTrace trace(Rng(42));
  OnlineStats cpu, mem;
  for (int i = 0; i < 20000; ++i) {
    const auto c = trace.sample_container();
    cpu.add(c.cpu_avg);
    mem.add(c.mem_avg);
  }
  EXPECT_NEAR(cpu.mean(), 0.47, 0.04);
  EXPECT_NEAR(mem.mean(), 0.76, 0.04);
}

TEST(Alibaba, MaxAboveAverageAndBounded) {
  AlibabaTrace trace(Rng(7));
  for (int i = 0; i < 2000; ++i) {
    const auto c = trace.sample_container();
    EXPECT_GE(c.cpu_max, c.cpu_avg);
    EXPECT_GE(c.mem_max, c.mem_avg);
    EXPECT_LE(c.cpu_max, 1.0);
    EXPECT_LE(c.mem_max, 1.0);
    EXPECT_GE(c.cpu_avg, 0.0);
  }
}

TEST(Alibaba, MemoryMaxRarelyExceeds80PercentOfRequest) {
  // The basis for CBP's 80th-percentile provisioning (§IV-C).
  AlibabaTrace trace(Rng(3));
  int exceed = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (trace.sample_container().mem_max > 0.97) ++exceed;
  }
  EXPECT_LT(exceed, n / 4);
}

TEST(Alibaba, BatchMetricsStronglyCorrelated) {
  // Observation 3 / Fig 2c: core↔memory and core↔load_1 co-move.
  AlibabaTrace trace(Rng(5));
  const auto cols = trace.batch_metric_columns(5000);
  const auto m = stats::spearman_matrix(batch_metric_labels(), cols);
  EXPECT_GT(m.at(0, 1), 0.7);  // core_util vs mem_util
  EXPECT_GT(m.at(0, 3), 0.8);  // core_util vs load_1
  EXPECT_GT(m.at(3, 4), 0.7);  // load_1 vs load_5
  EXPECT_LT(m.at(0, 2), -0.5); // network anti-correlates with compute
}

TEST(Alibaba, LatencyCriticalMetricsWeaklyCorrelated) {
  // Fig 2a: no clear correlation indicators for short-lived tasks.
  AlibabaTrace trace(Rng(5));
  const auto cols = trace.lc_metric_columns(5000);
  const auto m = stats::spearman_matrix(lc_metric_labels(), cols);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      EXPECT_LT(std::abs(m.at(i, j)), 0.45)
          << m.labels[i] << " vs " << m.labels[j];
    }
  }
}

TEST(Alibaba, ParetoSplitIsTwentyPercentBatch) {
  AlibabaTrace trace(Rng(9));
  int batch = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) batch += trace.next_is_batch() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(batch) / n, 0.20, 0.01);
}

TEST(Alibaba, ArrivalsSortedWithinWindow) {
  AlibabaTrace trace(Rng(11));
  const auto arrivals = trace.arrivals(60 * kSec, 200 * kMsec, 0.5);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  EXPECT_LT(arrivals.back(), 60 * kSec);
  EXPECT_GT(arrivals.front(), 0);
}

TEST(Alibaba, ArrivalCountTracksMeanInterarrival) {
  AlibabaTrace trace(Rng(13));
  const auto arrivals = trace.arrivals(600 * kSec, 500 * kMsec, 0.3,
                                       /*diurnal=*/false);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 1200.0, 150.0);
}

TEST(Alibaba, BurstinessRaisesInterarrivalCov) {
  auto gap_cov = [](const std::vector<SimTime>& arrivals) {
    OnlineStats st;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      st.add(static_cast<double>(arrivals[i] - arrivals[i - 1]));
    }
    return st.cov();
  };
  AlibabaTrace smooth(Rng(17));
  AlibabaTrace bursty(Rng(17));
  const auto low = smooth.arrivals(600 * kSec, 300 * kMsec, 0.2, false);
  const auto high = bursty.arrivals(600 * kSec, 300 * kMsec, 2.5, false);
  EXPECT_GT(gap_cov(high), gap_cov(low) + 0.5);
}

class BurstinessSweep : public ::testing::TestWithParam<double> {};

TEST_P(BurstinessSweep, MeanGapRoughlyPreserved) {
  AlibabaTrace trace(Rng(19));
  const auto arrivals =
      trace.arrivals(1200 * kSec, 400 * kMsec, GetParam(), false);
  const double mean_gap =
      static_cast<double>(arrivals.back()) /
      static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean_gap, 400.0 * kMsec, 120.0 * kMsec);
}

INSTANTIATE_TEST_SUITE_P(Burst, BurstinessSweep,
                         ::testing::Values(0.0, 0.3, 0.9, 2.2));

}  // namespace
}  // namespace knots::workload
